"""Paper Figure 3: representative patterns in Coffee spectra.

Arabica and Robusta FTIR spectra differ in the caffeine and
chlorogenic-acid absorption bands; RPM should pick patterns covering
those regions. Run with ``python examples/coffee_patterns.py``.
"""

from __future__ import annotations

from example_utils import heading, sparkline

from repro import RPMClassifier, SaxParams
from repro.data import load
from repro.distance.best_match import best_match
from repro.ml.metrics import error_rate

#: Normalized positions of the class-discriminative bands in the
#: synthetic Coffee generator (see repro.data.spectra.coffee_sim).
CAFFEINE_BAND = 0.60
CHLOROGENIC_BAND = 0.72


def main() -> None:
    dataset = load("CoffeeSim")
    print(heading(f"Representative patterns on {dataset.name} (paper Figure 3)"))
    print(dataset.summary_row())

    clf = RPMClassifier(sax_params=SaxParams(80, 8, 6), seed=0)
    clf.fit(dataset.X_train, dataset.y_train)
    err = error_rate(dataset.y_test, clf.predict(dataset.X_test))
    print(f"\ntest error rate: {err:.3f}   patterns: {len(clf.patterns_)}")

    names = {0: "Arabica", 1: "Robusta"}
    m = dataset.series_length
    for pattern in clf.patterns_:
        # Locate the pattern on a training spectrum of its class to see
        # which spectral region it covers.
        exemplar = dataset.class_instances(pattern.label)[0]
        match = best_match(pattern.values, exemplar)
        lo = match.position / m
        hi = (match.position + pattern.length) / m
        covers = []
        if lo <= CAFFEINE_BAND <= hi:
            covers.append("caffeine band")
        if lo <= CHLOROGENIC_BAND <= hi:
            covers.append("chlorogenic-acid band")
        coverage = ", ".join(covers) if covers else "other constituents"
        print(
            f"\nclass {names[int(pattern.label)]:<8s} span [{lo:.2f}, {hi:.2f}] "
            f"of the spectrum -> {coverage}"
        )
        print("  " + sparkline(pattern.values))

    caffeine_covered = any(
        _covers(clf, dataset, p, CAFFEINE_BAND) for p in clf.patterns_
    )
    print(
        "\nAt least one pattern covers the caffeine band:"
        f" {'yes' if caffeine_covered else 'no'}"
    )


def _covers(clf, dataset, pattern, band: float) -> bool:
    exemplar = dataset.class_instances(pattern.label)[0]
    match = best_match(pattern.values, exemplar)
    m = dataset.series_length
    return match.position / m <= band <= (match.position + pattern.length) / m


if __name__ == "__main__":
    main()
