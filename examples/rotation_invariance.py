"""Paper §6.1 / Figure 10 / Table 4: rotation-invariant classification.

The test split is rotated at random cut points (training data stays
untouched). Global-distance classifiers collapse; RPM with the
two-copy closest-match transform barely moves. Run with
``python examples/rotation_invariance.py``.
"""

from __future__ import annotations

from example_utils import heading, sparkline

from repro import RPMClassifier, SaxParams
from repro.baselines import NearestNeighborED
from repro.data import load, rotate_test_split
from repro.ml.metrics import error_rate


def main() -> None:
    dataset = load("GunPointSim")
    rotated = rotate_test_split(dataset, seed=1)
    print(heading(f"Rotation case study on {dataset.name} (paper §6.1)"))
    print(dataset.summary_row())

    print("\noriginal vs rotated test instance:")
    print("  " + sparkline(dataset.X_test[0]))
    print("  " + sparkline(rotated.X_test[0]))

    rows = []

    nn = NearestNeighborED().fit(dataset.X_train, dataset.y_train)
    rows.append(
        (
            "NN-ED",
            error_rate(dataset.y_test, nn.predict(dataset.X_test)),
            error_rate(rotated.y_test, nn.predict(rotated.X_test)),
        )
    )

    rpm_plain = RPMClassifier(sax_params=SaxParams(40, 6, 5), seed=0)
    rpm_plain.fit(dataset.X_train, dataset.y_train)
    rpm_rot = RPMClassifier(
        sax_params=SaxParams(40, 6, 5), rotation_invariant=True, seed=0
    )
    rpm_rot.fit(dataset.X_train, dataset.y_train)
    rows.append(
        (
            "RPM (plain)",
            error_rate(dataset.y_test, rpm_plain.predict(dataset.X_test)),
            error_rate(rotated.y_test, rpm_plain.predict(rotated.X_test)),
        )
    )
    rows.append(
        (
            "RPM (rotation-invariant)",
            error_rate(dataset.y_test, rpm_rot.predict(dataset.X_test)),
            error_rate(rotated.y_test, rpm_rot.predict(rotated.X_test)),
        )
    )

    print(heading("Error rates (paper Table 4 protocol)"))
    print(f"{'method':<26s} {'original':>9s} {'rotated':>9s}")
    for name, orig, rot in rows:
        print(f"{name:<26s} {orig:>9.3f} {rot:>9.3f}")

    print(
        "\nExpected shape (paper): NN-ED degrades drastically under rotation;"
        "\nrotation-invariant RPM stays close to its unrotated error."
    )


if __name__ == "__main__":
    main()
