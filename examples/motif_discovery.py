"""Class-specific motifs beyond classification (paper §1, §2.1).

The paper stresses that RPM's grammar-based motif discovery "offers a
unique advantage that extends beyond the classification task". This
example uses the standalone :mod:`repro.motif` API on a long ECG-like
recording: it finds the recurring heartbeat motif, shows the
rule-density curve, and localizes an injected arrhythmic anomaly as the
top discord. Run with ``python examples/motif_discovery.py``.
"""

from __future__ import annotations

import numpy as np

from example_utils import annotate_interval, heading, sparkline

from repro.data import heartbeat
from repro.motif import find_discords_density, find_motifs, rule_density
from repro.sax.discretize import SaxParams


def make_recording(n_beats: int = 20, beat_length: int = 60, seed: int = 5):
    """A long quasi-periodic ECG strip with one anomalous beat."""
    rng = np.random.default_rng(seed)
    beats = []
    anomaly_index = 13
    for i in range(n_beats):
        if i == anomaly_index:
            beat = heartbeat(rng, beat_length, st_elevation=-0.6, t_amp=-0.5, r_amp=1.0)
        else:
            beat = heartbeat(rng, beat_length, noise=0.04)
        beats.append(beat)
    series = np.concatenate(beats)
    anomaly_span = (anomaly_index * beat_length, (anomaly_index + 1) * beat_length)
    return series, anomaly_span


def main() -> None:
    series, (anom_lo, anom_hi) = make_recording()
    params = SaxParams(45, 5, 4)

    print(heading("Motif discovery in a long ECG recording"))
    print(f"{series.size} points, anomalous beat at [{anom_lo}, {anom_hi})")
    print("  " + sparkline(series))
    print("  " + annotate_interval(series.size, anom_lo, anom_hi))

    motifs = find_motifs(series, params, top_k=3, rank_by="coverage")
    print(heading("Top motifs (recurring heartbeat structure)"))
    for motif in motifs:
        print(
            f"R{motif.rule_id}: {motif.frequency} occurrences, "
            f"mean length {motif.mean_length():.0f}, "
            f"covers {motif.covered_points()} points"
        )
        if motif.prototype is not None:
            print("  prototype: " + sparkline(motif.prototype, width=40))

    density = rule_density(series.size, find_motifs(series, params, refine=False))
    print(heading("Grammar rule density (low = never repeats = anomalous)"))
    print("  " + sparkline(density.astype(float)))

    discord = find_discords_density(series, params, n_discords=1)[0]
    print(heading("Top discord (rare-rule anomaly detection)"))
    print(f"interval [{discord.start}, {discord.end}), isolation score "
          f"{discord.score:.2f}, mean density {discord.density:.1f}")
    hit = not (discord.end <= anom_lo or discord.start >= anom_hi)
    print(f"overlaps the injected arrhythmic beat: {'yes' if hit else 'no'}")


if __name__ == "__main__":
    main()
