"""Paper §6.2: medical alarm classification on ABP waveforms.

The paper used arterial-blood-pressure strips from the MIMIC II ICU
database (normal vs alarm-triggering segments). This build generates
synthetic ABP strips with the same structure (see
``repro.data.ecg.medical_alarm_abp``). Run with
``python examples/medical_alarm.py``.
"""

from __future__ import annotations

from example_utils import heading, sparkline

from repro import RPMClassifier, SaxParams
from repro.baselines import NearestNeighborED, SaxVsmClassifier
from repro.data import load, medical_alarm_abp
from repro.ml.metrics import confusion_matrix, error_rate


def main() -> None:
    dataset = load("MedicalAlarmABP")
    print(heading("Medical alarm case study (paper §6.2)"))
    print(dataset.summary_row())

    print("\nexample strips (top: normal, bottom: alarm):")
    print("  " + sparkline(dataset.X_train[dataset.y_train == 0][0]))
    print("  " + sparkline(dataset.X_train[dataset.y_train == 1][0]))

    clf = RPMClassifier(sax_params=SaxParams(50, 6, 5), seed=0)
    clf.fit(dataset.X_train, dataset.y_train)
    preds = clf.predict(dataset.X_test)
    err = error_rate(dataset.y_test, preds)
    matrix, labels = confusion_matrix(dataset.y_test, preds)
    print(f"\nRPM test error: {err:.3f}")
    print(f"confusion matrix (rows = truth {labels.tolist()}):\n{matrix}")

    for name, rival in (
        ("NN-ED", NearestNeighborED()),
        ("SAX-VSM", SaxVsmClassifier(params=SaxParams(50, 6, 5))),
    ):
        rival.fit(dataset.X_train, dataset.y_train)
        rival_err = error_rate(dataset.y_test, rival.predict(dataset.X_test))
        print(f"{name} test error: {rival_err:.3f}")

    print(heading("Alarm patterns RPM discovered"))
    for pattern in clf.patterns_:
        kind = "alarm" if int(pattern.label) == 1 else "normal"
        print(f"\nclass {kind:<6s} len={pattern.length} "
              f"support={pattern.candidate.support}")
        print("  " + sparkline(pattern.values))

    # Extension: the four-way variant separates the alarm regimes.
    print(heading("Extension: multiclass alarm-regime classification"))
    multi = medical_alarm_abp(multiclass=True, seed=32)
    clf4 = RPMClassifier(sax_params=SaxParams(50, 6, 5), seed=0)
    clf4.fit(multi.X_train, multi.y_train)
    err4 = error_rate(multi.y_test, clf4.predict(multi.X_test))
    print(
        f"{multi.name}: 4-class error {err4:.3f} "
        "(0=normal, 1=hypotension, 2=damped, 3=spike)"
    )


if __name__ == "__main__":
    main()
