"""Paper Figures 5 and 6: the pattern-distance feature space.

Two visually similar ECG classes become linearly separable once each
series is represented by its closest-match distances to the top two
representative patterns. Run with
``python examples/ecg_feature_space.py``.
"""

from __future__ import annotations

import numpy as np

from example_utils import ascii_scatter, heading, sparkline

from repro import RPMClassifier, SaxParams
from repro.core.transform import pattern_features
from repro.data import load
from repro.ml.metrics import error_rate
from repro.ml.svm import SVC


def main() -> None:
    dataset = load("ECGFiveDaysSim")
    print(heading(f"Pattern feature space on {dataset.name} (Figures 5/6)"))
    print(dataset.summary_row())

    clf = RPMClassifier(sax_params=SaxParams(40, 6, 5), seed=0)
    clf.fit(dataset.X_train, dataset.y_train)
    err = error_rate(dataset.y_test, clf.predict(dataset.X_test))
    print(f"\ntest error rate with all patterns: {err:.3f}")

    print(heading("Best representative pattern per class (Figure 5)"))
    best_by_class = {}
    for pattern in clf.patterns_:
        best_by_class.setdefault(pattern.label, pattern)
    for label, pattern in sorted(best_by_class.items()):
        print(f"\nclass {label}  len={pattern.length}")
        print("  " + sparkline(pattern.values))

    # Figure 6: transform the training data onto the top two patterns.
    top_two = [p for _, p in sorted(best_by_class.items())][:2]
    if len(top_two) < 2:
        top_two = clf.patterns_[:2]
    F = pattern_features(dataset.X_train, top_two)
    print(heading("Training data in the 2-pattern feature space (Figure 6)"))
    print("x = distance to pattern 1, y = distance to pattern 2\n")
    print(ascii_scatter(F[:, 0], F[:, 1], dataset.y_train))

    # The paper's point: the transformed data is linearly separable.
    linear = SVC(kernel="linear", C=10.0).fit(F, dataset.y_train)
    train_acc = float(np.mean(linear.predict(F) == dataset.y_train))
    print(f"\nlinear SVM training accuracy in this 2-D space: {train_acc:.3f}")


if __name__ == "__main__":
    main()
