"""Paper Figure 4: variable-length grammar-rule motifs.

Concatenate one class's training series, discretize, induce a Sequitur
grammar and show how a single rule maps back to raw subsequences of
*different lengths* across different training instances — the effect
of numerosity reduction. Run with ``python examples/grammar_motifs.py``.
"""

from __future__ import annotations

import numpy as np

from example_utils import heading, sparkline

from repro.data import load
from repro.grammar.inference import discretize_class, induce_motifs
from repro.sax.discretize import SaxParams


def main() -> None:
    dataset = load("SwedishLeafSim")
    label = dataset.classes()[3]  # the paper's Figure 4 uses class 4
    instances = [row for row in dataset.class_instances(label)]
    params = SaxParams(30, 5, 5)

    print(heading(f"Grammar motifs in {dataset.name}, class {label} (Figure 4)"))
    print(f"{len(instances)} training instances of length {dataset.series_length}, "
          f"SAX params {params.as_tuple()}")

    record, starts, lengths = discretize_class(instances, params)
    print(f"discretized to {len(record)} SAX words "
          f"({record.dropped} junction-spanning windows dropped)")

    motifs = induce_motifs(record, starts, lengths)
    motifs.sort(key=lambda m: (m.support, m.frequency), reverse=True)
    print(f"grammar produced {len(motifs)} candidate motifs\n")

    best = motifs[0]
    series = np.concatenate(instances)
    print(f"best motif: rule R{best.rule_id}, words = {' '.join(best.words)}")
    print(f"  {best.frequency} occurrences across {best.support} instances")
    span_lengths = sorted({occ.length for occ in best.occurrences})
    print(f"  occurrence lengths: {span_lengths} "
          "(variable-length, as in the paper's Figure 4)\n")
    for occ in best.occurrences[:8]:
        offset_in_instance = occ.start - starts[occ.instance]
        print(
            f"  instance {occ.instance:>2d}  offset {offset_in_instance:>4d}"
            f"  len {occ.length:>3d}  " + sparkline(series[occ.start : occ.end], width=40)
        )
    uncovered = set(range(len(instances))) - {o.instance for o in best.occurrences}
    if uncovered:
        print(f"\ninstances without this motif: {sorted(uncovered)} "
              "(the paper notes not every instance contains every motif)")


if __name__ == "__main__":
    main()
