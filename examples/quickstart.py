"""Quickstart: train RPM on CBF and inspect the learned patterns.

Run with::

    python examples/quickstart.py [--search]

Without flags the SAX parameters are fixed (fast); ``--search`` runs
the paper's full per-class DIRECT parameter selection (Algorithm 3).
"""

from __future__ import annotations

import sys
import time

from example_utils import heading, sparkline

from repro import RPMClassifier, SaxParams
from repro.data import load
from repro.ml.metrics import error_rate


def main() -> None:
    search = "--search" in sys.argv
    dataset = load("CBF")
    print(heading(f"RPM quickstart on {dataset.name}"))
    print(dataset.summary_row())

    if search:
        clf = RPMClassifier(direct_budget=40, n_splits=3, seed=0)
    else:
        clf = RPMClassifier(sax_params=SaxParams(40, 6, 5), seed=0)

    start = time.perf_counter()
    clf.fit(dataset.X_train, dataset.y_train)
    train_time = time.perf_counter() - start

    predictions = clf.predict(dataset.X_test)
    err = error_rate(dataset.y_test, predictions)
    print(f"\ntrain time: {train_time:.1f}s   test error rate: {err:.3f}")
    if search:
        print(f"DIRECT evaluated R = {clf.n_param_evaluations_} parameter triples")
        for label, params in sorted(clf.params_by_class_.items()):
            print(f"  class {label}: window/paa/alphabet = {params.as_tuple()}")

    print(heading("Representative patterns (paper Figure 2)"))
    class_names = {0: "Cylinder", 1: "Bell", 2: "Funnel"}
    for pattern in clf.patterns_:
        name = class_names.get(int(pattern.label), str(pattern.label))
        print(f"\nclass {name:<10s} len={pattern.length:<4d} "
              f"freq={pattern.candidate.frequency} support={pattern.candidate.support}")
        print("  " + sparkline(pattern.values))


if __name__ == "__main__":
    main()
