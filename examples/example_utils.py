"""Thin re-export so the example scripts stay standalone.

The actual renderers live in :mod:`repro.viz` (part of the library,
tested there); examples import through this shim so they can be copied
out of the repository with a one-line change.
"""

from repro.viz import annotate_interval, ascii_scatter, heading, sparkline

__all__ = ["annotate_interval", "ascii_scatter", "heading", "sparkline"]
