"""Paper Figure 1: class-specific patterns on Cricket-like gesture data.

Figure 1 motivates RPM by contrasting what rival methods find on the
Cricket umpire-gesture data: SAX-VSM picks visually similar short
patterns in both classes, Fast Shapelets picks a single branching
shapelet, and RPM selects *different* patterns per class that capture
each gesture's characteristic movement. This example reproduces that
comparison and demonstrates the exploration API
(:mod:`repro.core.explain`). Run with
``python examples/cricket_exploration.py``.
"""

from __future__ import annotations

from example_utils import heading, sparkline

from repro import RPMClassifier, SaxParams
from repro.baselines import FastShapeletsClassifier
from repro.core.explain import class_profile, explain_prediction, pattern_coverage
from repro.data import load
from repro.ml.metrics import error_rate

GESTURES = {0: "out", 1: "four", 2: "six", 3: "no-ball"}


def main() -> None:
    dataset = load("CricketSim")
    print(heading("Cricket gesture exploration (paper Figure 1)"))
    print(dataset.summary_row())

    clf = RPMClassifier(sax_params=SaxParams(36, 6, 5), seed=0)
    clf.fit(dataset.X_train, dataset.y_train)
    err = error_rate(dataset.y_test, clf.predict(dataset.X_test))
    print(f"\nRPM test error: {err:.3f}")

    print(heading("RPM: one distinct pattern set per gesture"))
    shown = set()
    for pattern in clf.patterns_:
        if pattern.label in shown:
            continue
        shown.add(pattern.label)
        print(f"\ngesture {GESTURES[int(pattern.label)]!r} "
              f"(len {pattern.length}, support {pattern.candidate.support}):")
        print("  " + sparkline(pattern.values))
    print(f"\npatterns cover {len(shown)}/{dataset.n_classes} classes "
          "(class-specific, unlike a single shapelet)")

    fs = FastShapeletsClassifier(seed=0).fit(dataset.X_train, dataset.y_train)
    fs_err = error_rate(dataset.y_test, fs.predict(dataset.X_test))
    n_internal = _count_internal(fs.root_)
    print(f"\nFast Shapelets for contrast: error {fs_err:.3f}, "
          f"{n_internal} branching shapelet(s) shared by all classes")

    print(heading("Discrimination margins (explain API)"))
    print(class_profile(clf, dataset.X_train, dataset.y_train))
    margins = [c.margin for c in pattern_coverage(clf.patterns_, dataset.X_train, dataset.y_train)]
    print(f"\nall margins positive: {all(m > 0 for m in margins)}")

    print(heading("Explaining one prediction"))
    series = dataset.X_test[0]
    truth = GESTURES[int(dataset.y_test[0])]
    print(f"test series 0 (true gesture {truth!r}):")
    print("  " + sparkline(series))
    for loc in explain_prediction(clf, series)[:3]:
        print(
            f"  pattern #{loc.pattern_index} (class {GESTURES[int(loc.label)]!r}) "
            f"matches at t={loc.position} with distance {loc.distance:.2f}"
        )


def _count_internal(node) -> int:
    if node is None or node.is_leaf:
        return 0
    return 1 + _count_internal(node.left) + _count_internal(node.right)


if __name__ == "__main__":
    main()
