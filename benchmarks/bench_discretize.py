"""Discretization micro-benchmark: legacy string path vs integer codes.

The vectorized pipeline replaces per-window Python string assembly with
one PAA + breakpoint lookup over the whole window matrix and a row-wise
numerosity reduction on uint8 code arrays. This bench times both paths
on realistic workloads, decomposes the vectorized path per stage
(windows+z-norm, PAA, breakpoint lookup, reduction), and records the
warm-cache time of the :class:`DiscretizationCache` fast path.

Results go to ``benchmarks/results/BENCH_discretize.json`` — machine
readable, uploaded as a CI artifact — plus the usual text table. The
bitwise-equivalence assertion (words, offsets, dropped) is always on.

Run stand-alone (CI fast lane) with ``python benchmarks/bench_discretize.py``
or through pytest-benchmark alongside the other benches.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

import harness  # noqa: E402
from repro.runtime import DiscretizationCache  # noqa: E402
from repro.sax.alphabet import breakpoints  # noqa: E402
from repro.sax.discretize import (  # noqa: E402
    SaxParams,
    discretize,
    discretize_implementation,
    sliding_windows,
)
from repro.sax.paa import paa_rows  # noqa: E402
from repro.sax.znorm import znorm_rows  # noqa: E402

JSON_NAME = "BENCH_discretize.json"

#: (series length, SaxParams, reduction) — the shapes Algorithm 3 sees:
#: a concatenated class series of a few thousand points, windows in the
#: tens, and every reduction mode.
WORKLOADS = [
    (2000, SaxParams(24, 5, 4), "exact"),
    (2000, SaxParams(24, 5, 4), "mindist"),
    (2000, SaxParams(24, 5, 4), "none"),
    (6000, SaxParams(48, 6, 5), "exact"),
    (6000, SaxParams(96, 8, 6), "exact"),
]


def _best_of(fn, repeats: int = 3):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _stage_times(series: np.ndarray, params: SaxParams) -> dict[str, float]:
    """Per-stage wall seconds of the vectorized pipeline (best of 3)."""
    windows_t, windows = _best_of(lambda: sliding_windows(series, params.window_size))
    znorm_t, normalized = _best_of(lambda: znorm_rows(windows))
    paa_t, segments = _best_of(lambda: paa_rows(normalized, params.paa_size))
    cuts = breakpoints(params.alphabet_size)
    lookup_t, _ = _best_of(
        lambda: np.searchsorted(cuts, segments, side="left").astype(np.uint8)
    )
    return {
        "windows_seconds": windows_t,
        "znorm_seconds": znorm_t,
        "paa_seconds": paa_t,
        "lookup_seconds": lookup_t,
    }


def run_bench() -> dict:
    rng = np.random.default_rng(42)
    results = {
        "bench": "discretize",
        "cpus": os.cpu_count(),
        "workloads": [],
    }
    for length, params, reduction in WORKLOADS:
        series = rng.standard_normal(length)

        legacy_t, legacy_record = _best_of(
            lambda: _legacy(series, params, reduction)
        )
        vector_t, vector_record = _best_of(
            lambda: discretize(series, params, numerosity_reduction=reduction)
        )
        cache = DiscretizationCache(max_entries=4)
        discretize(series, params, numerosity_reduction=reduction, cache=cache)  # warm
        cached_t, cached_record = _best_of(
            lambda: discretize(series, params, numerosity_reduction=reduction, cache=cache)
        )

        # Equivalence is the acceptance criterion, not an option.
        for record in (vector_record, cached_record):
            assert record.words == legacy_record.words
            np.testing.assert_array_equal(record.offsets, legacy_record.offsets)
            assert record.dropped == legacy_record.dropped

        results["workloads"].append(
            {
                "series_length": length,
                "window_size": params.window_size,
                "paa_size": params.paa_size,
                "alphabet_size": params.alphabet_size,
                "reduction": reduction,
                "n_words": len(vector_record),
                "legacy_seconds": legacy_t,
                "vectorized_seconds": vector_t,
                "cached_seconds": cached_t,
                "speedup": legacy_t / max(vector_t, 1e-12),
                "cached_speedup": legacy_t / max(cached_t, 1e-12),
                "stages": _stage_times(series, params),
            }
        )
    return results


def _legacy(series, params, reduction):
    with discretize_implementation("legacy"):
        return discretize(series, params, numerosity_reduction=reduction)


def _report(results: dict) -> str:
    rows = []
    for w in results["workloads"]:
        rows.append(
            [
                f"n={w['series_length']} w={w['window_size']} "
                f"p={w['paa_size']} a={w['alphabet_size']}",
                w["reduction"],
                w["n_words"],
                f"{w['legacy_seconds'] * 1e3:.2f}",
                f"{w['vectorized_seconds'] * 1e3:.2f}",
                f"{w['cached_seconds'] * 1e3:.2f}",
                f"{w['speedup']:.1f}x",
                f"{w['cached_speedup']:.1f}x",
            ]
        )
    speedups = [w["speedup"] for w in results["workloads"]]
    return "\n".join(
        [
            "Discretization: legacy string path vs vectorized integer codes",
            "(ms, best of 3; 'cached' = warm DiscretizationCache)",
            harness.format_table(
                ["workload", "reduction", "words", "legacy", "vector",
                 "cached", "speedup", "cached"],
                rows,
            ),
            f"\nmean speedup {np.mean(speedups):.1f}x, "
            f"min {np.min(speedups):.1f}x "
            "(equivalence asserted bitwise on every workload)",
        ]
    )


def write_json(results: dict) -> Path:
    harness.RESULTS_DIR.mkdir(exist_ok=True)
    path = harness.RESULTS_DIR / JSON_NAME
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def test_discretize_speedup(benchmark):
    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    write_json(results)
    harness.write_report("discretize", _report(results))
    # Tripwire, not a gate: the vectorized path must at least match the
    # string path on every workload (the 2x end-to-end mining gate
    # lives in bench_direct_evals.py).
    for w in results["workloads"]:
        assert w["speedup"] >= 1.0, f"vectorized slower than legacy: {w}"


def main() -> int:
    results = run_bench()
    path = write_json(results)
    harness.write_report("discretize", _report(results))
    print(f"json written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
