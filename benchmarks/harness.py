"""Shared machinery for the benchmark suite.

Every table and figure of the paper's evaluation has one bench module;
they all pull method/dataset runs from here so that e.g. Table 1
(accuracy) and Table 2 (runtime) reuse a single fit per method/dataset
pair, exactly like the paper reports both numbers from one run.

Scale control: set ``RPM_BENCH_SUITE`` to ``tiny`` (3 datasets, small
budgets — smoke test), ``small`` (8 datasets — the default) or ``full``
(all 16 UCR-like datasets).

Observability: set ``RPM_BENCH_METRICS`` to a path and every RPM run is
traced (``repro.obs``); the spans plus the process-wide metric counters
are dumped there as JSON lines whenever a report is written. CI uploads
the resulting file as a build artifact.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import RPMClassifier
from repro.baselines import (
    FastShapeletsClassifier,
    NearestNeighborDTW,
    NearestNeighborED,
    SaxVsmClassifier,
    TunedLearningShapelets,
)
from repro.data import load
from repro.ml.metrics import error_rate
from repro.obs import Tracer, registry, write_jsonl

RESULTS_DIR = Path(__file__).parent / "results"

TINY_SUITE = ("CBF", "GunPointSim", "ItalyPowerSim")
SMALL_SUITE = (
    "CBF",
    "SyntheticControl",
    "TwoPatterns",
    "GunPointSim",
    "CoffeeSim",
    "ECGFiveDaysSim",
    "ItalyPowerSim",
    "MoteStrainSim",
)
FULL_SUITE = (
    "CBF",
    "SyntheticControl",
    "TwoPatterns",
    "GunPointSim",
    "CricketSim",
    "TraceSim",
    "CoffeeSim",
    "OliveOilSim",
    "ECGFiveDaysSim",
    "ECG200Sim",
    "FaceFourSim",
    "SwedishLeafSim",
    "OSULeafSim",
    "LightningSim",
    "WaferSim",
    "MoteStrainSim",
    "ItalyPowerSim",
)

#: Method column order matches the paper's Table 1.
METHOD_ORDER = ("NN-ED", "NN-DTWB", "SAX-VSM", "FS", "LS", "RPM")


def bench_scale() -> str:
    scale = os.environ.get("RPM_BENCH_SUITE", "small").lower()
    if scale not in ("tiny", "small", "full"):
        raise ValueError(f"RPM_BENCH_SUITE must be tiny/small/full, got {scale!r}")
    return scale


def bench_jobs() -> int:
    """Parallel workers for RPM runs (``RPM_BENCH_JOBS``, default serial)."""
    return int(os.environ.get("RPM_BENCH_JOBS", "1"))


def bench_backend() -> str:
    """Executor backend for RPM runs (``RPM_BENCH_BACKEND``)."""
    return os.environ.get("RPM_BENCH_BACKEND", "thread")


def bench_metrics_path() -> Path | None:
    """Where to dump spans + metrics (``RPM_BENCH_METRICS``), if anywhere."""
    path = os.environ.get("RPM_BENCH_METRICS")
    return Path(path) if path else None


#: One tracer shared by every RPM bench run, so the dumped span forest
#: covers the whole suite. ``None`` when metrics are off — the
#: classifiers then run with the zero-cost no-op tracer.
BENCH_TRACER = Tracer() if bench_metrics_path() else None


def flush_metrics() -> Path | None:
    """Dump the bench tracer + registry to ``RPM_BENCH_METRICS``.

    Called from :func:`write_report` so every table that lands in
    ``benchmarks/results/`` refreshes the metrics artifact alongside it.
    """
    path = bench_metrics_path()
    if path is None:
        return None
    return write_jsonl(
        path,
        tracer=BENCH_TRACER,
        metrics=registry(),
        meta={"suite": bench_scale(), "jobs": bench_jobs(), "backend": bench_backend()},
    )


def suite_names() -> tuple[str, ...]:
    return {"tiny": TINY_SUITE, "small": SMALL_SUITE, "full": FULL_SUITE}[bench_scale()]


def _budgets() -> dict:
    if bench_scale() == "tiny":
        return dict(
            saxvsm_budget=10,
            ls_epochs=150,
            ls_grid={"n_shapelets": (4,), "length_fraction": (0.15,), "l2": (0.01,)},
            rpm_budget=12,
            rpm_splits=2,
            dtw_windows=(0.0, 0.03, 0.1),
        )
    return dict(
        saxvsm_budget=30,
        ls_epochs=600,
        ls_grid=None,  # published default grid
        rpm_budget=40,
        rpm_splits=3,
        dtw_windows=(0.0, 0.01, 0.02, 0.03, 0.05, 0.08, 0.1, 0.15, 0.2),
    )


def make_method(name: str):
    """Fresh classifier instance for a method column."""
    b = _budgets()
    if name == "NN-ED":
        return NearestNeighborED()
    if name == "NN-DTWB":
        return NearestNeighborDTW(window_fractions=b["dtw_windows"])
    if name == "SAX-VSM":
        return SaxVsmClassifier(direct_budget=b["saxvsm_budget"], cv_folds=3, seed=0)
    if name == "FS":
        return FastShapeletsClassifier(seed=0)
    if name == "LS":
        return TunedLearningShapelets(grid=b["ls_grid"], epochs=b["ls_epochs"], seed=0)
    if name == "RPM":
        return RPMClassifier(
            direct_budget=b["rpm_budget"],
            n_splits=b["rpm_splits"],
            seed=0,
            n_jobs=bench_jobs(),
            parallel_backend=bench_backend(),
            trace=BENCH_TRACER,
        )
    raise KeyError(name)


@dataclass
class RunResult:
    method: str
    dataset: str
    error: float
    train_time: float
    test_time: float
    model: object = field(repr=False, default=None)

    @property
    def total_time(self) -> float:
        return self.train_time + self.test_time


_CACHE: dict[tuple[str, str], RunResult] = {}


def run(method: str, dataset_name: str) -> RunResult:
    """Fit + score one method on one dataset (cached per session)."""
    key = (method, dataset_name)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    dataset = load(dataset_name)
    model = make_method(method)
    t0 = time.perf_counter()
    model.fit(dataset.X_train, dataset.y_train)
    train_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    predictions = model.predict(dataset.X_test)
    test_time = time.perf_counter() - t0
    result = RunResult(
        method=method,
        dataset=dataset_name,
        error=error_rate(dataset.y_test, predictions),
        train_time=train_time,
        test_time=test_time,
        model=model,
    )
    _CACHE[key] = result
    return result


def run_suite(methods=METHOD_ORDER) -> dict[tuple[str, str], RunResult]:
    out = {}
    for dataset_name in suite_names():
        for method in methods:
            out[(method, dataset_name)] = run(method, dataset_name)
    return out


def count_wins(errors_by_method: dict[str, list[float]]) -> dict[str, int]:
    """Number of datasets each method wins (ties count for all)."""
    methods = list(errors_by_method)
    n = len(next(iter(errors_by_method.values())))
    wins = {m: 0 for m in methods}
    for i in range(n):
        best = min(errors_by_method[m][i] for m in methods)
        for m in methods:
            if errors_by_method[m][i] <= best + 1e-12:
                wins[m] += 1
    return wins


def write_report(name: str, text: str) -> Path:
    """Persist a table to benchmarks/results/ and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(text)
    flush_metrics()
    return path


def format_table(header: list[str], rows: list[list], widths: list[int] | None = None) -> str:
    cells = [header] + [[_fmt(v) for v in row] for row in rows]
    if widths is None:
        widths = [max(len(row[i]) for row in cells) for i in range(len(header))]
    lines = []
    for r, row in enumerate(cells):
        lines.append(
            "  ".join(
                (row[i].ljust(widths[i]) if i == 0 else row[i].rjust(widths[i]))
                for i in range(len(row))
            )
        )
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if np.isnan(value):
            return "-"
        return f"{value:.3f}"
    return str(value)
