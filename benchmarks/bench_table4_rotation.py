"""Paper Table 4 / Figure 10: error rates on rotated test data.

Training data is untouched; every test series is rotated at a random
cut point. Methods: NN-ED, NN-DTWB, SAX-VSM, LS and RPM (with its
rotation-invariant transform, §6.1). Expected shape (paper §6.1): the
two global-distance methods degrade drastically, SAX-VSM and RPM stay
close to their unrotated errors, and RPM takes the most wins.
"""

from __future__ import annotations

import numpy as np

import harness
from repro import RPMClassifier
from repro.data import load, rotate_test_split
from repro.ml.metrics import error_rate

ROTATION_DATASETS = {
    "tiny": ("GunPointSim", "CoffeeSim"),
    "small": ("CoffeeSim", "FaceFourSim", "GunPointSim", "SwedishLeafSim"),
    "full": ("CoffeeSim", "FaceFourSim", "GunPointSim", "SwedishLeafSim", "OSULeafSim"),
}

METHODS = ("NN-ED", "NN-DTWB", "SAX-VSM", "LS", "RPM")


def _rotation_experiment():
    scale = harness.bench_scale()
    names = ROTATION_DATASETS[scale]
    rows = []
    errors = {m: [] for m in METHODS}
    for ds_name in names:
        dataset = load(ds_name)
        rotated = rotate_test_split(dataset, seed=1)
        row = [ds_name]
        for method in METHODS:
            if method == "RPM":
                b = 12 if scale == "tiny" else 40
                model = RPMClassifier(
                    direct_budget=b,
                    n_splits=2 if scale == "tiny" else 3,
                    rotation_invariant=True,
                    seed=0,
                )
            else:
                model = harness.make_method(method)
            model.fit(dataset.X_train, dataset.y_train)
            err = error_rate(rotated.y_test, model.predict(rotated.X_test))
            errors[method].append(err)
            row.append(err)
        rows.append(row)
    wins = harness.count_wins(errors)
    rows.append(["#wins (incl. ties)"] + [wins[m] for m in METHODS])
    return rows, errors


def test_table4_rotation(benchmark):
    rows, errors = benchmark.pedantic(_rotation_experiment, rounds=1, iterations=1)
    report = "\n".join(
        [
            "Table 4 — error rates on rotated test data",
            harness.format_table(["dataset", *METHODS], rows),
            "",
            "Paper shape: NN-ED / NN-DTWB degrade drastically under rotation;",
            "SAX-VSM and RPM remain robust, RPM with the most wins.",
        ]
    )
    harness.write_report("table4_rotation", report)

    mean = {m: float(np.mean(errors[m])) for m in METHODS}
    # RPM (rotation-invariant) must beat both global-distance baselines.
    assert mean["RPM"] < mean["NN-ED"], mean
    assert mean["RPM"] < mean["NN-DTWB"], mean
