"""Paper Table 1 + Figure 7: classification error rates on the suite.

Reproduces the error-rate table for the six methods (NN-ED, NN-DTWB,
SAX-VSM, FS, LS, RPM), the #wins row, the pairwise Wilcoxon
signed-rank p-values, and the Figure 7 scatter series (pairwise error
coordinates). The expected *shape* (paper §5.2): RPM and LS are the
two most accurate and statistically indistinguishable (p > 0.05); RPM
is significantly better than FS.
"""

from __future__ import annotations

import numpy as np

import harness
from repro.ml.stats import wilcoxon_signed_rank


def _accuracy_report(results, names) -> str:
    methods = harness.METHOD_ORDER
    rows = []
    errors = {m: [] for m in methods}
    for ds in names:
        row = [ds]
        for m in methods:
            err = results[(m, ds)].error
            errors[m].append(err)
            row.append(err)
        rows.append(row)

    wins = harness.count_wins(errors)
    rows.append(["#wins (incl. ties)"] + [wins[m] for m in methods])

    lines = ["Table 1 — classification error rates"]
    lines.append(harness.format_table(["dataset", *methods], rows))

    lines.append("\nWilcoxon signed-rank, RPM vs rivals (Figure 7):")
    rpm = np.array(errors["RPM"])
    for m in methods:
        if m == "RPM":
            continue
        other = np.array(errors[m])
        try:
            p = wilcoxon_signed_rank(other, rpm).p_value
            verdict = "significant" if p < 0.05 else "not significant"
            lines.append(f"  {m:<8s} p = {p:.4f}  ({verdict} at 95%)")
        except ValueError:
            lines.append(f"  {m:<8s} p = n/a (all differences zero)")

    lines.append("\nFigure 7 scatter series (x = rival error, y = RPM error):")
    for m in methods:
        if m == "RPM":
            continue
        pairs = ", ".join(
            f"({e:.3f},{r:.3f})" for e, r in zip(errors[m], errors["RPM"])
        )
        lines.append(f"  {m}: {pairs}")
    return "\n".join(lines)


def test_table1_accuracy(benchmark, suite_results, suite_names):
    report = benchmark.pedantic(
        lambda: _accuracy_report(suite_results, suite_names), rounds=1, iterations=1
    )
    harness.write_report("table1_accuracy", report)

    # Shape assertions from the paper's §5.2.
    methods = harness.METHOD_ORDER
    errors = {
        m: [suite_results[(m, ds)].error for ds in suite_names] for m in methods
    }
    mean_err = {m: float(np.mean(errors[m])) for m in methods}
    # RPM should be among the most accurate methods overall.
    ranked = sorted(mean_err, key=mean_err.get)
    assert "RPM" in ranked[:3], f"RPM mean-error rank too low: {mean_err}"
    # RPM should not lose to Fast Shapelets on average (paper: RPM
    # significantly more accurate than FS).
    assert mean_err["RPM"] <= mean_err["FS"] + 0.02, mean_err
