"""Paper Table 2 + Figure 8: running time of LS vs FS vs RPM.

Wall-clock train+classify time for the three pattern-based methods,
the #wins row, LS/RPM speedups, and the Figure 8 log-runtime scatter
series. Expected shape (paper §5.3): RPM is comparable to Fast
Shapelets and much faster than Learning Shapelets (the paper reports
an average 78× speedup over LS with peaks near 600×; our LS is a
vectorized NumPy implementation rather than the authors' Java release,
so the ratio is smaller but the ordering LS ≫ RPM ≈ FS holds).
"""

from __future__ import annotations

import os
import time

import numpy as np

import harness

METHODS = ("LS", "FS", "RPM")


def _runtime_report(results, names) -> str:
    rows = []
    times = {m: [] for m in METHODS}
    for ds in names:
        row = [ds]
        for m in METHODS:
            t = results[(m, ds)].total_time
            times[m].append(t)
            row.append(f"{t:.1f}")
        rows.append(row)
    # Fastest method per dataset.
    wins = harness.count_wins({m: times[m] for m in METHODS})
    rows.append(["#wins (fastest)"] + [wins[m] for m in METHODS])

    lines = ["Table 2 — running time in seconds (train + classify)"]
    lines.append(harness.format_table(["dataset", *METHODS], rows))

    ls = np.array(times["LS"])
    rpm = np.array(times["RPM"])
    speedups = ls / np.maximum(rpm, 1e-9)
    lines.append(
        f"\nLS/RPM speedup: mean {speedups.mean():.1f}x, "
        f"max {speedups.max():.1f}x (paper: avg 78x, max 587x on their testbed)"
    )

    lines.append("\nFigure 8 series, log10 seconds (x = rival, y = RPM):")
    for m in ("LS", "FS"):
        pairs = ", ".join(
            f"({np.log10(max(a, 1e-3)):.2f},{np.log10(max(b, 1e-3)):.2f})"
            for a, b in zip(times[m], rpm)
        )
        lines.append(f"  {m}: {pairs}")
    return "\n".join(lines)


def test_table2_runtime(benchmark, suite_results, suite_names):
    report = benchmark.pedantic(
        lambda: _runtime_report(suite_results, suite_names), rounds=1, iterations=1
    )
    harness.write_report("table2_runtime", report)

    times = {
        m: np.array([suite_results[(m, ds)].total_time for ds in suite_names])
        for m in METHODS
    }
    # Paper's headline runtime claim: RPM is faster than LS overall.
    # The tiny smoke-test scale deliberately strips LS down to a single
    # untuned configuration, so the claim only applies at small/full.
    if harness.bench_scale() != "tiny":
        assert times["RPM"].sum() < times["LS"].sum(), {
            m: t.sum() for m, t in times.items()
        }


#: Top-level pipeline stages reported in the speedup table. ``mine``
#: and ``transform`` are the parallel stages; ``select`` and
#: ``classifier`` run serially and bound the achievable speedup.
STAGES = ("mine", "select", "classifier", "transform")

#: Breakdown columns nested *inside* a top-level stage: ``cfs`` is the
#: feature-selection child of ``select`` (the blocked-SU kernel's
#: target), so it is reported alongside its parent rather than summed
#: as a disjoint stage.
SUBSTAGES = ("cfs",)


def _stage_seconds(tracer) -> dict[str, float]:
    """Per-stage wall time extracted from a traced run's span forest.

    Sums same-named spans at any depth under the roots, so the ``fit``
    children (``mine``/``select``/``classifier``) and the standalone
    ``transform`` roots of later calls land in one dict. ``SUBSTAGES``
    are accumulated by bare name — they nest under a counted stage, so
    the disjointness filter below would otherwise drop them.
    """
    totals = {stage: 0.0 for stage in STAGES}
    nested = {stage: 0.0 for stage in SUBSTAGES}
    for root in tracer.roots:
        for span, _depth in root.walk():
            if span.name in nested:
                nested[span.name] += span.duration
            elif span.name in totals and (
                span.parent is None or span.parent.name not in totals
            ):
                totals[span.name] += span.duration
    totals.update(nested)
    return totals


def _timed_rpm_run(dataset, n_jobs: int, backend: str):
    """Fit + transform RPM once; returns (seconds, predictions, stages)."""
    from repro import RPMClassifier, SaxParams
    from repro.obs import Tracer

    tracer = Tracer()
    clf = RPMClassifier(
        sax_params=SaxParams(window_size=18, paa_size=5, alphabet_size=4),
        seed=0,
        n_jobs=n_jobs,
        parallel_backend=backend,
        trace=tracer,
    )
    t0 = time.perf_counter()
    clf.fit(dataset.X_train, dataset.y_train)
    clf.transform(dataset.X_test)
    elapsed = time.perf_counter() - t0
    return elapsed, clf.predict(dataset.X_test), _stage_seconds(tracer)


def test_rpm_parallel_speedup(benchmark):
    """Serial vs parallel RPM training on the multi-class benchmark.

    The parallel runtime fans per-class mining and per-pattern
    transform columns across workers. Predictions must be identical at
    every worker count (the equivalence guarantee); the ≥2× wall-clock
    target at ``n_jobs=4`` is asserted only on hardware that can
    deliver it (≥4 CPUs) — on smaller machines the table still records
    the measured ratio.
    """
    from repro.data import load

    dataset = load("SyntheticControl")  # 6 classes — widest per-class fan-out
    backend = harness.bench_backend()
    if backend == "serial":
        backend = "thread"

    serial_time, serial_preds, serial_stages = benchmark.pedantic(
        lambda: _timed_rpm_run(dataset, 1, "serial"), rounds=1, iterations=1
    )

    def stage_cells(stages):
        return [f"{stages[s]:.2f}" for s in (*STAGES, *SUBSTAGES)]

    rows = [["serial", f"{serial_time:.2f}", "1.00", *stage_cells(serial_stages)]]
    speedups = {}
    for n_jobs in (2, 4):
        elapsed, preds, stages = _timed_rpm_run(dataset, n_jobs, backend)
        assert np.array_equal(serial_preds, preds), (
            f"parallel predictions diverged at n_jobs={n_jobs}"
        )
        speedups[n_jobs] = serial_time / max(elapsed, 1e-9)
        rows.append(
            [f"n_jobs={n_jobs}", f"{elapsed:.2f}", f"{speedups[n_jobs]:.2f}",
             *stage_cells(stages)]
        )

    cpus = os.cpu_count() or 1
    report = "\n".join(
        [
            f"RPM train+transform, SyntheticControl, backend={backend}, {cpus} CPUs",
            "(per-stage columns are wall seconds from the repro.obs span tree;",
            " 'cfs' is the feature-selection slice of 'select')",
            harness.format_table(
                ["config", "seconds", "speedup", *STAGES, *SUBSTAGES], rows
            ),
        ]
    )
    harness.write_report("table2_parallel_speedup", report)

    if cpus >= 4:
        assert speedups[4] >= 2.0, (
            f"expected >= 2x speedup at n_jobs=4 on {cpus} CPUs, got {speedups[4]:.2f}x"
        )
