"""Paper Table 2 + Figure 8: running time of LS vs FS vs RPM.

Wall-clock train+classify time for the three pattern-based methods,
the #wins row, LS/RPM speedups, and the Figure 8 log-runtime scatter
series. Expected shape (paper §5.3): RPM is comparable to Fast
Shapelets and much faster than Learning Shapelets (the paper reports
an average 78× speedup over LS with peaks near 600×; our LS is a
vectorized NumPy implementation rather than the authors' Java release,
so the ratio is smaller but the ordering LS ≫ RPM ≈ FS holds).
"""

from __future__ import annotations

import numpy as np

import harness

METHODS = ("LS", "FS", "RPM")


def _runtime_report(results, names) -> str:
    rows = []
    times = {m: [] for m in METHODS}
    for ds in names:
        row = [ds]
        for m in METHODS:
            t = results[(m, ds)].total_time
            times[m].append(t)
            row.append(f"{t:.1f}")
        rows.append(row)
    # Fastest method per dataset.
    wins = harness.count_wins({m: times[m] for m in METHODS})
    rows.append(["#wins (fastest)"] + [wins[m] for m in METHODS])

    lines = ["Table 2 — running time in seconds (train + classify)"]
    lines.append(harness.format_table(["dataset", *METHODS], rows))

    ls = np.array(times["LS"])
    rpm = np.array(times["RPM"])
    speedups = ls / np.maximum(rpm, 1e-9)
    lines.append(
        f"\nLS/RPM speedup: mean {speedups.mean():.1f}x, "
        f"max {speedups.max():.1f}x (paper: avg 78x, max 587x on their testbed)"
    )

    lines.append("\nFigure 8 series, log10 seconds (x = rival, y = RPM):")
    for m in ("LS", "FS"):
        pairs = ", ".join(
            f"({np.log10(max(a, 1e-3)):.2f},{np.log10(max(b, 1e-3)):.2f})"
            for a, b in zip(times[m], rpm)
        )
        lines.append(f"  {m}: {pairs}")
    return "\n".join(lines)


def test_table2_runtime(benchmark, suite_results, suite_names):
    report = benchmark.pedantic(
        lambda: _runtime_report(suite_results, suite_names), rounds=1, iterations=1
    )
    harness.write_report("table2_runtime", report)

    times = {
        m: np.array([suite_results[(m, ds)].total_time for ds in suite_names])
        for m in METHODS
    }
    # Paper's headline runtime claim: RPM is faster than LS overall.
    # The tiny smoke-test scale deliberately strips LS down to a single
    # untuned configuration, so the claim only applies at small/full.
    if harness.bench_scale() != "tiny":
        assert times["RPM"].sum() < times["LS"].sum(), {
            m: t.sum() for m, t in times.items()
        }
