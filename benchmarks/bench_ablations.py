"""Ablation benches for the design choices DESIGN.md calls out.

Not in the paper's tables, but each sweep isolates one design decision
the paper makes in passing:

* centroid vs medoid cluster prototypes (§3.2.2 "an alternative is to
  use the medoid instead of centroid");
* numerosity reduction on/off (§3.2.1 claims it enables variable-length
  patterns and shrinks the grammar input);
* SVM vs 1-NN on the transformed feature space (§3.1 "our algorithm
  can work with any classifier");
* instance-support vs occurrence-support for the γ threshold (the
  definition in §2.1 vs the literal Algorithm 1 listing).
"""

from __future__ import annotations

import numpy as np

import harness
from repro import RPMClassifier, SaxParams
from repro.baselines import NearestNeighborED
from repro.data import load
from repro.grammar.inference import discretize_class
from repro.ml.metrics import error_rate
from repro.ml.svm import SVC

DATASETS = {
    "tiny": ("CBF",),
    "small": ("CBF", "GunPointSim", "ECGFiveDaysSim"),
    "full": ("CBF", "GunPointSim", "ECGFiveDaysSim", "CoffeeSim", "TwoPatterns"),
}

PARAMS = {
    "CBF": SaxParams(40, 6, 5),
    "GunPointSim": SaxParams(40, 6, 5),
    "ECGFiveDaysSim": SaxParams(40, 6, 5),
    "CoffeeSim": SaxParams(80, 8, 6),
    "TwoPatterns": SaxParams(32, 6, 5),
}


def _names():
    return DATASETS[harness.bench_scale()]


def _fit_variant(name, **kwargs) -> float:
    dataset = load(name)
    clf = RPMClassifier(sax_params=PARAMS[name], seed=0, **kwargs)
    clf.fit(dataset.X_train, dataset.y_train)
    return error_rate(dataset.y_test, clf.predict(dataset.X_test))


def test_ablation_prototype(benchmark):
    def experiment():
        return [
            [name, _fit_variant(name, prototype="centroid"), _fit_variant(name, prototype="medoid")]
            for name in _names()
        ]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report = "\n".join(
        [
            "Ablation — cluster prototype (paper §3.2.2)",
            harness.format_table(["dataset", "centroid", "medoid"], rows),
            "\nExpected: the two prototypes perform comparably.",
        ]
    )
    harness.write_report("ablation_prototype", report)
    for _, centroid_err, medoid_err in rows:
        assert abs(centroid_err - medoid_err) < 0.2


def test_ablation_numerosity_reduction(benchmark):
    def experiment():
        rows = []
        for name in _names():
            dataset = load(name)
            label = dataset.classes()[0]
            instances = [row for row in dataset.class_instances(label)]
            with_nr, _, _ = discretize_class(instances, PARAMS[name])
            without_nr, _, _ = discretize_class(
                instances, PARAMS[name], numerosity_reduction=False
            )
            err_with = _fit_variant(name, numerosity_reduction=True)
            err_without = _fit_variant(name, numerosity_reduction=False)
            rows.append(
                [name, len(with_nr), len(without_nr), err_with, err_without]
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report = "\n".join(
        [
            "Ablation — numerosity reduction (paper §3.2.1)",
            harness.format_table(
                ["dataset", "words (NR)", "words (no NR)", "err (NR)", "err (no NR)"],
                rows,
            ),
            "\nExpected: NR shrinks the grammar input substantially at no",
            "accuracy cost (it is what enables variable-length patterns).",
        ]
    )
    harness.write_report("ablation_numerosity", report)
    for _, words_nr, words_full, err_nr, err_full in rows:
        assert words_nr <= words_full
        assert err_nr <= err_full + 0.15


def test_ablation_classifier(benchmark):
    def experiment():
        return [
            [
                name,
                _fit_variant(name),  # default RBF SVM
                _fit_variant(name, classifier_factory=lambda: SVC(kernel="linear", C=1.0)),
                _fit_variant(name, classifier_factory=NearestNeighborED),
            ]
            for name in _names()
        ]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report = "\n".join(
        [
            "Ablation — downstream classifier on the pattern features (§3.1)",
            harness.format_table(["dataset", "SVM-rbf", "SVM-linear", "1NN-ED"], rows),
            "\nExpected: the feature space carries the signal; all three",
            "classifiers perform in the same band.",
        ]
    )
    harness.write_report("ablation_classifier", report)
    for _, rbf, linear, nn in rows:
        assert max(rbf, linear, nn) - min(rbf, linear, nn) < 0.35


def test_ablation_support_mode(benchmark):
    def experiment():
        return [
            [
                name,
                _fit_variant(name, support_mode="instances"),
                _fit_variant(name, support_mode="occurrences"),
            ]
            for name in _names()
        ]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report = "\n".join(
        [
            "Ablation — γ support counted over instances vs occurrences",
            harness.format_table(["dataset", "instances", "occurrences"], rows),
            "\nExpected: both readings of the paper give similar accuracy;",
            "instance support (definition §2.1) is the stricter filter.",
        ]
    )
    harness.write_report("ablation_support_mode", report)
    errs = np.array([[r[1], r[2]] for r in rows], dtype=float)
    assert np.abs(errs[:, 0] - errs[:, 1]).mean() < 0.15
