"""Drift monitoring overhead: the monitor must stay off the latency path.

Two questions, answered on a small trained model:

* **Overhead** — closed-loop clients against the single-process
  service with a :class:`DriftMonitor` attached (ingesting every
  request) vs monitor off: p99 with the monitor on may not exceed the
  off p99 by more than :data:`DRIFT_P99_FACTOR` (plus a small absolute
  slack for timer noise on tiny latencies). The monitor folds feature
  rows into sketches on its own drain thread; `observe` on the hot
  path is a lock-append of references.
* **Equivalence** — predictions with the monitor attached are asserted
  bitwise identical to the in-process ``RPMClassifier.predict`` before
  the load runs, and the in-distribution replay must *not* alert.

Results go to ``benchmarks/results/BENCH_drift.json`` (machine
readable, kept as a CI artifact) and ``results/drift.txt`` (the human
summary). Run stand-alone with ``python benchmarks/bench_drift.py`` or
through pytest-benchmark.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

import harness  # noqa: E402
from repro import RPMClassifier, SaxParams  # noqa: E402
from repro.data import load  # noqa: E402
from repro.obs import registry, scoped_registry  # noqa: E402
from repro.obs.sketch import ReferenceDistribution  # noqa: E402
from repro.serve import (  # noqa: E402
    CompiledModel,
    PredictionService,
    ServeConfig,
)

JSON_NAME = "BENCH_drift.json"
CLIENTS = 4
DURATION_S = 1.5
#: Drift ingestion must stay off the latency path: with the monitor
#: folding 100% of traffic, closed-loop p99 may not exceed the
#: monitor-off p99 by more than this factor (plus absolute slack).
DRIFT_P99_FACTOR = 1.5
DRIFT_P99_SLACK_MS = 2.0


def _requests(dataset, n: int = 64) -> np.ndarray:
    reps = int(np.ceil(n / dataset.X_test.shape[0]))
    return np.tile(dataset.X_test, (reps, 1))[:n]


def _closed_loop(service, X: np.ndarray) -> tuple[float, int]:
    """CLIENTS closed-loop threads: submit, block, repeat."""
    stop_at = time.perf_counter() + DURATION_S
    counts = [0] * CLIENTS
    failures: list = []

    def client(k: int) -> None:
        i = k
        while time.perf_counter() < stop_at:
            result = service.predict_one(X[i % len(X)], wait_s=60.0)
            if not result.ok:
                failures.append(result)
            counts[k] += 1
            i += CLIENTS

    threads = [
        threading.Thread(target=client, args=(k,), name=f"load-client-{k}")
        for k in range(CLIENTS)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    assert not failures, f"{len(failures)} non-OK results under closed-loop load"
    return sum(counts) / elapsed, sum(counts)


def _latency_quantiles(delta: dict) -> dict:
    lat = delta["histograms"].get("serve.latency_seconds", {})
    return {q: lat.get(q, 0.0) * 1000.0 for q in ("p50", "p95", "p99")}


def run_bench() -> str:
    dataset = load("ItalyPowerSim")
    clf = RPMClassifier(sax_params=SaxParams(12, 4, 4), seed=0)
    clf.fit(dataset.X_train, dataset.y_train)
    X = _requests(dataset)
    expected = clf.predict(X)

    # Reference from the replay pool itself — the exact distribution
    # the closed-loop clients will offer, so the run must end
    # un-alerted. (The training set would be the production choice, but
    # a 64-row tiled pool is a deliberately narrow sample of it and the
    # recent-window PSI would correctly flag that; this benchmark
    # measures overhead, not detection.)
    ref_model = CompiledModel.from_classifier(clf)
    reference = ReferenceDistribution.from_features(
        ref_model.transform(X), X, source="bench-replay-pool"
    )
    ref_model.close()

    quantiles: dict = {}
    throughput: dict = {}
    drift_state = None
    for mode in ("monitor-off", "monitor-on"):
        model = CompiledModel.from_classifier(clf)
        with scoped_registry():
            with PredictionService(
                model, config=ServeConfig(max_batch=32, max_delay_ms=2.0)
            ) as service:
                if mode == "monitor-on":
                    service.attach_drift(reference)
                # Equivalence first, always on: monitoring must be an
                # observer — bit-for-bit the in-process classifier.
                np.testing.assert_array_equal(service.predict(X), expected)
                baseline = registry().snapshot()
                rate, completed = _closed_loop(service, X)
                drift = service.detach_drift()
                if drift is not None:
                    drift_state = drift
                    assert not drift["alert"], (
                        "in-distribution replay raised a drift alert: "
                        f"score {drift['score']:.4f} > {drift['threshold']}"
                    )
            quantiles[mode] = _latency_quantiles(registry().delta(baseline))
        throughput[mode] = {"rps": round(rate, 1), "requests": completed}

    p99_off = quantiles["monitor-off"]["p99"]
    p99_on = quantiles["monitor-on"]["p99"]
    budget = p99_off * DRIFT_P99_FACTOR + DRIFT_P99_SLACK_MS
    assert p99_on <= budget, (
        f"drift monitoring leaked onto the latency path: p99 {p99_on:.2f}ms "
        f"with the monitor on vs {p99_off:.2f}ms off (budget {budget:.2f}ms)"
    )

    results_json = {
        "clients": CLIENTS,
        "duration_s": DURATION_S,
        "p99_off_ms": round(p99_off, 3),
        "p99_on_ms": round(p99_on, 3),
        "budget_ms": round(budget, 3),
        "factor": DRIFT_P99_FACTOR,
        "slack_ms": DRIFT_P99_SLACK_MS,
        "throughput": throughput,
        "drift": {
            "score": drift_state["score"],
            "threshold": drift_state["threshold"],
            "alert": drift_state["alert"],
        },
        "equivalence": "bitwise (monitor on == RPMClassifier.predict)",
    }
    path = harness.RESULTS_DIR / JSON_NAME
    harness.RESULTS_DIR.mkdir(exist_ok=True)
    path.write_text(json.dumps(results_json, indent=2) + "\n")

    rows = [
        [mode, f"{throughput[mode]['rps']:.0f}",
         f"{throughput[mode]['requests']}"]
        + [f"{quantiles[mode][q]:.2f}" for q in ("p50", "p95", "p99")]
        for mode in ("monitor-off", "monitor-on")
    ]
    report = "\n".join(
        [
            f"Drift monitoring overhead — {CLIENTS} closed-loop clients × "
            f"{DURATION_S}s",
            harness.format_table(
                ["mode", "req/s", "done", "p50 ms", "p95 ms", "p99 ms"], rows
            ),
            f"\np99 budget: {p99_on:.2f}ms on vs {p99_off:.2f}ms off "
            f"(cap {budget:.2f}ms = {DRIFT_P99_FACTOR}x + "
            f"{DRIFT_P99_SLACK_MS}ms)",
            f"in-distribution replay: score {drift_state['score']:.4f} "
            f"(threshold {drift_state['threshold']}, no alert)",
            "equivalence: monitor-on predictions bitwise-identical to "
            "RPMClassifier.predict",
            f"json written to {path}",
        ]
    )
    return report


def test_drift_overhead(benchmark):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    harness.write_report("drift", report)


def main() -> int:
    harness.write_report("drift", run_bench())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
