"""Sharded serving tier under closed-loop load: RPS, p99, shedding.

Three questions, answered on a small trained model:

* **Throughput** — closed-loop clients (submit, wait, repeat) against
  the single-process service and the sharded tier at 1 and 2 shards:
  sustained requests/second and latency quantiles per configuration.
* **Equivalence** — before any load runs, every tier's predictions are
  asserted bitwise identical to the in-process
  ``RPMClassifier.predict`` (always on, any host).
* **Saturation** — a burst far beyond a deliberately tiny shard queue
  must come back with typed ``OVERLOAD`` results for the excess while
  every accepted request still completes OK and the queue-depth gauge
  returns to zero: load shedding, not unbounded queueing.

The RPS gate (sharded-2 beating sharded-1) only arms on hosts with at
least :data:`RPS_GATE_MIN_CPUS` CPUs — on tiny shared runners two
worker processes time-slice one core and the ratio is noise.

Results go to ``benchmarks/results/BENCH_serve_load.json`` (machine
readable, kept as a CI artifact) and ``results/serve_load.txt`` (the
human table). Run stand-alone with
``python benchmarks/bench_serve_load.py`` or through pytest-benchmark.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

import harness  # noqa: E402
from repro import RPMClassifier, SaxParams  # noqa: E402
from repro.data import load  # noqa: E402
from repro.obs import registry, scoped_registry  # noqa: E402
from repro.serve import (  # noqa: E402
    CompiledModel,
    PredictionService,
    ResultStatus,
    ServeConfig,
    ShardedPredictionService,
)

JSON_NAME = "BENCH_serve_load.json"
RPS_GATE_MIN_CPUS = 4
RPS_GATE_FACTOR = 1.2
CLIENTS = 4
DURATION_S = 1.5
SATURATION_BURST = 64
#: Shadow scoring must stay off the latency path: with a candidate
#: mirroring 100% of traffic, closed-loop p99 may not exceed the
#: shadow-off p99 by more than this factor (plus a small absolute
#: slack for timer noise on tiny latencies).
SHADOW_P99_FACTOR = 1.5
SHADOW_P99_SLACK_MS = 2.0


def _requests(dataset, n: int = 64) -> np.ndarray:
    reps = int(np.ceil(n / dataset.X_test.shape[0]))
    return np.tile(dataset.X_test, (reps, 1))[:n]


def _closed_loop(service, X: np.ndarray) -> tuple[float, int]:
    """Hammer the service with CLIENTS closed-loop threads.

    Each client submits one request, blocks for its result, and
    immediately submits the next — the classic closed-loop generator,
    so offered load tracks service capacity instead of running away
    from it. Returns (sustained requests/second, completed requests).
    """
    stop_at = time.perf_counter() + DURATION_S
    counts = [0] * CLIENTS
    failures: list = []

    def client(k: int) -> None:
        i = k
        while time.perf_counter() < stop_at:
            result = service.predict_one(X[i % len(X)], wait_s=60.0)
            if not result.ok:
                failures.append(result)
            counts[k] += 1
            i += CLIENTS

    threads = [
        threading.Thread(target=client, args=(k,), name=f"load-client-{k}")
        for k in range(CLIENTS)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    assert not failures, f"{len(failures)} non-OK results under closed-loop load"
    return sum(counts) / elapsed, sum(counts)


def _latency_quantiles(delta: dict) -> dict:
    lat = delta["histograms"].get("serve.latency_seconds", {})
    return {q: lat.get(q, 0.0) * 1000.0 for q in ("p50", "p95", "p99")}


def _service_for(clf, config: str):
    serve_config = ServeConfig(max_batch=32, max_delay_ms=2.0)
    if config == "single-process":
        model = CompiledModel.from_classifier(clf)
        return PredictionService(model, config=serve_config)
    n_shards = int(config.split("-")[1])
    model = CompiledModel.from_classifier(clf)
    return ShardedPredictionService(
        model, config=serve_config.replace(n_shards=n_shards)
    )


def _saturation(clf, X: np.ndarray) -> dict:
    """Burst far past a tiny queue; typed shedding, zero loss, recovery."""
    model = CompiledModel.from_classifier(clf)
    with scoped_registry():
        with ShardedPredictionService(
            model,
            config=ServeConfig(
                n_shards=1,
                max_batch=4,
                max_delay_ms=5.0,
                max_queue_per_shard=2,
                warmup=False,
            ),
        ) as service:
            futures = [
                service.submit(X[i % len(X)]) for i in range(SATURATION_BURST)
            ]
            results = [f.result(timeout=60.0) for f in futures]
            shed = [r for r in results if r.status is ResultStatus.OVERLOAD]
            ok = [r for r in results if r.ok]
            assert len(shed) + len(ok) == len(results), (
                "saturation burst produced statuses other than OK/OVERLOAD: "
                f"{set(r.status for r in results)}"
            )
            assert shed, "burst past max_queue_per_shard=2 shed nothing"
            assert ok, "admission control shed the entire burst"
            # Shedding is bounded-queue behavior, not an outage: the
            # service takes traffic again as soon as the burst drains.
            recovery = service.predict_one(X[0], wait_s=60.0)
            assert recovery.ok, f"no recovery after burst: {recovery.status}"
            depth = service.metrics.gauge_value("serve.queue_depth")
    assert depth == 0, f"queue_depth leaked after saturation: {depth}"
    return {
        "burst": SATURATION_BURST,
        "max_queue_per_shard": 2,
        "shed_overload": len(shed),
        "completed_ok": len(ok),
        "queue_depth_after": depth,
    }


def _shadow_overhead(clf, X: np.ndarray) -> dict:
    """Closed-loop p99 with a 100%-fraction shadow candidate attached
    vs shadow off: mirroring must not sit on the latency path."""
    quantiles = {}
    scored = dropped = 0
    for mode in ("shadow-off", "shadow-on"):
        model = CompiledModel.from_classifier(clf)
        candidate = CompiledModel.from_classifier(clf)
        with scoped_registry():
            with PredictionService(
                model, config=ServeConfig(max_batch=32, max_delay_ms=2.0)
            ) as service:
                if mode == "shadow-on":
                    service.attach_shadow(
                        candidate, version="bench-candidate", fraction=1.0
                    )
                baseline = registry().snapshot()
                _closed_loop(service, X)
                report = service.detach_shadow()
                if report is not None:
                    scored, dropped = report.n_scored, report.n_dropped
                    assert report.n_disagreements == 0, (
                        "identical shadow candidate disagreed with the primary"
                    )
            quantiles[mode] = _latency_quantiles(registry().delta(baseline))
        candidate.close()
    p99_off = quantiles["shadow-off"]["p99"]
    p99_on = quantiles["shadow-on"]["p99"]
    budget = p99_off * SHADOW_P99_FACTOR + SHADOW_P99_SLACK_MS
    assert p99_on <= budget, (
        f"shadow scoring leaked onto the latency path: p99 {p99_on:.2f}ms "
        f"with shadow on vs {p99_off:.2f}ms off (budget {budget:.2f}ms)"
    )
    return {
        "p99_off_ms": round(p99_off, 3),
        "p99_on_ms": round(p99_on, 3),
        "budget_ms": round(budget, 3),
        "fraction": 1.0,
        "n_scored": scored,
        "n_dropped": dropped,
    }


def run_bench() -> str:
    dataset = load("ItalyPowerSim")
    clf = RPMClassifier(sax_params=SaxParams(12, 4, 4), seed=0)
    clf.fit(dataset.X_train, dataset.y_train)
    X = _requests(dataset)
    expected = clf.predict(X)

    rows = []
    rps = {}
    results_json: dict = {"configs": {}}
    for config in ("single-process", "sharded-1", "sharded-2"):
        with scoped_registry():
            with _service_for(clf, config) as service:
                # Equivalence first, always on: the tier must reproduce
                # the in-process classifier bit for bit before its
                # throughput means anything.
                np.testing.assert_array_equal(service.predict(X), expected)
                baseline = registry().snapshot()
                rate, completed = _closed_loop(service, X)
            quantiles = _latency_quantiles(registry().delta(baseline))
        rps[config] = rate
        results_json["configs"][config] = {
            "rps": round(rate, 1),
            "requests": completed,
            **{f"{q}_ms": round(v, 3) for q, v in quantiles.items()},
        }
        rows.append(
            [config, f"{rate:.0f}", f"{completed}"]
            + [f"{quantiles[q]:.2f}" for q in ("p50", "p95", "p99")]
        )

    saturation = _saturation(clf, X)
    shadow = _shadow_overhead(clf, X)
    cpus = os.cpu_count() or 1
    gated = cpus >= RPS_GATE_MIN_CPUS
    scaling = rps["sharded-2"] / rps["sharded-1"]
    results_json.update(
        {
            "clients": CLIENTS,
            "duration_s": DURATION_S,
            "cpus": cpus,
            "saturation": saturation,
            "shadow": shadow,
            "equivalence": "bitwise (all tiers == RPMClassifier.predict)",
            "gate": {
                "armed": gated,
                "min_cpus": RPS_GATE_MIN_CPUS,
                "factor": RPS_GATE_FACTOR,
                "sharded2_over_sharded1": round(scaling, 3),
            },
        }
    )
    path = harness.RESULTS_DIR / JSON_NAME
    harness.RESULTS_DIR.mkdir(exist_ok=True)
    path.write_text(json.dumps(results_json, indent=2) + "\n")

    report = "\n".join(
        [
            f"Serving load — {CLIENTS} closed-loop clients × {DURATION_S}s "
            f"({cpus} CPUs)",
            harness.format_table(
                ["tier", "req/s", "done", "p50 ms", "p95 ms", "p99 ms"], rows
            ),
            f"\nsaturation: burst {saturation['burst']} vs queue cap "
            f"{saturation['max_queue_per_shard']} -> "
            f"{saturation['shed_overload']} shed (typed OVERLOAD), "
            f"{saturation['completed_ok']} completed, queue drained",
            f"shadow overhead: p99 {shadow['p99_on_ms']:.2f}ms with a 100% "
            f"shadow vs {shadow['p99_off_ms']:.2f}ms off "
            f"({shadow['n_scored']} scored, {shadow['n_dropped']} dropped; "
            f"budget {shadow['budget_ms']:.2f}ms)",
            f"sharded-2 / sharded-1 scaling: {scaling:.2f}x "
            f"(gate {'armed' if gated else f'off — <{RPS_GATE_MIN_CPUS} CPUs'})",
            "equivalence: every tier bitwise-identical to RPMClassifier.predict",
            f"json written to {path}",
        ]
    )
    if gated:
        assert scaling >= RPS_GATE_FACTOR, (
            f"sharded-2 only {scaling:.2f}x sharded-1 "
            f"(gate requires >= {RPS_GATE_FACTOR}x on {cpus} CPUs)"
        )
    return report


def test_serve_load(benchmark):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    harness.write_report("serve_load", report)


def main() -> int:
    harness.write_report("serve_load", run_bench())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
