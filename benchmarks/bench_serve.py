"""Serving-path benchmark: single-request vs micro-batched throughput.

The serving claim is that micro-batching amortizes per-request costs —
sliding-window statistics per length bucket, one mat-vec per pattern,
one SVM call — across every request in the batch. This bench measures
that directly on a small trained model:

* **single** — ``max_batch=1`` / no coalescing window: every request is
  its own model call (the lower bound batching must beat);
* **batched** — requests submitted together and coalesced up to
  ``max_batch``;
* compiled transform, serial executor vs thread fan-out.

The bitwise-equivalence assertion (batched labels == the in-process
``RPMClassifier.predict``) is always on. The ≥2× throughput gate only
arms on hosts with at least 4 CPUs — tiny shared runners make wall-
clock ratios meaningless.

Run stand-alone (CI fast lane) with ``python benchmarks/bench_serve.py``
or through pytest-benchmark alongside the other benches.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

import harness  # noqa: E402
from repro import RPMClassifier, SaxParams  # noqa: E402
from repro.data import load  # noqa: E402
from repro.obs import registry, scoped_registry  # noqa: E402
from repro.serve import CompiledModel, PredictionService, ServeConfig  # noqa: E402

THROUGHPUT_GATE_MIN_CPUS = 4
GATE_FACTOR = 2.0


def _requests(dataset, n: int = 96) -> np.ndarray:
    reps = int(np.ceil(n / dataset.X_test.shape[0]))
    return np.tile(dataset.X_test, (reps, 1))[:n]


def _throughput(service: PredictionService, X: np.ndarray, *, coalesce: bool) -> tuple[float, np.ndarray]:
    """Requests/second plus the labels (for the equivalence assert)."""
    start = time.perf_counter()
    if coalesce:
        futures = [service.submit(row) for row in X]
        results = [f.result() for f in futures]
    else:
        results = [service.predict_one(row) for row in X]
    elapsed = time.perf_counter() - start
    assert all(r.ok for r in results)
    return X.shape[0] / elapsed, np.array([r.label for r in results])


def run_bench() -> str:
    dataset = load("ItalyPowerSim")
    clf = RPMClassifier(sax_params=SaxParams(12, 4, 4), seed=0)
    clf.fit(dataset.X_train, dataset.y_train)
    X = _requests(dataset)
    expected = clf.predict(X)

    rows = []
    throughputs = {}
    configs = [
        ("single", dict(max_batch=1, max_delay_ms=0.0), "serial", 1, False),
        ("batched-serial", dict(max_batch=64, max_delay_ms=2.0), "serial", 1, True),
        ("batched-threads", dict(max_batch=64, max_delay_ms=2.0), "thread", 2, True),
    ]
    for name, knobs, backend, jobs, coalesce in configs:
        # Each config gets its own scoped registry so latency quantiles
        # measure this run only, with the warm-up excluded via a
        # post-start baseline snapshot + delta.
        with scoped_registry():
            with CompiledModel.from_classifier(
                clf, n_jobs=jobs, parallel_backend=backend
            ) as model:
                with PredictionService(model, config=ServeConfig(**knobs)) as service:
                    baseline = registry().snapshot()
                    rate, labels = _throughput(service, X, coalesce=coalesce)
            lat = registry().delta(baseline)["histograms"].get(
                "serve.latency_seconds", {}
            )
        # The acceptance criterion: batching/parallelism never changes a bit.
        np.testing.assert_array_equal(labels, expected)
        throughputs[name] = rate
        rows.append(
            [name, f"{rate:.0f}", f"{1000.0 / rate:.2f}"]
            + [f"{lat.get(q, 0.0) * 1000.0:.2f}" for q in ("p50", "p95", "p99")]
        )

    speedup = throughputs["batched-serial"] / throughputs["single"]
    gated = (os.cpu_count() or 1) >= THROUGHPUT_GATE_MIN_CPUS
    report = "\n".join(
        [
            f"Serving throughput — {len(X)} requests, "
            f"{len(clf.patterns_)} patterns ({os.cpu_count()} CPUs)",
            harness.format_table(
                ["mode", "req/s", "ms/req", "p50 ms", "p95 ms", "p99 ms"], rows
            ),
            f"\nbatched/single speedup: {speedup:.2f}x "
            f"(gate {'armed' if gated else 'off — <4 CPUs'})",
            "equivalence: batched labels bitwise-identical to RPMClassifier.predict",
        ]
    )
    if gated:
        assert speedup >= GATE_FACTOR, (
            f"batched throughput only {speedup:.2f}x single-request "
            f"(gate requires >= {GATE_FACTOR}x)"
        )
    return report


def test_serve_throughput(benchmark):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    harness.write_report("serve", report)


def main() -> int:
    harness.write_report("serve", run_bench())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
