"""Paper Figure 1: what rival methods find on Cricket gesture data.

Figure 1's motivating contrast:

* **SAX-VSM** weighs *all* sliding-window words — every pattern has the
  same (window) length and similar-looking patterns appear per class;
* **Fast Shapelets** builds its tree from very few branching shapelets
  that are *shared* by all classes;
* **RPM** selects a *different, variable-length* pattern set per class
  that captures each gesture's characteristic movement.

The bench quantifies those three structural claims on the Cricket-like
dataset.
"""

from __future__ import annotations

import numpy as np

import harness
from repro import RPMClassifier, SaxParams
from repro.baselines import FastShapeletsClassifier, SaxVsmClassifier
from repro.data import load
from repro.ml.metrics import error_rate


def _count_internal(node) -> int:
    if node is None or node.is_leaf:
        return 0
    return 1 + _count_internal(node.left) + _count_internal(node.right)


def _experiment():
    dataset = load("CricketSim")
    params = SaxParams(36, 6, 5)

    rpm = RPMClassifier(sax_params=params, seed=0)
    rpm.fit(dataset.X_train, dataset.y_train)
    rpm_err = error_rate(dataset.y_test, rpm.predict(dataset.X_test))
    rpm_lengths = sorted({p.length for p in rpm.patterns_})
    rpm_classes = len({p.label for p in rpm.patterns_})

    fs = FastShapeletsClassifier(seed=0)
    fs.fit(dataset.X_train, dataset.y_train)
    fs_err = error_rate(dataset.y_test, fs.predict(dataset.X_test))
    fs_shapelets = _count_internal(fs.root_)

    vsm = SaxVsmClassifier(params=params)
    vsm.fit(dataset.X_train, dataset.y_train)
    vsm_err = error_rate(dataset.y_test, vsm.predict(dataset.X_test))
    vsm_patterns = len(vsm.vocabulary_)

    return {
        "dataset": dataset,
        "rpm": (rpm_err, len(rpm.patterns_), rpm_lengths, rpm_classes),
        "fs": (fs_err, fs_shapelets),
        "vsm": (vsm_err, vsm_patterns),
    }


def test_fig1_cricket_comparison(benchmark):
    result = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    rpm_err, rpm_n, rpm_lengths, rpm_classes = result["rpm"]
    fs_err, fs_shapelets = result["fs"]
    vsm_err, vsm_patterns = result["vsm"]
    n_classes = result["dataset"].n_classes

    report = "\n".join(
        [
            "Figure 1 — pattern structure of rival methods on CricketSim",
            f"RPM     : error {rpm_err:.3f}, {rpm_n} variable-length patterns "
            f"(lengths {rpm_lengths}) covering {rpm_classes}/{n_classes} classes",
            f"FS      : error {fs_err:.3f}, {fs_shapelets} branching shapelet(s) "
            "shared by all classes",
            f"SAX-VSM : error {vsm_err:.3f}, {vsm_patterns} fixed-window words "
            "in the class weight vectors",
            "",
            "Paper shape: RPM's pattern set is small, variable-length and",
            "class-specific; FS relies on a handful of shared shapelets;",
            "SAX-VSM keeps a large sparse fixed-length vocabulary.",
        ]
    )
    harness.write_report("fig1_cricket", report)

    # Structural claims of Figure 1:
    assert rpm_classes >= 2, "RPM patterns must be class-specific"
    assert rpm_n < vsm_patterns / 5, "RPM's pattern set must be far smaller than SAX-VSM's"
    assert fs_shapelets <= rpm_n, "FS uses a minimal number of shapelets"
    # RPM must be competitive on the motivating dataset.
    assert rpm_err <= min(fs_err, vsm_err) + 0.1
