"""Paper §5.3: DIRECT's evaluation count R versus exhaustive search.

The complexity analysis hinges on R — the number of unique SAX
parameter triples DIRECT evaluates — being small: "the average value
for R is less than 200, which is smaller than the average time series
length 363", and most evaluations terminating early via the γ-support
pruning. This bench measures R on the suite and compares it against
the exhaustive grid size.
"""

from __future__ import annotations

import numpy as np

import harness
from repro.core.params import ParamSelector
from repro.data import load


def _direct_vs_grid():
    rows = []
    r_values = []
    for name in harness.suite_names():
        dataset = load(name)
        selector = ParamSelector(
            dataset.X_train, dataset.y_train, n_splits=2, cv_folds=3, seed=0
        )
        selector.select_direct(max_evaluations=40, max_iterations=20)
        r = selector.n_evaluations
        r_values.append(r)
        ranges = selector.ranges
        grid_size = (
            (ranges.window[1] - ranges.window[0] + 1)
            * (ranges.paa[1] - ranges.paa[0] + 1)
            * (ranges.alphabet[1] - ranges.alphabet[0] + 1)
        )
        pruned = sum(1 for e in selector._cache.values() if e.pruned)
        rows.append([name, dataset.series_length, r, pruned, grid_size])
    return rows, r_values


def test_direct_evaluation_count(benchmark):
    rows, r_values = benchmark.pedantic(_direct_vs_grid, rounds=1, iterations=1)
    report = "\n".join(
        [
            "§5.3 — DIRECT unique evaluations R vs exhaustive grid size",
            harness.format_table(
                ["dataset", "series len", "R", "pruned", "full grid"], rows
            ),
            "",
            f"average R = {np.mean(r_values):.1f} "
            "(paper: average R < 200, below the mean series length 363)",
        ]
    )
    harness.write_report("direct_evals", report)

    # Shape assertions: R must be far below the exhaustive grid and
    # below the paper's bound.
    for name, length, r, pruned, grid_size in rows:
        assert r < 200
        assert r < grid_size / 5
