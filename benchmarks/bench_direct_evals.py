"""Paper §5.3: DIRECT's evaluation count R versus exhaustive search.

The complexity analysis hinges on R — the number of unique SAX
parameter triples DIRECT evaluates — being small: "the average value
for R is less than 200, which is smaller than the average time series
length 363", and most evaluations terminating early via the γ-support
pruning. This bench measures R on the suite and compares it against
the exhaustive grid size.
"""

from __future__ import annotations

import os
import time

import numpy as np

import harness
from repro.core.candidates import find_candidates
from repro.core.params import ParamSelector
from repro.core.selection import find_distinct
from repro.core.transform import pattern_features
from repro.data import load
from repro.runtime import DiscretizationCache, ParallelExecutor
from repro.sax.discretize import discretize_implementation

SPEEDUP_GATE_MIN_CPUS = 4
GATE_FACTOR = 2.0


def _direct_vs_grid():
    rows = []
    r_values = []
    for name in harness.suite_names():
        dataset = load(name)
        selector = ParamSelector(
            dataset.X_train, dataset.y_train, n_splits=2, cv_folds=3, seed=0
        )
        selector.select_direct(max_evaluations=40, max_iterations=20)
        r = selector.n_evaluations
        r_values.append(r)
        ranges = selector.ranges
        grid_size = (
            (ranges.window[1] - ranges.window[0] + 1)
            * (ranges.paa[1] - ranges.paa[0] + 1)
            * (ranges.alphabet[1] - ranges.alphabet[0] + 1)
        )
        pruned = sum(1 for e in selector._cache.values() if e.pruned)
        rows.append([name, dataset.series_length, r, pruned, grid_size])
    return rows, r_values


def test_direct_evaluation_count(benchmark):
    rows, r_values = benchmark.pedantic(_direct_vs_grid, rounds=1, iterations=1)
    report = "\n".join(
        [
            "§5.3 — DIRECT unique evaluations R vs exhaustive grid size",
            harness.format_table(
                ["dataset", "series len", "R", "pruned", "full grid"], rows
            ),
            "",
            f"average R = {np.mean(r_values):.1f} "
            "(paper: average R < 200, below the mean series length 363)",
        ]
    )
    harness.write_report("direct_evals", report)

    # Shape assertions: R must be far below the exhaustive grid and
    # below the paper's bound.
    for name, length, r, pruned, grid_size in rows:
        assert r < 200
        assert r < grid_size / 5


def _mine_and_transform(dataset, *, legacy: bool, executor, discretize_cache):
    """One full Algorithm 3 run + downstream mining/transform.

    Returns ``(seconds, selected params, transformed test features)``.
    ``legacy=True`` reproduces the pre-vectorization pipeline: string
    discretization, no discretization cache, serial DIRECT.
    """

    def run():
        selector = ParamSelector(
            dataset.X_train,
            dataset.y_train,
            n_splits=2,
            cv_folds=3,
            seed=0,
            executor=executor,
            discretize_cache=discretize_cache,
        )
        t0 = time.perf_counter()
        params = selector.select_direct(max_evaluations=40, max_iterations=20)
        candidates = find_candidates(
            dataset.X_train,
            dataset.y_train,
            params,
            executor=executor,
            discretize_cache=discretize_cache,
        )
        selection = find_distinct(
            dataset.X_train, dataset.y_train, candidates, executor=executor
        )
        features = pattern_features(
            dataset.X_test, selection.patterns, executor=executor
        )
        return time.perf_counter() - t0, params, features

    if legacy:
        with discretize_implementation("legacy"):
            return run()
    return run()


def test_direct_mining_speedup(benchmark):
    """Pre-PR mining path vs vectorized + cached + parallel DIRECT.

    The equivalence assertions (identical selected ``SaxParams`` per
    class, bitwise-identical transformed features) are always on; the
    ≥2× wall-clock gate only arms on hosts with at least
    ``SPEEDUP_GATE_MIN_CPUS`` CPUs — elsewhere the measured ratio is
    still reported.
    """
    dataset = load("SyntheticControl")  # 6 classes — widest fan-out

    def run_both():
        old_time, old_params, old_features = _mine_and_transform(
            dataset, legacy=True, executor=None,
            discretize_cache=DiscretizationCache(0),
        )
        with ParallelExecutor(4, "thread") as executor:
            new_time, new_params, new_features = _mine_and_transform(
                dataset, legacy=False, executor=executor,
                discretize_cache=DiscretizationCache(),
            )
        return old_time, old_params, old_features, new_time, new_params, new_features

    old_time, old_params, old_features, new_time, new_params, new_features = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )

    # Equivalence first — a fast different answer is a bug, not a win.
    assert old_params == new_params, "selected SaxParams diverged"
    np.testing.assert_array_equal(old_features, new_features)

    speedup = old_time / max(new_time, 1e-9)
    cpus = os.cpu_count() or 1
    gated = cpus >= SPEEDUP_GATE_MIN_CPUS
    harness.write_report(
        "direct_mining_speedup",
        "\n".join(
            [
                f"Algorithm 3 mining: pre-PR path vs vectorized+cached+parallel "
                f"({cpus} CPUs)",
                harness.format_table(
                    ["path", "seconds"],
                    [
                        ["legacy strings, no cache, serial", f"{old_time:.2f}"],
                        ["integer codes, cache, 4 threads", f"{new_time:.2f}"],
                    ],
                ),
                f"\nspeedup: {speedup:.2f}x "
                f"(gate {'armed' if gated else 'off — <4 CPUs'}; "
                "params + features asserted identical)",
            ]
        ),
    )
    if gated:
        assert speedup >= GATE_FACTOR, (
            f"mining speedup only {speedup:.2f}x (gate requires >= {GATE_FACTOR}x)"
        )
