"""Selection micro-benchmark: scalar SU loop vs blocked CFS kernel.

The blocked kernel replaces the per-pair ``np.unique`` symmetrical-
uncertainty loop with whole-block contingency tables (one ``np.bincount``
over fused joint codes per scratch-sized chunk). This bench times the
SU-matrix stage both ways on pattern-feature-shaped workloads, the full
``cfs_select`` end to end (scalar, blocked, cold cache, warm cache),
and an ``find_distinct`` equivalence pass over a synthetic candidate
pool.

Results go to ``benchmarks/results/BENCH_select.json`` — machine
readable, uploaded as a CI artifact — plus the usual text table. The
bitwise-equivalence assertion (SU values, selected subsets, merits,
patterns, τ) is always on.

Run stand-alone (CI fast lane) with ``python benchmarks/bench_select.py``
or through pytest-benchmark alongside the other benches.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

import harness  # noqa: E402
from repro.core.patterns import PatternCandidate  # noqa: E402
from repro.core.selection import find_distinct  # noqa: E402
from repro.ml.cfs import (  # noqa: E402
    _searchable_indices,
    cfs_select,
    column_entropies,
    discretize_features,
    feature_class_su,
    feature_feature_su_matrix,
    su_implementation,
    symmetrical_uncertainty,
)
from repro.runtime import SelectionCache  # noqa: E402
from repro.sax.discretize import SaxParams  # noqa: E402

JSON_NAME = "BENCH_select.json"

#: (rows, feature columns, classes) — the shapes Algorithm 2's CFS stage
#: sees: one row per training series, one column per deduplicated
#: candidate. The widest workload exercises the max_features cap; the
#: last is the ≥3x calibration workload for the SU-matrix stage.
WORKLOADS = [
    (60, 40, 2),
    (120, 80, 3),
    (200, 120, 2),
]


def _best_of(fn, repeats: int = 3):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _feature_problem(rng, n, d, n_classes):
    """A pattern-distance-like feature matrix with informative columns."""
    X = rng.gamma(2.0, 2.0, size=(n, d))  # distances: positive, skewed
    y = np.arange(n) % n_classes
    for j in range(0, d, 5):  # every 5th column tracks the class
        X[:, j] += y * rng.uniform(0.5, 2.0)
    return X, y


def _scalar_su_stage(codes, y_codes, searchable):
    """The pre-vectorization SU stage: one np.unique pass per pair."""
    su_fc = np.array(
        [symmetrical_uncertainty(codes[:, j], y_codes) for j in range(codes.shape[1])]
    )
    k = len(searchable)
    ff = np.zeros((k, k))
    for p in range(k):
        for q in range(p + 1, k):
            lo, hi = sorted((searchable[p], searchable[q]))
            ff[p, q] = ff[q, p] = symmetrical_uncertainty(codes[:, lo], codes[:, hi])
    return su_fc, ff


def _blocked_su_stage(codes, y_codes, searchable):
    h = column_entropies(codes)
    su_fc = feature_class_su(codes, y_codes, entropies=h)
    ff = feature_feature_su_matrix(codes, searchable, entropies=h[searchable])
    return su_fc, ff


def run_bench() -> dict:
    rng = np.random.default_rng(42)
    results = {
        "bench": "select",
        "cpus": os.cpu_count(),
        "workloads": [],
    }
    for n, d, n_classes in WORKLOADS:
        X, y = _feature_problem(rng, n, d, n_classes)
        _, y_codes = np.unique(y, return_inverse=True)
        codes = discretize_features(X)
        searchable = _searchable_indices(
            feature_class_su(codes, y_codes), max_features=64
        )

        scalar_su_t, (scalar_fc, scalar_ff) = _best_of(
            lambda: _scalar_su_stage(codes, y_codes, searchable)
        )
        blocked_su_t, (blocked_fc, blocked_ff) = _best_of(
            lambda: _blocked_su_stage(codes, y_codes, searchable)
        )
        np.testing.assert_array_equal(blocked_fc, scalar_fc)
        np.testing.assert_array_equal(blocked_ff, scalar_ff)

        scalar_t, scalar_result = _best_of(lambda: _scalar_select(X, y))
        blocked_t, blocked_result = _best_of(lambda: cfs_select(X, y))
        cold_t, cold_result = _best_of(
            lambda: cfs_select(X, y, cache=SelectionCache(max_entries=256))
        )
        cache = SelectionCache(max_entries=256)
        cfs_select(X, y, cache=cache)  # warm
        warm_t, warm_result = _best_of(lambda: cfs_select(X, y, cache=cache))

        # Equivalence is the acceptance criterion, not an option.
        for result in (blocked_result, cold_result, warm_result):
            assert result.selected == scalar_result.selected
            assert result.merit == scalar_result.merit
            np.testing.assert_array_equal(
                result.feature_class_su, scalar_result.feature_class_su
            )

        results["workloads"].append(
            {
                "rows": n,
                "features": d,
                "classes": n_classes,
                "searchable": len(searchable),
                "n_selected": len(scalar_result.selected),
                "scalar_su_seconds": scalar_su_t,
                "blocked_su_seconds": blocked_su_t,
                "su_speedup": scalar_su_t / max(blocked_su_t, 1e-12),
                "scalar_select_seconds": scalar_t,
                "blocked_select_seconds": blocked_t,
                "cold_cache_seconds": cold_t,
                "warm_cache_seconds": warm_t,
                "select_speedup": scalar_t / max(blocked_t, 1e-12),
                "warm_speedup": scalar_t / max(warm_t, 1e-12),
            }
        )
    results["find_distinct_equivalent"] = _check_find_distinct(rng)
    return results


def _scalar_select(X, y):
    with su_implementation("scalar"):
        return cfs_select(X, y)


def _candidates(rng, n_candidates=24, length=16):
    pool = []
    for i in range(n_candidates):
        base = np.hanning(length) * (1 + i % 3) * (1 if i % 2 else -1)
        pool.append(
            PatternCandidate(
                values=base + rng.standard_normal(length) * 0.2,
                label=i % 2,
                frequency=2 + i % 5,
                support=2,
                rule_id=i,
                words=("ab",),
                sax_params=SaxParams(8, 4, 4),
                within_distances=rng.uniform(0.2, 1.5, size=3),
            )
        )
    return pool


def _check_find_distinct(rng) -> bool:
    """``find_distinct`` must be invariant to kernel/cache choice."""
    X = rng.standard_normal((24, 80))
    y = np.arange(24) % 2
    X[y == 1, 20:36] += np.hanning(16) * 3
    candidates = _candidates(rng)
    with su_implementation("scalar"):
        before = find_distinct(X, y, candidates)
    after = find_distinct(X, y, candidates, selection_cache=SelectionCache())
    assert after.tau == before.tau
    assert len(after.patterns) == len(before.patterns)
    for a, b in zip(after.patterns, before.patterns):
        assert a.label == b.label and a.feature_index == b.feature_index
        np.testing.assert_array_equal(a.values, b.values)
    np.testing.assert_array_equal(after.train_features, before.train_features)
    return True


def _report(results: dict) -> str:
    rows = []
    for w in results["workloads"]:
        rows.append(
            [
                f"n={w['rows']} d={w['features']} c={w['classes']}",
                w["n_selected"],
                f"{w['scalar_su_seconds'] * 1e3:.2f}",
                f"{w['blocked_su_seconds'] * 1e3:.2f}",
                f"{w['su_speedup']:.1f}x",
                f"{w['scalar_select_seconds'] * 1e3:.2f}",
                f"{w['blocked_select_seconds'] * 1e3:.2f}",
                f"{w['warm_cache_seconds'] * 1e3:.2f}",
                f"{w['select_speedup']:.1f}x",
            ]
        )
    speedups = [w["su_speedup"] for w in results["workloads"]]
    return "\n".join(
        [
            "CFS selection: scalar SU loop vs blocked contingency kernel",
            "(ms, best of 3; 'warm' = warm SelectionCache)",
            harness.format_table(
                ["workload", "sel", "su-scalar", "su-block", "su-spd",
                 "select", "blocked", "warm", "spd"],
                rows,
            ),
            f"\nmean SU-stage speedup {np.mean(speedups):.1f}x, "
            f"min {np.min(speedups):.1f}x "
            "(equivalence asserted bitwise on every workload)",
        ]
    )


def write_json(results: dict) -> Path:
    harness.RESULTS_DIR.mkdir(exist_ok=True)
    path = harness.RESULTS_DIR / JSON_NAME
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def test_select_speedup(benchmark):
    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    write_json(results)
    harness.write_report("select", _report(results))
    assert results["find_distinct_equivalent"]
    # Tripwire everywhere: blocked must never lose to the scalar loop.
    for w in results["workloads"]:
        assert w["su_speedup"] >= 1.0, f"blocked SU slower than scalar: {w}"
    # Speedup gate only on real multi-core CI hosts; tiny containers
    # make wall-clock ratios too noisy to gate on.
    if (os.cpu_count() or 1) >= 4:
        calibration = results["workloads"][-1]
        assert calibration["su_speedup"] >= 2.0, calibration


def main() -> int:
    results = run_bench()
    path = write_json(results)
    harness.write_report("select", _report(results))
    print(f"json written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
