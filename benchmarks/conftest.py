"""Benchmark fixtures: a shared per-session suite-results cache."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

import harness  # noqa: E402


@pytest.fixture(scope="session")
def suite_results():
    """Accuracy + runtime for every (method, dataset) of the bench suite.

    Computed once; Table 1 (accuracy / Figure 7) and Table 2
    (runtime / Figure 8) both read from it, mirroring how the paper
    reports both measurements from the same runs.
    """
    return harness.run_suite()


@pytest.fixture(scope="session")
def suite_names():
    return harness.suite_names()
