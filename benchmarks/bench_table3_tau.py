"""Paper Table 3 + Figure 9: sensitivity to the similarity threshold τ.

Re-runs RPM's Algorithm 2 + classification with τ at the 10/30/50/70/90th
percentile of within-cluster distances and reports the relative change
in running time and error versus the τ=30 default. Expected shape
(paper §5.3): error changes stay small (average within a few percent);
larger τ prunes more candidates and shortens the selection stage.

The SAX parameters come from the RPM models already fitted for Table 1
(the paper likewise reuses the learned parameters when sweeping τ).
"""

from __future__ import annotations

import time

import numpy as np

import harness
from repro.core.candidates import find_candidates
from repro.core.selection import find_distinct
from repro.core.transform import pattern_features
from repro.data import load
from repro.ml.metrics import error_rate
from repro.ml.svm import SVC

PERCENTILES = (10, 30, 50, 70, 90)


def _tau_sweep(results, names):
    rows = []
    series = {p: {"time": [], "error": []} for p in PERCENTILES}
    for ds_name in names:
        dataset = load(ds_name)
        rpm = results[("RPM", ds_name)].model
        params = rpm.params_by_class_
        candidates = find_candidates(
            dataset.X_train, dataset.y_train, params, gamma=rpm.gamma
        )
        if not candidates:
            continue
        row = [ds_name]
        for pct in PERCENTILES:
            t0 = time.perf_counter()
            selection = find_distinct(
                dataset.X_train, dataset.y_train, candidates, tau_percentile=pct
            )
            clf = SVC(kernel="rbf", C=1.0)
            clf.fit(selection.train_features, dataset.y_train)
            features = pattern_features(dataset.X_test, selection.patterns)
            err = error_rate(dataset.y_test, clf.predict(features))
            elapsed = time.perf_counter() - t0
            series[pct]["time"].append(elapsed)
            series[pct]["error"].append(err)
            row.append(f"{err:.3f}/{elapsed:.1f}s")
        rows.append(row)
    return rows, series


def _report(rows, series) -> str:
    header = ["dataset"] + [f"tau@{p}th (err/time)" for p in PERCENTILES]
    lines = ["Table 3 / Figure 9 — τ sensitivity (error / selection+classify time)"]
    lines.append(harness.format_table(header, rows))

    base_time = np.array(series[30]["time"])
    base_err = np.array(series[30]["error"])
    lines.append("\nAverage change relative to the τ=30th-percentile default:")
    for pct in PERCENTILES:
        if pct == 30:
            continue
        dt = float(np.mean((np.array(series[pct]["time"]) - base_time) / np.maximum(base_time, 1e-9))) * 100
        de = float(np.mean(np.array(series[pct]["error"]) - base_err)) * 100
        lines.append(f"  {pct:>2d}th: running-time change {dt:+.1f}%, error change {de:+.2f} points")
    lines.append(
        "\nPaper Table 3: average error change below 1% across τ — the"
        " threshold mainly trades speed, not accuracy."
    )
    return "\n".join(lines)


def test_table3_tau_sensitivity(benchmark, suite_results, suite_names):
    rows, series = benchmark.pedantic(
        lambda: _tau_sweep(suite_results, suite_names), rounds=1, iterations=1
    )
    harness.write_report("table3_tau", _report(rows, series))

    # Shape assertion: the error swing across τ stays moderate on average.
    base = np.array(series[30]["error"])
    for pct in PERCENTILES:
        mean_shift = abs(float(np.mean(np.array(series[pct]["error"]) - base)))
        assert mean_shift < 0.10, (pct, mean_shift)
