"""Batched transform benchmark: FFT vs mat-vec distance kernel.

The FFT backend's claim is that one shared series spectrum plus a
batched ``O(m log m)`` correlation per pattern beats the per-pattern
``O(J·L)`` mat-vec once patterns are long and buckets are non-trivial.
This bench measures exactly the workload ``auto`` was calibrated on:
one per-length bucket of ``k`` pre-normalized patterns pushed through
``SlidingWindowStats.batch_best_distances_prenormalized`` on both
backends, with a fresh statistics object per timed run so the FFT side
pays its spectrum build inside the measurement.

Equivalence is always asserted — distances within the shared tolerance
model (rtol 1e-9 / atol 1e-6, same numbers as ``tests/oracles.py``)
and *identical* tie-broken argmin positions. The ≥2× speedup gate on
the largest bucket only arms on hosts with at least 4 CPUs; tiny
shared runners make wall-clock ratios meaningless.

Results go to ``benchmarks/results/BENCH_transform.json`` (machine-
readable) and ``benchmarks/results/transform.txt`` (table). Run
stand-alone with ``python benchmarks/bench_transform.py`` or through
pytest-benchmark.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

import harness  # noqa: E402
from repro.runtime.kernel import (  # noqa: E402
    SlidingWindowStats,
    prenormalize_pattern,
    resolve_backend,
    tie_break_argmin_rows,
)

JSON_NAME = "BENCH_transform.json"

SPEEDUP_GATE_MIN_CPUS = 4
GATE_FACTOR = 2.0

#: The calibration workload: long series, long patterns — the regime
#: ``auto`` routes to FFT.
N_SERIES = 32
SERIES_LENGTH = 2048
PATTERN_LENGTH = 256
BUCKET_SIZES = (4, 16, 64)
REPEATS = 2


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, np.ndarray]:
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _assert_equivalent(X: np.ndarray, pres: list) -> None:
    """Distances close, argmin positions identical (never skipped)."""
    stats = SlidingWindowStats(X, PATTERN_LENGTH)
    mat = stats.batch_profiles_prenormalized(pres, backend="matvec")
    fft = stats.batch_profiles_prenormalized(pres, backend="fft")
    np.testing.assert_allclose(fft, mat, rtol=1e-9, atol=1e-6)
    np.testing.assert_array_equal(
        tie_break_argmin_rows(fft), tie_break_argmin_rows(mat)
    )


def run_bench() -> dict:
    rng = np.random.default_rng(42)
    X = rng.standard_normal((N_SERIES, SERIES_LENGTH))
    patterns = [rng.standard_normal(PATTERN_LENGTH) for _ in range(max(BUCKET_SIZES))]
    all_pres = [prenormalize_pattern(p) for p in patterns]

    results = {
        "n_series": N_SERIES,
        "series_length": SERIES_LENGTH,
        "pattern_length": PATTERN_LENGTH,
        "cpus": os.cpu_count() or 1,
        "gate_armed": (os.cpu_count() or 1) >= SPEEDUP_GATE_MIN_CPUS,
        "gate_factor": GATE_FACTOR,
        "workloads": [],
    }
    for k in BUCKET_SIZES:
        pres = all_pres[:k]
        # Fresh stats per timed run: both sides pay their full
        # per-(batch, length) setup — cumulative sums for both, plus
        # the series spectrum on the FFT side.
        mat_s, mat_out = _best_of(
            lambda: SlidingWindowStats(X, PATTERN_LENGTH)
            .batch_best_distances_prenormalized(pres, backend="matvec")
        )
        fft_s, fft_out = _best_of(
            lambda: SlidingWindowStats(X, PATTERN_LENGTH)
            .batch_best_distances_prenormalized(pres, backend="fft")
        )
        np.testing.assert_allclose(fft_out, mat_out, rtol=1e-9, atol=1e-6)
        _assert_equivalent(X, pres)
        results["workloads"].append(
            {
                "bucket": k,
                "matvec_ms": mat_s * 1000.0,
                "fft_ms": fft_s * 1000.0,
                "speedup": mat_s / fft_s,
                "max_abs_diff": float(np.abs(fft_out - mat_out).max()),
                "auto_resolves": resolve_backend(
                    "auto",
                    length=PATTERN_LENGTH,
                    series_length=SERIES_LENGTH,
                    batch_size=k,
                ),
            }
        )
    return results


def _report(results: dict) -> str:
    rows = [
        [
            f"k={w['bucket']}",
            f"{w['matvec_ms']:.1f}",
            f"{w['fft_ms']:.1f}",
            f"{w['speedup']:.2f}x",
            w["auto_resolves"],
            f"{w['max_abs_diff']:.1e}",
        ]
        for w in results["workloads"]
    ]
    gate = "armed" if results["gate_armed"] else f"off — <{SPEEDUP_GATE_MIN_CPUS} CPUs"
    return "\n".join(
        [
            "Batched transform: FFT vs mat-vec distance kernel "
            f"({results['n_series']}×{results['series_length']} series, "
            f"L={results['pattern_length']}, {results['cpus']} CPUs)",
            "(ms, best of 2; fresh window statistics per run)",
            harness.format_table(
                ["bucket", "matvec", "fft", "speedup", "auto", "max |Δ|"], rows
            ),
            f"\nspeedup gate ≥{GATE_FACTOR}x on largest bucket: {gate}",
            "equivalence: distances rtol 1e-9 / atol 1e-6, "
            "tie-broken argmin positions identical (asserted every run)",
        ]
    )


def write_json(results: dict) -> Path:
    harness.RESULTS_DIR.mkdir(exist_ok=True)
    path = harness.RESULTS_DIR / JSON_NAME
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def _check_gate(results: dict) -> None:
    if not results["gate_armed"]:
        return
    largest = results["workloads"][-1]
    assert largest["speedup"] >= GATE_FACTOR, (
        f"FFT backend only {largest['speedup']:.2f}x mat-vec on bucket "
        f"k={largest['bucket']} (gate requires >= {GATE_FACTOR}x)"
    )


def test_transform_speedup(benchmark):
    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    write_json(results)
    harness.write_report("transform", _report(results))
    _check_gate(results)


def main() -> int:
    results = run_bench()
    path = write_json(results)
    harness.write_report("transform", _report(results))
    print(f"json written to {path}")
    _check_gate(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
