"""Noise-robustness sweep (paper §1 claim, §6.2 evidence).

The paper argues that classification from a few highly
class-characteristic short patterns keeps working on *noisy data* —
its evidence is the ICU waveform case study, where noise is present in
training and test alike. This ablation therefore corrupts **both
splits** with progressively nastier distortions (white noise, spikes,
baseline wander, sensor dropout) and compares how RPM and the global
1NN-ED baseline cope. A second mini-table documents the *distribution
shift* regime (corrupting only the test split), where every
learned-feature method — RPM included — is expected to suffer; that
regime is outside the paper's claim but worth pinning down.
"""

from __future__ import annotations

import numpy as np

import harness
from repro import RPMClassifier, SaxParams
from repro.baselines import NearestNeighborED
from repro.data import load
from repro.data.base import Dataset
from repro.data.noise import CORRUPTIONS, corrupt_test_split
from repro.ml.metrics import error_rate

DATASETS = {
    "tiny": ("GunPointSim",),
    "small": ("GunPointSim", "CBF"),
    "full": ("GunPointSim", "CBF", "TraceSim"),
}
PARAMS = {
    "GunPointSim": SaxParams(40, 6, 5),
    "CBF": SaxParams(40, 6, 5),
    "TraceSim": SaxParams(50, 6, 5),
}


def _corrupt_both(dataset: Dataset, corruption: str) -> Dataset:
    fn = CORRUPTIONS[corruption]
    return Dataset(
        name=f"{dataset.name}+{corruption}",
        X_train=fn(dataset.X_train, 11),
        y_train=dataset.y_train.copy(),
        X_test=fn(dataset.X_test, 12),
        y_test=dataset.y_test.copy(),
    )


def _errors(dataset: Dataset, params: SaxParams) -> tuple[float, float]:
    rpm = RPMClassifier(sax_params=params, seed=0)
    rpm.fit(dataset.X_train, dataset.y_train)
    nn = NearestNeighborED().fit(dataset.X_train, dataset.y_train)
    return (
        error_rate(dataset.y_test, nn.predict(dataset.X_test)),
        error_rate(dataset.y_test, rpm.predict(dataset.X_test)),
    )


def _experiment():
    rows = []
    noisy_errors = {"RPM": [], "NN-ED": []}
    for ds_name in DATASETS[harness.bench_scale()]:
        dataset = load(ds_name)
        params = PARAMS[ds_name]
        nn_clean, rpm_clean = _errors(dataset, params)
        rows.append([f"{ds_name} (clean)", nn_clean, rpm_clean])
        for name in sorted(CORRUPTIONS):
            nn_err, rpm_err = _errors(_corrupt_both(dataset, name), params)
            rows.append([f"{ds_name} ({name})", nn_err, rpm_err])
            noisy_errors["RPM"].append(rpm_err)
            noisy_errors["NN-ED"].append(nn_err)

    # Distribution-shift appendix: corrupt only the test split.
    shift_rows = []
    ds_name = DATASETS[harness.bench_scale()][0]
    dataset = load(ds_name)
    rpm = RPMClassifier(sax_params=PARAMS[ds_name], seed=0)
    rpm.fit(dataset.X_train, dataset.y_train)
    for name in sorted(CORRUPTIONS):
        shifted = corrupt_test_split(dataset, name, seed=1)
        shift_rows.append(
            [f"{ds_name} ({name})", error_rate(shifted.y_test, rpm.predict(shifted.X_test))]
        )
    return rows, noisy_errors, shift_rows


def test_noise_robustness(benchmark):
    rows, noisy_errors, shift_rows = benchmark.pedantic(
        _experiment, rounds=1, iterations=1
    )
    mean_rpm = float(np.mean(noisy_errors["RPM"]))
    mean_nn = float(np.mean(noisy_errors["NN-ED"]))
    report = "\n".join(
        [
            "Robustness sweep — noise in BOTH splits (the paper's regime)",
            harness.format_table(["dataset (corruption)", "NN-ED", "RPM"], rows),
            "",
            f"mean error under corruption: NN-ED {mean_nn:.3f}, RPM {mean_rpm:.3f}",
            "Expected: RPM stays at least as accurate as the global distance",
            "on noisy data (the §6.2 medical-alarm regime).",
            "",
            "Appendix — distribution shift (train clean, test corrupted):",
            harness.format_table(["dataset (corruption)", "RPM"], shift_rows),
            "Learned pattern-distance features are calibrated on the training",
            "distribution, so test-only corruption hurts RPM like any learned",
            "method; the paper's robustness claim does not cover this regime.",
        ]
    )
    harness.write_report("robustness", report)
    assert mean_rpm <= mean_nn + 0.05, (mean_rpm, mean_nn)
