"""Regenerate EXPERIMENTS.md from the latest benchmark reports.

Run after a benchmark pass::

    RPM_BENCH_SUITE=small pytest benchmarks/ --benchmark-only
    python benchmarks/update_experiments.py

The script stitches the paper-reported values (static text below) with
the measured tables found in ``benchmarks/results/*.txt``.
"""

from __future__ import annotations

import datetime
import os
import platform
from pathlib import Path

RESULTS = Path(__file__).parent / "results"
TARGET = Path(__file__).parent.parent / "EXPERIMENTS.md"

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation (§5-§6), what the
paper reports, and what this reproduction measures. Regenerate with::

    RPM_BENCH_SUITE=small pytest benchmarks/ --benchmark-only   # or full
    python benchmarks/update_experiments.py

**Reading the numbers.** The paper ran on the real UCR archive with the
authors' Java implementations; this build is offline and runs every
method in one Python process on synthetic UCR-like stand-ins
(DESIGN.md §4). Absolute error rates and seconds are therefore not
comparable — what must (and does) reproduce is the *shape* of each
result: who wins, the significance relationships, the robustness and
sensitivity patterns. Each section lists the paper's claim first, then
the measured table, then the verdict. Shape assertions are also
enforced programmatically inside the bench modules.
"""

SECTIONS = [
    (
        "Table 1 + Figure 7 — classification accuracy",
        "table1_accuracy",
        """RPM is second-best overall (most wins go to Learning
Shapelets) but the RPM-vs-LS difference is *not* significant (Wilcoxon
p = 0.1834 > 0.05), while RPM is significantly more accurate than Fast
Shapelets (p = 0.001) and competitive with NN-DTWB and SAX-VSM.""",
        """Verdict: shape holds — RPM sits at/near the top of the mean-error
ranking, is statistically indistinguishable from the best rival, and
does not lose to FS (assertions in ``bench_table1_accuracy.py``).""",
    ),
    (
        "Table 2 + Figure 8 — running time",
        "table2_runtime",
        """RPM's total time (including DIRECT parameter selection) is
comparable to Fast Shapelets and much faster than Learning Shapelets —
average 78× speedup over LS, maximum 587× (Adiac).""",
        """Verdict: ordering holds (LS slowest, RPM and FS within one order of
magnitude). The ratio is smaller than the paper's 78× because our LS is
a vectorized NumPy reimplementation while the paper timed the authors'
original (much slower) release; see DESIGN.md §4.""",
    ),
    (
        "Table 3 + Figure 9 — τ sensitivity",
        "table3_tau",
        """sweeping the similarity threshold τ over the 10th-90th
percentile changes the average classification accuracy by less than
1 % while larger τ shortens the selection stage; 30 % is chosen as the
best accuracy/speed trade-off.""",
        """Verdict: same pattern — error is flat for τ ≤ 50th percentile and
only drifts at the aggressive 90th percentile, while selection time
falls monotonically as τ grows.""",
    ),
    (
        "Table 4 / Figure 10 — rotated test data",
        "table4_rotation",
        """with test series rotated at random cut points, NN-ED and
NN-DTWB degrade drastically; SAX-VSM and RPM barely move, and RPM takes
the most wins (4 of 5 datasets).""",
        """Verdict: shape holds — both global-distance baselines collapse
toward chance, rotation-invariant RPM stays near its unrotated error
and takes the most wins.""",
    ),
    (
        "Figure 2 — CBF patterns",
        "fig2_cbf_patterns",
        """the best patterns are the class signatures — plateau/drop
for Cylinder, rising ramp + sudden drop for Bell, sudden rise +
decreasing ramp for Funnel.""",
        """Verdict: reproduced (run ``python examples/quickstart.py`` to see
the sparkline renderings; the mined shapes match the description).""",
    ),
    (
        "Figure 3 — Coffee patterns",
        "fig3_coffee_patterns",
        """the discovered patterns cover the discriminative caffeine
and chlorogenic-acid spectral bands plus other constituent regions.""",
        """Verdict: reproduced — the bench verifies at least one pattern spans
the caffeine/chlorogenic bands of the synthetic spectra.""",
    ),
    (
        "Figures 5 & 6 — ECGFiveDays feature space",
        "fig5_fig6_ecg_feature_space",
        """the two classes look alike in raw space, but the transform
onto the top-2 patterns makes the training data linearly separable.""",
        """Verdict: reproduced — a linear SVM separates the transformed
training data (separability ≥ 0.95 asserted).""",
    ),
    (
        "Figure 4 — variable-length grammar motifs",
        "fig4_grammar_motifs",
        """one grammar rule maps to subsequences of different lengths
(27-28 in their SwedishLeaf example); some instances lack the motif,
others contain it twice; junction-spanning artifacts are excluded.""",
        """Verdict: reproduced — the bench asserts variable-length spans,
junction safety, and missing/repeated per-instance occurrences.""",
    ),
    (
        "Figure 1 — pattern structure on Cricket (motivation)",
        "fig1_cricket",
        """the three rival philosophies find very different patterns on
the Cricket gesture data: SAX-VSM keeps a large fixed-length
vocabulary, Fast Shapelets one/few shared branching shapelets, and RPM
a small class-specific variable-length set per gesture.""",
        """Verdict: reproduced structurally — RPM's set is small,
variable-length, class-specific; FS uses few shared shapelets; SAX-VSM
holds a vocabulary two orders of magnitude larger.""",
    ),
    (
        "Robustness sweep (extension of the §1 noise claim)",
        "robustness",
        """"the classification procedure based on a set of highly
class-characteristic short patterns will provide high generalization
performance under noise" — evidenced qualitatively on the noisy ICU
data of §6.2.""",
        """Verdict: with corruption present in both splits (the medical-data
regime) RPM stays more accurate than the global distance under every
corruption type; the appendix documents that test-only corruption
(distribution shift) hurts any learned feature space, RPM included.""",
    ),
    (
        "§5.3 — DIRECT evaluation count R",
        "direct_evals",
        """the average number of unique SAX-parameter combinations
DIRECT evaluates is below 200 — smaller than the average series length
(363) and far below the exhaustive grid.""",
        """Verdict: holds with margin (R ≈ 30-60 per dataset here; both the
R < 200 bound and the ≪ grid-size bound are asserted).""",
    ),
    (
        "§6.2 — medical alarm case study",
        "case_medical_alarm",
        """on ICU arterial-blood-pressure alarm data (MIMIC II), RPM
handles the noisy physiological series well relative to the rivals.""",
        """Verdict: on the synthetic ABP stand-in RPM clearly beats the
global-distance baseline and is competitive with SAX-VSM; the
multiclass regime extension also trains cleanly.""",
    ),
    (
        "Ablations (DESIGN.md §7 — not in the paper)",
        None,
        """Design choices the paper makes in passing, each isolated by a
sweep: cluster prototype (centroid vs medoid), numerosity reduction
on/off, downstream classifier, and the two readings of the γ-support
rule.""",
        None,
    ),
]

ABLATIONS = [
    "ablation_prototype",
    "ablation_numerosity",
    "ablation_classifier",
    "ablation_support_mode",
]


def _load(name: str) -> str:
    path = RESULTS / f"{name}.txt"
    if not path.exists():
        return f"(no report found — run the benchmarks to generate {path.name})"
    return path.read_text().rstrip()


def build() -> str:
    parts = [HEADER]
    scale = os.environ.get("RPM_BENCH_SUITE", "small")
    parts.append(
        f"_Last regenerated {datetime.date.today().isoformat()} on "
        f"{platform.machine()}/{platform.system()}, Python "
        f"{platform.python_version()}, suite scale `{scale}`._\n"
    )
    for title, report, paper_text, verdict in SECTIONS:
        parts.append(f"\n## {title}\n")
        parts.append(f"**Paper.** {paper_text}\n")
        if report is not None:
            parts.append("**Measured.**\n\n```\n" + _load(report) + "\n```\n")
            parts.append(f"{verdict}\n")
        else:
            for name in ABLATIONS:
                parts.append("```\n" + _load(name) + "\n```\n")
    return "\n".join(parts)


if __name__ == "__main__":
    TARGET.write_text(build())
    print(f"wrote {TARGET}")
