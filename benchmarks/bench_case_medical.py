"""Paper §6.2: the medical-alarm (ABP) case study.

Normal vs alarm arterial-blood-pressure strips (synthetic MIMIC-II
stand-in; see DESIGN.md §4). The paper reports that RPM handles the
noisy physiological data well relative to the global baselines; we
reproduce the binary task plus the multiclass regime extension.
"""

from __future__ import annotations

import harness
from repro import RPMClassifier, SaxParams
from repro.baselines import NearestNeighborED, SaxVsmClassifier
from repro.data import load, medical_alarm_abp
from repro.ml.metrics import error_rate


def _medical_experiment():
    dataset = load("MedicalAlarmABP")
    rows = []
    errs = {}
    for name, model in (
        ("NN-ED", NearestNeighborED()),
        ("SAX-VSM", SaxVsmClassifier(params=SaxParams(50, 6, 5))),
        ("RPM", RPMClassifier(sax_params=SaxParams(50, 6, 5), seed=0)),
    ):
        model.fit(dataset.X_train, dataset.y_train)
        err = error_rate(dataset.y_test, model.predict(dataset.X_test))
        errs[name] = err
        rows.append([name, err])

    multi = medical_alarm_abp(multiclass=True, seed=32)
    rpm4 = RPMClassifier(sax_params=SaxParams(50, 6, 5), seed=0)
    rpm4.fit(multi.X_train, multi.y_train)
    err4 = error_rate(multi.y_test, rpm4.predict(multi.X_test))
    return rows, errs, err4


def test_case_medical_alarm(benchmark):
    rows, errs, err4 = benchmark.pedantic(_medical_experiment, rounds=1, iterations=1)
    report = "\n".join(
        [
            "§6.2 — medical alarm (ABP) case study",
            harness.format_table(["method", "error"], rows),
            "",
            f"multiclass regime extension (4 classes): RPM error {err4:.3f}",
            "Paper shape: RPM handles the noisy ICU waveforms at least as",
            "well as the global-distance baseline.",
        ]
    )
    harness.write_report("case_medical_alarm", report)

    assert errs["RPM"] < 0.35
    assert errs["RPM"] <= errs["NN-ED"] + 0.02
