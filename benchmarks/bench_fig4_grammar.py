"""Paper Figure 4: variable-length grammar-rule subsequences.

Verifies and reports the phenomenon Figure 4 illustrates on (a stand-in
for) SwedishLeaf class 4: one Sequitur rule maps to raw subsequences of
*different* lengths thanks to numerosity reduction, occurrences never
span concatenation junctions, and some instances may lack the motif
while others contain it more than once.
"""

from __future__ import annotations

import numpy as np

import harness
from repro.data import load
from repro.grammar.inference import discretize_class, induce_motifs
from repro.sax.discretize import SaxParams


def _grammar_experiment():
    dataset = load("SwedishLeafSim")
    label = dataset.classes()[3]
    instances = [row for row in dataset.class_instances(label)]
    params = SaxParams(30, 5, 5)
    record, starts, lengths = discretize_class(instances, params)
    motifs = induce_motifs(record, starts, lengths)
    motifs.sort(key=lambda m: (m.support, m.frequency), reverse=True)
    return dataset, instances, params, record, starts, lengths, motifs


def test_fig4_variable_length_motifs(benchmark):
    dataset, instances, params, record, starts, lengths, motifs = benchmark.pedantic(
        _grammar_experiment, rounds=1, iterations=1
    )
    assert motifs, "grammar induction found no repeated patterns"
    best = max(motifs, key=lambda m: len({o.length for o in m.occurrences}))

    span_lengths = sorted({occ.length for occ in best.occurrences})
    per_instance = np.bincount(
        [occ.instance for occ in best.occurrences], minlength=len(instances)
    )
    rows = [
        [f"R{m.rule_id}", " ".join(m.words[:4]), m.frequency, m.support,
         f"{min(o.length for o in m.occurrences)}-{max(o.length for o in m.occurrences)}"]
        for m in motifs[:10]
    ]
    report = "\n".join(
        [
            "Figure 4 — grammar motifs on SwedishLeafSim class 4",
            f"SAX words kept: {len(record)}  junction windows dropped: {record.dropped}",
            harness.format_table(["rule", "words", "freq", "support", "len range"], rows),
            "",
            f"most length-diverse rule R{best.rule_id}: lengths {span_lengths}, "
            f"occurrences per instance {per_instance.tolist()}",
        ]
    )
    harness.write_report("fig4_grammar_motifs", report)

    # Figure 4's observations:
    # (1) variable-length mapping exists somewhere in the rule set;
    lengths_per_rule = [{o.length for o in m.occurrences} for m in motifs]
    assert any(len(s) > 1 for s in lengths_per_rule)
    # (2) no occurrence crosses an instance junction;
    ends = np.asarray(starts) + np.asarray(lengths)
    for motif in motifs:
        for occ in motif.occurrences:
            assert starts[occ.instance] <= occ.start
            assert occ.end <= ends[occ.instance]
    # (3) a motif can be missing from some instances or repeat within one.
    assert (per_instance == 0).any() or (per_instance > 1).any()
