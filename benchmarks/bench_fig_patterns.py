"""Paper Figures 2, 3, 5 and 6: the discovered representative patterns.

Regenerates the data behind the qualitative figures:

* Figure 2 — class-specific patterns on CBF (plateau / ramp-up / ramp-down);
* Figure 3 — Coffee patterns covering the caffeine / chlorogenic bands;
* Figure 5 — the best pattern per ECGFiveDays class;
* Figure 6 — the transformed training data is (near-)linearly separable
  in the top-2-pattern feature space.
"""

from __future__ import annotations

import numpy as np

import harness
from repro import RPMClassifier, SaxParams
from repro.core.transform import pattern_features
from repro.data import load
from repro.distance.best_match import best_match
from repro.ml.metrics import error_rate
from repro.ml.svm import SVC

FIXED_PARAMS = {
    "CBF": SaxParams(40, 6, 5),
    "CoffeeSim": SaxParams(80, 8, 6),
    "ECGFiveDaysSim": SaxParams(40, 6, 5),
}


def _fit(name):
    dataset = load(name)
    clf = RPMClassifier(sax_params=FIXED_PARAMS[name], seed=0)
    clf.fit(dataset.X_train, dataset.y_train)
    err = error_rate(dataset.y_test, clf.predict(dataset.X_test))
    return dataset, clf, err


def _pattern_rows(dataset, clf):
    rows = []
    for pattern in clf.patterns_:
        exemplar = dataset.class_instances(pattern.label)[0]
        match = best_match(pattern.values, exemplar)
        rows.append(
            [
                str(pattern.label),
                pattern.length,
                pattern.candidate.frequency,
                pattern.candidate.support,
                match.position,
            ]
        )
    return rows


def test_fig2_cbf_patterns(benchmark):
    dataset, clf, err = benchmark.pedantic(lambda: _fit("CBF"), rounds=1, iterations=1)
    rows = _pattern_rows(dataset, clf)
    report = "\n".join(
        [
            f"Figure 2 — CBF representative patterns (test error {err:.3f})",
            harness.format_table(["class", "len", "freq", "support", "position"], rows),
        ]
    )
    harness.write_report("fig2_cbf_patterns", report)
    labels = {p.label for p in clf.patterns_}
    assert len(labels) >= 2, "patterns should cover multiple classes"
    assert err < 0.1


def test_fig3_coffee_patterns(benchmark):
    dataset, clf, err = benchmark.pedantic(
        lambda: _fit("CoffeeSim"), rounds=1, iterations=1
    )
    m = dataset.series_length
    covering_caffeine = 0
    for pattern in clf.patterns_:
        exemplar = dataset.class_instances(pattern.label)[0]
        match = best_match(pattern.values, exemplar)
        lo, hi = match.position / m, (match.position + pattern.length) / m
        if lo <= 0.60 <= hi or lo <= 0.72 <= hi:
            covering_caffeine += 1
    report = "\n".join(
        [
            f"Figure 3 — Coffee patterns (test error {err:.3f})",
            harness.format_table(
                ["class", "len", "freq", "support", "position"],
                _pattern_rows(dataset, clf),
            ),
            f"\npatterns covering caffeine/chlorogenic bands: "
            f"{covering_caffeine}/{len(clf.patterns_)}",
        ]
    )
    harness.write_report("fig3_coffee_patterns", report)
    assert covering_caffeine >= 1
    assert err < 0.15


def test_fig5_fig6_ecg_feature_space(benchmark):
    dataset, clf, err = benchmark.pedantic(
        lambda: _fit("ECGFiveDaysSim"), rounds=1, iterations=1
    )
    best_by_class = {}
    for pattern in clf.patterns_:
        best_by_class.setdefault(pattern.label, pattern)
    top_two = [p for _, p in sorted(best_by_class.items())][:2]
    if len(top_two) < 2:
        top_two = clf.patterns_[:2]
    F = pattern_features(dataset.X_train, top_two)
    linear = SVC(kernel="linear", C=10.0).fit(F, dataset.y_train)
    separability = float(np.mean(linear.predict(F) == dataset.y_train))
    coords = "\n".join(
        f"  ({x:.3f}, {y:.3f}) class {label}"
        for (x, y), label in zip(F, dataset.y_train)
    )
    report = "\n".join(
        [
            f"Figure 5/6 — ECGFiveDays feature space (test error {err:.3f})",
            f"top-2-pattern linear separability (train acc): {separability:.3f}",
            "transformed training coordinates:",
            coords,
        ]
    )
    harness.write_report("fig5_fig6_ecg_feature_space", report)
    # Paper Figure 6: the transformed data is linearly separable.
    assert separability >= 0.95
