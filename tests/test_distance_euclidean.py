import numpy as np
import pytest

from repro.distance.euclidean import (
    euclidean,
    euclidean_early_abandon,
    pairwise_euclidean,
    squared_euclidean,
    znormed_euclidean,
)


class TestEuclidean:
    def test_known_value(self):
        assert euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_zero_for_identical(self):
        a = np.array([1.0, 2.0, 3.0])
        assert euclidean(a, a) == 0.0

    def test_symmetry(self, rng):
        a, b = rng.standard_normal(10), rng.standard_normal(10)
        assert euclidean(a, b) == euclidean(b, a)

    def test_triangle_inequality(self, rng):
        for _ in range(20):
            a, b, c = (rng.standard_normal(8) for _ in range(3))
            assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-12

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            euclidean(np.zeros(3), np.zeros(4))

    def test_squared_is_square(self, rng):
        a, b = rng.standard_normal(6), rng.standard_normal(6)
        assert abs(squared_euclidean(a, b) - euclidean(a, b) ** 2) < 1e-12


class TestZnormedEuclidean:
    def test_offset_scale_invariance(self, rng):
        a, b = rng.standard_normal(12), rng.standard_normal(12)
        assert abs(znormed_euclidean(a, b) - znormed_euclidean(a * 5 + 2, b)) < 1e-9

    def test_flat_vs_flat_is_zero(self):
        assert znormed_euclidean(np.full(5, 1.0), np.full(5, 9.0)) == 0.0


class TestEarlyAbandon:
    def test_exact_when_under_cutoff(self, rng):
        a, b = rng.standard_normal(20), rng.standard_normal(20)
        d = euclidean(a, b)
        assert abs(euclidean_early_abandon(a, b, d + 1.0) - d) < 1e-12

    def test_inf_when_over_cutoff(self, rng):
        a, b = rng.standard_normal(64), rng.standard_normal(64) + 10
        assert euclidean_early_abandon(a, b, 0.5) == float("inf")

    def test_boundary_cutoff(self):
        a, b = np.zeros(4), np.ones(4)  # distance 2
        assert euclidean_early_abandon(a, b, 2.0000001) == pytest.approx(2.0)


class TestPairwise:
    def test_matches_pairwise_loop(self, rng):
        X = rng.standard_normal((7, 9))
        D = pairwise_euclidean(X)
        for i in range(7):
            for j in range(7):
                assert abs(D[i, j] - euclidean(X[i], X[j])) < 1e-9

    def test_zero_diagonal(self, rng):
        D = pairwise_euclidean(rng.standard_normal((5, 6)))
        assert np.array_equal(np.diag(D), np.zeros(5))

    def test_symmetric(self, rng):
        D = pairwise_euclidean(rng.standard_normal((6, 4)))
        np.testing.assert_allclose(D, D.T, atol=1e-12)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            pairwise_euclidean(np.zeros(4))
