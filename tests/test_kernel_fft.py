"""The FFT distance-profile backend vs mat-vec vs the naive oracle.

Property-based coverage of the MASS-style batched kernel: on random
shapes, scales, offsets and degenerate inputs, the three
implementations must produce distances within the shared tolerance
model and *identical* best-match positions under the tie-break
contract. Also pins backend dispatch — ``resolve_backend`` boundaries,
the ``kernel.backend.*`` counters, spectrum reuse, and
:class:`~repro.serve.CompiledModel`'s per-bucket routing under
``auto``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import scoped_registry
from repro.runtime import kernel
from repro.runtime.kernel import (
    SlidingWindowStats,
    prenormalize_pattern,
    resample_pattern,
    resolve_backend,
    sliding_best_distances,
    tie_break_argmin,
)
from repro.serve import CompiledModel
from tests.oracles import (
    assert_argmin_equal,
    assert_profiles_close,
    naive_best_distances,
    naive_profiles,
)


def _all_backends(stats: SlidingWindowStats, pattern: np.ndarray):
    pre = prenormalize_pattern(pattern)
    return (
        stats.profiles_prenormalized(pre, backend="matvec"),
        stats.profiles_prenormalized(pre, backend="fft"),
    )


def _check_case(X: np.ndarray, pattern: np.ndarray) -> None:
    """The core cross-backend contract for one (matrix, pattern) case."""
    stats = SlidingWindowStats(X, pattern.size)
    mat, fft = _all_backends(stats, pattern)
    naive = naive_profiles(pattern, X)
    assert_profiles_close(fft, mat, err_msg="fft vs matvec")
    assert_profiles_close(mat, naive, err_msg="matvec vs naive")
    assert_argmin_equal(fft, mat, err_msg="fft vs matvec argmin")
    assert_argmin_equal(mat, naive, err_msg="matvec vs naive argmin")


class TestFftPropertySuite:
    """Randomized cross-backend agreement (hypothesis-driven shapes)."""

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(1, 5),
        m=st.integers(8, 96),
        length_frac=st.floats(0.02, 1.0),
        scale=st.sampled_from([1e-3, 1.0, 1e3]),
        offset_factor=st.sampled_from([0.0, 1.0, 1e4]),
        flat_row=st.booleans(),
        flat_run=st.booleans(),
    )
    def test_random_inputs_agree_across_backends(
        self, seed, n, m, length_frac, scale, offset_factor, flat_row, flat_run
    ):
        # Offsets scale with the data so conditioning stays within the
        # kernels' shared magnitude-relative flatness floor — an
        # offset/noise ratio beyond ~1e7 makes window flatness itself
        # ill-defined, which is a different property than backend
        # agreement.
        length = max(2, min(m, round(length_frac * m)))
        rng = np.random.default_rng(seed)
        X = (rng.standard_normal((n, m)) + offset_factor) * scale
        if flat_row:
            X[0] = offset_factor * scale
        if flat_run:
            X[-1, : min(m, length + 2)] = X[-1, 0]
        pattern = rng.standard_normal(length) * scale
        _check_case(X, pattern)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        m=st.integers(8, 64),
        length=st.integers(2, 16),
        value=st.sampled_from([0.0, 1.0, -7.5]),
    )
    def test_flat_pattern_agrees_across_backends(self, seed, m, length, value):
        length = min(length, m)
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((3, m))
        _check_case(X, np.full(length, value))

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        m=st.integers(8, 48),
        extra=st.integers(1, 40),
    )
    def test_resample_path_agrees_across_backends(self, seed, m, extra):
        # Pattern longer than the series: every backend must hit the
        # same linear-resample-then-single-alignment path.
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((4, m))
        pattern = rng.standard_normal(m + extra)
        mat = sliding_best_distances(pattern, X, backend="matvec")
        fft = sliding_best_distances(pattern, X, backend="fft")
        assert_profiles_close(fft, mat, err_msg="fft vs matvec")
        assert_profiles_close(mat, naive_best_distances(pattern, X))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), value=st.floats(-100.0, 100.0))
    def test_constant_series_agrees_across_backends(self, seed, value):
        X = np.full((3, 40), value)
        rng = np.random.default_rng(seed)
        _check_case(X, rng.standard_normal(9))

    def test_non_divisible_lengths(self):
        # Prime series length × prime window length: nfft (next power
        # of two) shares no factors with either, so retained-lag
        # indexing is exercised off every convenient boundary.
        rng = np.random.default_rng(11)
        X = rng.standard_normal((4, 97))
        _check_case(X, rng.standard_normal(31))

    def test_planted_duplicate_match_ties_break_low(self):
        # Two affine copies of the motif → two (near-)zero alignments;
        # every backend must report the *first* one.
        rng = np.random.default_rng(5)
        motif = rng.standard_normal(16)
        X = rng.standard_normal((2, 64))
        for row in X:
            row[5:21] = 2.0 * motif + 3.0
            row[40:56] = 0.5 * motif - 1.0
        stats = SlidingWindowStats(X, 16)
        mat, fft = _all_backends(stats, motif)
        naive = naive_profiles(motif, X)
        for profiles in (mat, fft, naive):
            for row_profile in profiles:
                assert tie_break_argmin(row_profile) == 5
                assert row_profile[5] == pytest.approx(0.0, abs=1e-6)

    def test_batch_matvec_bitwise_equals_single_calls(self):
        rng = np.random.default_rng(3)
        X = rng.standard_normal((5, 60))
        stats = SlidingWindowStats(X, 12)
        pres = [prenormalize_pattern(rng.standard_normal(12)) for _ in range(6)]
        batch = stats.batch_profiles_prenormalized(pres, backend="matvec")
        singles = np.stack(
            [stats.profiles_prenormalized(pre, backend="matvec") for pre in pres]
        )
        np.testing.assert_array_equal(batch, singles)

    def test_single_pattern_fft_bitwise_equals_batch_row(self):
        rng = np.random.default_rng(4)
        X = rng.standard_normal((5, 60))
        stats = SlidingWindowStats(X, 12)
        pre = prenormalize_pattern(rng.standard_normal(12))
        single = stats.profiles_prenormalized(pre, backend="fft")
        batch = stats.batch_profiles_prenormalized([pre], backend="fft")
        np.testing.assert_array_equal(single, batch[0])


class TestResampleEdgeCases:
    def test_rejects_single_point_pattern(self):
        with pytest.raises(ValueError, match="at least 2"):
            resample_pattern(np.array([3.0]), 10)

    def test_rejects_empty_pattern(self):
        with pytest.raises(ValueError, match="at least 2"):
            resample_pattern(np.empty(0), 10)

    def test_rejects_target_below_two(self):
        with pytest.raises(ValueError, match=">= 2"):
            resample_pattern(np.arange(8.0), 1)

    def test_rejects_2d_pattern(self):
        with pytest.raises(ValueError, match="1-D"):
            resample_pattern(np.ones((2, 4)), 8)

    def test_same_length_is_identity(self):
        pattern = np.array([1.0, -2.0, 0.5, 4.0])
        np.testing.assert_array_equal(resample_pattern(pattern, 4), pattern)

    def test_two_point_pattern_becomes_linear_ramp(self):
        np.testing.assert_allclose(
            resample_pattern(np.array([0.0, 1.0]), 5), np.linspace(0.0, 1.0, 5)
        )

    def test_endpoints_and_range_preserved(self):
        rng = np.random.default_rng(9)
        pattern = rng.standard_normal(13)
        for target in (2, 5, 7, 40):
            out = resample_pattern(pattern, target)
            assert out.size == target
            assert out[0] == pattern[0] and out[-1] == pattern[-1]
            assert out.min() >= pattern.min() and out.max() <= pattern.max()


class TestResolveBackend:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("simd", length=32, series_length=1024)

    def test_explicit_backends_pass_through(self):
        # Even on workloads where auto would choose the opposite.
        assert resolve_backend("fft", length=2, series_length=8) == "fft"
        assert (
            resolve_backend("matvec", length=256, series_length=4096, batch_size=64)
            == "matvec"
        )

    def test_auto_short_series_stays_matvec(self):
        assert (
            resolve_backend("auto", length=64, series_length=120, batch_size=64)
            == "matvec"
        )

    def test_auto_small_batch_work_stays_matvec(self):
        assert (
            resolve_backend("auto", length=63, series_length=1024, batch_size=1)
            == "matvec"
        )

    def test_auto_short_pattern_stays_matvec(self):
        # 16 < 6·log2(1024) = 60, regardless of bucket size.
        assert (
            resolve_backend("auto", length=16, series_length=1024, batch_size=64)
            == "matvec"
        )

    def test_auto_long_pattern_big_batch_goes_fft(self):
        assert (
            resolve_backend("auto", length=64, series_length=1024, batch_size=8)
            == "fft"
        )


class TestBackendMetrics:
    def test_dispatch_counters_and_spectrum_reuse(self):
        rng = np.random.default_rng(21)
        X = rng.standard_normal((4, 50))
        with scoped_registry() as reg:
            stats = SlidingWindowStats(X, 10)
            stats.profiles(rng.standard_normal(10), backend="matvec")
            stats.profiles(rng.standard_normal(10), backend="fft")
            stats.profiles(rng.standard_normal(10), backend="fft")
            assert reg.counter_value("kernel.backend.matvec") == 1
            assert reg.counter_value("kernel.backend.fft") == 2
            # The series spectrum is built once and shared by both FFT
            # calls.
            assert reg.counter_value("kernel.fft.series_ffts") == 1


class _StubClassifier:
    def predict(self, features):
        return np.zeros(features.shape[0], dtype=int)


class TestCompiledModelDispatch:
    """Per-length bucket routing through the compiled serving path."""

    #: Pattern lengths → native buckets 8×3, 12×2, 20×1.
    LENGTHS = (8, 8, 8, 12, 12, 20)

    def _patterns(self):
        rng = np.random.default_rng(7)
        return [rng.standard_normal(n) for n in self.LENGTHS]

    def _model(self, **kw):
        return CompiledModel(self._patterns(), _StubClassifier(), **kw)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="kernel_backend"):
            self._model(kernel_backend="simd")

    def test_describe_reports_backend(self):
        with self._model(kernel_backend="fft") as model:
            assert "kernel_backend=fft" in model.describe()

    def test_mixed_length_buckets_fft_matches_matvec_and_oracle(self):
        rng = np.random.default_rng(31)
        X = rng.standard_normal((6, 32))
        with self._model(kernel_backend="matvec") as mat_model, self._model(
            kernel_backend="fft"
        ) as fft_model:
            mat = mat_model.transform(X)
            fft = fft_model.transform(X)
        assert_profiles_close(fft, mat, err_msg="compiled fft vs matvec")
        for j, pattern in enumerate(self._patterns()):
            assert_profiles_close(
                mat[:, j], naive_best_distances(pattern, X), err_msg=f"col {j}"
            )

    def test_rotation_invariant_buckets_agree(self):
        rng = np.random.default_rng(32)
        X = rng.standard_normal((5, 32))
        with self._model(
            kernel_backend="matvec", rotation_invariant=True
        ) as mat_model, self._model(
            kernel_backend="fft", rotation_invariant=True
        ) as fft_model:
            mat = mat_model.transform(X)
            fft = fft_model.transform(X)
        assert_profiles_close(fft, mat)
        for j, pattern in enumerate(self._patterns()):
            assert_profiles_close(
                mat[:, j],
                naive_best_distances(pattern, X, rotation_invariant=True),
                err_msg=f"col {j}",
            )

    def test_auto_stays_matvec_below_crossover(self):
        # m = 32 < FFT_MIN_SERIES_LENGTH: every bucket dispatches as
        # mat-vec, keeping compiled output bitwise identical to
        # training.
        rng = np.random.default_rng(33)
        X = rng.standard_normal((4, 32))
        with scoped_registry() as reg, self._model(kernel_backend="auto") as model:
            model.transform(X)
            assert reg.counter_value("kernel.backend.matvec") == 3
            assert reg.counter_value("kernel.backend.fft") == 0

    def test_auto_crossover_splits_buckets_by_workload(self, monkeypatch):
        # Force the crossover onto tiny data: buckets with >= 24
        # pattern-points of work go FFT (8×3, 12×2), the lone length-20
        # pattern (20 points) stays mat-vec.
        monkeypatch.setattr(kernel, "FFT_MIN_SERIES_LENGTH", 16)
        monkeypatch.setattr(kernel, "FFT_MIN_BATCH_WORK", 24)
        monkeypatch.setattr(kernel, "FFT_LENGTH_CROSSOVER", 0.0)
        rng = np.random.default_rng(34)
        X = rng.standard_normal((4, 32))
        with scoped_registry() as reg, self._model(kernel_backend="auto") as model:
            auto = model.transform(X)
            assert reg.counter_value("kernel.backend.fft") == 2
            assert reg.counter_value("kernel.backend.matvec") == 1
        with self._model(kernel_backend="matvec") as mat_model:
            assert_profiles_close(auto, mat_model.transform(X))
