import numpy as np
import pytest

from repro.cluster.refine import (
    RefinedCluster,
    align_subsequences,
    bisect_refine,
    centroid_of,
    medoid_of,
)


class TestAlignSubsequences:
    def test_resamples_to_median_length(self, rng):
        subs = [rng.standard_normal(n) for n in (8, 10, 12)]
        aligned = align_subsequences(subs)
        assert aligned.shape == (3, 10)

    def test_explicit_target_length(self, rng):
        aligned = align_subsequences([rng.standard_normal(9)], target_length=20)
        assert aligned.shape == (1, 20)

    def test_rows_are_znormed(self, rng):
        aligned = align_subsequences([rng.standard_normal(15) * 4 + 3 for _ in range(4)])
        np.testing.assert_allclose(aligned.mean(axis=1), 0.0, atol=1e-9)
        np.testing.assert_allclose(aligned.std(axis=1), 1.0, atol=1e-9)

    def test_same_length_no_resampling(self):
        sub = np.arange(10.0)
        aligned = align_subsequences([sub, sub * 2])
        np.testing.assert_allclose(aligned[0], aligned[1], atol=1e-12)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            align_subsequences([])

    def test_rejects_tiny_members(self):
        with pytest.raises(ValueError, match="at least 2"):
            align_subsequences([np.array([1.0])])


def _two_shape_matrix(rng, n_a=10, n_b=10, length=24):
    """Rows drawn from two very different shapes (sine vs ramp)."""
    t = np.linspace(0, 2 * np.pi, length)
    a = [np.sin(t) + rng.standard_normal(length) * 0.05 for _ in range(n_a)]
    b = [np.linspace(-1, 1, length) + rng.standard_normal(length) * 0.05 for _ in range(n_b)]
    from repro.sax.znorm import znorm_rows

    return znorm_rows(np.array(a + b))


class TestBisectRefine:
    def test_splits_two_shapes(self):
        aligned = _two_shape_matrix(np.random.default_rng(0))
        clusters = bisect_refine(aligned)
        assert len(clusters) == 2
        sizes = sorted(c.size for c in clusters)
        assert sizes == [10, 10]
        # Members must not mix shapes.
        for cluster in clusters:
            idx = np.array(cluster.member_indices)
            assert (idx < 10).all() or (idx >= 10).all()

    def test_homogeneous_group_not_split(self):
        local = np.random.default_rng(0)
        t = np.linspace(0, 2 * np.pi, 20)
        from repro.sax.znorm import znorm_rows

        aligned = znorm_rows(
            np.array([np.sin(t) + local.standard_normal(20) * 0.02 for _ in range(12)])
        )
        clusters = bisect_refine(aligned)
        assert len(clusters) == 1
        assert clusters[0].size == 12

    def test_minority_below_fraction_keeps_group(self):
        # 19 sines + 1 ramp: the 1-member side is below 30 %, no split.
        aligned = _two_shape_matrix(np.random.default_rng(0), n_a=19, n_b=1)
        clusters = bisect_refine(aligned)
        assert len(clusters) == 1

    def test_all_members_assigned_exactly_once(self, rng):
        aligned = _two_shape_matrix(rng, 7, 9)
        clusters = bisect_refine(aligned)
        members = sorted(i for c in clusters for i in c.member_indices)
        assert members == list(range(16))

    def test_min_group_size_respected(self, rng):
        aligned = _two_shape_matrix(rng, 2, 2)
        clusters = bisect_refine(aligned, min_group_size=4)
        assert len(clusters) == 1

    def test_single_member(self, rng):
        clusters = bisect_refine(rng.standard_normal((1, 10)))
        assert len(clusters) == 1 and clusters[0].size == 1

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            bisect_refine(np.zeros(5))


class TestPrototypes:
    def _cluster(self, rng, n=8, length=16):
        aligned = align_subsequences([rng.standard_normal(length) for _ in range(n)])
        return bisect_refine(aligned, min_split_fraction=0.0, min_group_size=n)[0]

    def test_centroid_is_znormed_mean(self, rng):
        cluster = self._cluster(rng)
        centroid = centroid_of(cluster)
        assert abs(centroid.mean()) < 1e-9
        assert abs(centroid.std() - 1.0) < 1e-9

    def test_medoid_is_a_member(self, rng):
        cluster = self._cluster(rng)
        medoid = medoid_of(cluster)
        assert any(np.allclose(medoid, row) for row in cluster.aligned)

    def test_within_distances_condensed_size(self, rng):
        cluster = self._cluster(rng, n=6)
        assert cluster.within_distances().size == 6 * 5 // 2

    def test_single_member_no_distances(self, rng):
        cluster = RefinedCluster(
            member_indices=[0],
            aligned=rng.standard_normal((1, 8)),
            pairwise=np.zeros((1, 1)),
        )
        assert cluster.within_distances().size == 0


class TestPairwiseReuse:
    def test_precomputed_pairwise_matches_internal(self):
        from repro.distance.euclidean import pairwise_euclidean

        # Local generator: keeps the shared session rng stream (which
        # later modules' data depends on) untouched.
        local = np.random.default_rng(55)
        aligned = np.vstack(
            [local.standard_normal(12), local.standard_normal(12) + 5]
            * 4
        )
        pairwise = pairwise_euclidean(aligned)
        internal = bisect_refine(aligned)
        reused = bisect_refine(aligned, pairwise=pairwise)
        assert len(internal) == len(reused)
        for a, b in zip(internal, reused):
            assert a.member_indices == b.member_indices
            np.testing.assert_array_equal(a.pairwise, b.pairwise)

    def test_pairwise_shape_mismatch_rejected(self):
        aligned = np.random.default_rng(56).standard_normal((5, 10))
        with pytest.raises(ValueError, match="pairwise"):
            bisect_refine(aligned, pairwise=np.zeros((4, 4)))
