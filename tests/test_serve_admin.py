"""Admin surface, flight recorder and request correlation.

Contracts under test:

1. `/healthz` / `/readyz` report the liveness/readiness transitions of
   the service around start/warm-up/stop;
2. `/metrics` is valid Prometheus text and carries the serve counters
   and latency quantiles; `/metrics.json` is the same snapshot as JSON;
3. the flight recorder captures slow/error/timeout/invalid requests in
   a bounded ring (FIFO eviction, thread-safe), and `/debug/requests`
   retrieves an entry by the request ID the caller's
   `PredictionResult` carried;
4. request IDs correlate end to end: submit → result → `serve.batch`
   span → flight entry → structured log line;
5. the admin surface is an observer — predictions are bitwise
   identical with it on or off.
"""

from __future__ import annotations

import json
import re
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import RPMClassifier, SaxParams
from repro.obs import Tracer, scoped_registry
from repro.serve import (
    AdminServer,
    CompiledModel,
    FlightRecord,
    FlightRecorder,
    PredictionService,
    ResultStatus,
    ServeConfig,
)

PROMETHEUS_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+=\"[^\"]*\"\})? [-+]?[0-9.eE+-]+$"
)


@pytest.fixture(scope="module")
def fitted(tiny_gun):
    clf = RPMClassifier(sax_params=SaxParams(24, 4, 4), seed=0)
    clf.fit(tiny_gun.X_train, tiny_gun.y_train)
    return clf


@pytest.fixture(scope="module")
def compiled(fitted):
    with CompiledModel.from_classifier(fitted) as model:
        yield model


def _get(url: str) -> tuple[int, str]:
    """GET returning (status, body) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


class TestHealthAndReadiness:
    def test_transitions_around_lifecycle(self, compiled):
        service = PredictionService(compiled, config=ServeConfig(warmup=True))
        with AdminServer(service) as admin:
            # Not started: alive=no, ready=no.
            status, body = _get(admin.url("/healthz"))
            assert status == 503 and json.loads(body)["status"] == "down"
            status, body = _get(admin.url("/readyz"))
            assert status == 503 and json.loads(body)["status"] == "warming"

            service.start()
            try:
                status, body = _get(admin.url("/healthz"))
                assert status == 200 and json.loads(body)["status"] == "ok"
                status, body = _get(admin.url("/readyz"))
                assert status == 200 and json.loads(body)["status"] == "ready"
            finally:
                service.stop()

            status, _ = _get(admin.url("/healthz"))
            assert status == 503

    def test_embedded_admin_starts_and_stops_with_service(self, compiled):
        service = PredictionService(
            compiled,
            config=ServeConfig(warmup=False, admin_port=0),
        )
        with service:
            assert service.admin is not None
            url = service.admin.url("/healthz")
            status, _ = _get(url)
            assert status == 200
        assert service.admin is None
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url, timeout=0.5)

    def test_index_lists_routes_and_unknown_is_404(self, compiled):
        with PredictionService(
            compiled,
            config=ServeConfig(warmup=False, admin_port=0),
        ) as service:
            status, body = _get(service.admin.url("/"))
            assert status == 200
            assert "/debug/requests" in json.loads(body)["routes"]
            status, _ = _get(service.admin.url("/no/such/route"))
            assert status == 404


class TestMetricsEndpoint:
    def test_prometheus_text_is_valid_and_counts_requests(self, compiled, tiny_gun):
        metrics_url = None
        with scoped_registry():
            with PredictionService(
                compiled,
                config=ServeConfig(warmup=False, admin_port=0),
            ) as service:
                service.predict(tiny_gun.X_test[:5])
                metrics_url = service.admin.url("/metrics")
                status, body = _get(metrics_url)
        assert status == 200
        samples = [l for l in body.splitlines() if l and not l.startswith("#")]
        assert samples
        for line in samples:
            assert PROMETHEUS_SAMPLE.match(line), f"bad exposition line: {line!r}"
        assert "serve_requests_total 5" in body
        assert 'serve_latency_seconds{quantile="0.99"}' in body
        assert re.search(r"^serve_batches_total [1-9]", body, re.M)

    def test_json_view_matches_prometheus_counts(self, compiled, tiny_gun):
        with scoped_registry():
            with PredictionService(
                compiled,
                config=ServeConfig(warmup=False, admin_port=0),
            ) as service:
                service.predict(tiny_gun.X_test[:3])
                status, body = _get(service.admin.url("/metrics.json"))
        assert status == 200
        document = json.loads(body)
        assert document["counters"]["serve.requests"] == 3
        assert document["histograms"]["serve.latency_seconds"]["count"] == 3


class TestFlightRecorder:
    def test_eviction_is_fifo_and_bounded(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.record(FlightRecord(f"req-{i}", "timeout", "timeout"))
        assert len(recorder) == 3
        assert recorder.total_recorded == 5
        ids = [entry["request_id"] for entry in recorder.records()]
        assert ids == ["req-4", "req-3", "req-2"]  # newest first
        assert recorder.find("req-0") is None and recorder.find("req-1") is None
        assert recorder.find("req-4") is not None

    def test_capacity_zero_disables_capture(self):
        recorder = FlightRecorder(capacity=0)
        recorder.record(FlightRecord("req-1", "error", "error"))
        assert len(recorder) == 0 and not recorder.enabled

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=-1)

    def test_thread_safety_under_concurrent_recording(self):
        recorder = FlightRecorder(capacity=64)
        n_threads, per_thread = 8, 50

        def hammer(tid):
            for i in range(per_thread):
                recorder.record(
                    FlightRecord(f"req-{tid}-{i}", "timeout", "timeout")
                )
                recorder.records(limit=5)
                recorder.find(f"req-{tid}-{i}")

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert recorder.total_recorded == n_threads * per_thread
        assert len(recorder) == 64

    def test_concurrent_submits_all_captured(self, compiled, tiny_gun):
        """Expired-deadline submits from many threads each land one entry."""
        rows = tiny_gun.X_test[:8]
        with PredictionService(
            compiled,
            config=ServeConfig(warmup=False, max_delay_ms=10.0, flight_capacity=64),
        ) as service:
            futures = [None] * len(rows)

            def submit(i):
                futures[i] = service.submit(rows[i], deadline_ms=0.0)

            threads = [
                threading.Thread(target=submit, args=(i,)) for i in range(len(rows))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            results = [f.result(timeout=5.0) for f in futures]
            assert all(r.status is ResultStatus.TIMEOUT for r in results)
            for r in results:
                # Futures resolve *before* flight capture (recording
                # never sits on the latency path), so allow the worker
                # a moment to finish writing the batch's entries.
                deadline = time.monotonic() + 5.0
                entry = service.flight.find(r.request_id)
                while entry is None and time.monotonic() < deadline:
                    time.sleep(0.005)
                    entry = service.flight.find(r.request_id)
                assert entry is not None
                assert entry.reason == "timeout"
                assert entry.batch_id == r.batch_id


class TestRequestCorrelation:
    def test_id_round_trip_submit_result_span_flight(self, compiled, tiny_gun):
        tracer = Tracer()
        with PredictionService(
            compiled,
            config=ServeConfig(warmup=False),
            trace=tracer,
        ) as service:
            result = service.predict_one(tiny_gun.X_test[0], deadline_ms=0.0)
        assert result.status is ResultStatus.TIMEOUT
        assert result.request_id.startswith("req-")
        assert result.batch_id is not None
        # The serve.batch span carries the request ID and batch ID.
        batch_spans = [s for s in tracer.roots if s.name == "serve.batch"]
        assert any(
            result.request_id in s.meta.get("request_ids", ())
            and s.meta.get("batch_id") == result.batch_id
            for s in batch_spans
        )
        # The flight entry is retrievable by the result's request ID and
        # carries the span subtree plus the timing fields.
        entry = service.flight.find(result.request_id)
        assert entry is not None
        assert entry.status == "timeout" and entry.batch_id == result.batch_id
        assert entry.deadline_slack_ms is not None and entry.deadline_slack_ms <= 0
        assert any(s["name"] == "serve.batch" for s in entry.spans)

    def test_debug_requests_lookup_by_result_id(self, compiled, tiny_gun):
        with PredictionService(
            compiled,
            config=ServeConfig(warmup=False, max_delay_ms=10.0, admin_port=0),
        ) as service:
            result = service.predict_one(tiny_gun.X_test[0], deadline_ms=0.0)
            status, body = _get(
                service.admin.url(f"/debug/requests?id={result.request_id}")
            )
            assert status == 200
            entry = json.loads(body)
            assert entry["request_id"] == result.request_id
            assert entry["status"] == "timeout"
            assert entry["batch_id"] == result.batch_id
            assert entry["deadline_slack_ms"] <= 0
            # Listing view includes it too, newest first.
            status, body = _get(service.admin.url("/debug/requests?limit=10"))
            listed = json.loads(body)
            assert any(
                e["request_id"] == result.request_id for e in listed["entries"]
            )
            # Unknown IDs 404 with a hint.
            status, body = _get(service.admin.url("/debug/requests?id=req-99999"))
            assert status == 404
            status, _ = _get(service.admin.url("/debug/requests?limit=bogus"))
            assert status == 400

    def test_slow_requests_are_captured_without_tracing(self, compiled, tiny_gun):
        # slow_ms=0.0001: every OK request counts as slow; the flight
        # span subtree comes from the throwaway per-batch tracer.
        with PredictionService(
            compiled,
            config=ServeConfig(warmup=False, slow_ms=0.0001, flight_capacity=8),
        ) as service:
            result = service.predict_one(tiny_gun.X_test[0])
        assert result.ok
        entry = service.flight.find(result.request_id)
        assert entry is not None
        assert entry.reason == "slow"
        assert any(s["name"] == "serve.batch" for s in entry.spans)

    def test_invalid_requests_are_captured(self, compiled):
        with PredictionService(compiled, config=ServeConfig(warmup=False)) as service:
            result = service.predict_one(np.zeros(3))
        assert result.status is ResultStatus.INVALID
        entry = service.flight.find(result.request_id)
        assert entry is not None
        assert entry.reason == "invalid" and entry.error_code == "bad-length"
        assert entry.batch_id is None

    def test_healthy_fast_requests_stay_unrecorded(self, compiled, tiny_gun):
        with PredictionService(
            compiled,
            config=ServeConfig(warmup=False, slow_ms=60_000.0),
        ) as service:
            service.predict(tiny_gun.X_test[:4])
            assert len(service.flight) == 0

    def test_anomaly_log_lines_carry_the_request_id(self, compiled, tiny_gun, caplog):
        with caplog.at_level("WARNING", logger="repro.serve"):
            with PredictionService(
                compiled,
                config=ServeConfig(warmup=False),
            ) as service:
                result = service.predict_one(tiny_gun.X_test[0], deadline_ms=0.0)
        matching = [
            r
            for r in caplog.records
            if getattr(r, "request_id", None) == result.request_id
        ]
        assert matching, "no log line carried the request ID"
        assert matching[0].batch_id == result.batch_id


class TestDebugRequestsReasonFilter:
    def test_filter_returns_only_matching_entries(self, compiled, tiny_gun):
        with PredictionService(
            compiled,
            config=ServeConfig(warmup=False, max_delay_ms=10.0, admin_port=0),
        ) as service:
            timed_out = service.predict_one(tiny_gun.X_test[0], deadline_ms=0.0)
            invalid = service.predict_one(np.zeros(3))
            assert timed_out.status is ResultStatus.TIMEOUT
            assert invalid.status is ResultStatus.INVALID
            # Timeout capture is async (off the latency path): wait for
            # both entries to land before filtering.
            deadline = time.monotonic() + 5.0
            while len(service.flight) < 2 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert len(service.flight) == 2

            status, body = _get(
                service.admin.url("/debug/requests?reason=timeout")
            )
            assert status == 200
            payload = json.loads(body)
            assert payload["reason"] == "timeout"
            assert [e["request_id"] for e in payload["entries"]] == [
                timed_out.request_id
            ]

            status, body = _get(
                service.admin.url("/debug/requests?reason=invalid")
            )
            payload = json.loads(body)
            assert [e["request_id"] for e in payload["entries"]] == [
                invalid.request_id
            ]

    def test_limit_applies_after_the_filter(self, compiled, tiny_gun):
        with PredictionService(
            compiled,
            config=ServeConfig(warmup=False, max_delay_ms=10.0, admin_port=0),
        ) as service:
            service.predict_one(tiny_gun.X_test[0], deadline_ms=0.0)
            for _ in range(3):
                service.predict_one(np.zeros(3))
            deadline = time.monotonic() + 5.0
            while len(service.flight) < 4 and time.monotonic() < deadline:
                time.sleep(0.005)
            status, body = _get(
                service.admin.url("/debug/requests?reason=invalid&limit=2")
            )
            assert status == 200
            entries = json.loads(body)["entries"]
            assert len(entries) == 2
            assert all(e["reason"] == "invalid" for e in entries)

    def test_unknown_reason_is_a_400_listing_the_vocabulary(self, compiled):
        with PredictionService(
            compiled,
            config=ServeConfig(warmup=False, admin_port=0),
        ) as service:
            status, body = _get(
                service.admin.url("/debug/requests?reason=bogus")
            )
            assert status == 400
            payload = json.loads(body)
            assert "bogus" in payload["error"]
            assert "drift" in payload["reasons"]
            assert payload["reasons"] == sorted(payload["reasons"])


class TestDriftRoute:
    def test_404_with_a_hint_when_monitoring_is_off(self, compiled):
        with PredictionService(
            compiled,
            config=ServeConfig(warmup=False, admin_port=0),
        ) as service:
            status, body = _get(service.admin.url("/drift"))
            assert status == 404
            assert "attach_drift" in json.loads(body)["error"]

    def test_payload_when_monitoring_is_on(self, fitted, compiled, tiny_gun):
        from repro.obs.sketch import ReferenceDistribution

        features = compiled.transform(tiny_gun.X_train)
        reference = ReferenceDistribution.from_features(
            features, tiny_gun.X_train
        )
        with scoped_registry():
            with PredictionService(
                compiled,
                config=ServeConfig(warmup=False, admin_port=0),
            ) as service:
                monitor = service.attach_drift(reference)
                service.predict(tiny_gun.X_train[:8])
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    state = monitor.describe()
                    if state["rows"] + state["backlog"] >= 8:
                        break
                    time.sleep(0.01)
                monitor.flush()
                status, body = _get(service.admin.url("/drift"))
                assert status == 200
                payload = json.loads(body)
                assert payload["rows"] == 8
                assert payload["reference"]["n_columns"] == compiled.n_patterns
                assert "serve.drift.score" in payload["gauges"]
                # The drift route shows up in the index alongside the rest.
                status, body = _get(service.admin.url("/"))
                assert "/drift" in json.loads(body)["routes"]


class TestAdminIsAnObserver:
    def test_predictions_bitwise_identical_with_admin_on(
        self, fitted, compiled, tiny_gun
    ):
        expected = fitted.predict(tiny_gun.X_test)
        with PredictionService(compiled, config=ServeConfig(warmup=False)) as plain:
            baseline = plain.predict(tiny_gun.X_test)
        with PredictionService(
            compiled,
            config=ServeConfig(warmup=False, admin_port=0, slow_ms=0.0001),
        ) as service:
            # Scrape while predicting to exercise concurrent reads.
            labels = service.predict(tiny_gun.X_test)
            _get(service.admin.url("/metrics"))
            _get(service.admin.url("/debug/requests"))
        np.testing.assert_array_equal(baseline, expected)
        np.testing.assert_array_equal(labels, expected)

    def test_flight_capture_disabled_is_bitwise_identical_too(
        self, fitted, compiled, tiny_gun
    ):
        with PredictionService(
            compiled,
            config=ServeConfig(warmup=False, flight_capacity=0),
        ) as service:
            labels = service.predict(tiny_gun.X_test)
        np.testing.assert_array_equal(labels, fitted.predict(tiny_gun.X_test))
