import numpy as np
import pytest

from repro.data import EXTENDED_SUITE, load
from repro.data.synthetic_extra import (
    adiac_sim,
    beef_sim,
    chlorine_sim,
    diatom_sim,
    fish_sim,
    haptics_sim,
    mallat_sim,
    sony_robot_sim,
    symbols_sim,
    yoga_sim,
)
from repro.sax.znorm import znorm_rows


def _nn_ed_error(ds) -> float:
    tr = znorm_rows(ds.X_train)
    te = znorm_rows(ds.X_test)
    d2 = ((te[:, None, :] - tr[None, :, :]) ** 2).sum(-1)
    return float((ds.y_train[np.argmin(d2, axis=1)] != ds.y_test).mean())


class TestExtendedGenerators:
    @pytest.mark.parametrize(
        "factory,classes",
        [
            (adiac_sim, 6),
            (beef_sim, 5),
            (fish_sim, 7),
            (mallat_sim, 8),
            (symbols_sim, 6),
            (haptics_sim, 5),
            (yoga_sim, 2),
            (sony_robot_sim, 2),
            (diatom_sim, 4),
            (chlorine_sim, 3),
        ],
    )
    def test_shapes_and_finiteness(self, factory, classes):
        ds = factory(n_train_per_class=3, n_test_per_class=3)
        assert ds.n_classes == classes
        assert np.isfinite(ds.X_train).all()
        assert np.isfinite(ds.X_test).all()
        assert ds.n_train == 3 * classes

    def test_registry_covers_extended_suite(self):
        for name in EXTENDED_SUITE:
            ds = load(name)
            assert ds.n_train > 0

    def test_deterministic(self):
        a = load("FishSim")
        b = load("FishSim")
        np.testing.assert_array_equal(a.X_train, b.X_train)

    def test_all_learnable_above_chance(self):
        # A 1NN-ED sanity floor: each dataset must carry signal (error
        # clearly below chance), while none needs to be trivial.
        for name in EXTENDED_SUITE:
            ds = load(name)
            chance = 1.0 - 1.0 / ds.n_classes
            assert _nn_ed_error(ds) < chance - 0.05, name

    def test_difficulty_spread(self):
        # The suite should mix easy and hard datasets like UCR does.
        errors = [_nn_ed_error(load(name)) for name in EXTENDED_SUITE]
        assert min(errors) < 0.05
        assert max(errors) > 0.15

    def test_yoga_variant_limb_region_differs(self):
        ds = yoga_sim(n_train_per_class=20, n_test_per_class=1, seed=46)
        base = ds.X_train[ds.y_train == 0].mean(axis=0)
        variant = ds.X_train[ds.y_train == 1].mean(axis=0)
        pos = int(0.62 * ds.series_length)
        width = int(0.1 * ds.series_length)
        region_delta = np.abs(variant[pos : pos + width] - base[pos : pos + width]).mean()
        elsewhere_delta = np.abs(variant[:pos] - base[:pos]).mean()
        assert region_delta > elsewhere_delta
