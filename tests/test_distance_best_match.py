import numpy as np
import pytest

from repro.distance.best_match import (
    batch_best_distances,
    batch_distance_profiles,
    best_match,
    best_match_scalar,
    distance_profile,
)
from repro.distance.euclidean import znormed_euclidean


class TestDistanceProfile:
    def test_profile_length(self, rng):
        profile = distance_profile(rng.standard_normal(5), rng.standard_normal(20))
        assert profile.size == 16

    def test_matches_naive_computation(self, rng):
        pattern = rng.standard_normal(7)
        series = rng.standard_normal(30)
        profile = distance_profile(pattern, series)
        for pos in range(series.size - 7 + 1):
            naive = znormed_euclidean(pattern, series[pos : pos + 7])
            assert abs(profile[pos] - naive) < 1e-8

    def test_embedded_pattern_found_at_zero_distance(self, rng):
        pattern = np.sin(np.linspace(0, 3, 12))
        series = rng.standard_normal(40)
        series[10:22] = pattern * 4.0 + 2.0  # scaled/offset copy
        profile = distance_profile(pattern, series)
        assert profile[10] < 1e-6

    def test_flat_window_vs_pattern(self):
        pattern = np.sin(np.linspace(0, 3, 6))
        series = np.concatenate([np.full(6, 5.0), np.arange(6.0)])
        profile = distance_profile(pattern, series)
        # The first window is flat: distance = ||znorm(pattern)|| = sqrt(n)
        assert abs(profile[0] - np.sqrt(np.sum((pattern - pattern.mean()) ** 2) / pattern.var())) < 1e-6

    def test_flat_pattern_vs_flat_window(self):
        profile = distance_profile(np.full(4, 3.0), np.full(10, 8.0))
        np.testing.assert_allclose(profile, np.zeros(7), atol=1e-12)

    def test_flat_pattern_vs_normal_window(self, rng):
        profile = distance_profile(np.full(4, 3.0), rng.standard_normal(10) * 5)
        np.testing.assert_allclose(profile, np.full(7, 2.0), atol=1e-9)  # sqrt(4)

    def test_pattern_longer_than_series_resampled(self, rng):
        pattern = np.sin(np.linspace(0, 3, 30))
        series = np.sin(np.linspace(0, 3, 10))
        profile = distance_profile(pattern, series)
        assert profile.size == 1
        assert profile[0] < 0.5  # same shape after resampling

    def test_rejects_tiny_pattern(self):
        with pytest.raises(ValueError, match="at least 2"):
            distance_profile(np.array([1.0]), np.arange(5.0))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            distance_profile(np.zeros((2, 2)), np.arange(5.0))


class TestBestMatch:
    def test_position_of_embedded_pattern(self, rng):
        pattern = np.hanning(10)
        series = rng.standard_normal(50) * 0.1
        series[23:33] += pattern * 6
        match = best_match(pattern, series)
        assert match.position == 23
        assert match.distance < 0.5

    def test_agrees_with_scalar_reference(self, rng):
        for _ in range(25):
            pattern = rng.standard_normal(int(rng.integers(3, 12)))
            series = rng.standard_normal(int(rng.integers(15, 40)))
            fast = best_match(pattern, series)
            slow = best_match_scalar(pattern, series)
            assert abs(fast.distance - slow.distance) < 1e-7

    def test_distance_nonnegative(self, rng):
        match = best_match(rng.standard_normal(6), rng.standard_normal(20))
        assert match.distance >= 0.0


class TestBatch:
    def test_profiles_match_scalar(self, rng):
        pattern = rng.standard_normal(8)
        X = rng.standard_normal((5, 25))
        batch = batch_distance_profiles(pattern, X)
        assert batch.shape == (5, 18)
        for i in range(5):
            np.testing.assert_allclose(batch[i], distance_profile(pattern, X[i]), atol=1e-8)

    def test_best_distances_match(self, rng):
        pattern = rng.standard_normal(6)
        X = rng.standard_normal((8, 30))
        batch = batch_best_distances(pattern, X)
        for i in range(8):
            assert abs(batch[i] - best_match(pattern, X[i]).distance) < 1e-8

    def test_long_pattern_resampled(self, rng):
        pattern = rng.standard_normal(40)
        X = rng.standard_normal((3, 20))
        batch = batch_distance_profiles(pattern, X)
        assert batch.shape == (3, 1)

    def test_rejects_1d_matrix(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            batch_distance_profiles(rng.standard_normal(4), rng.standard_normal(10))
