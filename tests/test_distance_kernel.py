"""Sliding-window kernel vs the naive closest-match oracle, and cache behavior.

:class:`SlidingWindowStats` must reproduce the explicit z-norm-per-
window reference in :mod:`tests.oracles` and the scalar early-
abandoning ``best_match_scalar`` (and stay bitwise identical to
``batch_distance_profiles``, which now delegates to it) on random data,
degenerate flat windows, and over-long patterns — and never emit NaNs.
The tolerance model lives in the oracles module, shared with the FFT
property suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distance.best_match import (
    batch_best_distances,
    batch_distance_profiles,
    best_match_scalar,
    distance_profile,
)
from repro.runtime import (
    SlidingWindowStats,
    WindowStatsCache,
    resample_pattern,
    sliding_best_distances,
)
from tests.oracles import (
    assert_argmin_equal,
    assert_profiles_close,
    naive_best_distances,
    naive_profiles,
)


@pytest.fixture()
def rng() -> np.random.Generator:
    # Deliberately shadows the session-scoped conftest fixture: a fresh
    # per-test generator keeps this module from shifting the shared
    # random stream other test modules' data depends on.
    return np.random.default_rng(987)


class TestKernelVsOracle:
    def test_profiles_match_brute_force(self, rng):
        X = rng.standard_normal((7, 50))
        for length in (2, 5, 17, 50):
            stats = SlidingWindowStats(X, length)
            pattern = rng.standard_normal(length)
            profiles = stats.profiles(pattern)
            assert profiles.shape == (7, 50 - length + 1)
            expected = naive_profiles(pattern, X)
            assert_profiles_close(profiles, expected, err_msg=f"length={length}")
            assert_argmin_equal(profiles, expected)
            for i in range(X.shape[0]):
                np.testing.assert_allclose(
                    profiles[i], distance_profile(pattern, X[i]), atol=1e-8
                )

    def test_best_distances_match_scalar_oracle(self, rng):
        X = rng.standard_normal((6, 40)) * 3.0 + 10.0
        pattern = rng.standard_normal(9)
        stats = SlidingWindowStats(X, 9)
        best = stats.best_distances(pattern)
        assert_profiles_close(best, naive_best_distances(pattern, X))
        for i in range(X.shape[0]):
            oracle = best_match_scalar(pattern, X[i]).distance
            assert best[i] == pytest.approx(oracle, abs=1e-6)

    def test_bitwise_identical_to_batch_profiles(self, rng):
        X = rng.standard_normal((5, 64))
        pattern = rng.standard_normal(12)
        stats = SlidingWindowStats(X, 12)
        assert np.array_equal(stats.profiles(pattern), batch_distance_profiles(pattern, X))

    def test_flat_windows_against_pattern(self, rng):
        X = np.full((3, 20), 7.5)  # every window degenerate
        pattern = rng.standard_normal(6)
        stats = SlidingWindowStats(X, 6)
        profiles = stats.profiles(pattern)
        # Flat window vs z-normed pattern: dist² = Σ q² = L.
        np.testing.assert_allclose(profiles, np.sqrt(6.0))
        assert_profiles_close(profiles, naive_profiles(pattern, X))

    def test_flat_pattern_against_flat_and_nonflat(self, rng):
        flat_rows = np.full((2, 15), 2.0)
        noisy_rows = rng.standard_normal((2, 15)) * 4.0
        pattern = np.full(5, 3.0)
        assert np.all(SlidingWindowStats(flat_rows, 5).profiles(pattern) == 0.0)
        np.testing.assert_allclose(
            SlidingWindowStats(noisy_rows, 5).profiles(pattern), np.sqrt(5.0)
        )

    def test_pattern_longer_than_series_resampled(self, rng):
        X = rng.standard_normal((4, 12))
        long_pattern = rng.standard_normal(30)
        via_helper = sliding_best_distances(long_pattern, X)
        via_batch = batch_best_distances(long_pattern, X)
        assert np.array_equal(via_helper, via_batch)
        assert_profiles_close(via_helper, naive_best_distances(long_pattern, X))
        resampled = resample_pattern(long_pattern, 12)
        assert resampled.size == 12
        # Endpoints survive linear resampling.
        assert resampled[0] == long_pattern[0] and resampled[-1] == long_pattern[-1]

    @pytest.mark.parametrize("scale,offset", [(1.0, 0.0), (1e4, 1e6), (1e-6, 0.0)])
    def test_nan_free_on_adversarial_inputs(self, rng, scale, offset):
        X = rng.standard_normal((5, 30)) * scale + offset
        X[0] = offset  # one entirely flat row
        X[1, :10] = offset  # partially flat row
        for pattern in (rng.standard_normal(8), np.zeros(8), np.full(8, 5.0)):
            profiles = SlidingWindowStats(X, 8).profiles(pattern)
            assert np.all(np.isfinite(profiles))
            assert np.all(profiles >= 0.0)

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            SlidingWindowStats(rng.standard_normal(10), 4)  # 1-D series
        with pytest.raises(ValueError):
            SlidingWindowStats(rng.standard_normal((3, 10)), 1)  # window < 2
        with pytest.raises(ValueError):
            SlidingWindowStats(rng.standard_normal((3, 10)), 11)  # window > m
        stats = SlidingWindowStats(rng.standard_normal((3, 10)), 4)
        with pytest.raises(ValueError):
            stats.profiles(rng.standard_normal(5))  # wrong pattern length

    def test_stats_reuse_across_patterns(self, rng):
        """One stats object serves many patterns of its length."""
        X = rng.standard_normal((4, 32))
        stats = SlidingWindowStats(X, 10)
        for _ in range(5):
            pattern = rng.standard_normal(10)
            assert np.array_equal(
                stats.best_distances(pattern), batch_best_distances(pattern, X)
            )


class TestWindowStatsCache:
    def test_hit_and_miss_counters(self, rng):
        X = rng.standard_normal((4, 30))
        cache = WindowStatsCache(max_entries=4)
        first = cache.stats(X, 8)
        assert (cache.hits, cache.misses) == (0, 1)
        second = cache.stats(X, 8)
        assert second is first
        assert (cache.hits, cache.misses) == (1, 1)
        cache.stats(X, 12)
        assert (cache.hits, cache.misses) == (1, 2)

    def test_lru_eviction(self, rng):
        X = rng.standard_normal((3, 40))
        cache = WindowStatsCache(max_entries=2)
        a = cache.stats(X, 4)
        cache.stats(X, 5)
        cache.stats(X, 6)  # evicts length-4 entry (LRU)
        assert cache.evictions == 1
        assert len(cache) == 2
        assert cache.stats(X, 5) is not None  # still cached
        assert cache.hits == 1
        refetched = cache.stats(X, 4)  # rebuilt, not the old object
        assert refetched is not a

    def test_recency_updates_on_hit(self, rng):
        X = rng.standard_normal((3, 40))
        cache = WindowStatsCache(max_entries=2)
        a = cache.stats(X, 4)
        cache.stats(X, 5)
        assert cache.stats(X, 4) is a  # touch length 4 → length 5 is now LRU
        cache.stats(X, 6)
        assert cache.stats(X, 4) is a  # survived the eviction
        assert cache.evictions == 1

    def test_different_data_never_aliases(self, rng):
        X = rng.standard_normal((4, 30))
        Y = X.copy()
        Y[0, 0] += 1.0
        cache = WindowStatsCache(max_entries=8)
        cache.stats(X, 8)
        cache.stats(Y, 8)
        assert cache.misses == 2 and cache.hits == 0
        assert WindowStatsCache.token(X) != WindowStatsCache.token(Y)
        assert WindowStatsCache.token(X) == WindowStatsCache.token(X.copy())

    def test_zero_size_disables_caching(self, rng):
        X = rng.standard_normal((3, 20))
        cache = WindowStatsCache(max_entries=0)
        a = cache.stats(X, 5)
        b = cache.stats(X, 5)
        assert a is not b
        assert len(cache) == 0 and cache.misses == 2

    def test_cached_results_identical_to_uncached(self, rng):
        X = rng.standard_normal((5, 40))
        cache = WindowStatsCache(max_entries=4)
        pattern = rng.standard_normal(11)
        cached = sliding_best_distances(pattern, X, cache=cache)
        again = sliding_best_distances(pattern, X, cache=cache)
        uncached = sliding_best_distances(pattern, X)
        assert np.array_equal(cached, uncached)
        assert np.array_equal(cached, again)
        assert cache.hits >= 1

    def test_clear(self, rng):
        X = rng.standard_normal((3, 20))
        cache = WindowStatsCache(max_entries=4)
        cache.stats(X, 5)
        cache.clear()
        assert len(cache) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            WindowStatsCache(max_entries=-1)
