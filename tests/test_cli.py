import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "CBF"])
        assert args.dataset == "CBF"
        assert args.gamma == 0.2

    def test_evaluate_method_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "CBF", "--method", "nope"])


class TestCommands:
    def test_datasets_lists_registry(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "CBF" in out
        assert "MedicalAlarmABP" in out

    def test_unknown_dataset_is_an_error(self, capsys):
        assert main(["evaluate", "NoSuchData", "--window", "10"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_train_save_patterns_classify_roundtrip(self, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        rc = main(
            ["train", "ItalyPowerSim", "-o", str(model_path), "--window", "12",
             "--paa", "4", "--alphabet", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "test error" in out
        assert model_path.exists()

        assert main(["patterns", str(model_path)]) == 0
        assert "representative patterns" in capsys.readouterr().out

        # classify a small UCR-format file
        data = tmp_path / "data.txt"
        from repro.data import load

        ds = load("ItalyPowerSim")
        rows = ["0 " + " ".join(f"{v:.4f}" for v in ds.X_test[i]) for i in range(3)]
        data.write_text("\n".join(rows) + "\n")
        assert main(["classify", str(model_path), str(data)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3

    def test_evaluate_baseline(self, capsys):
        rc = main(["evaluate", "ItalyPowerSim", "--method", "NN-ED"])
        assert rc == 0
        assert "NN-ED" in capsys.readouterr().out

    def test_evaluate_rpm_fixed_params(self, capsys):
        rc = main(
            ["evaluate", "ItalyPowerSim", "--window", "12", "--paa", "4",
             "--alphabet", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "RPM" in out and "error" in out

    def test_motifs_command(self, tmp_path, capsys):
        import numpy as np

        rng = np.random.default_rng(0)
        series = np.sin(2 * np.pi * np.arange(400) / 40) + rng.standard_normal(400) * 0.1
        data = tmp_path / "long.txt"
        data.write_text("0 " + " ".join(f"{v:.4f}" for v in series) + "\n")
        rc = main(["motifs", str(data), "--window", "30", "--top", "2",
                   "--discords", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "freq=" in out
        assert "discord [" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
