import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "CBF"])
        assert args.dataset == "CBF"
        assert args.gamma == 0.2

    def test_evaluate_method_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "CBF", "--method", "nope"])


class TestFlagValidation:
    """Numeric flags fail at the parser, not deep inside the pipeline."""

    @pytest.mark.parametrize("value", ["0", "-5"])
    def test_cache_size_rejects_non_positive(self, value, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["train", "CBF", "--cache-size", value])
        assert exc.value.code == 2
        assert "must be a positive integer" in capsys.readouterr().err

    def test_cache_size_rejects_garbage(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "CBF", "--cache-size", "many"])
        assert "expected an integer" in capsys.readouterr().err

    def test_cache_size_accepts_positive(self):
        args = build_parser().parse_args(["train", "CBF", "--cache-size", "7"])
        assert args.cache_size == 7

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_jobs_rejects_zero_and_below_minus_one(self, value, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["train", "CBF", "--jobs", value])
        assert exc.value.code == 2
        assert "positive worker count or -1" in capsys.readouterr().err

    @pytest.mark.parametrize("value,expected", [("3", 3), ("-1", -1)])
    def test_jobs_accepts_valid(self, value, expected):
        args = build_parser().parse_args(["train", "CBF", "--jobs", value])
        assert args.jobs == expected

    def test_serve_admin_flags(self):
        args = build_parser().parse_args(
            ["serve", "--model", "m.npz", "--http-port", "0",
             "--log-format", "json", "--flight-size", "16", "--slow-ms", "10"]
        )
        assert args.http_port == 0
        assert args.log_format == "json"
        assert args.flight_size == 16
        assert args.slow_ms == 10.0

    @pytest.mark.parametrize("value", ["0", "-5"])
    def test_admission_budget_rejects_non_positive(self, value, capsys):
        # Regression: the threshold was plain `type=float`, so a zero
        # or negative admission budget shed every request.
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["serve", "--model", "m.npz", "--admission-budget-ms", value]
            )
        assert exc.value.code == 2
        assert "must be a positive number" in capsys.readouterr().err

    def test_slow_ms_rejects_negative_but_zero_disables(self, capsys):
        # `--slow-ms 0` is the documented "disable slow capture"
        # sentinel and must keep parsing; only negatives are rejected.
        args = build_parser().parse_args(
            ["serve", "--model", "m.npz", "--slow-ms", "0"]
        )
        assert args.slow_ms == 0.0
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["serve", "--model", "m.npz", "--slow-ms", "-5"]
            )
        assert exc.value.code == 2
        assert "must be >= 0" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--slow-ms", "--admission-budget-ms"])
    def test_positive_float_flags_reject_garbage(self, flag, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["serve", "--model", "m.npz", flag, "fast"])
        assert exc.value.code == 2
        assert "expected a number" in capsys.readouterr().err

    def test_positive_float_flags_accept_positive(self):
        args = build_parser().parse_args(
            ["serve", "--model", "m.npz",
             "--slow-ms", "0.5", "--admission-budget-ms", "12.5"]
        )
        assert args.slow_ms == 0.5
        assert args.admission_budget_ms == 12.5

    def test_drift_flags_parse_and_validate(self, capsys):
        args = build_parser().parse_args(
            ["serve", "--model", "m.npz", "--drift",
             "--drift-window", "64", "--drift-threshold", "0.1"]
        )
        assert args.drift is True
        assert args.drift_window == 64
        assert args.drift_threshold == 0.1
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["serve", "--model", "m.npz", "--drift-window", "0"]
            )
        assert exc.value.code == 2
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["serve", "--model", "m.npz", "--drift-threshold", "-0.2"]
            )
        assert exc.value.code == 2

    def test_serve_admin_defaults_off(self):
        args = build_parser().parse_args(["serve", "--model", "m.npz"])
        assert args.http_port is None
        assert args.log_format == "text"
        assert args.flight_size == 128

    def test_http_port_rejects_negative(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["serve", "--model", "m.npz", "--http-port", "-1"]
            )
        assert exc.value.code == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_log_format_choices(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--model", "m.npz", "--log-format", "xml"]
            )

    def test_metrics_requires_exactly_one_source(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["metrics", "--url", "http://x", "--jsonl", "m.jsonl"]
            )

    def test_metrics_route_choices(self):
        args = build_parser().parse_args(
            ["metrics", "--url", "http://x", "--route", "drift"]
        )
        assert args.route == "drift"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["metrics", "--url", "http://x", "--route", "nope"]
            )

    def test_drift_requires_exactly_one_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["drift", "reg"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["drift", "reg", "--data", "d.txt", "--jsonl", "m.jsonl"]
            )


class TestCommands:
    def test_datasets_lists_registry(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "CBF" in out
        assert "MedicalAlarmABP" in out

    def test_unknown_dataset_is_an_error(self, capsys):
        assert main(["evaluate", "NoSuchData", "--window", "10"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_train_save_patterns_classify_roundtrip(self, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        rc = main(
            ["train", "ItalyPowerSim", "-o", str(model_path), "--window", "12",
             "--paa", "4", "--alphabet", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "test error" in out
        assert model_path.exists()

        assert main(["patterns", str(model_path)]) == 0
        assert "representative patterns" in capsys.readouterr().out

        # classify a small UCR-format file
        data = tmp_path / "data.txt"
        from repro.data import load

        ds = load("ItalyPowerSim")
        rows = ["0 " + " ".join(f"{v:.4f}" for v in ds.X_test[i]) for i in range(3)]
        data.write_text("\n".join(rows) + "\n")
        assert main(["classify", str(model_path), str(data)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3

    def test_evaluate_baseline(self, capsys):
        rc = main(["evaluate", "ItalyPowerSim", "--method", "NN-ED"])
        assert rc == 0
        assert "NN-ED" in capsys.readouterr().out

    def test_evaluate_rpm_fixed_params(self, capsys):
        rc = main(
            ["evaluate", "ItalyPowerSim", "--window", "12", "--paa", "4",
             "--alphabet", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "RPM" in out and "error" in out

    def test_motifs_command(self, tmp_path, capsys):
        import numpy as np

        rng = np.random.default_rng(0)
        series = np.sin(2 * np.pi * np.arange(400) / 40) + rng.standard_normal(400) * 0.1
        data = tmp_path / "long.txt"
        data.write_text("0 " + " ".join(f"{v:.4f}" for v in series) + "\n")
        rc = main(["motifs", str(data), "--window", "30", "--top", "2",
                   "--discords", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "freq=" in out
        assert "discord [" in out

    def test_train_trace_and_metrics_out(self, tmp_path, capsys):
        import json

        metrics_path = tmp_path / "metrics.jsonl"
        rc = main(
            ["train", "ItalyPowerSim", "--window", "12", "--paa", "4",
             "--alphabet", "4", "--trace", "--metrics-out", str(metrics_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # The span tree covers the pipeline stages with wall times.
        assert "-- trace --" in out
        for stage in ("fit", "mine", "discretize", "grammar", "refine",
                      "select", "transform"):
            assert stage in out, f"span tree missing stage {stage!r}"
        assert "s" in out  # wall-time column

        # The JSON-lines dump is valid line-by-line and carries the
        # cache counters.
        assert metrics_path.exists()
        records = [json.loads(line) for line in metrics_path.read_text().splitlines()]
        assert records, "metrics file is empty"
        kinds = {record["type"] for record in records}
        assert {"meta", "span", "counter"} <= kinds
        counters = {r["name"] for r in records if r["type"] == "counter"}
        assert "cache.hits" in counters and "cache.misses" in counters

    def test_trace_off_by_default(self, capsys):
        rc = main(["evaluate", "ItalyPowerSim", "--window", "12", "--paa", "4",
                   "--alphabet", "4"])
        assert rc == 0
        assert "-- trace --" not in capsys.readouterr().out

    def test_metrics_from_jsonl_renders_prometheus(self, tmp_path, capsys):
        from repro.obs import MetricsRegistry, write_jsonl

        reg = MetricsRegistry()
        reg.inc("serve.requests", 12)
        reg.observe("serve.latency_seconds", 0.02)
        path = write_jsonl(tmp_path / "metrics.jsonl", metrics=reg)

        assert main(["metrics", "--jsonl", str(path)]) == 0
        out = capsys.readouterr().out
        assert "serve_requests_total 12" in out
        assert 'serve_latency_seconds{quantile="0.5"}' in out

        assert main(["metrics", "--jsonl", str(path), "--format", "json"]) == 0
        import json

        document = json.loads(capsys.readouterr().out)
        assert document["counters"]["serve.requests"] == 12

    def test_metrics_from_unreachable_url_is_an_error(self, capsys):
        rc = main(
            ["metrics", "--url", "http://127.0.0.1:9", "--timeout", "0.2"]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
