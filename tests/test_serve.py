"""Serving-layer tests: compiled transform equivalence, micro-batching,
deadlines, validation and artifact format checks.

The load-bearing assertion is *bitwise* equality between the serving
path (CompiledModel / PredictionService) and the training-side
``RPMClassifier`` transform and predictions — for every executor
configuration, through artifact round-trips, and regardless of how
requests were batched.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import RPMClassifier, SaxParams
from repro.core.io import FORMAT_VERSION, ModelFormatError, load_model, save_model
from repro.obs.metrics import MetricsRegistry, registry, scoped_registry
from repro.serve import (
    CompiledModel,
    PredictionService,
    ResultStatus,
    ServeConfig,
    validate_series,
)


@pytest.fixture(scope="module")
def fitted(tiny_gun):
    clf = RPMClassifier(sax_params=SaxParams(24, 4, 4), seed=0)
    clf.fit(tiny_gun.X_train, tiny_gun.y_train)
    return clf


@pytest.fixture(scope="module")
def compiled(fitted):
    with CompiledModel.from_classifier(fitted) as model:
        yield model


class TestCompiledModel:
    def test_transform_bitwise_equals_classifier(self, fitted, compiled, tiny_gun):
        expected = fitted.transform(tiny_gun.X_test)
        np.testing.assert_array_equal(compiled.transform(tiny_gun.X_test), expected)

    def test_predict_bitwise_equals_classifier(self, fitted, compiled, tiny_gun):
        np.testing.assert_array_equal(
            compiled.predict(tiny_gun.X_test), fitted.predict(tiny_gun.X_test)
        )

    @pytest.mark.parametrize("backend,jobs", [("serial", 1), ("thread", 2)])
    def test_executor_config_never_changes_bits(
        self, fitted, tiny_gun, backend, jobs
    ):
        with CompiledModel.from_classifier(
            fitted, n_jobs=jobs, parallel_backend=backend
        ) as model:
            np.testing.assert_array_equal(
                model.transform(tiny_gun.X_test), fitted.transform(tiny_gun.X_test)
            )

    def test_artifact_round_trip_is_bitwise(self, fitted, tiny_gun, tmp_path):
        path = tmp_path / "model.npz"
        save_model(fitted, path)
        with CompiledModel.load(path) as model:
            np.testing.assert_array_equal(
                model.predict(tiny_gun.X_test), fitted.predict(tiny_gun.X_test)
            )
            assert model.series_length == tiny_gun.X_train.shape[1]

    def test_short_input_uses_resampled_plan(self, fitted, compiled, tiny_gun):
        # Inputs shorter than the longest pattern trigger per-length
        # resampling; the compiled plan must match the training path there too.
        X_short = tiny_gun.X_test[:4, : compiled.max_pattern_length - 2]
        np.testing.assert_array_equal(
            compiled.transform(X_short), fitted.transform(X_short)
        )

    def test_rotation_invariant_path(self, tiny_gun):
        clf = RPMClassifier(
            sax_params=SaxParams(24, 4, 4), seed=0, rotation_invariant=True
        )
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        with CompiledModel.from_classifier(clf, n_jobs=2) as model:
            np.testing.assert_array_equal(
                model.transform(tiny_gun.X_test), clf.transform(tiny_gun.X_test)
            )

    def test_rejects_unfitted_classifier(self):
        with pytest.raises(RuntimeError, match="unfitted"):
            CompiledModel.from_classifier(RPMClassifier(sax_params=SaxParams(24, 4, 4)))

    def test_rejects_bad_input_shapes(self, compiled):
        with pytest.raises(ValueError, match="2-D"):
            compiled.transform(np.zeros(10))

    def test_warmup_and_describe(self, compiled):
        compiled.warmup(n=2)
        assert "patterns" in compiled.describe()


class TestPredictionService:
    def test_batched_predictions_bitwise_equal_direct(self, fitted, compiled, tiny_gun):
        with PredictionService(
            compiled,
            config=ServeConfig(max_batch=8, max_delay_ms=5.0),
        ) as service:
            labels = service.predict(tiny_gun.X_test)
        np.testing.assert_array_equal(labels, fitted.predict(tiny_gun.X_test))

    def test_one_by_one_equals_batched(self, fitted, compiled, tiny_gun):
        X = tiny_gun.X_test[:6]
        with PredictionService(
            compiled,
            config=ServeConfig(max_batch=1, max_delay_ms=0.0),
        ) as service:
            singles = [service.predict_one(row) for row in X]
        assert all(r.ok for r in singles)
        np.testing.assert_array_equal(
            np.array([r.label for r in singles]), fitted.predict(X)
        )

    def test_results_carry_features_and_latency(self, fitted, compiled, tiny_gun):
        with PredictionService(compiled) as service:
            result = service.predict_one(tiny_gun.X_test[0])
        np.testing.assert_array_equal(
            result.features, fitted.transform(tiny_gun.X_test[:1])[0]
        )
        assert result.latency_ms >= 0.0

    def test_invalid_inputs_get_typed_results(self, compiled, tiny_gun):
        m = tiny_gun.X_test.shape[1]
        metrics = MetricsRegistry()
        nan_row = np.full(m, np.nan)
        with PredictionService(compiled, metrics=metrics) as service:
            nan_result = service.predict_one(nan_row)
            short_result = service.predict_one(np.zeros(3))
            matrix_result = service.predict_one(np.zeros((2, m)))
            text_result = service.predict_one(["a"] * m)
        assert nan_result.status is ResultStatus.INVALID
        assert nan_result.error_code == "non-finite"
        assert short_result.error_code == "bad-length"
        assert matrix_result.error_code == "bad-shape"
        assert text_result.error_code == "bad-dtype"
        assert metrics.snapshot()["counters"]["serve.invalid"] == 4

    def test_expired_deadline_yields_timeout(self, compiled, tiny_gun):
        metrics = MetricsRegistry()
        with PredictionService(
            compiled,
            config=ServeConfig(max_delay_ms=20.0),
            metrics=metrics,
        ) as service:
            result = service.predict_one(tiny_gun.X_test[0], deadline_ms=0.0)
        assert result.status is ResultStatus.TIMEOUT
        assert result.deadline_missed
        assert metrics.snapshot()["counters"]["serve.deadline_misses"] >= 1

    def test_predict_raises_on_any_failure(self, compiled, tiny_gun):
        X = tiny_gun.X_test[:3].copy()
        X[1, 0] = np.nan
        with PredictionService(compiled) as service:
            with pytest.raises(RuntimeError, match="non-finite"):
                service.predict(X)

    def test_stop_drains_queued_requests(self, compiled, tiny_gun):
        service = PredictionService(
            compiled,
            config=ServeConfig(max_batch=4, max_delay_ms=50.0, warmup=False),
        )
        service.start()
        futures = [service.submit(row) for row in tiny_gun.X_test[:10]]
        service.stop()
        assert all(f.result(timeout=1.0).ok for f in futures)

    def test_submit_requires_running_service(self, compiled, tiny_gun):
        service = PredictionService(compiled, config=ServeConfig(warmup=False))
        with pytest.raises(RuntimeError, match="not running"):
            service.submit(tiny_gun.X_test[0])

    def test_submit_racing_stop_never_strands_a_future(self, compiled, tiny_gun):
        # Regression: submit() could observe _running=True, lose the CPU
        # while stop() drained the queue and shut the worker down, then
        # enqueue into a dead service — a future nobody would resolve.
        # Now submit and stop serialize on a lock and stop() re-drains
        # stragglers, so every accepted future resolves (OK or a typed
        # "service-stopped" ERROR) and none hangs.
        rows = tiny_gun.X_test
        for _ in range(20):
            service = PredictionService(
                compiled,
                config=ServeConfig(max_batch=4, max_delay_ms=5.0, warmup=False),
            )
            service.start()
            futures: list = []
            barrier = threading.Barrier(3)

            def submitter() -> None:
                barrier.wait()
                local = []
                for row in rows:
                    try:
                        local.append(service.submit(row))
                    except RuntimeError:
                        break  # typed fast-fail after stop: fine
                futures.extend(local)

            threads = [threading.Thread(target=submitter) for _ in range(2)]
            for t in threads:
                t.start()
            barrier.wait()
            service.stop()
            for t in threads:
                t.join()
            for f in futures:
                result = f.result(timeout=5.0)  # hangs = the regression
                assert result.ok or result.status is ResultStatus.ERROR
            assert service.metrics.gauge_value("serve.queue_depth") == 0

    def test_ragged_predict_many_yields_per_row_invalid(self, compiled, tiny_gun):
        # Regression: np.asarray on a ragged batch raised ValueError out
        # of predict_many instead of producing typed per-row results.
        m = tiny_gun.X_test.shape[1]
        rows = [tiny_gun.X_test[0], np.zeros(m // 2), tiny_gun.X_test[1]]
        with PredictionService(compiled, config=ServeConfig(warmup=False)) as service:
            results = service.predict_many(rows)
        assert results[0].ok and results[2].ok
        assert results[1].status is ResultStatus.INVALID
        assert results[1].error_code == "bad-length"

    def test_metrics_emitted(self, compiled, tiny_gun):
        # Exercise the default-registry path: without an explicit
        # ``metrics=``, the service lands its counters in the scoped
        # process-global registry, and nothing leaks out of the scope.
        with scoped_registry() as metrics:
            with PredictionService(
                compiled,
                config=ServeConfig(warmup=False),
            ) as service:
                service.predict(tiny_gun.X_test[:5])
            snap = metrics.snapshot()
        assert snap["counters"]["serve.requests"] == 5
        assert snap["counters"]["serve.batches"] >= 1
        assert snap["gauges"]["serve.queue_depth"] == 0
        assert snap["histograms"]["serve.batch_size"]["count"] >= 1
        assert snap["histograms"]["serve.latency_seconds"]["count"] == 5
        assert registry() is not metrics

    def test_rejects_bad_knobs(self, compiled):
        with pytest.raises(ValueError, match="max_batch"):
            PredictionService(compiled, config=ServeConfig(max_batch=0))
        with pytest.raises(ValueError, match="max_delay_ms"):
            PredictionService(compiled, config=ServeConfig(max_delay_ms=-1.0))


class TestValidateSeries:
    def test_accepts_clean_series(self):
        values, code, message = validate_series([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(values, [1.0, 2.0, 3.0])
        assert code is None and message is None

    def test_length_mismatch_names_both_lengths(self):
        _, code, message = validate_series(np.zeros(5), expected_length=7)
        assert code == "bad-length"
        assert "5" in message and "7" in message


class TestModelFormat:
    def test_stale_version_raises_typed_error(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_model(fitted, path)
        import json

        with np.load(path, allow_pickle=False) as archive:
            payload = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(payload["meta_json"]).decode())
        meta["format_version"] = FORMAT_VERSION + 1
        payload["meta_json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        stale = tmp_path / "stale.npz"
        np.savez(stale, **payload)
        with pytest.raises(ModelFormatError) as excinfo:
            load_model(stale)
        assert excinfo.value.found == FORMAT_VERSION + 1
        assert excinfo.value.expected == FORMAT_VERSION

    def test_non_model_archive_raises_typed_error(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, data=np.zeros(3))
        with pytest.raises(ModelFormatError, match="not an RPM model archive"):
            load_model(path)

    def test_non_archive_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("not an npz archive")
        with pytest.raises(ModelFormatError, match="not an RPM model archive"):
            load_model(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "missing.npz")
