import numpy as np
import pytest

from repro.ml.cfs import (
    cfs_select,
    discretize_features,
    symmetrical_uncertainty,
)


class TestDiscretize:
    def test_shape_and_dtype(self, rng):
        codes = discretize_features(rng.standard_normal((30, 4)))
        assert codes.shape == (30, 4)
        assert codes.dtype == int

    def test_equal_frequency_bins(self, rng):
        codes = discretize_features(rng.standard_normal((1000, 1)), bins=10)
        _, counts = np.unique(codes, return_counts=True)
        assert counts.min() > 60  # roughly 100 each

    def test_constant_column_single_code(self):
        codes = discretize_features(np.ones((20, 1)))
        assert np.unique(codes).size == 1

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            discretize_features(np.zeros(5))


class TestSymmetricalUncertainty:
    def test_identical_is_one(self, rng):
        a = rng.integers(0, 4, 100)
        assert symmetrical_uncertainty(a, a) == pytest.approx(1.0)

    def test_independent_near_zero(self, rng):
        a = rng.integers(0, 2, 5000)
        b = rng.integers(0, 2, 5000)
        assert symmetrical_uncertainty(a, b) < 0.05

    def test_symmetry(self, rng):
        a = rng.integers(0, 3, 200)
        b = rng.integers(0, 3, 200)
        assert symmetrical_uncertainty(a, b) == pytest.approx(
            symmetrical_uncertainty(b, a)
        )

    def test_constant_input_zero(self):
        assert symmetrical_uncertainty(np.zeros(10, int), np.arange(10)) == 0.0

    def test_bounds(self, rng):
        for _ in range(20):
            a = rng.integers(0, 5, 50)
            b = rng.integers(0, 5, 50)
            su = symmetrical_uncertainty(a, b)
            assert 0.0 <= su <= 1.0

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError, match="equal length"):
            symmetrical_uncertainty(np.zeros(3, int), np.zeros(4, int))


class TestCfsSelect:
    def _data(self, rng, n=200):
        """Feature 0 informative, 1 an exact duplicate of 0, 2-3 noise."""
        y = rng.integers(0, 2, n)
        f0 = y * 2.0 + rng.standard_normal(n) * 0.3
        f1 = f0.copy()  # perfectly redundant
        f2 = rng.standard_normal(n)
        f3 = rng.standard_normal(n)
        return np.column_stack([f0, f1, f2, f3]), y

    def test_picks_informative_feature(self, rng):
        X, y = self._data(rng)
        result = cfs_select(X, y)
        assert 0 in result.selected or 1 in result.selected

    def test_avoids_pure_noise(self, rng):
        X, y = self._data(rng)
        result = cfs_select(X, y)
        assert 2 not in result.selected
        assert 3 not in result.selected

    def test_redundant_pair_not_both_kept(self, rng):
        X, y = self._data(rng)
        result = cfs_select(X, y)
        assert not (0 in result.selected and 1 in result.selected)

    def test_two_complementary_features(self, rng):
        n = 400
        y = rng.integers(0, 4, n)
        f0 = (y % 2) + rng.standard_normal(n) * 0.15
        f1 = (y // 2) + rng.standard_normal(n) * 0.15
        noise = rng.standard_normal((n, 2))
        X = np.column_stack([f0, f1, noise])
        result = cfs_select(X, y)
        assert 0 in result.selected and 1 in result.selected

    def test_never_empty(self, rng):
        X = rng.standard_normal((40, 3))
        y = rng.integers(0, 2, 40)
        result = cfs_select(X, y)
        assert len(result.selected) >= 1

    def test_selected_sorted_unique(self, rng):
        X, y = self._data(rng)
        sel = cfs_select(X, y).selected
        assert sel == sorted(set(sel))

    def test_max_features_cap(self, rng):
        X = rng.standard_normal((50, 30))
        y = rng.integers(0, 2, 50)
        result = cfs_select(X, y, max_features=5)
        assert set(result.selected) <= set(range(30))

    def test_merit_matches_direct_evaluation(self, rng):
        # The incremental merit must equal the direct formula.
        from repro.ml.cfs import _MeritEvaluator

        X, y = self._data(rng, n=100)
        codes = discretize_features(X)
        _, y_codes = np.unique(y, return_inverse=True)
        ev = _MeritEvaluator(codes, y_codes)
        subset: frozenset[int] = frozenset()
        fc = ff = 0.0
        for j in (0, 2, 3):
            fc, ff = ev.extend_sums(subset, fc, ff, j)
            subset = subset | {j}
            assert ev.merit_from_sums(len(subset), fc, ff) == pytest.approx(
                ev.merit(subset)
            )

    def test_rejects_no_features(self):
        with pytest.raises(ValueError, match="no features"):
            cfs_select(np.zeros((5, 0)), np.zeros(5))

    def test_rejects_mismatched_lengths(self, rng):
        with pytest.raises(ValueError, match="disagree"):
            cfs_select(rng.standard_normal((5, 2)), np.zeros(4))
