"""Executable checks of the paper's qualitative claims.

Each test names the claim (section reference) and verifies the
mechanism behind it on controlled data. These complement the benchmark
shape assertions — they are cheap enough to run in every test pass.
"""

import numpy as np
import pytest

from repro import RPMClassifier, SaxParams
from repro.core.candidates import find_class_candidates
from repro.grammar.inference import discretize_class, induce_motifs
from repro.sax.discretize import SaxParams as SP, discretize


class TestClaimVariableLengthPatterns:
    """§3.2.1: numerosity reduction 'enables the discovery of
    representative patterns of varying lengths'."""

    def test_with_reduction_lengths_vary(self, rng):
        def instance(stretch):
            # The same bump, played at two speeds.
            s = rng.standard_normal(90) * 0.05
            bump = np.hanning(int(18 * stretch)) * 3
            s[20 : 20 + bump.size] += bump
            return s

        instances = [instance(1.0) for _ in range(4)] + [instance(1.5) for _ in range(4)]
        record, starts, lengths = discretize_class(instances, SP(14, 4, 4))
        motifs = induce_motifs(record, starts, lengths)
        all_lengths = {occ.length for m in motifs for occ in m.occurrences}
        assert len(all_lengths) > 1

    def test_without_reduction_one_word_per_position(self, rng):
        series = rng.standard_normal(60)
        record = discretize(series, SP(12, 4, 4), numerosity_reduction=False)
        assert len(record) == 60 - 12 + 1


class TestClaimClassSpecificPatterns:
    """§1/§2: 'each class has its own set of representative patterns,
    whereas in shapelets some classes may share a shapelet'."""

    def test_each_class_mined_with_own_instances(self, rng):
        up = [np.concatenate([np.zeros(30), np.hanning(20) * 3, np.zeros(30)])
              + rng.standard_normal(80) * 0.05 for _ in range(6)]
        down = [np.concatenate([np.zeros(30), -np.hanning(20) * 3, np.zeros(30)])
                + rng.standard_normal(80) * 0.05 for _ in range(6)]
        cands_up = find_class_candidates(up, "up", SP(16, 4, 4), gamma=0.3)
        cands_down = find_class_candidates(down, "down", SP(16, 4, 4), gamma=0.3)
        assert all(c.label == "up" for c in cands_up)
        assert all(c.label == "down" for c in cands_down)
        # The prototypes must differ in shape (up-bump vs down-bump).
        best_up = max(cands_up, key=lambda c: c.frequency)
        best_down = max(cands_down, key=lambda c: c.frequency)
        corr = np.corrcoef(
            best_up.values[: min(best_up.length, best_down.length)],
            best_down.values[: min(best_up.length, best_down.length)],
        )[0, 1]
        assert corr < 0.5


class TestClaimCandidateCountSmall:
    """§1: RPM considers O(#motifs) candidates instead of the O(nm²)
    subsequences of exhaustive shapelet search."""

    def test_candidate_pool_far_below_subsequence_count(self, rng):
        instances = [np.sin(np.linspace(0, 6, 80)) + rng.standard_normal(80) * 0.1
                     for _ in range(8)]
        candidates = find_class_candidates(instances, 0, SP(16, 4, 4), gamma=0.25)
        n, m = 8, 80
        subsequence_count = n * m * (m - 1) // 2
        assert len(candidates) < subsequence_count / 100


class TestClaimFixedLengthFeatureVector:
    """§2.1/§3.1: the transform turns any series into a fixed-length
    vector usable by any classifier."""

    def test_transform_is_fixed_length(self, tiny_cbf):
        clf = RPMClassifier(sax_params=SaxParams(24, 4, 4), seed=0)
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        k = len(clf.patterns_)
        assert clf.transform(tiny_cbf.X_train).shape == (tiny_cbf.n_train, k)
        assert clf.transform(tiny_cbf.X_test).shape == (tiny_cbf.n_test, k)

    def test_dynamic_pattern_count_varies_by_dataset(self, tiny_cbf, tiny_gun):
        a = RPMClassifier(sax_params=SaxParams(24, 4, 4), seed=0)
        a.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        b = RPMClassifier(sax_params=SaxParams(24, 4, 4), seed=0)
        b.fit(tiny_gun.X_train, tiny_gun.y_train)
        # §3.2.3: 'the number of selected patterns ... is dynamically
        # determined by the feature selection algorithm' — it is a
        # data-dependent quantity, not a hyperparameter.
        assert len(a.patterns_) >= 1 and len(b.patterns_) >= 1


class TestClaimJunctionSafety:
    """§3.2.2 / Figure 4: 'the algorithm does not consider the
    subsequences that span time series junction points'."""

    def test_no_occurrence_spans_junction(self, rng):
        instances = [rng.standard_normal(50) + np.sin(np.linspace(0, 9, 50)) * 2
                     for _ in range(5)]
        record, starts, lengths = discretize_class(instances, SP(12, 4, 4))
        ends = starts + lengths
        for motif in induce_motifs(record, starts, lengths):
            for occ in motif.occurrences:
                assert starts[occ.instance] <= occ.start
                assert occ.end <= ends[occ.instance]


class TestClaimParameterLearning:
    """§4: different classes can legitimately end up with different SAX
    parameters."""

    def test_per_class_params_honoured_end_to_end(self, tiny_gun):
        params = {0: SaxParams(20, 4, 4), 1: SaxParams(36, 6, 5)}
        clf = RPMClassifier(sax_params=params, seed=0)
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        for pattern in clf.patterns_:
            assert pattern.candidate.sax_params == params[pattern.label]
