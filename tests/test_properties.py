"""Property-based tests (hypothesis) on the core data structures."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cluster.linkage import agglomerate, cut_k
from repro.distance.best_match import best_match, best_match_scalar
from repro.distance.dtw import dtw_distance, dtw_distance_reference
from repro.distance.euclidean import euclidean, pairwise_euclidean
from repro.grammar.inference import find_word_occurrences
from repro.grammar.sequitur import induce_grammar
from repro.ml.stats import rankdata_average
from repro.sax.paa import paa
from repro.sax.sax import mindist, sax_word
from repro.sax.znorm import NORM_THRESHOLD, znorm

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def series_strategy(min_size=2, max_size=40):
    return arrays(np.float64, st.integers(min_size, max_size), elements=finite_floats)


class TestZnormProperties:
    @given(series_strategy())
    def test_idempotent(self, series):
        once = znorm(series)
        twice = znorm(once)
        np.testing.assert_allclose(once, twice, atol=1e-9)

    @given(series_strategy(), st.floats(0.1, 100), st.floats(-50, 50))
    def test_affine_invariance(self, series, scale, offset):
        # Scaling can legitimately push a near-flat series across the
        # flatness threshold; restrict to clearly non-flat inputs.
        assume(series.std() * min(scale, 1.0) > 10 * NORM_THRESHOLD)
        np.testing.assert_allclose(
            znorm(series), znorm(series * scale + offset), atol=1e-6
        )


class TestPaaProperties:
    @given(series_strategy(min_size=4, max_size=60), st.integers(1, 4))
    def test_output_within_input_range(self, series, segments):
        out = paa(series, segments)
        assert out.min() >= series.min() - 1e-9
        assert out.max() <= series.max() + 1e-9

    @given(series_strategy(min_size=4, max_size=60))
    def test_single_segment_is_mean(self, series):
        np.testing.assert_allclose(paa(series, 1), [series.mean()], atol=1e-9)


class TestSaxProperties:
    @given(series_strategy(min_size=8, max_size=50), st.integers(2, 8), st.integers(2, 8))
    def test_word_length_and_alphabet(self, series, w, alpha):
        word = sax_word(series, min(w, series.size), alpha)
        assert len(word) == min(w, series.size)
        assert all(ord("a") <= ord(ch) < ord("a") + alpha for ch in word)

    @given(series_strategy(min_size=16, max_size=32))
    def test_mindist_lower_bounds_euclidean(self, series):
        a = znorm(series)
        b = znorm(series[::-1].copy())
        n = a.size
        wa = sax_word(a, 8, 4)
        wb = sax_word(b, 8, 4)
        assert mindist(wa, wb, n, 4) <= euclidean(a, b) + 1e-6


class TestDistanceProperties:
    @given(series_strategy(4, 24), series_strategy(4, 24))
    def test_dtw_fast_equals_reference(self, a, b):
        fast = dtw_distance(a, b, 3)
        ref = dtw_distance_reference(a, b, 3)
        # Relative tolerance: the vectorized cumsum formulation trades
        # a few ulps of absolute precision on huge-magnitude inputs
        # (real use runs on z-normalized data).
        scale = max(1.0, abs(ref), float(np.abs(a).max()), float(np.abs(b).max()))
        assert abs(fast - ref) < 1e-6 * scale

    @given(series_strategy(4, 24))
    def test_dtw_identity(self, a):
        assert dtw_distance(a, a) == 0.0

    moderate_floats = st.floats(
        min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
    )

    @given(
        arrays(np.float64, st.integers(3, 10), elements=moderate_floats),
        arrays(np.float64, st.integers(12, 30), elements=moderate_floats),
    )
    def test_best_match_vectorized_equals_scalar(self, pattern, series):
        # Moderate magnitudes: at extreme offsets the two estimators can
        # legitimately disagree on which windows count as "flat". The
        # tolerance is scale-aware like test_euclidean's — the rolling
        # identity loses absolute precision as window offsets grow.
        fast = best_match(pattern, series).distance
        slow = best_match_scalar(pattern, series).distance
        scale = max(1.0, float(np.abs(series).max()))
        assert abs(fast - slow) < 1e-6 * scale

    @given(arrays(np.float64, st.tuples(st.integers(2, 8), st.integers(1, 5)), elements=finite_floats))
    def test_pairwise_euclidean_metric_axioms(self, X):
        D = pairwise_euclidean(X)
        assert (D >= 0).all()
        np.testing.assert_allclose(D, D.T, atol=1e-6)
        assert np.array_equal(np.diag(D), np.zeros(X.shape[0]))


class TestSequiturProperties:
    tokens_strategy = st.lists(st.sampled_from(["a", "b", "c", "ab"]), min_size=1, max_size=80)

    @given(tokens_strategy)
    @settings(max_examples=60)
    def test_derivation_exact(self, tokens):
        g = induce_grammar(tokens)
        assert g.start.expansion() == tokens

    @given(tokens_strategy)
    @settings(max_examples=60)
    def test_rule_utility(self, tokens):
        g = induce_grammar(tokens)
        for rule in g.non_start_rules():
            assert rule.refcount >= 2

    @given(tokens_strategy)
    @settings(max_examples=60)
    def test_rules_occur_at_least_twice(self, tokens):
        g = induce_grammar(tokens)
        for rule in g.non_start_rules():
            assert len(find_word_occurrences(tokens, rule.expansion())) >= 2


class TestClusteringProperties:
    @given(arrays(np.float64, st.tuples(st.integers(2, 12), st.integers(2, 4)), elements=finite_floats))
    @settings(max_examples=40)
    def test_cut_k_partitions(self, X):
        D = pairwise_euclidean(X)
        link = agglomerate(D)
        n = X.shape[0]
        for k in (1, 2, n):
            labels = cut_k(link, k)
            assert labels.size == n
            assert np.unique(labels).size <= k


class TestRankProperties:
    @given(arrays(np.float64, st.integers(1, 30), elements=finite_floats))
    def test_rank_sum_invariant(self, values):
        ranks = rankdata_average(values)
        n = values.size
        assert abs(ranks.sum() - n * (n + 1) / 2) < 1e-9


class TestDiscretizeProperties:
    from repro.sax.discretize import SaxParams as _SP

    @given(series_strategy(min_size=20, max_size=80))
    @settings(max_examples=40)
    def test_reduction_never_lengthens(self, series):
        from repro.sax.discretize import SaxParams, discretize

        params = SaxParams(8, 4, 4)
        none = discretize(series, params, numerosity_reduction="none")
        exact = discretize(series, params, numerosity_reduction="exact")
        mindist_rec = discretize(series, params, numerosity_reduction="mindist")
        assert len(mindist_rec) <= len(exact) <= len(none)

    @given(series_strategy(min_size=20, max_size=80))
    @settings(max_examples=40)
    def test_offsets_strictly_increasing(self, series):
        from repro.sax.discretize import SaxParams, discretize

        record = discretize(series, SaxParams(8, 4, 4))
        assert np.all(np.diff(record.offsets) > 0)


class TestEnvelopeProperties:
    from repro.distance.dtw import envelope as _env

    @given(series_strategy(min_size=3, max_size=40), st.integers(0, 10))
    @settings(max_examples=50)
    def test_envelope_widens_with_window(self, series, w):
        from repro.distance.dtw import envelope

        u1, l1 = envelope(series, w)
        u2, l2 = envelope(series, w + 2)
        assert (u2 >= u1 - 1e-12).all()
        assert (l2 <= l1 + 1e-12).all()


class TestMotifProperties:
    @given(st.integers(20, 60), st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_motif_occurrences_sane(self, period, reps):
        from repro.motif import find_motifs
        from repro.sax.discretize import SaxParams

        rng_local = np.random.default_rng(period * 31 + reps)
        t = np.arange(period * reps * 3)
        series = np.sin(2 * np.pi * t / period) + rng_local.standard_normal(t.size) * 0.05
        window = max(4, period // 2)
        motifs = find_motifs(series, SaxParams(window, 4, 4), refine=False)
        for motif in motifs:
            assert motif.frequency >= 2
            for occ in motif.occurrences:
                assert 0 <= occ.start < occ.end <= series.size
