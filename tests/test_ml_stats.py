import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.ml.stats import rankdata_average, wilcoxon_signed_rank


class TestRankdata:
    def test_no_ties(self):
        np.testing.assert_array_equal(
            rankdata_average(np.array([10.0, 30.0, 20.0])), [1, 3, 2]
        )

    def test_ties_share_average_rank(self):
        np.testing.assert_array_equal(
            rankdata_average(np.array([1.0, 2.0, 2.0, 3.0])), [1, 2.5, 2.5, 4]
        )

    def test_matches_scipy(self, rng):
        for _ in range(20):
            values = rng.integers(0, 5, 15).astype(float)
            np.testing.assert_allclose(
                rankdata_average(values), scipy_stats.rankdata(values)
            )


class TestWilcoxon:
    def test_matches_scipy_p_value(self, rng):
        for _ in range(25):
            x = rng.standard_normal(30)
            y = x + rng.standard_normal(30) * 0.5 + 0.2
            ours = wilcoxon_signed_rank(x, y)
            theirs = scipy_stats.wilcoxon(
                x, y, zero_method="wilcox", correction=True, mode="approx"
            )
            assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)
            assert ours.statistic == pytest.approx(theirs.statistic)

    def test_clear_difference_significant(self, rng):
        x = rng.standard_normal(40)
        y = x + 1.0
        assert wilcoxon_signed_rank(x, y).p_value < 1e-4

    def test_no_difference_not_significant(self, rng):
        x = rng.standard_normal(40)
        y = x + rng.standard_normal(40) * 0.001 * np.where(np.arange(40) % 2 == 0, 1, -1)
        assert wilcoxon_signed_rank(x, y).p_value > 0.05

    def test_symmetric_in_arguments(self, rng):
        x = rng.standard_normal(25)
        y = rng.standard_normal(25)
        assert wilcoxon_signed_rank(x, y).p_value == pytest.approx(
            wilcoxon_signed_rank(y, x).p_value
        )

    def test_zero_differences_dropped(self):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        y = np.array([1.0, 2.5, 2.5, 4.5, 4.0, 7.0, 6.0])
        result = wilcoxon_signed_rank(x, y)
        assert result.n_nonzero == 6

    def test_all_zero_rejected(self):
        x = np.arange(5.0)
        with pytest.raises(ValueError, match="zero"):
            wilcoxon_signed_rank(x, x)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            wilcoxon_signed_rank(np.zeros(3), np.zeros(4))

    def test_p_value_in_unit_interval(self, rng):
        for _ in range(10):
            x = rng.standard_normal(12)
            y = rng.standard_normal(12)
            assert 0.0 <= wilcoxon_signed_rank(x, y).p_value <= 1.0
