"""Parity and cache tests for the blocked-SU CFS kernel.

The blocked contingency kernel must be *bitwise* interchangeable with
the scalar ``np.unique``-per-pair reference: same discretized codes,
same SU values expression for expression, same selected subsets and
merits. The :class:`SelectionCache` must never change results either —
only skip repeated pre-work — mirroring the guarantees (and the test
shape) of the discretization cache suite.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.cfs import (
    _MeritEvaluator,
    cfs_select,
    column_entropies,
    discretize_features,
    feature_class_su,
    feature_feature_su_matrix,
    su_implementation,
    symmetrical_uncertainty,
)
from repro.obs.metrics import MetricsRegistry, registry, scoped_registry
from repro.runtime import SelectionCache


@pytest.fixture()
def rng() -> np.random.Generator:
    # Module-local override of the session-scoped conftest fixture:
    # these tests draw many variates, and sharing the session stream
    # would shift the data every downstream test module sees.
    return np.random.default_rng(20240806)


def _reference_discretize(X: np.ndarray, bins: int) -> np.ndarray:
    """The pre-vectorization per-column loop (quantiles + searchsorted)."""
    n, d = X.shape
    codes = np.empty((n, d), dtype=int)
    quantiles = np.linspace(0, 1, bins + 1)[1:-1]
    for j in range(d):
        edges = np.unique(np.quantile(X[:, j], quantiles))
        codes[:, j] = np.searchsorted(edges, X[:, j], side="right")
    return codes


@st.composite
def code_matrices(draw):
    """Integer code matrices with adversarial column structure.

    Mixes plain random columns with constant columns (zero entropy) and
    exact duplicates (SU == 1 pairs) — the branches where a clamp or a
    zero-entropy guard could diverge between implementations.
    """
    n = draw(st.integers(2, 40))
    d = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 2**32 - 1))
    gen = np.random.default_rng(seed)
    codes = gen.integers(0, draw(st.integers(1, 6)), size=(n, d))
    for j in range(d):
        kind = draw(st.sampled_from(["plain", "constant", "duplicate"]))
        if kind == "constant":
            codes[:, j] = draw(st.integers(0, 3))
        elif kind == "duplicate" and j > 0:
            codes[:, j] = codes[:, draw(st.integers(0, j - 1))]
    return codes


@st.composite
def labelings(draw, n):
    """Class code vectors including the degenerate single-class case."""
    n_classes = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**32 - 1))
    return np.random.default_rng(seed).integers(0, n_classes, size=n)


class TestBlockedSuParity:
    @given(code_matrices(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_feature_class_su_matches_scalar(self, codes, data):
        y_codes = data.draw(labelings(codes.shape[0]))
        expected = np.array(
            [
                symmetrical_uncertainty(codes[:, j], y_codes)
                for j in range(codes.shape[1])
            ]
        )
        got = feature_class_su(codes, y_codes)
        np.testing.assert_allclose(got, expected, rtol=1e-12, atol=0.0)
        # The real guarantee is stronger than close: bitwise identical.
        np.testing.assert_array_equal(got, expected)

    @given(code_matrices(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_feature_feature_matrix_matches_pairwise_loop(self, codes, data):
        d = codes.shape[1]
        k = data.draw(st.integers(1, d))
        indices = list(
            np.random.default_rng(data.draw(st.integers(0, 2**32 - 1))).permutation(d)[
                :k
            ]
        )
        got = feature_feature_su_matrix(codes, indices)
        expected = np.zeros((k, k))
        for p in range(k):
            for q in range(p + 1, k):
                # The scalar path (``_MeritEvaluator.su_ff``) orients every
                # pair by original column index; joint-entropy fuse order
                # matters at the last ulp, so the oracle must match it.
                lo, hi = sorted((indices[p], indices[q]))
                su = symmetrical_uncertainty(codes[:, lo], codes[:, hi])
                expected[p, q] = expected[q, p] = su
        np.testing.assert_allclose(got, expected, rtol=1e-12, atol=0.0)
        np.testing.assert_array_equal(got, expected)

    @given(code_matrices())
    @settings(max_examples=40, deadline=None)
    def test_column_entropies_match_unique_path(self, codes):
        from repro.ml.cfs import _entropy

        expected = np.array([_entropy(codes[:, j]) for j in range(codes.shape[1])])
        np.testing.assert_array_equal(column_entropies(codes), expected)

    def test_vectorized_discretize_matches_per_column_loop(self, rng):
        for bins in (1, 2, 10):
            X = rng.standard_normal((37, 6))
            X[:, 2] = 1.5  # constant column → all duplicate quantiles
            X[:, 4] = np.round(X[:, 4])  # heavy ties → some duplicate edges
            np.testing.assert_array_equal(
                discretize_features(X, bins=bins), _reference_discretize(X, bins)
            )

    def test_matrix_oriented_by_original_index(self, rng):
        # Reversed index order must still fuse every pair as
        # (min, max) of the *original* columns — the scalar key.
        codes = rng.integers(0, 5, size=(25, 4))
        forward = feature_feature_su_matrix(codes, [0, 1, 2, 3])
        backward = feature_feature_su_matrix(codes, [3, 2, 1, 0])
        np.testing.assert_array_equal(backward, forward[::-1, ::-1])

    def test_su_pairs_metric_counts_computed_pairs(self, rng):
        codes = rng.integers(0, 4, size=(30, 5))
        y_codes = rng.integers(0, 2, size=30)
        metrics = MetricsRegistry()
        with scoped_registry(metrics):
            feature_class_su(codes, y_codes)
            feature_feature_su_matrix(codes, [0, 1, 2])
        assert metrics.counter_value("cfs.su_pairs") == 5 + 3


class TestCfsSelectParity:
    def _datasets(self, rng):
        n, d = 60, 12
        plain = rng.standard_normal((n, d))
        y = np.repeat([0, 1, 2], n // 3)
        informative = plain.copy()
        informative[:, 0] += y * 2.0
        informative[:, 1] -= y
        informative[:, 5] = informative[:, 0]  # redundant duplicate
        informative[:, 7] = 0.25  # constant
        wide = rng.standard_normal((40, 80))  # > max_features cap
        wide[:, 3] += np.repeat([0, 3], 20)
        return [
            (plain, y),
            (informative, y),
            (wide, np.repeat([0, 1], 20)),
        ]

    def test_blocked_matches_scalar_bitwise(self, rng):
        for X, y in self._datasets(rng):
            blocked = cfs_select(X, y)
            with su_implementation("scalar"):
                scalar = cfs_select(X, y)
            assert blocked.selected == scalar.selected
            assert blocked.merit == scalar.merit
            np.testing.assert_array_equal(
                blocked.feature_class_su, scalar.feature_class_su
            )

    def test_cached_matches_scalar_cold_and_warm(self, rng):
        cache = SelectionCache(max_entries=256, metrics=MetricsRegistry())
        for X, y in self._datasets(rng):
            with su_implementation("scalar"):
                scalar = cfs_select(X, y)
            for _ in range(2):  # cold, then fully warm
                cached = cfs_select(X, y, cache=cache)
                assert cached.selected == scalar.selected
                assert cached.merit == scalar.merit
                np.testing.assert_array_equal(
                    cached.feature_class_su, scalar.feature_class_su
                )
        assert cache.hits > 0

    def test_merit_matches_evaluator_oracle(self, rng):
        for X, y in self._datasets(rng):
            result = cfs_select(X, y)
            codes = discretize_features(np.asarray(X, dtype=float))
            _, y_codes = np.unique(y, return_inverse=True)
            oracle = _MeritEvaluator(codes, y_codes).merit(frozenset(result.selected))
            assert result.merit == pytest.approx(oracle, rel=1e-12)

    def test_seed_dataset_pipeline_features(self):
        # Same construction as the conftest two-blob seed dataset.
        gen = np.random.default_rng(12345)
        X = np.vstack(
            [gen.normal(0.0, 0.6, size=(40, 3)), gen.normal(3.0, 0.6, size=(40, 3))]
        )
        y = np.array([0] * 40 + [1] * 40)
        blocked = cfs_select(X, y)
        with su_implementation("scalar"):
            scalar = cfs_select(X, y)
        assert blocked.selected == scalar.selected
        assert blocked.merit == scalar.merit

    def test_implementation_switch_validates_and_restores(self):
        with pytest.raises(ValueError, match="implementation"):
            with su_implementation("simd"):
                pass  # pragma: no cover
        from repro.ml import cfs

        assert cfs._IMPLEMENTATION == "blocked"
        with su_implementation("scalar"):
            assert cfs._IMPLEMENTATION == "scalar"
        assert cfs._IMPLEMENTATION == "blocked"


class TestSelectionCache:
    def _problem(self, rng, d=6):
        X = rng.standard_normal((30, d))
        y_codes = rng.integers(0, 2, size=30)
        return X, y_codes

    def test_matrix_hit_on_repeat(self, rng):
        X, y_codes = self._problem(rng)
        cache = SelectionCache(max_entries=64, metrics=MetricsRegistry())
        first = cache.prepare(X, y_codes, bins=10, max_features=64)
        # Cold: one matrix miss + one miss per column.
        assert (cache.hits, cache.misses) == (0, 1 + X.shape[1])
        second = cache.prepare(X, y_codes, bins=10, max_features=64)
        assert second is first
        assert (cache.hits, cache.misses) == (1, 1 + X.shape[1])
        assert cache.n_matrices == 1

    def test_column_hits_across_overlapping_matrices(self, rng):
        X, y_codes = self._problem(rng, d=5)
        cache = SelectionCache(max_entries=64, metrics=MetricsRegistry())
        cache.prepare(X, y_codes, bins=10, max_features=64)
        shuffled = X[:, [4, 3, 2, 1, 0]]
        cache.prepare(shuffled, y_codes, bins=10, max_features=64)
        # New matrix (miss) but every column fingerprint is already held.
        assert cache.hits == 5
        assert cache.misses == (1 + 5) + 1
        assert len(cache) == 5
        assert cache.n_matrices == 2

    def test_results_identical_regardless_of_cache_state(self, rng):
        X, y_codes = self._problem(rng)
        cold = SelectionCache(max_entries=0, metrics=MetricsRegistry())
        warm = SelectionCache(max_entries=64, metrics=MetricsRegistry())
        expected = cold.prepare(X, y_codes, bins=10, max_features=64)
        warm.prepare(X[:, :3], y_codes, bins=10, max_features=64)  # partial overlap
        got = warm.prepare(X, y_codes, bins=10, max_features=64)
        np.testing.assert_array_equal(got[0], expected[0])
        assert got[1] == expected[1]
        np.testing.assert_array_equal(got[2], expected[2])

    def test_lru_eviction_of_columns(self, rng):
        cache = SelectionCache(max_entries=4, metrics=MetricsRegistry())
        X, y_codes = self._problem(rng, d=3)
        cache.prepare(X, y_codes, bins=10, max_features=64)
        other, _ = self._problem(rng, d=3)
        cache.prepare(other, y_codes, bins=10, max_features=64)  # 6 columns > 4
        assert cache.evictions >= 2
        assert len(cache) == 4

    def test_different_data_never_aliases(self, rng):
        X, y_codes = self._problem(rng)
        other = X.copy()
        other[0, 0] += 1.0
        assert SelectionCache.token(X) != SelectionCache.token(other)
        assert SelectionCache.token(X) == SelectionCache.token(X.copy())
        # Same bytes, different dtype/shape must not alias either.
        ints = np.arange(4, dtype=np.int64)
        assert SelectionCache.token(ints) != SelectionCache.token(
            ints.view(np.float64)
        )
        assert SelectionCache.token(ints) != SelectionCache.token(
            ints.reshape(2, 2)
        )

    def test_per_label_su_memo_rides_column_entry(self, rng):
        X, y_codes = self._problem(rng, d=2)
        cache = SelectionCache(max_entries=64, metrics=MetricsRegistry())
        cache.prepare(X, y_codes, bins=10, max_features=64)
        flipped = 1 - y_codes
        cache.prepare(X, flipped, bins=10, max_features=64)
        (_, entry), *_ = list(cache._columns.items())
        assert entry.n_labelings == 2

    def test_zero_size_disables_caching(self, rng):
        X, y_codes = self._problem(rng)
        cache = SelectionCache(max_entries=0, metrics=MetricsRegistry())
        a = cache.prepare(X, y_codes, bins=10, max_features=64)
        b = cache.prepare(X, y_codes, bins=10, max_features=64)
        assert a is not b
        assert len(cache) == 0 and cache.n_matrices == 0
        assert cache.misses == 2 and cache.hits == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            SelectionCache(max_entries=-1)

    def test_metrics_published(self, rng):
        metrics = MetricsRegistry()
        X, y_codes = self._problem(rng, d=3)
        cache = SelectionCache(max_entries=2, metrics=metrics)
        cache.prepare(X, y_codes, bins=10, max_features=64)
        cache.prepare(X, y_codes, bins=10, max_features=64)
        assert metrics.counter_value("select.cache.hits") == cache.hits
        assert metrics.counter_value("select.cache.misses") == cache.misses
        assert metrics.counter_value("select.cache.evictions") == cache.evictions
        assert cache.evictions >= 1  # 3 columns through a 2-entry table

    def test_bins_part_of_key(self, rng):
        X, y_codes = self._problem(rng, d=2)
        cache = SelectionCache(max_entries=64, metrics=MetricsRegistry())
        cache.prepare(X, y_codes, bins=10, max_features=64)
        cache.prepare(X, y_codes, bins=5, max_features=64)
        assert cache.hits == 0
        assert len(cache) == 4  # 2 columns × 2 bin settings

    def test_clear_drops_entries_keeps_counters(self, rng):
        X, y_codes = self._problem(rng)
        cache = SelectionCache(max_entries=64, metrics=MetricsRegistry())
        cache.prepare(X, y_codes, bins=10, max_features=64)
        misses = cache.misses
        cache.clear()
        assert len(cache) == 0 and cache.n_matrices == 0
        assert cache.misses == misses


class TestDefaultRegistryWiring:
    def test_cache_defaults_to_process_registry(self, rng):
        metrics = MetricsRegistry()
        with scoped_registry(metrics):
            cache = SelectionCache(max_entries=8)
            X = rng.standard_normal((20, 2))
            cache.prepare(X, rng.integers(0, 2, size=20), bins=10, max_features=64)
        assert metrics.counter_value("select.cache.misses") == cache.misses
        assert cache.misses > 0
