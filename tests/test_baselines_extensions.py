import numpy as np
import pytest

from repro.baselines import (
    BagOfPatternsClassifier,
    ShapeletTransformClassifier,
    TunedLearningShapelets,
)
from repro.sax.discretize import SaxParams


class TestShapeletTransform:
    def test_learns_gun_point(self, tiny_gun):
        clf = ShapeletTransformClassifier(n_shapelets=6, seed=0)
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        acc = np.mean(clf.predict(tiny_gun.X_test) == tiny_gun.y_test)
        assert acc > 0.6

    def test_transform_shape(self, tiny_gun):
        clf = ShapeletTransformClassifier(n_shapelets=5, seed=0)
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        F = clf.transform(tiny_gun.X_test)
        assert F.shape == (tiny_gun.n_test, len(clf.shapelets_))
        assert (F >= 0).all()

    def test_shapelets_sorted_by_gain(self, tiny_gun):
        clf = ShapeletTransformClassifier(n_shapelets=8, seed=0)
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        gains = [s.gain for s in clf.shapelets_]
        assert gains == sorted(gains, reverse=True)

    def test_self_similarity_pruning(self, tiny_gun):
        clf = ShapeletTransformClassifier(n_shapelets=10, seed=0)
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        for i, a in enumerate(clf.shapelets_):
            for b in clf.shapelets_[i + 1 :]:
                if a.source_series == b.source_series:
                    assert abs(a.position - b.position) >= min(a.length, b.length)

    def test_single_class_degenerates_gracefully(self, rng):
        X = rng.standard_normal((5, 40))
        y = np.zeros(5)
        clf = ShapeletTransformClassifier(seed=0).fit(X, y)
        assert np.array_equal(clf.predict(X), y)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            ShapeletTransformClassifier().predict(np.zeros((1, 30)))


class TestBagOfPatterns:
    PARAMS = SaxParams(24, 4, 4)

    def test_learns_cbf(self, tiny_cbf):
        clf = BagOfPatternsClassifier(params=self.PARAMS)
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        acc = np.mean(clf.predict(tiny_cbf.X_test) == tiny_cbf.y_test)
        assert acc > 0.55

    def test_cosine_metric(self, tiny_cbf):
        clf = BagOfPatternsClassifier(params=self.PARAMS, metric="cosine")
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        acc = np.mean(clf.predict(tiny_cbf.X_test) == tiny_cbf.y_test)
        assert acc > 0.5

    def test_transform_uses_train_vocabulary(self, tiny_cbf):
        clf = BagOfPatternsClassifier(params=self.PARAMS)
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        F = clf.transform(tiny_cbf.X_test)
        assert F.shape == (tiny_cbf.n_test, len(clf.vocabulary_))

    def test_histograms_nonnegative_integers(self, tiny_cbf):
        clf = BagOfPatternsClassifier(params=self.PARAMS)
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        H = clf.train_histograms_
        assert (H >= 0).all()
        np.testing.assert_array_equal(H, np.round(H))

    def test_rejects_bad_metric(self):
        with pytest.raises(ValueError, match="metric"):
            BagOfPatternsClassifier(params=self.PARAMS, metric="manhattan")

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            BagOfPatternsClassifier(params=self.PARAMS).predict(np.zeros((1, 30)))


class TestTunedLearningShapelets:
    def test_small_grid_fit(self, tiny_gun):
        grid = {"n_shapelets": (4,), "length_fraction": (0.15, 0.25), "l2": (0.01,)}
        clf = TunedLearningShapelets(grid=grid, cv_folds=2, epochs=60, seed=0)
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        assert clf.best_params_ in (
            {"l2": 0.01, "length_fraction": 0.15, "n_shapelets": 4},
            {"l2": 0.01, "length_fraction": 0.25, "n_shapelets": 4},
        )
        assert len(clf.cv_errors_) == 2
        preds = clf.predict(tiny_gun.X_test)
        assert preds.shape == tiny_gun.y_test.shape

    def test_best_config_has_lowest_cv_error(self, tiny_gun):
        grid = {"n_shapelets": (2, 6), "length_fraction": (0.15,), "l2": (0.01,)}
        clf = TunedLearningShapelets(grid=grid, cv_folds=2, epochs=60, seed=0)
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        best_key = tuple(sorted(clf.best_params_.items()))
        assert clf.cv_errors_[best_key] == min(clf.cv_errors_.values())

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            TunedLearningShapelets().predict(np.zeros((1, 30)))


class TestLogicalShapelets:
    def test_learns_gun_point(self, tiny_gun):
        from repro.baselines import LogicalShapeletsClassifier

        clf = LogicalShapeletsClassifier(seed=0).fit(tiny_gun.X_train, tiny_gun.y_train)
        acc = np.mean(clf.predict(tiny_gun.X_test) == tiny_gun.y_test)
        assert acc > 0.6

    def test_logical_predicate_on_xor_structure(self, rng):
        # Class 1 has bump A OR bump B; class 0 has neither. A single
        # shapelet threshold cannot express OR cleanly, but the logical
        # node can.
        from repro.baselines import LogicalShapeletsClassifier

        def series(kind):
            s = rng.standard_normal(80) * 0.05
            if kind == "a":
                s[10:26] += np.hanning(16) * 3
            elif kind == "b":
                s[50:66] -= np.hanning(16) * 3
            return s

        X = np.array(
            [series("a") for _ in range(6)]
            + [series("b") for _ in range(6)]
            + [series("none") for _ in range(12)]
        )
        y = np.array([1] * 12 + [0] * 12)
        clf = LogicalShapeletsClassifier(seed=0, max_depth=3)
        clf.fit(X, y)
        assert np.mean(clf.predict(X) == y) > 0.85

    def test_pure_input_leaf_only(self, rng):
        from repro.baselines import LogicalShapeletsClassifier

        X = rng.standard_normal((5, 40))
        clf = LogicalShapeletsClassifier(seed=0).fit(X, np.zeros(5))
        assert clf.root_.is_leaf

    def test_predict_before_fit(self):
        from repro.baselines import LogicalShapeletsClassifier

        with pytest.raises(RuntimeError, match="fit"):
            LogicalShapeletsClassifier().predict(np.zeros((1, 30)))

    def test_node_evaluate_ops(self, rng):
        from repro.baselines.logical_shapelets import LogicalNode

        pattern = np.hanning(10)
        series = rng.standard_normal(40) * 0.05
        series[5:15] += pattern * 4
        near = LogicalNode(shapelet_a=pattern, threshold_a=1.0)
        assert near.evaluate(series)
        far = LogicalNode(shapelet_a=pattern, threshold_a=1.0,
                          shapelet_b=-pattern, threshold_b=1e-6, op="and")
        assert not far.evaluate(series)
        either = LogicalNode(shapelet_a=pattern, threshold_a=1.0,
                             shapelet_b=-pattern, threshold_b=1e-6, op="or")
        assert either.evaluate(series)
