"""Parity and cache tests for the vectorized discretization pipeline.

The integer-coded path must be *bitwise* interchangeable with the
legacy string path: same words, same offsets (values and dtype), same
dropped count, under every numerosity-reduction mode, junction mask and
degenerate input. The :class:`DiscretizationCache` must never change
results either — only skip repeated pre-work.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ParamRanges, ParamSelector
from repro.grammar.inference import find_token_occurrences, find_word_occurrences
from repro.obs.metrics import MetricsRegistry
from repro.runtime import DiscretizationCache
from repro.runtime.executor import ParallelExecutor
from repro.sax.discretize import (
    REDUCTIONS,
    SaxParams,
    SaxRecord,
    discretize,
    discretize_implementation,
)


@pytest.fixture()
def rng() -> np.random.Generator:
    # Module-local override of the session-scoped conftest fixture:
    # these tests draw many variates, and sharing the session stream
    # would shift the data every downstream test module sees.
    return np.random.default_rng(20240806)


def _assert_records_equal(a: SaxRecord, b: SaxRecord) -> None:
    assert a.words == b.words
    assert a.offsets.dtype == b.offsets.dtype
    np.testing.assert_array_equal(a.offsets, b.offsets)
    assert a.dropped == b.dropped
    assert a.series_length == b.series_length
    assert a.params == b.params


def _random_mask(rng, n: int) -> np.ndarray:
    mask = rng.random(n) > 0.25
    if not mask.any():
        mask[0] = True
    return mask


class TestVectorizedLegacyParity:
    PARAM_GRID = [
        SaxParams(8, 4, 4),
        SaxParams(10, 3, 5),
        SaxParams(12, 5, 3),  # window not divisible by paa
        SaxParams(7, 7, 6),
    ]

    @pytest.mark.parametrize("reduction", REDUCTIONS + (True, False))
    def test_random_series_all_modes(self, rng, reduction):
        for params in self.PARAM_GRID:
            series = rng.standard_normal(90)
            with discretize_implementation("legacy"):
                expected = discretize(series, params, numerosity_reduction=reduction)
            got = discretize(series, params, numerosity_reduction=reduction)
            _assert_records_equal(got, expected)

    @pytest.mark.parametrize("reduction", REDUCTIONS)
    def test_junction_masks_break_runs(self, rng, reduction):
        params = SaxParams(8, 4, 4)
        for _ in range(10):
            series = rng.standard_normal(70)
            mask = _random_mask(rng, series.size - params.window_size + 1)
            with discretize_implementation("legacy"):
                expected = discretize(
                    series, params, numerosity_reduction=reduction, valid_start=mask
                )
            got = discretize(
                series, params, numerosity_reduction=reduction, valid_start=mask
            )
            _assert_records_equal(got, expected)

    @pytest.mark.parametrize("reduction", REDUCTIONS)
    def test_flat_and_repetitive_series(self, reduction):
        params = SaxParams(8, 4, 4)
        flat = np.zeros(50)
        saw = np.tile([0.0, 1.0, 0.0, -1.0], 15).astype(float)
        steps = np.repeat([0.0, 5.0, 0.0], 20).astype(float)
        for series in (flat, saw, steps):
            with discretize_implementation("legacy"):
                expected = discretize(series, params, numerosity_reduction=reduction)
            got = discretize(series, params, numerosity_reduction=reduction)
            _assert_records_equal(got, expected)

    def test_mindist_differs_from_adjacent_heuristic(self):
        # A strictly drifting code sequence: every word is within
        # MINDIST-zero of its neighbour but not of the last *kept* one.
        # Guards against "compare adjacent rows" shortcuts.
        series = np.linspace(0.0, 1.0, 60) ** 2
        params = SaxParams(8, 4, 6)
        with discretize_implementation("legacy"):
            expected = discretize(series, params, numerosity_reduction="mindist")
        got = discretize(series, params, numerosity_reduction="mindist")
        _assert_records_equal(got, expected)

    def test_cache_never_changes_results(self, rng):
        cache = DiscretizationCache(max_entries=8)
        for params in self.PARAM_GRID:
            series = rng.standard_normal(80)
            for reduction in REDUCTIONS:
                plain = discretize(series, params, numerosity_reduction=reduction)
                cached = discretize(
                    series, params, numerosity_reduction=reduction, cache=cache
                )
                again = discretize(
                    series, params, numerosity_reduction=reduction, cache=cache
                )
                _assert_records_equal(cached, plain)
                _assert_records_equal(again, plain)
        assert cache.hits > 0

    def test_unknown_implementation_rejected(self):
        with pytest.raises(ValueError, match="implementation"):
            with discretize_implementation("cython"):
                pass


class TestTokenIds:
    def test_token_ids_render_back_to_words(self, rng):
        record = discretize(rng.standard_normal(90), SaxParams(8, 4, 4))
        words = record.words
        assert [record.vocabulary[i] for i in record.token_ids] == words
        # One id per distinct word, ids dense in [0, vocab).
        assert sorted(set(record.vocabulary)) == sorted(set(words))
        assert record.token_ids.dtype == np.int64
        assert set(np.unique(record.token_ids)) <= set(range(len(record.vocabulary)))

    def test_equal_words_share_an_id(self, rng):
        record = discretize(
            rng.standard_normal(90), SaxParams(8, 4, 3), numerosity_reduction=False
        )
        ids_by_word: dict[str, set] = {}
        for word, token in zip(record.words, record.token_ids.tolist()):
            ids_by_word.setdefault(word, set()).add(token)
        assert all(len(ids) == 1 for ids in ids_by_word.values())

    def test_words_constructed_record_has_tokens(self):
        record = SaxRecord(
            words=["ab", "cd", "ab"],
            offsets=np.array([0, 1, 2]),
            params=SaxParams(4, 2, 4),
            series_length=7,
        )
        assert record.token_ids.tolist() == [0, 1, 0]
        assert record.vocabulary == ("ab", "cd")

    def test_find_token_occurrences_matches_scalar_search(self, rng):
        for _ in range(20):
            ids = rng.integers(0, 4, size=30)
            k = int(rng.integers(1, 4))
            start = int(rng.integers(0, ids.size - k))
            needle = tuple(ids[start : start + k].tolist())
            expected = find_word_occurrences(ids.tolist(), needle)
            assert find_token_occurrences(ids, needle) == expected
        assert find_token_occurrences(np.array([1, 2]), ()) == []
        assert find_token_occurrences(np.array([1]), (1, 2)) == []


class TestDiscretizationCache:
    def test_hit_and_miss_counters(self, rng):
        series = rng.standard_normal(60)
        cache = DiscretizationCache(max_entries=4)
        first = cache.windows(series, 8)
        assert (cache.hits, cache.misses) == (0, 1)
        second = cache.windows(series, 8)
        assert second is first
        assert (cache.hits, cache.misses) == (1, 1)
        cache.windows(series, 12)
        assert (cache.hits, cache.misses) == (1, 2)

    def test_lru_eviction(self, rng):
        series = rng.standard_normal(60)
        cache = DiscretizationCache(max_entries=2)
        a = cache.windows(series, 4)
        cache.windows(series, 5)
        cache.windows(series, 6)  # evicts window-4 entry (LRU)
        assert cache.evictions == 1
        assert len(cache) == 2
        assert cache.windows(series, 5) is not None  # still cached
        assert cache.hits == 1
        refetched = cache.windows(series, 4)  # rebuilt, not the old object
        assert refetched is not a

    def test_recency_updates_on_hit(self, rng):
        series = rng.standard_normal(60)
        cache = DiscretizationCache(max_entries=2)
        a = cache.windows(series, 4)
        cache.windows(series, 5)
        assert cache.windows(series, 4) is a  # touch 4 → 5 is now LRU
        cache.windows(series, 6)
        assert cache.windows(series, 4) is a  # survived the eviction
        assert cache.evictions == 1

    def test_different_data_never_aliases(self, rng):
        series = rng.standard_normal(60)
        other = series.copy()
        other[0] += 1.0
        cache = DiscretizationCache(max_entries=8)
        cache.windows(series, 8)
        cache.windows(other, 8)
        assert cache.misses == 2 and cache.hits == 0
        assert DiscretizationCache.token(series) != DiscretizationCache.token(other)
        assert DiscretizationCache.token(series) == DiscretizationCache.token(
            series.copy()
        )

    def test_zero_size_disables_caching(self, rng):
        series = rng.standard_normal(40)
        cache = DiscretizationCache(max_entries=0)
        a = cache.windows(series, 5)
        b = cache.windows(series, 5)
        assert a is not b
        assert len(cache) == 0 and cache.misses == 2

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            DiscretizationCache(max_entries=-1)

    def test_paa_memoized_per_entry(self, rng):
        series = rng.standard_normal(60)
        cache = DiscretizationCache(max_entries=4)
        entry = cache.windows(series, 10)
        first = entry.paa(5)
        assert entry.paa(5) is first
        entry.paa(4)
        assert entry.n_paa_sizes == 2

    def test_metrics_published(self, rng):
        metrics = MetricsRegistry()
        series = rng.standard_normal(60)
        cache = DiscretizationCache(max_entries=1, metrics=metrics)
        cache.windows(series, 8)
        cache.windows(series, 8)
        cache.windows(series, 9)  # evicts window-8
        assert metrics.counter_value("discretize.cache.hits") == 1
        assert metrics.counter_value("discretize.cache.misses") == 2
        assert metrics.counter_value("discretize.cache.evictions") == 1


class TestParamSelectorParallelEquivalence:
    def _dataset(self):
        rng = np.random.default_rng(3)
        n, m = 20, 50
        X = rng.standard_normal((n, m))
        y = np.repeat([0, 1], n // 2)
        X[y == 1] += np.sin(np.linspace(0, 6, m))
        return X, y

    def _selector(self, X, y, executor):
        return ParamSelector(
            X,
            y,
            ranges=ParamRanges(window=(8, 26), paa=(3, 7), alphabet=(3, 6)),
            n_splits=2,
            cv_folds=3,
            seed=0,
            executor=executor,
        )

    def test_parallel_direct_matches_serial(self):
        X, y = self._dataset()
        serial = self._selector(X, y, None)
        best_serial = serial.select_direct(max_evaluations=20, max_iterations=8)
        with ParallelExecutor(4, "thread") as executor:
            parallel = self._selector(X, y, executor)
            best_parallel = parallel.select_direct(max_evaluations=20, max_iterations=8)
        assert best_serial == best_parallel
        # Deterministic cache-merge: same triples, same insertion order.
        assert list(serial._cache.keys()) == list(parallel._cache.keys())
        for key, evaluation in serial._cache.items():
            other = parallel._cache[key]
            assert evaluation.pruned == other.pruned
            assert evaluation.f1_by_class == other.f1_by_class
        assert serial._best == parallel._best

    def test_running_best_matches_full_rescan(self):
        X, y = self._dataset()
        selector = self._selector(X, y, None)
        selector.select_direct(max_evaluations=15, max_iterations=6)
        for label in selector.classes_:
            best_key, best_f1 = None, -1.0
            for key, evaluation in selector._cache.items():
                if evaluation.pruned:
                    continue
                f1 = evaluation.f1_by_class.get(label, 0.0)
                if f1 > best_f1:
                    best_f1, best_key = f1, key
            assert selector._best_key_for(label, fallback=None) == (
                best_key
                if best_key is not None
                else selector.ranges.clip(
                    (selector.ranges.window[0] + selector.ranges.window[1]) // 2, 6, 5
                )
            )
