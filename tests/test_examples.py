"""Smoke tests: every example script runs end to end.

Each example is executed as a subprocess from the examples directory
(they import the local ``example_utils`` shim) and must exit cleanly
with its headline output present.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SRC_DIR = Path(__file__).parent.parent / "src"

CASES = [
    ("quickstart.py", "Representative patterns"),
    ("coffee_patterns.py", "caffeine band"),
    ("ecg_feature_space.py", "linear SVM training accuracy"),
    ("rotation_invariance.py", "Error rates"),
    ("medical_alarm.py", "Alarm patterns"),
    ("grammar_motifs.py", "variable-length"),
    ("cricket_exploration.py", "Explaining one prediction"),
    ("motif_discovery.py", "Top discord"),
]


@pytest.mark.parametrize("script,marker", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, marker):
    # The examples import ``repro`` from the source tree; prepend it to
    # PYTHONPATH so the subprocesses resolve it without an install.
    pythonpath = os.pathsep.join(
        p for p in (str(SRC_DIR), os.environ.get("PYTHONPATH", "")) if p
    )
    result = subprocess.run(
        [sys.executable, script],
        cwd=EXAMPLES_DIR,
        capture_output=True,
        text=True,
        timeout=600,
        env={**os.environ, "PYTHONPATH": pythonpath},
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert marker in result.stdout


def test_all_examples_are_covered():
    scripts = {
        p.name for p in EXAMPLES_DIR.glob("*.py") if p.name != "example_utils.py"
    }
    assert scripts == {script for script, _ in CASES}
