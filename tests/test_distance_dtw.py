import numpy as np
import pytest

from repro.distance.dtw import dtw_distance, dtw_distance_reference, envelope, lb_keogh
from repro.distance.euclidean import euclidean


class TestDtw:
    def test_identical_series_zero(self, rng):
        a = rng.standard_normal(20)
        assert dtw_distance(a, a) == 0.0

    def test_matches_reference(self, rng):
        for _ in range(40):
            n, m = rng.integers(2, 25, size=2)
            a, b = rng.standard_normal(int(n)), rng.standard_normal(int(m))
            w = None if rng.random() < 0.3 else int(rng.integers(0, 10))
            assert abs(dtw_distance(a, b, w) - dtw_distance_reference(a, b, w)) < 1e-9

    def test_band_zero_equals_euclidean_same_length(self, rng):
        a, b = rng.standard_normal(15), rng.standard_normal(15)
        assert abs(dtw_distance(a, b, 0) - euclidean(a, b)) < 1e-9

    def test_unconstrained_no_larger_than_euclidean(self, rng):
        a, b = rng.standard_normal(12), rng.standard_normal(12)
        assert dtw_distance(a, b) <= euclidean(a, b) + 1e-9

    def test_wider_band_never_increases_distance(self, rng):
        a, b = rng.standard_normal(20), rng.standard_normal(20)
        distances = [dtw_distance(a, b, w) for w in (0, 2, 5, 10, None)]
        for d_narrow, d_wide in zip(distances, distances[1:]):
            assert d_wide <= d_narrow + 1e-9

    def test_shifted_pattern_warps_to_near_zero(self):
        t = np.linspace(0, 4 * np.pi, 60)
        a = np.sin(t)
        b = np.sin(t + 0.4)
        assert dtw_distance(a, b) < euclidean(a, b) / 2

    def test_different_lengths(self):
        a = np.array([0.0, 1.0, 2.0])
        b = np.array([0.0, 0.5, 1.0, 1.5, 2.0])
        assert np.isfinite(dtw_distance(a, b, 1))

    def test_cutoff_returns_inf(self, rng):
        a, b = rng.standard_normal(30), rng.standard_normal(30) + 5
        d = dtw_distance(a, b, 3)
        assert dtw_distance(a, b, 3, cutoff=d / 2) == float("inf")

    def test_cutoff_above_distance_is_exact(self, rng):
        a, b = rng.standard_normal(30), rng.standard_normal(30)
        d = dtw_distance(a, b, 3)
        assert abs(dtw_distance(a, b, 3, cutoff=d * 2 + 1) - d) < 1e-9

    def test_symmetry(self, rng):
        a, b = rng.standard_normal(18), rng.standard_normal(18)
        assert abs(dtw_distance(a, b, 4) - dtw_distance(b, a, 4)) < 1e-9

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            dtw_distance(np.array([]), np.arange(3.0))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            dtw_distance(np.zeros((2, 2)), np.arange(3.0))


class TestEnvelope:
    def test_contains_series(self, rng):
        series = rng.standard_normal(30)
        upper, lower = envelope(series, 3)
        assert (upper >= series).all() and (lower <= series).all()

    def test_window_zero_is_identity(self, rng):
        series = rng.standard_normal(10)
        upper, lower = envelope(series, 0)
        np.testing.assert_array_equal(upper, series)
        np.testing.assert_array_equal(lower, series)

    def test_matches_naive(self, rng):
        series = rng.standard_normal(25)
        w = 4
        upper, lower = envelope(series, w)
        for i in range(25):
            seg = series[max(0, i - w) : i + w + 1]
            assert upper[i] == seg.max()
            assert lower[i] == seg.min()

    def test_huge_window_is_global_extrema(self, rng):
        series = rng.standard_normal(10)
        upper, lower = envelope(series, 50)
        assert np.all(upper == series.max()) and np.all(lower == series.min())

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError, match=">= 0"):
            envelope(np.arange(5.0), -1)


class TestLbKeogh:
    def test_lower_bounds_dtw(self, rng):
        for _ in range(30):
            w = int(rng.integers(0, 6))
            a, b = rng.standard_normal(20), rng.standard_normal(20)
            upper, lower = envelope(a, w)
            assert lb_keogh(b, upper, lower) <= dtw_distance(a, b, w) + 1e-9

    def test_zero_when_inside_tube(self):
        series = np.zeros(10)
        upper, lower = np.ones(10), -np.ones(10)
        assert lb_keogh(series, upper, lower) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="identical shapes"):
            lb_keogh(np.zeros(3), np.zeros(4), np.zeros(4))
