import numpy as np
import pytest

from repro.core.candidates import find_candidates, find_class_candidates
from repro.core.patterns import PatternCandidate
from repro.sax.discretize import SaxParams

PARAMS = SaxParams(16, 4, 4)


def _bump_class(rng, n=8, length=80, pos=30, width=18, sign=1.0):
    out = []
    for _ in range(n):
        series = rng.standard_normal(length) * 0.05
        p = pos + int(rng.integers(-3, 4))
        series[p : p + width] += sign * np.hanning(width) * 3.0
        out.append(series)
    return out


class TestFindClassCandidates:
    def test_finds_shared_motif(self, rng):
        instances = _bump_class(rng)
        candidates = find_class_candidates(instances, "A", PARAMS, gamma=0.3)
        assert candidates
        assert all(isinstance(c, PatternCandidate) for c in candidates)
        assert all(c.label == "A" for c in candidates)

    def test_support_respects_gamma(self, rng):
        instances = _bump_class(rng, n=10)
        for candidate in find_class_candidates(instances, 0, PARAMS, gamma=0.5):
            assert candidate.support >= 5

    def test_occurrence_support_mode(self, rng):
        instances = _bump_class(rng, n=10)
        occ = find_class_candidates(
            instances, 0, PARAMS, gamma=0.4, support_mode="occurrences"
        )
        for candidate in occ:
            assert candidate.frequency >= 4

    def test_candidates_are_znormed(self, rng):
        instances = _bump_class(rng)
        for candidate in find_class_candidates(instances, 0, PARAMS, gamma=0.3):
            assert abs(candidate.values.mean()) < 1e-6
            assert abs(candidate.values.std() - 1.0) < 1e-6

    def test_medoid_prototype(self, rng):
        instances = _bump_class(rng)
        candidates = find_class_candidates(
            instances, 0, PARAMS, gamma=0.3, prototype="medoid"
        )
        assert candidates  # medoids are aligned members, also z-normed

    def test_pattern_length_at_least_window(self, rng):
        instances = _bump_class(rng)
        for candidate in find_class_candidates(instances, 0, PARAMS, gamma=0.3):
            # Aligned to the median occurrence length, never shorter
            # than the discretization window.
            assert candidate.length >= PARAMS.window_size

    def test_rejects_bad_gamma(self, rng):
        with pytest.raises(ValueError, match="gamma"):
            find_class_candidates(_bump_class(rng, n=3), 0, PARAMS, gamma=0.0)

    def test_rejects_bad_prototype(self, rng):
        with pytest.raises(ValueError, match="prototype"):
            find_class_candidates(_bump_class(rng, n=3), 0, PARAMS, prototype="mean")

    def test_rejects_bad_support_mode(self, rng):
        with pytest.raises(ValueError, match="support_mode"):
            find_class_candidates(_bump_class(rng, n=3), 0, PARAMS, support_mode="x")

    def test_pure_noise_fewer_candidates_than_structured(self, rng):
        structured = find_class_candidates(_bump_class(rng, n=8), 0, PARAMS, gamma=0.5)
        noise = find_class_candidates(
            [rng.standard_normal(80) for _ in range(8)], 0, PARAMS, gamma=0.5
        )
        assert len(noise) <= len(structured) + 2


class TestFindCandidates:
    def test_per_class_labels(self, rng):
        X = np.array(_bump_class(rng, n=6) + _bump_class(rng, n=6, sign=-1.0))
        y = np.array([0] * 6 + [1] * 6)
        candidates = find_candidates(X, y, {0: PARAMS, 1: PARAMS}, gamma=0.3)
        labels = {c.label for c in candidates}
        assert labels == {0, 1}

    def test_class_specific_params(self, rng):
        X = np.array(_bump_class(rng, n=6) + _bump_class(rng, n=6, sign=-1.0))
        y = np.array([0] * 6 + [1] * 6)
        params = {0: SaxParams(16, 4, 4), 1: SaxParams(24, 6, 5)}
        candidates = find_candidates(X, y, params, gamma=0.3)
        for candidate in candidates:
            assert candidate.sax_params == params[candidate.label]
