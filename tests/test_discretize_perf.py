"""Timing-regression smoke test for the vectorized discretization path.

Guards the integer-coded pipeline from silently rotting: the
vectorized path (PAA + breakpoint lookup on the whole window matrix,
row-wise numerosity reduction on code arrays) must never fall behind
the legacy per-window string path. The margin is deliberately generous
— this is a tripwire against accidental de-vectorization, not a
benchmark (``benchmarks/bench_discretize.py`` measures the real
speedup). Marked ``slow`` — run with ``pytest -m slow``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.sax.discretize import SaxParams, discretize, discretize_implementation


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.slow
@pytest.mark.parametrize("reduction", ["exact", "mindist", "none"])
def test_vectorized_discretize_not_slower_than_legacy(reduction):
    rng = np.random.default_rng(42)
    series = rng.standard_normal(4000)
    params = SaxParams(48, 6, 5)

    def legacy():
        with discretize_implementation("legacy"):
            return discretize(series, params, numerosity_reduction=reduction)

    def vectorized():
        return discretize(series, params, numerosity_reduction=reduction)

    # Same answer first — a fast wrong answer is no optimization.
    a, b = legacy(), vectorized()
    assert a.words == b.words
    np.testing.assert_array_equal(a.offsets, b.offsets)

    legacy_time = _best_of(legacy)
    vectorized_time = _best_of(vectorized)
    assert vectorized_time <= 1.5 * legacy_time, (
        f"vectorized discretize regressed: {vectorized_time:.4f}s vs legacy "
        f"{legacy_time:.4f}s ({vectorized_time / legacy_time:.2f}x)"
    )
