import numpy as np
import pytest

from repro.ml.crossval import kfold_predictions, stratified_kfold, stratified_split


class TestStratifiedKfold:
    def test_partitions_everything_once(self):
        y = np.array([0] * 10 + [1] * 10)
        seen = []
        for train, test in stratified_kfold(y, 5, seed=0):
            assert set(train) | set(test) == set(range(20))
            assert not set(train) & set(test)
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(20))

    def test_class_balance_per_fold(self):
        y = np.array([0] * 20 + [1] * 20)
        for train, test in stratified_kfold(y, 4, seed=1):
            labels = y[test]
            assert np.sum(labels == 0) == 5
            assert np.sum(labels == 1) == 5

    def test_rare_class_spreads(self):
        y = np.array([0] * 12 + [1] * 2)
        folds = list(stratified_kfold(y, 4, seed=2))
        rare_test_counts = [int(np.sum(y[test] == 1)) for _, test in folds]
        assert sum(rare_test_counts) == 2

    def test_deterministic_given_seed(self):
        y = np.arange(12) % 3
        a = [t.tolist() for _, t in stratified_kfold(y, 3, seed=7)]
        b = [t.tolist() for _, t in stratified_kfold(y, 3, seed=7)]
        assert a == b

    def test_rejects_bad_folds(self):
        with pytest.raises(ValueError, match=">= 2"):
            list(stratified_kfold(np.zeros(5), 1))
        with pytest.raises(ValueError, match="exceeds"):
            list(stratified_kfold(np.zeros(3), 5))


class TestStratifiedSplit:
    def test_sizes_roughly_match_fraction(self):
        y = np.array([0] * 30 + [1] * 30)
        train, test = stratified_split(y, 0.3, seed=0)
        assert test.size == 18
        assert train.size == 42

    def test_each_class_on_both_sides(self):
        y = np.array([0] * 4 + [1] * 4 + [2] * 4)
        train, test = stratified_split(y, 0.25, seed=0)
        for label in (0, 1, 2):
            assert label in y[train]
            assert label in y[test]

    def test_singleton_class_stays_in_train(self):
        y = np.array([0] * 9 + [1])
        train, test = stratified_split(y, 0.3, seed=0)
        assert 1 in y[train]
        assert 1 not in y[test]

    def test_disjoint_and_complete(self):
        y = np.arange(20) % 4
        train, test = stratified_split(y, 0.4, seed=3)
        assert not set(train) & set(test)
        assert sorted(np.concatenate([train, test]).tolist()) == list(range(20))

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="in \\(0, 1\\)"):
            stratified_split(np.zeros(4), 1.5)


class TestKfoldPredictions:
    def test_oracle_classifier_scores_perfectly(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = (X.ravel() >= 10).astype(int)

        def fit_predict(X_tr, y_tr, X_te):
            thr = 9.5
            return (X_te.ravel() >= thr).astype(int)

        preds = kfold_predictions(fit_predict, X, y, n_folds=4, seed=0)
        assert np.array_equal(preds, y)

    def test_predictions_align_with_labels(self):
        X = np.zeros((9, 1))
        y = np.arange(9) % 3

        def fit_predict(X_tr, y_tr, X_te):
            return np.full(X_te.shape[0], 99)

        preds = kfold_predictions(fit_predict, X, y, n_folds=3, seed=0)
        assert preds.shape == y.shape
        assert (preds == 99).all()


class TestStratifiedKfoldEdge:
    def test_uneven_class_sizes(self):
        y = np.array([0] * 7 + [1] * 5 + [2] * 3)
        folds = list(stratified_kfold(y, 3, seed=4))
        assert len(folds) == 3
        covered = sorted(i for _, test in folds for i in test)
        assert covered == list(range(15))

    def test_two_folds_near_halves(self):
        # 5 members per class dealt over 2 folds: each fold holds 2-3
        # of each class (each class splits 3/2 independently).
        y = np.arange(10) % 2
        for train, test in stratified_kfold(y, 2, seed=0):
            assert 4 <= test.size <= 6
            assert 2 <= np.sum(y[test] == 0) <= 3
            assert 2 <= np.sum(y[test] == 1) <= 3

    def test_generator_reusable_via_list(self):
        y = np.arange(9) % 3
        folds = list(stratified_kfold(y, 3, seed=1))
        again = list(stratified_kfold(y, 3, seed=1))
        for (tr1, te1), (tr2, te2) in zip(folds, again):
            np.testing.assert_array_equal(te1, te2)
