import random

import pytest

from repro.grammar.rules import Rule
from repro.grammar.sequitur import Sequitur, induce_grammar
from repro.grammar.symbols import Guard, NonTerminal, Terminal


class TestSymbols:
    def test_insert_after_links(self):
        a, b, c = Terminal("a"), Terminal("b"), Terminal("c")
        a.insert_after(c)
        a.insert_after(b)
        assert a.next is b and b.next is c and c.prev is b and b.prev is a

    def test_unlink_repairs_neighbours(self):
        a, b, c = Terminal("a"), Terminal("b"), Terminal("c")
        a.insert_after(c)
        a.insert_after(b)
        b.unlink()
        assert a.next is c and c.prev is a

    def test_nonterminal_tracks_refcount(self):
        rule = Rule(1)
        ref = NonTerminal(rule)
        assert rule.refcount == 1
        ref.release()
        assert rule.refcount == 0

    def test_keys_distinguish_kinds(self):
        rule = Rule(3)
        assert Terminal("x").key() != NonTerminal(rule).key()
        assert Guard(rule).is_guard()


class TestRule:
    def test_append_and_iterate(self):
        rule = Rule(0)
        rule.append(Terminal("a"))
        rule.append(Terminal("b"))
        assert [s.token for s in rule.symbols()] == ["a", "b"]
        assert len(rule) == 2

    def test_empty_rule(self):
        assert Rule(0).is_empty()

    def test_expansion_recurses(self):
        inner = Rule(1)
        inner.append(Terminal("x"))
        inner.append(Terminal("y"))
        outer = Rule(0)
        outer.append(NonTerminal(inner))
        outer.append(Terminal("z"))
        assert outer.expansion() == ["x", "y", "z"]

    def test_rhs_string(self):
        inner = Rule(2)
        inner.append(Terminal("x"))
        outer = Rule(0)
        outer.append(Terminal("a"))
        outer.append(NonTerminal(inner))
        assert outer.rhs_string() == "a R2"


class TestSequitur:
    def test_paper_example(self):
        # §3.2.2 of the RPM paper: S = aba bac bac bac cab acc bac bac cab
        # after numerosity reduction = aba bac cab acc bac cab.
        g = induce_grammar("aba bac cab acc bac cab".split())
        rules = g.non_start_rules()
        assert len(rules) == 1
        assert rules[0].expansion() == ["bac", "cab"]

    def test_abcdbc(self):
        g = induce_grammar(list("abcdbcabcdbc"))
        assert g.start.expansion() == list("abcdbcabcdbc")
        expansions = {tuple(r.expansion()) for r in g.non_start_rules()}
        assert ("b", "c") in expansions

    def test_derivation_is_exact(self):
        tokens = list("peter piper picked a peck of pickled peppers")
        g = induce_grammar(tokens)
        assert g.start.expansion() == tokens

    def test_no_rules_for_unique_tokens(self):
        g = induce_grammar(["a", "b", "c", "d"])
        assert g.non_start_rules() == []

    def test_single_token(self):
        g = induce_grammar(["x"])
        assert g.start.expansion() == ["x"]

    def test_empty_input(self):
        g = Sequitur()
        assert g.start.expansion() == []
        assert g.tokens_fed == 0

    def test_rule_utility_invariant(self):
        rnd = random.Random(1)
        for _ in range(100):
            tokens = [rnd.choice("abcde") for _ in range(rnd.randint(1, 120))]
            g = induce_grammar(tokens)
            for rule in g.non_start_rules():
                assert rule.refcount >= 2

    def test_every_rule_is_a_repeat(self):
        rnd = random.Random(2)
        for _ in range(100):
            tokens = [rnd.choice(["aa", "bb", "cc"]) for _ in range(rnd.randint(1, 100))]
            g = induce_grammar(tokens)
            joined = " ".join(tokens)
            for rule in g.non_start_rules():
                needle = " ".join(rule.expansion())
                assert joined.count(needle) >= 2

    def test_derivation_random_fuzz(self):
        rnd = random.Random(3)
        for _ in range(200):
            tokens = [rnd.choice("abc") for _ in range(rnd.randint(1, 200))]
            g = induce_grammar(tokens)
            assert g.start.expansion() == tokens

    def test_compression_on_repetitive_input(self):
        tokens = ["w", "x", "y", "z"] * 100
        g = induce_grammar(tokens)
        assert g.grammar_size() < len(tokens) / 4

    def test_grammar_size_counts_symbols(self):
        g = induce_grammar(["a", "b"])
        assert g.grammar_size() == 2

    def test_to_string_mentions_all_rules(self):
        g = induce_grammar(list("abcabcabc"))
        text = g.to_string()
        assert text.startswith("R0 ->")
        for rule in g.non_start_rules():
            assert f"R{rule.rule_id} ->" in text

    def test_rules_sorted_start_first(self):
        g = induce_grammar(list("xyxyxzxz"))
        rules = g.rules()
        assert rules[0].rule_id == 0
        assert [r.rule_id for r in rules] == sorted(r.rule_id for r in rules)

    def test_feed_all_returns_self(self):
        g = Sequitur()
        assert g.feed_all("ab") is g
