import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    error_rate,
    macro_f1,
    precision_recall_f1,
)


class TestAccuracy:
    def test_perfect(self):
        y = np.array([0, 1, 2])
        assert accuracy(y, y) == 1.0
        assert error_rate(y, y) == 0.0

    def test_half(self):
        assert accuracy(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 0])) == 0.5

    def test_string_labels(self):
        assert accuracy(np.array(["a", "b"]), np.array(["a", "a"])) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            accuracy(np.array([0]), np.array([0, 1]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            accuracy(np.array([]), np.array([]))


class TestConfusionMatrix:
    def test_counts(self):
        y_true = np.array([0, 0, 1, 1, 1])
        y_pred = np.array([0, 1, 1, 1, 0])
        matrix, labels = confusion_matrix(y_true, y_pred)
        np.testing.assert_array_equal(labels, [0, 1])
        np.testing.assert_array_equal(matrix, [[1, 1], [1, 2]])

    def test_explicit_label_order(self):
        matrix, labels = confusion_matrix(
            np.array([1, 2]), np.array([2, 2]), labels=np.array([2, 1])
        )
        np.testing.assert_array_equal(labels, [2, 1])
        assert matrix[0, 0] == 1  # true 2 predicted 2
        assert matrix[1, 0] == 1  # true 1 predicted 2

    def test_rows_sum_to_class_counts(self, rng):
        y_true = rng.integers(0, 3, 50)
        y_pred = rng.integers(0, 3, 50)
        matrix, labels = confusion_matrix(y_true, y_pred)
        for i, label in enumerate(labels):
            assert matrix[i].sum() == np.sum(y_true == label)


class TestF1:
    def test_perfect_scores(self):
        y = np.array([0, 1, 0, 1])
        scores = precision_recall_f1(y, y)
        np.testing.assert_array_equal(scores.f1, [1.0, 1.0])

    def test_known_values(self):
        y_true = np.array([0, 0, 0, 1, 1])
        y_pred = np.array([0, 0, 1, 1, 1])
        scores = precision_recall_f1(y_true, y_pred)
        p0, r0, f0 = scores.for_label(0)
        assert p0 == 1.0 and r0 == pytest.approx(2 / 3)
        assert f0 == pytest.approx(2 * 1.0 * (2 / 3) / (1.0 + 2 / 3))

    def test_never_predicted_class_zero_precision(self):
        y_true = np.array([0, 1])
        y_pred = np.array([0, 0])
        scores = precision_recall_f1(y_true, y_pred)
        _, _, f1 = scores.for_label(1)
        assert f1 == 0.0

    def test_macro_f1_is_mean(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 0, 1, 0])
        scores = precision_recall_f1(y_true, y_pred)
        assert macro_f1(y_true, y_pred) == pytest.approx(scores.f1.mean())

    def test_fixed_label_universe(self):
        # A fold may miss a class entirely; scores must still align to
        # the full label set.
        scores = precision_recall_f1(
            np.array([0, 0]), np.array([0, 0]), labels=np.array([0, 1, 2])
        )
        assert len(scores.labels) == 3
        assert scores.f1[0] == 1.0
        assert scores.f1[1] == 0.0
