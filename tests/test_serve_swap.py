"""Hot-swap under load: zero dropped requests, exact version stamping.

The atomic-swap contract, for both serving tiers:

1. **Zero loss** — a swap during a sustained submit stream never drops
   an accepted request: every future resolves ``OK``.
2. **Exact attribution** — every result's ``model_version`` names the
   model that actually computed it: only the outgoing and incoming
   versions ever appear, results after the swap settles carry the new
   version, and the ``serve.model_version`` gauge (handle generation)
   moves exactly once per swap.
3. **Readiness never flips** — the sharded rolling recycle keeps
   ``/readyz`` green throughout.
4. **Shadow scoring is additive** — attaching a candidate mirrors OK
   traffic off the latency path and its report feeds the promotion
   gate; detaching is idempotent.
5. **Ops surface** — the admin ``POST /swap`` drives the same path
   (registry versions or artifact paths), refuses unknown targets with
   a 409 while the old model keeps serving, and is loopback-only.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import RPMClassifier, SaxParams
from repro.core.io import save_model
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    ModelHandle,
    ModelRegistry,
    PredictionService,
    ServeConfig,
    ShardedPredictionService,
)


@pytest.fixture(scope="module")
def fitted(tiny_gun):
    clf = RPMClassifier(sax_params=SaxParams(24, 4, 4), seed=0)
    clf.fit(tiny_gun.X_train, tiny_gun.y_train)
    return clf


@pytest.fixture(scope="module")
def fitted_b(tiny_gun):
    clf = RPMClassifier(sax_params=SaxParams(32, 4, 4), seed=1)
    clf.fit(tiny_gun.X_train, tiny_gun.y_train)
    return clf


@pytest.fixture(scope="module")
def registry(fitted, fitted_b, tmp_path_factory):
    root = tmp_path_factory.mktemp("swap_registry")
    save_model(fitted, root / "a.npz")
    save_model(fitted_b, root / "b.npz")
    reg = ModelRegistry(root / "registry")
    reg.publish(root / "a.npz")
    reg.publish(root / "b.npz", parent="v1")
    reg.promote("v1")
    return reg


def _stream_and_swap(service, rows, swap):
    """Submit rows continuously, firing ``swap`` mid-stream.

    Returns the resolved results, split into the pre-swap-call and
    post-swap-return segments.
    """
    futures_before, futures_after = [], []
    for _ in range(6):
        futures_before.extend(service.submit(row) for row in rows)
    swap_done = threading.Event()

    def run_swap():
        swap()
        swap_done.set()

    swapper = threading.Thread(target=run_swap)
    swapper.start()
    # Keep traffic flowing while the swap is in progress (throttled so
    # a multi-second sharded recycle cannot outrun the queue caps).
    while not swap_done.is_set():
        futures_before.extend(service.submit(row) for row in rows[:4])
        swap_done.wait(0.01)
    swapper.join()
    for _ in range(4):
        futures_after.extend(service.submit(row) for row in rows)
    before = [f.result(timeout=120.0) for f in futures_before]
    after = [f.result(timeout=120.0) for f in futures_after]
    return before, after


class TestSingleProcessSwap:
    def test_swap_under_load_drops_nothing_and_stamps_versions(
        self, registry, tiny_gun
    ):
        metrics = MetricsRegistry()
        handle = ModelHandle.open("current", registry=registry.root, n_jobs=1)
        with PredictionService(
            handle, config=ServeConfig(max_delay_ms=1.0), metrics=metrics
        ) as service:
            assert service.model_version == "v1"
            assert metrics.gauge_value("serve.model_version") == 1.0
            before, after = _stream_and_swap(
                service, tiny_gun.X_test, lambda: service.swap("v2")
            )
            results = before + after
            assert all(r.ok for r in results), sorted(
                {r.status.value for r in results if not r.ok}
            )
            # Exact attribution: nothing but the two involved versions.
            assert {r.model_version for r in results} <= {"v1", "v2"}
            assert {r.model_version for r in before} >= {"v1"}
            # Everything submitted after the swap returned is new-model.
            assert {r.model_version for r in after} == {"v2"}
            assert service.model_version == "v2"
            # The gauge is the handle generation: it moved exactly once.
            assert metrics.gauge_value("serve.model_version") == 2.0
            assert metrics.counter_value("serve.swaps") == 1
            assert metrics.gauge_value("serve.model_version[version=v2]") == 2.0

    def test_swapped_model_computes_the_new_predictions(
        self, registry, fitted, fitted_b, tiny_gun
    ):
        handle = ModelHandle.open("v1", registry=registry.root)
        with PredictionService(
            handle, config=ServeConfig(warmup=False), metrics=MetricsRegistry()
        ) as service:
            np.testing.assert_array_equal(
                service.predict(tiny_gun.X_test), fitted.predict(tiny_gun.X_test)
            )
            service.swap("v2")
            np.testing.assert_array_equal(
                service.predict(tiny_gun.X_test), fitted_b.predict(tiny_gun.X_test)
            )

    def test_refused_swap_keeps_serving_the_old_model(self, registry, tiny_gun):
        handle = ModelHandle.open("v1", registry=registry.root)
        with PredictionService(
            handle, config=ServeConfig(warmup=False), metrics=MetricsRegistry()
        ) as service:
            with pytest.raises(Exception, match="v99"):
                service.swap("v99")
            result = service.predict_one(tiny_gun.X_test[0])
            assert result.ok and result.model_version == "v1"

    def test_describe_model_names_version_and_generation(self, registry):
        handle = ModelHandle.open("v1", registry=registry.root)
        with PredictionService(
            handle, config=ServeConfig(warmup=False), metrics=MetricsRegistry()
        ) as service:
            info = service.describe_model()
            assert info["version"] == "v1"
            assert info["generation"] == 1
            assert str(registry.root) == info["registry"]


class TestServiceShadow:
    def test_attached_shadow_scores_ok_traffic(self, registry, tiny_gun):
        handle = ModelHandle.open("v1", registry=registry.root)
        metrics = MetricsRegistry()
        with PredictionService(
            handle, config=ServeConfig(warmup=False), metrics=metrics
        ) as service:
            service.attach_shadow("v2", fraction=1.0)
            results = service.predict_many(tiny_gun.X_test)
            assert all(r.ok for r in results)
            report = service.detach_shadow()
            assert report is not None
            assert report.candidate_version == "v2"
            assert report.n_scored == len(results)
            assert 0.0 <= report.disagreement_rate <= 1.0
            assert metrics.counter_value("serve.shadow.requests") == len(results)
            # Idempotent: a second detach is a no-op.
            assert service.detach_shadow() is None

    def test_double_attach_is_refused(self, registry):
        handle = ModelHandle.open("v1", registry=registry.root)
        with PredictionService(
            handle, config=ServeConfig(warmup=False), metrics=MetricsRegistry()
        ) as service:
            service.attach_shadow("v2", fraction=1.0)
            with pytest.raises(RuntimeError, match="already attached"):
                service.attach_shadow("v2")
            service.detach_shadow()

    def test_identical_candidate_reports_zero_disagreement(
        self, registry, tiny_gun
    ):
        handle = ModelHandle.open("v1", registry=registry.root)
        with PredictionService(
            handle, config=ServeConfig(warmup=False), metrics=MetricsRegistry()
        ) as service:
            service.attach_shadow("v1", fraction=1.0)
            service.predict_many(tiny_gun.X_test)
            report = service.detach_shadow()
            assert report.n_disagreements == 0
            assert report.disagreement_rate == 0.0


class TestAdminSwapRoute:
    @pytest.fixture()
    def served(self, registry):
        handle = ModelHandle.open("v1", registry=registry.root)
        config = ServeConfig(warmup=False, admin_port=0)
        with PredictionService(
            handle, config=config, metrics=MetricsRegistry()
        ) as service:
            yield service

    @staticmethod
    def _post(url, payload) -> tuple[int, dict]:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, json.load(response)
        except urllib.error.HTTPError as exc:
            return exc.code, json.load(exc)

    def test_post_swap_moves_the_model(self, served, tiny_gun):
        status, payload = self._post(served.admin.url("/swap"), {"version": "v2"})
        assert status == 200
        assert payload["swapped_to"] == "v2"
        assert payload["model"]["version"] == "v2"
        result = served.predict_one(tiny_gun.X_test[0])
        assert result.ok and result.model_version == "v2"
        with urllib.request.urlopen(served.admin.url("/model")) as response:
            assert json.load(response)["version"] == "v2"

    def test_post_swap_unknown_version_is_409_and_harmless(self, served, tiny_gun):
        status, payload = self._post(served.admin.url("/swap"), {"version": "v99"})
        assert status == 409
        assert "v99" in payload["error"]
        assert served.predict_one(tiny_gun.X_test[0]).model_version == "v1"
        # /readyz never flipped.
        with urllib.request.urlopen(served.admin.url("/readyz")) as response:
            assert response.status == 200

    def test_post_swap_requires_a_target(self, served):
        status, payload = self._post(served.admin.url("/swap"), {})
        assert status == 400
        assert "version" in payload["error"]

    def test_post_other_routes_404(self, served):
        status, _ = self._post(served.admin.url("/metrics"), {"version": "v2"})
        assert status == 404


MANY_ROWS = 10  # per submit burst in the sharded stress


class TestShardedSwap:
    def test_rolling_swap_under_load_keeps_ready_and_drops_nothing(
        self, registry, tiny_gun
    ):
        metrics = MetricsRegistry()
        handle = ModelHandle.open("v1", registry=registry.root, n_jobs=1)
        config = ServeConfig(n_shards=2, warmup=False, max_delay_ms=1.0)
        with ShardedPredictionService(
            handle, config=config, metrics=metrics
        ) as service:
            assert service.model_version == "v1"
            ready_flips = []

            def watch_ready(stop):
                while not stop.is_set():
                    if not service.ready:
                        ready_flips.append(True)
                    stop.wait(0.005)

            stop = threading.Event()
            watcher = threading.Thread(target=watch_ready, args=(stop,))
            watcher.start()
            try:
                before, after = _stream_and_swap(
                    service,
                    tiny_gun.X_test[:MANY_ROWS],
                    lambda: service.swap("v2"),
                )
            finally:
                stop.set()
                watcher.join()
            results = before + after
            assert all(r.ok for r in results), sorted(
                {(r.status.value, r.error_code) for r in results if not r.ok}
            )
            assert {r.model_version for r in results} <= {"v1", "v2"}
            assert {r.model_version for r in after} == {"v2"}
            assert not ready_flips, "readiness flipped during the rolling swap"
            assert metrics.gauge_value("serve.model_version") == 2.0
            assert metrics.counter_value("serve.swaps") == 1
            # Every shard recycled exactly once for the swap.
            assert metrics.counter_value("serve.worker_recycles") == 2
            # Post-swap output is the new model's, bitwise.
            assert service.model_version == "v2"

    def test_sharded_swap_serves_new_model_bitwise(
        self, registry, fitted_b, tiny_gun
    ):
        handle = ModelHandle.open("v1", registry=registry.root, n_jobs=1)
        config = ServeConfig(n_shards=2, warmup=False)
        with ShardedPredictionService(
            handle, config=config, metrics=MetricsRegistry()
        ) as service:
            service.swap("v2")
            np.testing.assert_array_equal(
                service.predict(tiny_gun.X_test), fitted_b.predict(tiny_gun.X_test)
            )

    def test_swap_on_stopped_service_is_refused(self, registry):
        handle = ModelHandle.open("v1", registry=registry.root, n_jobs=1)
        service = ShardedPredictionService(
            handle,
            config=ServeConfig(n_shards=1, warmup=False),
            metrics=MetricsRegistry(),
        )
        with pytest.raises(RuntimeError, match="stopped"):
            service.swap("v2")
