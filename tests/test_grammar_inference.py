import numpy as np
import pytest

from repro.grammar.inference import (
    Occurrence,
    RuleMotif,
    concatenate_with_junctions,
    discretize_class,
    find_word_occurrences,
    induce_motifs,
)
from repro.sax.discretize import SaxParams


class TestConcatenate:
    def test_layout(self):
        a = np.arange(10.0)
        b = np.arange(12.0)
        series, starts, valid = concatenate_with_junctions([a, b], window_size=4)
        assert series.size == 22
        np.testing.assert_array_equal(starts, [0, 10])
        assert valid.size == 22 - 4 + 1

    def test_junction_windows_invalid(self):
        a = np.zeros(10)
        b = np.zeros(10)
        _, _, valid = concatenate_with_junctions([a, b], window_size=4)
        # Windows starting at 7, 8, 9 span the junction at index 10.
        assert not valid[7] and not valid[8] and not valid[9]
        assert valid[6] and valid[10]

    def test_last_instance_tail_is_valid(self):
        _, _, valid = concatenate_with_junctions([np.zeros(8), np.zeros(8)], 4)
        assert valid[-1]

    def test_three_instances(self):
        _, starts, valid = concatenate_with_junctions([np.zeros(6)] * 3, 3)
        np.testing.assert_array_equal(starts, [0, 6, 12])
        # bad windows: starts 4,5 and 10,11
        for pos in (4, 5, 10, 11):
            assert not valid[pos]
        for pos in (0, 3, 6, 9, 12, 15):
            assert valid[pos]

    def test_rejects_short_instance(self):
        with pytest.raises(ValueError, match="at least"):
            concatenate_with_junctions([np.zeros(3)], window_size=5)

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError, match="at least one"):
            concatenate_with_junctions([], window_size=3)


class TestFindWordOccurrences:
    def test_basic(self):
        words = ["a", "b", "c", "a", "b", "a"]
        assert find_word_occurrences(words, ["a", "b"]) == [0, 3]

    def test_overlapping(self):
        assert find_word_occurrences(["x", "x", "x"], ["x", "x"]) == [0, 1]

    def test_full_match(self):
        assert find_word_occurrences(["p", "q"], ["p", "q"]) == [0]

    def test_no_match(self):
        assert find_word_occurrences(["a", "b"], ["c"]) == []

    def test_empty_needle(self):
        assert find_word_occurrences(["a"], []) == []

    def test_needle_longer_than_haystack(self):
        assert find_word_occurrences(["a"], ["a", "a"]) == []


class TestOccurrence:
    def test_length(self):
        occ = Occurrence(start=5, end=12, instance=0)
        assert occ.length == 7


class TestRuleMotif:
    def test_support_counts_distinct_instances(self):
        motif = RuleMotif(
            rule_id=1,
            words=("ab",),
            occurrences=[
                Occurrence(0, 5, 0),
                Occurrence(8, 13, 0),
                Occurrence(20, 25, 1),
            ],
        )
        assert motif.support == 2
        assert motif.frequency == 3
        assert motif.mean_length() == 5.0

    def test_empty_motif(self):
        motif = RuleMotif(rule_id=1, words=("ab",))
        assert motif.support == 0
        assert motif.mean_length() == 0.0


def _bump_instance(rng, length=60, pos=20):
    out = rng.standard_normal(length) * 0.05
    out[pos : pos + 15] += np.hanning(15) * 3.0
    return out


class TestInduceMotifs:
    PARAMS = SaxParams(12, 4, 4)

    def test_shared_bump_found_in_all_instances(self, rng):
        instances = [_bump_instance(rng) for _ in range(6)]
        record, starts, lengths = discretize_class(instances, self.PARAMS)
        motifs = induce_motifs(record, starts, lengths)
        assert motifs, "expected at least one motif for a shared pattern"
        best = max(motifs, key=lambda m: m.support)
        assert best.support >= 4

    def test_occurrences_inside_instances(self, rng):
        instances = [_bump_instance(rng) for _ in range(5)]
        record, starts, lengths = discretize_class(instances, self.PARAMS)
        ends = starts + lengths
        for motif in induce_motifs(record, starts, lengths):
            for occ in motif.occurrences:
                assert starts[occ.instance] <= occ.start
                assert occ.end <= ends[occ.instance]

    def test_variable_length_occurrences_possible(self, rng):
        # Numerosity reduction lets one rule cover raw spans of varying
        # length; verify the machinery reports span lengths >= window.
        instances = [_bump_instance(rng) for _ in range(6)]
        record, starts, lengths = discretize_class(instances, self.PARAMS)
        for motif in induce_motifs(record, starts, lengths):
            for occ in motif.occurrences:
                assert occ.length >= self.PARAMS.window_size

    def test_min_frequency_filter(self, rng):
        instances = [_bump_instance(rng) for _ in range(6)]
        record, starts, lengths = discretize_class(instances, self.PARAMS)
        motifs = induce_motifs(record, starts, lengths, min_frequency=4)
        assert all(m.frequency >= 4 for m in motifs)

    def test_pure_noise_has_no_high_support_motifs(self, rng):
        instances = [rng.standard_normal(60) for _ in range(5)]
        record, starts, lengths = discretize_class(instances, self.PARAMS)
        motifs = induce_motifs(record, starts, lengths)
        # Noise may produce incidental repeats, but none should cover
        # nearly all instances at high frequency.
        assert all(m.frequency < 12 for m in motifs)

    def test_expansions_unique(self, rng):
        instances = [_bump_instance(rng) for _ in range(6)]
        record, starts, lengths = discretize_class(instances, self.PARAMS)
        motifs = induce_motifs(record, starts, lengths)
        words = [m.words for m in motifs]
        assert len(words) == len(set(words))
