"""Failure-injection and edge-case tests across the pipeline.

Production data is messy: constant channels, tiny training sets,
extreme class imbalance, NaNs. These tests pin down how each layer
behaves — either a clean error or a sensible result, never silent
corruption.
"""

import numpy as np
import pytest

from repro import RPMClassifier, SaxParams
from repro.baselines import NearestNeighborED, SaxVsmClassifier
from repro.core.candidates import find_class_candidates
from repro.core.transform import pattern_features
from repro.distance.best_match import best_match, distance_profile
from repro.distance.dtw import dtw_distance
from repro.grammar.sequitur import induce_grammar
from repro.ml.cfs import cfs_select
from repro.ml.svm import SVC
from repro.sax.discretize import discretize
from repro.sax.sax import sax_word


class TestConstantSeries:
    PARAMS = SaxParams(8, 4, 4)

    def test_sax_word_of_constant(self):
        word = sax_word(np.full(30, 5.0), 4, 4)
        assert len(word) == 4

    def test_discretize_constant_collapses_to_one_word(self):
        record = discretize(np.full(50, 2.0), self.PARAMS)
        assert len(record) == 1

    def test_best_match_constant_vs_constant(self):
        match = best_match(np.full(6, 1.0), np.full(20, 9.0))
        assert match.distance == 0.0

    def test_distance_profile_handles_mixed_flat(self):
        series = np.concatenate([np.full(10, 3.0), np.sin(np.linspace(0, 3, 10))])
        profile = distance_profile(np.sin(np.linspace(0, 3, 5)), series)
        assert np.isfinite(profile).all()

    def test_rpm_with_constant_feature_class(self, rng):
        # One class is all flat lines; pipeline must survive.
        flat = np.tile(np.linspace(5.0, 5.0, 40), (6, 1)) + rng.standard_normal((6, 40)) * 1e-4
        wavy = np.sin(np.linspace(0, 6, 40)) + rng.standard_normal((6, 40)) * 0.1
        X = np.vstack([flat, wavy])
        y = np.array([0] * 6 + [1] * 6)
        clf = RPMClassifier(sax_params=SaxParams(12, 4, 4), seed=0)
        clf.fit(X, y)
        preds = clf.predict(X)
        assert np.mean(preds == y) > 0.8


class TestTinyInputs:
    def test_two_instances_per_class(self, rng):
        X = np.vstack(
            [
                np.sin(np.linspace(0, 6, 40)) + rng.standard_normal(40) * 0.05,
                np.sin(np.linspace(0, 6, 40)) + rng.standard_normal(40) * 0.05,
                np.cos(np.linspace(0, 9, 40)) + rng.standard_normal(40) * 0.05,
                np.cos(np.linspace(0, 9, 40)) + rng.standard_normal(40) * 0.05,
            ]
        )
        y = np.array([0, 0, 1, 1])
        clf = RPMClassifier(sax_params=SaxParams(10, 4, 4), seed=0)
        clf.fit(X, y)
        assert clf.predict(X).shape == (4,)

    def test_window_equal_to_series_length(self, rng):
        X = rng.standard_normal((8, 20))
        y = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        clf = RPMClassifier(sax_params=SaxParams(20, 4, 4), seed=0)
        clf.fit(X, y)  # one window per instance; must still run
        assert clf.predict(X).shape == (8,)

    def test_sequitur_single_repeated_token(self):
        g = induce_grammar(["x"] * 50)
        assert g.start.expansion() == ["x"] * 50

    def test_dtw_length_one_series(self):
        assert dtw_distance(np.array([1.0]), np.array([3.0])) == 2.0


class TestImbalance:
    def test_rpm_severe_class_imbalance(self, rng):
        big = [np.sin(np.linspace(0, 6, 50)) + rng.standard_normal(50) * 0.1 for _ in range(20)]
        small = [np.cos(np.linspace(0, 9, 50)) + rng.standard_normal(50) * 0.1 for _ in range(3)]
        X = np.vstack(big + small)
        y = np.array([0] * 20 + [1] * 3)
        clf = RPMClassifier(sax_params=SaxParams(14, 4, 4), seed=0)
        clf.fit(X, y)
        preds = clf.predict(X)
        # The minority class must not be swallowed entirely.
        assert (preds == 1).sum() >= 1

    def test_cfs_with_imbalanced_labels(self, rng):
        X = rng.standard_normal((50, 4))
        y = np.array([0] * 45 + [1] * 5)
        X[:, 2] = y * 3 + rng.standard_normal(50) * 0.1
        result = cfs_select(X, y)
        assert 2 in result.selected


class TestNaNs:
    def test_svm_propagates_nan_distinctly(self, rng):
        # NaNs should not silently produce a "valid" model: fitting on
        # NaN features yields NaN decision values, which we can detect.
        X = rng.standard_normal((10, 2))
        X[0, 0] = np.nan
        y = np.array([0, 1] * 5)
        clf = SVC().fit(X, y)
        scores = clf.decision_function(X)
        assert np.isnan(scores).any() or np.isfinite(scores).all()

    def test_nn_ed_with_nan_query(self, tiny_gun):
        clf = NearestNeighborED().fit(tiny_gun.X_train, tiny_gun.y_train)
        query = tiny_gun.X_test[:1].copy()
        query[0, 0] = np.nan
        # NaN distances make every neighbour incomparable; the result
        # is arbitrary but the call must not crash.
        preds = clf.predict(query)
        assert preds.shape == (1,)


class TestCandidateMiningEdges:
    PARAMS = SaxParams(10, 4, 4)

    def test_no_candidates_on_unique_noise(self, rng):
        # High gamma on pure noise: usually no candidates at all.
        instances = [rng.standard_normal(40) for _ in range(4)]
        candidates = find_class_candidates(instances, 0, self.PARAMS, gamma=1.0)
        for candidate in candidates:
            assert candidate.support >= 4  # only fully-shared patterns

    def test_identical_instances_yield_high_support(self, rng):
        base = np.sin(np.linspace(0, 8, 60))
        instances = [base + rng.standard_normal(60) * 0.01 for _ in range(6)]
        candidates = find_class_candidates(instances, 0, self.PARAMS, gamma=0.9)
        assert candidates
        assert max(c.support for c in candidates) == 6

    def test_transform_with_pattern_longer_than_series(self, rng):
        pattern = rng.standard_normal(100)
        X = rng.standard_normal((3, 30))
        F = pattern_features(X, [pattern])
        assert F.shape == (3, 1)
        assert np.isfinite(F).all()


class TestSaxVsmEdges:
    def test_unseen_words_at_test_time(self, rng):
        train = np.tile(np.sin(np.linspace(0, 6, 60)), (6, 1)) + rng.standard_normal((6, 60)) * 0.05
        y = np.array([0, 0, 0, 1, 1, 1])
        clf = SaxVsmClassifier(params=SaxParams(16, 4, 4)).fit(train, y)
        # A wildly different test series shares no words -> falls back
        # to the first class rather than crashing.
        weird = np.cumsum(rng.standard_normal((1, 60)) * 10, axis=1)
        assert clf.predict(weird).shape == (1,)
