import numpy as np
import pytest

from repro import RPMClassifier, SaxParams
from repro.core.explain import (
    class_profile,
    explain_prediction,
    locate_pattern,
    pattern_coverage,
)
from repro.core.io import load_model, save_model


@pytest.fixture(scope="module")
def fitted(tiny_gun):
    clf = RPMClassifier(sax_params=SaxParams(24, 4, 4), seed=0)
    clf.fit(tiny_gun.X_train, tiny_gun.y_train)
    return clf


class TestLocatePattern:
    def test_finds_embedded_pattern(self, rng):
        pattern = np.hanning(10)
        series = rng.standard_normal(50) * 0.1
        series[17:27] += pattern * 5
        loc = locate_pattern(pattern, series)
        assert loc.position == 17
        assert loc.distance < 0.5

    def test_accepts_representative_pattern(self, fitted, tiny_gun):
        loc = locate_pattern(fitted.patterns_[0], tiny_gun.X_train[0])
        assert loc.label == fitted.patterns_[0].label
        assert 0 <= loc.position <= tiny_gun.series_length


class TestPatternCoverage:
    def test_margins_positive_on_discriminative_data(self, fitted, tiny_gun):
        coverage = pattern_coverage(fitted.patterns_, tiny_gun.X_train, tiny_gun.y_train)
        assert len(coverage) == len(fitted.patterns_)
        # At least one mined pattern must actually discriminate.
        assert any(c.margin > 0 for c in coverage)

    def test_own_mean_below_other_mean_mostly(self, fitted, tiny_gun):
        coverage = pattern_coverage(fitted.patterns_, tiny_gun.X_train, tiny_gun.y_train)
        positive = sum(1 for c in coverage if c.own_mean < c.other_mean)
        assert positive >= len(coverage) / 2

    def test_rejects_mismatched_shapes(self, fitted, tiny_gun):
        with pytest.raises(ValueError, match="disagree"):
            pattern_coverage(fitted.patterns_, tiny_gun.X_train, tiny_gun.y_train[:3])


class TestExplainPrediction:
    def test_sorted_by_distance(self, fitted, tiny_gun):
        locations = explain_prediction(fitted, tiny_gun.X_test[0])
        distances = [loc.distance for loc in locations]
        assert distances == sorted(distances)
        assert len(locations) == len(fitted.patterns_)

    def test_requires_fitted(self):
        with pytest.raises(RuntimeError, match="fit"):
            explain_prediction(RPMClassifier(), np.zeros(20))


class TestClassProfile:
    def test_mentions_every_class_with_patterns(self, fitted, tiny_gun):
        text = class_profile(fitted, tiny_gun.X_train, tiny_gun.y_train)
        for label in {p.label for p in fitted.patterns_}:
            assert f"class {label!r}" in text

    def test_requires_fitted(self, tiny_gun):
        with pytest.raises(RuntimeError, match="fit"):
            class_profile(RPMClassifier(), tiny_gun.X_train, tiny_gun.y_train)


class TestModelIO:
    def test_roundtrip_preserves_predictions(self, fitted, tiny_gun, tmp_path):
        path = tmp_path / "model.npz"
        save_model(fitted, path)
        loaded = load_model(path)
        np.testing.assert_array_equal(
            loaded.predict(tiny_gun.X_test), fitted.predict(tiny_gun.X_test)
        )

    def test_roundtrip_preserves_patterns(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_model(fitted, path)
        loaded = load_model(path)
        assert len(loaded.patterns_) == len(fitted.patterns_)
        for a, b in zip(loaded.patterns_, fitted.patterns_):
            np.testing.assert_allclose(a.values, b.values)
            assert a.label == b.label
            assert a.candidate.frequency == b.candidate.frequency

    def test_roundtrip_preserves_params(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_model(fitted, path)
        loaded = load_model(path)
        assert {k: v.as_tuple() for k, v in loaded.params_by_class_.items()} == {
            k: v.as_tuple() for k, v in fitted.params_by_class_.items()
        }

    def test_rotation_invariance_flag_roundtrips(self, tiny_gun, tmp_path):
        clf = RPMClassifier(
            sax_params=SaxParams(24, 4, 4), rotation_invariant=True, seed=0
        )
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        save_model(clf, tmp_path / "m.npz")
        assert load_model(tmp_path / "m.npz").rotation_invariant

    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="unfitted"):
            save_model(RPMClassifier(), tmp_path / "m.npz")

    def test_bad_format_version_rejected(self, fitted, tmp_path):
        import json

        import repro.core.io as io_mod

        path = tmp_path / "model.npz"
        save_model(fitted, path)
        # Tamper with the version.
        with np.load(path) as archive:
            arrays = dict(archive)
        meta = json.loads(bytes(arrays["meta_json"]).decode())
        meta["format_version"] = 999
        arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="unsupported model format"):
            io_mod.load_model(path)


class TestStringLabelIO:
    def test_roundtrip_with_string_labels(self, tmp_path, rng):
        from repro import RPMClassifier, SaxParams

        X = np.vstack(
            [
                np.sin(np.linspace(0, 6, 50)) + rng.standard_normal((6, 50)) * 0.1,
                np.cos(np.linspace(0, 9, 50)) + rng.standard_normal((6, 50)) * 0.1,
            ]
        )
        y = np.array(["sine"] * 6 + ["cosine"] * 6)
        clf = RPMClassifier(sax_params=SaxParams(14, 4, 4), seed=0)
        clf.fit(X, y)
        save_model(clf, tmp_path / "s.npz")
        loaded = load_model(tmp_path / "s.npz")
        np.testing.assert_array_equal(loaded.predict(X), clf.predict(X))
        assert set(loaded.classes_) == {"sine", "cosine"}
