"""Parallel runtime: executor semantics and serial/parallel equivalence.

The runtime's contract is that parallelism changes scheduling only —
``fit``/``transform`` outputs must be *bitwise* identical across
backends and worker counts, and deterministic across repeated runs with
a fixed seed. These tests are the safety net that lets the pipeline
fan out aggressively.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import RPMClassifier, SaxParams
from repro.core.candidates import find_candidates
from repro.core.transform import pattern_features
from repro.data import cbf
from repro.obs.metrics import MetricsRegistry
from repro.runtime import ParallelExecutor, resolve_n_jobs

FIXED_PARAMS = SaxParams(window_size=24, paa_size=5, alphabet_size=4)


@pytest.fixture()
def rng() -> np.random.Generator:
    # Shadows the session-scoped conftest fixture so this module never
    # shifts the shared random stream other modules' data depends on.
    return np.random.default_rng(321)


def _square(x):
    return x * x


def _raise_on_three(x):
    if x == 3:
        raise RuntimeError("boom")
    return x


def _thread_name(_):
    return threading.current_thread().name


class TestResolveNJobs:
    def test_serial_aliases(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(0) == 1
        assert resolve_n_jobs(1) == 1

    def test_all_cpus(self):
        assert resolve_n_jobs(-1) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_n_jobs(-2)


class TestParallelExecutor:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_map_preserves_order(self, backend, n_jobs):
        with ParallelExecutor(n_jobs, backend) as executor:
            assert executor.map(_square, range(23)) == [i * i for i in range(23)]

    def test_n_jobs_one_forces_serial(self):
        executor = ParallelExecutor(1, "process")
        assert executor.backend == "serial"
        assert executor._pool is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(2, "mpi")

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_exceptions_propagate(self, backend):
        with ParallelExecutor(2, backend) as executor:
            with pytest.raises(RuntimeError, match="boom"):
                executor.map(_raise_on_three, range(8))

    def test_explicit_chunk_size(self):
        with ParallelExecutor(2, "thread", chunk_size=3) as executor:
            items = list(range(10))
            assert executor._chunks(items) == [items[0:3], items[3:6], items[6:9], items[9:]]
            assert executor.map(_square, items) == [i * i for i in items]

    def test_empty_and_singleton(self):
        with ParallelExecutor(4, "thread") as executor:
            assert executor.map(_square, []) == []
            assert executor.map(_square, [5]) == [25]

    def test_close_is_idempotent(self):
        executor = ParallelExecutor(2, "thread")
        executor.map(_square, range(4))
        executor.close()
        executor.close()

    def test_single_item_with_metrics_runs_in_the_pool(self):
        # Regression: the single-item fast path used to bypass the pool
        # even with metrics enabled, so executor.chunk_seconds quietly
        # recorded serial timings on behalf of a thread backend.
        metrics = MetricsRegistry()
        with ParallelExecutor(2, "thread", metrics=metrics) as executor:
            name = executor.map(_thread_name, [0])[0]
            assert name != threading.current_thread().name
            assert name.startswith(executor._pool._thread_name_prefix)
        snap = metrics.snapshot()
        assert snap["counters"]["executor.chunks"] == 1
        assert snap["counters"]["executor.items"] == 1
        assert snap["histograms"]["executor.chunk_seconds"]["count"] == 1

    def test_single_item_without_metrics_stays_inline(self):
        with ParallelExecutor(2, "thread") as executor:
            name = executor.map(_thread_name, [0])[0]
            assert executor._pool is None
        assert name == threading.current_thread().name


@pytest.fixture(scope="module")
def dataset():
    return cbf(n_train_per_class=8, n_test_per_class=10, length=96, seed=7)


def _fit_outputs(dataset, n_jobs, backend, **kwargs):
    clf = RPMClassifier(
        sax_params=FIXED_PARAMS,
        seed=0,
        n_jobs=n_jobs,
        parallel_backend=backend,
        **kwargs,
    )
    clf.fit(dataset.X_train, dataset.y_train)
    return {
        "train_features": clf.selection_.train_features,
        "transform": clf.transform(dataset.X_test),
        "predictions": clf.predict(dataset.X_test),
        "patterns": [p.values for p in clf.patterns_],
        "labels": [p.label for p in clf.patterns_],
    }


class TestFitTransformEquivalence:
    """fit/transform bitwise-identical across backends and n_jobs."""

    @pytest.fixture(scope="class")
    def serial_reference(self, dataset):
        return _fit_outputs(dataset, 1, "serial")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_bitwise_equivalence(self, dataset, serial_reference, backend, n_jobs):
        outputs = _fit_outputs(dataset, n_jobs, backend)
        assert np.array_equal(
            serial_reference["train_features"], outputs["train_features"]
        )
        assert np.array_equal(serial_reference["transform"], outputs["transform"])
        assert np.array_equal(serial_reference["predictions"], outputs["predictions"])
        assert serial_reference["labels"] == outputs["labels"]
        assert len(serial_reference["patterns"]) == len(outputs["patterns"])
        for a, b in zip(serial_reference["patterns"], outputs["patterns"]):
            assert np.array_equal(a, b)

    def test_deterministic_across_repeated_runs(self, dataset):
        first = _fit_outputs(dataset, 2, "thread")
        second = _fit_outputs(dataset, 2, "thread")
        assert np.array_equal(first["transform"], second["transform"])
        assert np.array_equal(first["predictions"], second["predictions"])

    def test_cache_disabled_is_equivalent(self, dataset, serial_reference):
        outputs = _fit_outputs(dataset, 1, "serial", cache_size=0)
        assert np.array_equal(serial_reference["transform"], outputs["transform"])

    def test_param_search_equivalence(self, dataset):
        """The DIRECT search (Algorithm 3) is scheduling-independent too."""

        def run(n_jobs, backend):
            clf = RPMClassifier(
                direct_budget=6, n_splits=2, seed=0,
                n_jobs=n_jobs, parallel_backend=backend,
            )
            clf.fit(dataset.X_train, dataset.y_train)
            return clf.params_by_class_, clf.predict(dataset.X_test)

        params_serial, preds_serial = run(1, "serial")
        params_thread, preds_thread = run(4, "thread")
        assert params_serial == params_thread
        assert np.array_equal(preds_serial, preds_thread)


class TestComponentEquivalence:
    def test_find_candidates_parallel_matches_serial(self, dataset):
        params_by_class = {
            label: FIXED_PARAMS for label in np.unique(dataset.y_train)
        }
        serial = find_candidates(dataset.X_train, dataset.y_train, params_by_class)
        with ParallelExecutor(4, "thread") as executor:
            parallel = find_candidates(
                dataset.X_train, dataset.y_train, params_by_class, executor=executor
            )
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.label == b.label
            assert a.frequency == b.frequency
            assert np.array_equal(a.values, b.values)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pattern_features_parallel_matches_serial(self, dataset, backend, rng):
        patterns = [rng.standard_normal(L) for L in (16, 16, 24, 24, 24, 40, 96)]
        serial = pattern_features(dataset.X_test, patterns)
        with ParallelExecutor(3, backend) as executor:
            parallel = pattern_features(dataset.X_test, patterns, executor=executor)
        assert np.array_equal(serial, parallel)

    def test_rotation_invariant_parallel_matches_serial(self, dataset, rng):
        patterns = [rng.standard_normal(L) for L in (16, 24, 32)]
        serial = pattern_features(dataset.X_test, patterns, rotation_invariant=True)
        with ParallelExecutor(2, "thread") as executor:
            parallel = pattern_features(
                dataset.X_test, patterns, rotation_invariant=True, executor=executor
            )
        assert np.array_equal(serial, parallel)
