"""Unit tests for the benchmark harness helpers."""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

import harness  # noqa: E402


class TestCountWins:
    def test_single_winner_per_dataset(self):
        errors = {"A": [0.1, 0.5], "B": [0.2, 0.3]}
        wins = harness.count_wins(errors)
        assert wins == {"A": 1, "B": 1}

    def test_ties_count_for_all(self):
        errors = {"A": [0.1], "B": [0.1], "C": [0.2]}
        wins = harness.count_wins(errors)
        assert wins == {"A": 1, "B": 1, "C": 0}

    def test_sweep(self):
        errors = {"A": [0.0, 0.0, 0.0], "B": [0.1, 0.1, 0.1]}
        assert harness.count_wins(errors)["A"] == 3


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = harness.format_table(["name", "x"], [["ab", 1.5], ["c", 0.25]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "1.500" in lines[2]

    def test_nan_renders_dash(self):
        text = harness.format_table(["name", "x"], [["a", float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_first_column_left_rest_right(self):
        text = harness.format_table(["d", "val"], [["x", 1.0]])
        row = text.splitlines()[2]
        assert row.startswith("x")


class TestScales:
    def test_default_scale_small(self, monkeypatch):
        monkeypatch.delenv("RPM_BENCH_SUITE", raising=False)
        assert harness.bench_scale() == "small"
        assert harness.suite_names() == harness.SMALL_SUITE

    def test_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("RPM_BENCH_SUITE", "tiny")
        assert harness.suite_names() == harness.TINY_SUITE

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("RPM_BENCH_SUITE", "huge")
        with pytest.raises(ValueError, match="tiny/small/full"):
            harness.bench_scale()

    def test_suites_nested(self):
        assert set(harness.TINY_SUITE) <= set(harness.SMALL_SUITE)
        assert set(harness.SMALL_SUITE) <= set(harness.FULL_SUITE)


class TestMakeMethod:
    @pytest.mark.parametrize("name", harness.METHOD_ORDER)
    def test_every_method_constructs(self, name, monkeypatch):
        monkeypatch.setenv("RPM_BENCH_SUITE", "tiny")
        model = harness.make_method(name)
        assert hasattr(model, "fit") and hasattr(model, "predict")

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            harness.make_method("GPT")


class TestRunCaching:
    def test_run_caches_per_session(self, monkeypatch):
        monkeypatch.setenv("RPM_BENCH_SUITE", "tiny")
        harness._CACHE.clear()
        first = harness.run("NN-ED", "ItalyPowerSim")
        second = harness.run("NN-ED", "ItalyPowerSim")
        assert first is second
        assert 0.0 <= first.error <= 1.0
        assert first.total_time == first.train_time + first.test_time
        harness._CACHE.clear()
