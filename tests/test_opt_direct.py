import numpy as np
import pytest

from repro.opt.direct import direct_minimize


class TestDirect:
    def test_sphere_converges(self):
        res = direct_minimize(
            lambda x: float(np.sum((x - 0.3) ** 2)),
            [(-2.0, 2.0)] * 3,
            max_evaluations=400,
            max_iterations=80,
        )
        assert res.fun < 1e-3
        np.testing.assert_allclose(res.x, 0.3, atol=0.05)

    def test_branin_global_minimum(self):
        def branin(x):
            a, b, c = 1.0, 5.1 / (4 * np.pi**2), 5 / np.pi
            r, s, t = 6.0, 10.0, 1 / (8 * np.pi)
            return (
                a * (x[1] - b * x[0] ** 2 + c * x[0] - r) ** 2
                + s * (1 - t) * np.cos(x[0])
                + s
            )

        res = direct_minimize(
            branin, [(-5.0, 10.0), (0.0, 15.0)], max_evaluations=700, max_iterations=150
        )
        assert res.fun < 0.41  # global optimum is 0.39789

    def test_multimodal_rastrigin(self):
        def rastrigin(x):
            return float(10 * x.size + np.sum(x**2 - 10 * np.cos(2 * np.pi * x)))

        res = direct_minimize(
            rastrigin, [(-5.12, 5.12)] * 2, max_evaluations=1500, max_iterations=200
        )
        assert res.fun < 1.0

    def test_respects_evaluation_budget(self):
        calls = 0

        def counting(x):
            nonlocal calls
            calls += 1
            return float(np.sum(x**2))

        res = direct_minimize(counting, [(-1.0, 1.0)] * 2, max_evaluations=30)
        assert calls <= 30
        assert res.n_evaluations == calls

    def test_history_is_monotone_best_so_far(self):
        res = direct_minimize(
            lambda x: float(np.sin(5 * x[0]) + x[0] ** 2),
            [(-3.0, 3.0)],
            max_evaluations=100,
        )
        assert np.all(np.diff(res.history) <= 1e-12)

    def test_deterministic(self):
        f = lambda x: float(np.cos(3 * x[0]) * np.sin(2 * x[1]))  # noqa: E731
        a = direct_minimize(f, [(-2.0, 2.0)] * 2, max_evaluations=200)
        b = direct_minimize(f, [(-2.0, 2.0)] * 2, max_evaluations=200)
        np.testing.assert_array_equal(a.x, b.x)
        assert a.n_evaluations == b.n_evaluations

    def test_best_point_within_bounds(self):
        res = direct_minimize(
            lambda x: float(-x[0] - x[1]), [(0.0, 1.0), (2.0, 3.0)], max_evaluations=80
        )
        assert 0.0 <= res.x[0] <= 1.0
        assert 2.0 <= res.x[1] <= 3.0
        # Optimum on the boundary; centers approach but never reach it.
        assert res.fun < -3.8

    def test_single_evaluation_budget(self):
        res = direct_minimize(lambda x: 1.0, [(0.0, 1.0)], max_evaluations=1)
        assert res.n_evaluations == 1
        assert res.fun == 1.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="lo < hi"):
            direct_minimize(lambda x: 0.0, [(1.0, 0.0)])
