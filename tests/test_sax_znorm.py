import numpy as np
import pytest

from repro.sax.znorm import NORM_THRESHOLD, znorm, znorm_rows


class TestZnorm:
    def test_zero_mean_unit_std(self):
        out = znorm(np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        assert abs(out.mean()) < 1e-12
        assert abs(out.std() - 1.0) < 1e-12

    def test_flat_series_becomes_zeros(self):
        out = znorm(np.full(10, 3.7))
        assert np.array_equal(out, np.zeros(10))

    def test_nearly_flat_series_uses_threshold(self):
        series = 5.0 + np.linspace(0, NORM_THRESHOLD / 10, 8)
        assert np.array_equal(znorm(series), np.zeros(8))

    def test_scale_and_offset_invariance(self):
        base = np.array([0.0, 1.0, -1.0, 2.0, 0.5])
        shifted = 10.0 * base + 42.0
        np.testing.assert_allclose(znorm(base), znorm(shifted), atol=1e-12)

    def test_does_not_mutate_input(self):
        series = np.array([1.0, 2.0, 3.0])
        copy = series.copy()
        znorm(series)
        assert np.array_equal(series, copy)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            znorm(np.zeros((2, 3)))

    def test_empty_input_returns_empty(self):
        assert znorm(np.array([])).size == 0

    def test_single_point_is_flat(self):
        assert np.array_equal(znorm(np.array([5.0])), np.array([0.0]))


class TestZnormRows:
    def test_matches_per_row_znorm(self, rng):
        X = rng.standard_normal((6, 20)) * 3.0 + 1.0
        out = znorm_rows(X)
        for i in range(6):
            np.testing.assert_allclose(out[i], znorm(X[i]), atol=1e-12)

    def test_mixed_flat_and_normal_rows(self):
        X = np.vstack([np.full(5, 2.0), np.arange(5.0)])
        out = znorm_rows(X)
        assert np.array_equal(out[0], np.zeros(5))
        assert abs(out[1].std() - 1.0) < 1e-12

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            znorm_rows(np.zeros(5))

    def test_empty_matrix(self):
        out = znorm_rows(np.zeros((0, 4)))
        assert out.shape == (0, 4)
