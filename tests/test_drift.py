"""Drift monitoring: sketches, references, the live monitor, both tiers.

Contracts under test:

1. **Sketches are mergeable and exact** — ``merge(a, b)`` equals
   folding the concatenated streams (associative), comparisons (PSI,
   KS) match closed-form hand computations without scipy, and the
   decaying variant forgets on the observation clock deterministically.
2. **References round-trip** — ``ReferenceDistribution`` serializes to
   JSON and back losslessly; ``ModelRegistry.publish(reference=True)``
   stores ``reference.json`` under the sha256 integrity scheme, so a
   tampered or deleted reference fails ``verify`` with a typed error.
3. **The monitor detects drift and nothing else** — replaying the
   training distribution keeps ``serve.drift.score`` near zero on both
   serving tiers; a noise-shifted stream pushes it past the threshold,
   sets the alert gauge and annotates the flight recorder with reason
   ``"drift"`` (rising edge only).
4. **Monitoring is an observer** — predictions are bitwise identical
   with the monitor attached or not; backlog overflow drops rows
   (counted) instead of applying backpressure.
"""

from __future__ import annotations

import json
import math
import time

import numpy as np
import pytest

from repro import RPMClassifier, SaxParams
from repro.core.io import save_model
from repro.data.noise import add_gaussian_noise
from repro.obs import registry, scoped_registry
from repro.obs.metrics import MetricsRegistry
from repro.obs.sketch import (
    PSI_EPS,
    DecayingSketch,
    DistributionSketch,
    ReferenceDistribution,
    ks_distance,
    psi,
)
from repro.serve import (
    CompiledModel,
    DriftMonitor,
    FlightRecorder,
    ModelRegistry,
    PredictionService,
    RegistryIntegrityError,
    ServeConfig,
    ShardedPredictionService,
    build_reference,
    offline_drift_report,
    resolve_reference,
)


@pytest.fixture(scope="module")
def fitted(tiny_gun):
    clf = RPMClassifier(sax_params=SaxParams(24, 4, 4), seed=0)
    clf.fit(tiny_gun.X_train, tiny_gun.y_train)
    return clf


@pytest.fixture(scope="module")
def compiled(fitted):
    with CompiledModel.from_classifier(fitted) as model:
        yield model


@pytest.fixture(scope="module")
def artifact(fitted, tmp_path_factory):
    path = tmp_path_factory.mktemp("drift_artifacts") / "model.npz"
    save_model(fitted, path)
    return path


@pytest.fixture(scope="module")
def reference(artifact):
    return build_reference(artifact)


@pytest.fixture(scope="module")
def train_features(compiled, tiny_gun):
    return compiled.transform(tiny_gun.X_train)


def _two_bin(values) -> DistributionSketch:
    """A 2-bin sketch (split at 1.0) for closed-form comparisons."""
    sketch = DistributionSketch(edges=(1.0,))
    sketch.extend(values)
    return sketch


def _wait_for_rows(monitor: DriftMonitor, n: int, timeout: float = 10.0) -> None:
    """Ingestion runs post-resolve, so folded rows trail predict()."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = monitor.describe()
        if state["rows"] + state["backlog"] >= n:
            return
        time.sleep(0.01)
    raise AssertionError(f"monitor never saw {n} rows: {monitor.describe()}")


class TestDistributionSketch:
    def test_add_and_extend_fold_identically(self, rng):
        values = rng.exponential(1.0, size=200)
        one = DistributionSketch.log_bins()
        batch = DistributionSketch.log_bins()
        for v in values:
            one.add(v)
        batch.extend(values)
        assert one.counts == batch.counts
        assert one.count == batch.count == 200.0
        assert one.min == batch.min == values.min()
        assert one.max == batch.max == values.max()
        assert math.isclose(one.total, values.sum())

    def test_merge_equals_folding_the_concatenated_stream(self, rng):
        xs = rng.exponential(1.0, size=150)
        ys = rng.exponential(2.0, size=75)
        a = DistributionSketch.log_bins()
        b = DistributionSketch.log_bins()
        both = DistributionSketch.log_bins()
        a.extend(xs)
        b.extend(ys)
        both.extend(np.concatenate([xs, ys]))
        merged = a.merge(b)
        assert merged.counts == both.counts
        assert merged.count == both.count
        assert merged.min == both.min and merged.max == both.max
        assert math.isclose(merged.total, both.total)

    def test_merge_is_associative_and_commutative(self, rng):
        parts = [rng.exponential(s, size=60) for s in (0.5, 1.0, 3.0)]
        sketches = []
        for part in parts:
            sketch = DistributionSketch.log_bins()
            sketch.extend(part)
            sketches.append(sketch)
        a, b, c = sketches
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = c.merge(a).merge(b)
        assert left.counts == right.counts == swapped.counts
        assert left.count == right.count == swapped.count

    def test_merge_refuses_mismatched_edges(self):
        with pytest.raises(ValueError, match="edges"):
            DistributionSketch.log_bins().merge(
                DistributionSketch.linear_bins(-1.0, 1.0)
            )

    def test_probabilities_sum_to_one_and_empty_is_zero(self, rng):
        sketch = DistributionSketch.log_bins()
        assert sketch.probabilities().sum() == 0.0
        sketch.extend(rng.exponential(1.0, size=50))
        assert math.isclose(sketch.probabilities().sum(), 1.0)

    def test_quantiles_are_ordered_and_clamped(self, rng):
        values = rng.uniform(0.5, 4.0, size=500)
        sketch = DistributionSketch.log_bins()
        sketch.extend(values)
        p50, p95 = sketch.quantile(0.5), sketch.quantile(0.95)
        assert sketch.min <= p50 <= p95 <= sketch.max
        with pytest.raises(ValueError, match="quantile"):
            sketch.quantile(1.5)

    def test_record_round_trip(self, rng):
        sketch = DistributionSketch.linear_bins(-2.0, 2.0, n_bins=8)
        sketch.extend(rng.normal(0, 1, size=64))
        back = DistributionSketch.from_record(
            json.loads(json.dumps(sketch.as_record()))
        )
        assert back.edges == sketch.edges
        assert back.counts == sketch.counts
        assert back.count == sketch.count
        assert back.min == sketch.min and back.max == sketch.max

    def test_empty_sketch_serializes_null_min_max(self):
        record = DistributionSketch.log_bins().as_record()
        assert record["min"] is None and record["max"] is None
        back = DistributionSketch.from_record(record)
        assert back.min == float("inf") and back.max == float("-inf")
        assert back.summary()["min"] is None

    def test_bad_construction_is_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            DistributionSketch(edges=(2.0, 1.0))
        with pytest.raises(ValueError, match="hi > lo"):
            DistributionSketch.linear_bins(1.0, 1.0)
        with pytest.raises(ValueError, match="n_bins"):
            DistributionSketch.linear_bins(0.0, 1.0, n_bins=1)
        with pytest.raises(ValueError, match="counts"):
            DistributionSketch.from_record(
                {"edges": [1.0], "counts": [1.0], "count": 1.0, "total": 1.0,
                 "min": 1.0, "max": 1.0}
            )

    def test_scale_bounds(self):
        sketch = DistributionSketch.log_bins()
        with pytest.raises(ValueError, match="factor"):
            sketch.scale(1.5)


class TestDecayingSketch:
    def test_half_life_halves_old_mass(self):
        sketch = DecayingSketch.log_bins(half_life=100)
        sketch.extend(np.full(100, 0.15))
        assert sketch.count == 100.0
        old_bin = sketch.counts.index(100.0)
        sketch.extend(np.full(100, 45.0))
        # Exactly one half-life of new traffic: old mass halves.
        assert math.isclose(sketch.counts[old_bin], 50.0)
        assert math.isclose(sketch.count, 150.0)

    def test_recent_window_follows_a_shift_the_lifetime_view_dilutes(self, rng):
        old = rng.exponential(0.2, size=400)
        new = rng.exponential(8.0, size=400)
        ref = DistributionSketch.log_bins()
        ref.extend(old)
        recent = DecayingSketch.log_bins(half_life=64)
        lifetime = DistributionSketch.log_bins()
        for chunk in (old, new):
            recent.extend(chunk)
            lifetime.extend(chunk)
        # The decayed window is dominated by the shifted traffic; the
        # lifetime view still carries half its mass from before.
        assert psi(ref, recent) > psi(ref, lifetime) > 0.0

    def test_decay_is_deterministic_not_wall_clock(self):
        a = DecayingSketch.log_bins(half_life=32)
        b = DecayingSketch.log_bins(half_life=32)
        a.extend(np.full(64, 1.0))
        b.extend(np.full(64, 1.0))
        time.sleep(0.02)  # wall time must not change anything
        b.extend(np.zeros(0))
        assert a.counts == b.counts and a.count == b.count

    def test_bad_half_life_rejected(self):
        with pytest.raises(ValueError, match="half_life"):
            DecayingSketch.log_bins(half_life=0)


class TestComparisons:
    def test_psi_matches_the_closed_form(self):
        # p = (0.5, 0.5) vs q = (0.7, 0.3):
        # PSI = 0.2*ln(1.4) - 0.2*ln(0.6) = 0.16946...
        expected = _two_bin([0.5] * 5 + [2.0] * 5)
        actual = _two_bin([0.5] * 7 + [2.0] * 3)
        closed_form = 0.2 * math.log(1.4) - 0.2 * math.log(0.6)
        assert math.isclose(psi(expected, actual), closed_form, rel_tol=1e-12)
        # PSI is symmetric in this two-bin construction.
        assert math.isclose(psi(actual, expected), closed_form, rel_tol=1e-12)

    def test_ks_matches_the_closed_form(self):
        expected = _two_bin([0.5] * 5 + [2.0] * 5)
        actual = _two_bin([0.5] * 7 + [2.0] * 3)
        assert math.isclose(ks_distance(expected, actual), 0.2, rel_tol=1e-12)

    def test_identical_streams_score_zero(self, rng):
        values = rng.exponential(1.0, size=100)
        a = DistributionSketch.log_bins()
        b = DistributionSketch.log_bins()
        a.extend(values)
        b.extend(values)
        assert psi(a, b) == 0.0
        assert ks_distance(a, b) == 0.0

    def test_empty_sketches_are_not_drift(self):
        full = _two_bin([0.5, 2.0])
        empty = DistributionSketch(edges=(1.0,))
        assert psi(full, empty) == 0.0
        assert psi(empty, full) == 0.0
        assert ks_distance(full, empty) == 0.0

    def test_disjoint_support_is_finite_via_the_epsilon_floor(self):
        a = _two_bin([0.5] * 10)
        b = _two_bin([2.0] * 10)
        value = psi(a, b)
        assert 0.0 < value <= 2.0 * math.log(1.0 / PSI_EPS)

    def test_mismatched_edges_refused(self):
        a = DistributionSketch.log_bins()
        b = DistributionSketch.linear_bins(0.0, 1.0)
        a.add(0.5)
        b.add(0.5)
        with pytest.raises(ValueError, match="edges"):
            psi(a, b)


class TestReferenceDistribution:
    def test_from_features_shapes_and_rates(self, train_features):
        ref = ReferenceDistribution.from_features(
            train_features, series_length=120
        )
        assert ref.n_columns == train_features.shape[1]
        assert ref.n_rows == train_features.shape[0]
        assert math.isclose(sum(ref.best_match_rate), 1.0)
        assert all(0.0 <= r <= 1.0 for r in ref.best_match_rate)
        # No raw X: input mean/std stay empty, length comes from meta.
        assert ref.input_mean.count == 0 and ref.input_std.count == 0
        assert ref.input_length.count == train_features.shape[0]
        assert not ref.meta()["has_input_stats"]

    def test_from_features_with_raw_inputs(self, train_features, tiny_gun):
        ref = ReferenceDistribution.from_features(train_features, tiny_gun.X_train)
        assert ref.input_mean.count == len(tiny_gun.X_train)
        assert ref.input_std.count == len(tiny_gun.X_train)
        assert ref.meta()["has_input_stats"]

    def test_save_load_round_trip(self, train_features, tiny_gun, tmp_path):
        ref = ReferenceDistribution.from_features(
            train_features, tiny_gun.X_train, source="test"
        )
        path = ref.save(tmp_path / "reference.json")
        back = ReferenceDistribution.load(path)
        assert back.as_record() == ref.as_record()
        assert psi(ref.columns[0], back.columns[0]) == 0.0

    def test_unknown_format_is_rejected(self, train_features, tmp_path):
        ref = ReferenceDistribution.from_features(train_features)
        record = ref.as_record()
        record["format"] = 99
        (tmp_path / "bad.json").write_text(json.dumps(record))
        with pytest.raises(ValueError, match="format"):
            ReferenceDistribution.load(tmp_path / "bad.json")

    def test_shape_validation(self, train_features):
        with pytest.raises(ValueError, match="2-D"):
            ReferenceDistribution.from_features(train_features[:, 0])
        ref = ReferenceDistribution.from_features(train_features)
        with pytest.raises(ValueError, match="rates"):
            ReferenceDistribution(
                ref.columns, ref.best_match_rate[:-1], ref.input_mean,
                ref.input_std, ref.input_length, n_rows=ref.n_rows,
            )

    def test_build_reference_refuses_non_model_archives(self, tmp_path):
        junk = tmp_path / "junk.npz"
        np.savez(junk, unrelated=np.zeros(3))
        with pytest.raises(ValueError, match="archive"):
            build_reference(junk)


class TestRegistryReference:
    @pytest.fixture()
    def reg(self, tmp_path, artifact):
        reg = ModelRegistry(tmp_path / "registry")
        reg.publish(artifact, reference=True)
        return reg

    def test_publish_stores_an_integrity_tracked_reference(
        self, reg, compiled, artifact
    ):
        mv = reg.get("v1")
        assert mv.reference_sha256 is not None
        ref_path = reg.reference_path("v1")
        assert ref_path.exists()
        reg.verify("v1")  # artifact + reference both clean
        ref = reg.reference("v1")
        assert ref is not None
        assert ref.n_columns == compiled.n_patterns
        assert ref.source == "v1/model.npz"

    def test_publish_without_reference_returns_none(self, tmp_path, artifact):
        reg = ModelRegistry(tmp_path / "plain")
        reg.publish(artifact)
        assert reg.get("v1").reference_sha256 is None
        assert reg.reference("v1") is None
        reg.verify("v1")  # no reference hash: nothing extra to check

    def test_tampered_reference_fails_verify(self, reg):
        ref_path = reg.reference_path("v1")
        record = json.loads(ref_path.read_text())
        record["n_rows"] += 1
        ref_path.write_text(json.dumps(record))
        with pytest.raises(RegistryIntegrityError, match="reference"):
            reg.verify("v1")
        with pytest.raises(RegistryIntegrityError, match="reference"):
            reg.reference("v1")

    def test_missing_reference_fails_verify(self, reg):
        reg.reference_path("v1").unlink()
        with pytest.raises(RegistryIntegrityError, match="missing"):
            reg.verify("v1")

    def test_resolve_reference_prefers_the_published_reference(
        self, reg, compiled
    ):
        class Handle:
            registry = reg
            version = "v1"

        ref = resolve_reference(None, Handle(), n_columns=compiled.n_patterns)
        assert ref.source == "v1/model.npz"

    def test_resolve_reference_rebuilds_when_unpublished(
        self, tmp_path, artifact, compiled
    ):
        reg = ModelRegistry(tmp_path / "plain")
        reg.publish(artifact)

        class Handle:
            registry = reg
            version = "v1"

        ref = resolve_reference(None, Handle())
        assert ref.n_columns == compiled.n_patterns

    def test_resolve_reference_paths_and_errors(
        self, artifact, reference, tmp_path
    ):
        assert resolve_reference(reference) is reference
        assert resolve_reference(artifact).n_columns == reference.n_columns
        saved = reference.save(tmp_path / "reference.json")
        assert resolve_reference(saved).n_columns == reference.n_columns
        with pytest.raises(ValueError, match="resolve"):
            resolve_reference(None, handle=None)
        with pytest.raises(ValueError, match="columns"):
            resolve_reference(reference, n_columns=reference.n_columns + 1)


class TestDriftMonitorUnit:
    """Synchronous monitor behavior (no drain thread: observe + flush)."""

    def _monitor(self, reference, **kwargs):
        kwargs.setdefault("metrics", MetricsRegistry())
        kwargs.setdefault("flight", FlightRecorder(capacity=16))
        return DriftMonitor(reference, **kwargs)

    def test_in_distribution_scores_near_zero(self, reference, train_features):
        monitor = self._monitor(reference, window=10**6)
        for i, row in enumerate(train_features):
            monitor.observe(f"req-{i}", np.zeros(4), row)
        state = monitor.flush()
        assert state is not None
        assert state["score"] < 0.05
        assert not state["alert"]
        snap = monitor.metrics.snapshot()
        assert snap["gauges"]["serve.drift.score"] == state["score"]
        assert snap["gauges"]["serve.drift.alert"] == 0.0

    def test_shifted_features_cross_the_threshold(
        self, reference, train_features
    ):
        monitor = self._monitor(reference, threshold=0.25)
        for i, row in enumerate(train_features * 6.0 + 3.0):
            monitor.observe(f"req-{i}", np.zeros(4), row)
        state = monitor.flush()
        assert state["score"] > 0.25
        assert state["alert"]
        assert state["top_offenders"]
        entries = monitor.flight.records(reason="drift")
        assert len(entries) == 1
        assert "psi" in entries[0]["error_message"]
        assert monitor.metrics.snapshot()["gauges"]["serve.drift.alert"] == 1.0

    def test_alert_flight_entry_fires_on_the_rising_edge_only(
        self, reference, train_features
    ):
        monitor = self._monitor(reference, threshold=0.25)
        for i, row in enumerate(train_features * 6.0 + 3.0):
            monitor.observe(f"req-{i}", np.zeros(4), row)
        monitor.flush()
        monitor.flush()  # still alerting: no second entry
        assert len(monitor.flight.records(reason="drift")) == 1
        assert monitor.describe()["alerts"] == 1

    def test_full_backlog_drops_rows_without_backpressure(
        self, reference, train_features
    ):
        monitor = self._monitor(reference, max_backlog=4)
        for i in range(10):
            monitor.observe(f"req-{i}", np.zeros(4), train_features[0])
        state = monitor.describe()
        assert state["backlog"] == 4
        assert state["dropped"] == 6
        assert (
            monitor.metrics.snapshot()["counters"]["serve.drift.dropped"] == 6
        )

    def test_stale_reference_rows_are_dropped_not_folded(self, reference):
        # Hot-swap guard: a feature row whose width no longer matches
        # the reference must not corrupt the sketches.
        monitor = self._monitor(reference)
        wrong = np.zeros(reference.n_columns + 1)
        monitor.observe("req-0", np.zeros(4), wrong)
        monitor.flush()
        state = monitor.describe()
        assert state["rows"] == 0
        assert state["dropped"] == 1

    def test_mixed_width_batch_folds_good_rows_and_drops_stale_ones(
        self, reference, train_features
    ):
        # The hot-swap scenario proper: rows of the old and new width
        # share one drained batch. Stale rows are filtered per row;
        # the matching rows still fold and the batch never np.stacks a
        # ragged array.
        monitor = self._monitor(reference)
        stale = np.zeros(reference.n_columns + 2)
        for i, row in enumerate(train_features[:6]):
            monitor.observe(f"req-{2 * i}", np.zeros(4), row)
            monitor.observe(f"req-{2 * i + 1}", np.zeros(4), stale)
        state_last = monitor.flush()
        state = monitor.describe()
        assert state["rows"] == 6
        assert state["dropped"] == 6
        assert state["fold_errors"] == 0
        assert state_last is not None  # the good rows were evaluated

    def test_fold_thread_survives_a_poisoned_batch(
        self, reference, train_features
    ):
        # A row that blows up mid-fold (here: a string that fails
        # float conversion) must not kill the drain thread — it is
        # counted in fold_errors and later rows keep folding, so the
        # gauges never freeze at a stale pre-crash value.
        monitor = self._monitor(reference)
        with monitor:
            monitor.observe("req-bad", np.zeros(4), "not-a-feature-row")
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if monitor.describe()["fold_errors"] == 1:
                    break
                time.sleep(0.01)
            assert monitor.describe()["fold_errors"] == 1
            for i, row in enumerate(train_features[:8]):
                monitor.observe(f"req-{i}", np.zeros(4), row)
            _wait_for_rows(monitor, 8)
        assert monitor.flush() is not None  # the good rows still evaluate
        state = monitor.describe()
        assert state["rows"] == 8
        assert state["fold_errors"] == 1
        assert (
            monitor.metrics.snapshot()["counters"]["serve.drift.fold_errors"]
            == 1
        )

    def test_score_is_the_max_per_column_psi(self, reference, train_features):
        # One strongly shifted pattern column must trip the score even
        # when every other column stays quiet — a mean would dilute it
        # by n_columns. The mean ships alongside as the breadth signal.
        rows = train_features.copy()
        rows[:, 0] = rows[:, 0] * 6.0 + 3.0
        monitor = self._monitor(reference, window=10**6)
        for i, row in enumerate(rows):
            monitor.observe(f"req-{i}", np.zeros(4), row)
        state = monitor.flush()
        per_column = [c["psi"] for c in state["columns"]]
        assert state["score"] == max(per_column)
        assert math.isclose(state["score_mean"], np.mean(per_column))
        assert state["score"] > state["score_mean"]
        assert state["top_offenders"][0]["column"] == 0

    def test_shard_tagged_rows_merge_to_the_single_stream_result(
        self, reference, train_features
    ):
        shifted = train_features * 6.0 + 3.0
        # A realistic window: decay runs on the monitor's global
        # observed-row clock, so the shard split sees the *same* decay
        # schedule as the single stream and the merge stays exact.
        merged = self._monitor(reference, window=32)
        single = self._monitor(reference, window=32)
        for i, row in enumerate(shifted):
            merged.observe(f"req-{i}", np.zeros(4), row, shard=i % 2)
            single.observe(f"req-{i}", np.zeros(4), row, shard=None)
        merged_state = merged.flush()
        single_state = single.flush()
        assert merged.describe()["shards"] == [0, 1]
        assert math.isclose(
            merged_state["score"], single_state["score"], rel_tol=1e-9
        )

    def test_idle_shard_decays_on_the_global_clock(
        self, reference, train_features
    ):
        # A shard that stops receiving traffic must fade out of the
        # merged recent window: after many windows of in-distribution
        # traffic on shard 1 alone, shard 0's early shifted rows no
        # longer hold the score above the threshold.
        shifted = train_features * 6.0 + 3.0
        monitor = self._monitor(reference, window=16, threshold=0.25)
        for i, row in enumerate(shifted[:16]):
            monitor.observe(f"bad-{i}", np.zeros(4), row, shard=0)
        assert monitor.flush()["score"] > 0.25
        n = 0
        for _ in range(20):  # ~20 half-lives of fresh traffic
            for row in train_features[:16]:
                monitor.observe(f"ok-{n}", np.zeros(4), row, shard=1)
                n += 1
        state = monitor.flush()
        assert state["score"] < 0.25
        assert not state["alert"]

    def test_describe_exposes_flat_gauges_for_the_exporter(
        self, reference, train_features
    ):
        monitor = self._monitor(reference)
        for i, row in enumerate(train_features[:8]):
            monitor.observe(f"req-{i}", np.zeros(4), row)
        monitor.flush()
        gauges = monitor.describe()["gauges"]
        assert "serve.drift.score" in gauges
        assert f"serve.drift.psi[column=0]" in gauges
        assert f"serve.drift.best_match_rate[pattern=0]" in gauges

    def test_bad_knobs_rejected(self, reference):
        for kwargs in (
            {"window": 0},
            {"threshold": 0.0},
            {"eval_every": 0},
            {"max_backlog": 0},
        ):
            with pytest.raises(ValueError, match=next(iter(kwargs))):
                DriftMonitor(reference, **kwargs)


class TestOfflineReport:
    def test_training_features_are_in_distribution(
        self, reference, train_features, tiny_gun
    ):
        report = offline_drift_report(
            reference, train_features, tiny_gun.X_train
        )
        assert report["score"] < 0.05
        assert not report["alert"]
        assert report["rows"] == len(train_features)
        assert len(report["columns"]) == reference.n_columns

    def test_shifted_features_alert(self, reference, train_features):
        report = offline_drift_report(reference, train_features * 6.0 + 3.0)
        assert report["alert"] and report["score"] > 0.25
        assert report["top_offenders"]

    def test_shape_validation(self, reference, train_features):
        with pytest.raises(ValueError, match="2-D"):
            offline_drift_report(reference, train_features[0])
        with pytest.raises(ValueError, match="columns"):
            offline_drift_report(reference, train_features[:, :-1])


class TestServiceIntegration:
    def test_in_distribution_stream_stays_below_threshold(
        self, compiled, reference, tiny_gun
    ):
        with scoped_registry():
            with PredictionService(
                compiled, config=ServeConfig(warmup=False)
            ) as service:
                monitor = service.attach_drift(reference, threshold=0.25)
                service.predict(tiny_gun.X_train)
                _wait_for_rows(monitor, len(tiny_gun.X_train))
                state = monitor.flush()
                assert state is not None
                assert state["score"] < 0.25 and not state["alert"]
                snap = registry().snapshot()
                assert snap["gauges"]["serve.drift.score"] < 0.25
                assert snap["gauges"]["serve.drift.alert"] == 0.0
                assert not service.flight.records(reason="drift")

    def test_shifted_stream_raises_the_alert(
        self, compiled, reference, tiny_gun
    ):
        shifted = add_gaussian_noise(tiny_gun.X_train, 2.0, seed=3)
        with scoped_registry():
            with PredictionService(
                compiled, config=ServeConfig(warmup=False)
            ) as service:
                monitor = service.attach_drift(reference, threshold=0.25)
                service.predict(np.vstack([shifted, shifted]))
                _wait_for_rows(monitor, 2 * len(shifted))
                state = monitor.flush()
                assert state["score"] > 0.25 and state["alert"]
                snap = registry().snapshot()
                assert snap["gauges"]["serve.drift.alert"] == 1.0
                entries = service.flight.records(reason="drift")
                assert entries and entries[0]["reason"] == "drift"
                described = service.describe_drift()
                assert described["top_offenders"]
                assert described["alert"] is True

    def test_predictions_bitwise_identical_monitor_on_or_off(
        self, compiled, reference, tiny_gun
    ):
        with scoped_registry():
            with PredictionService(
                compiled, config=ServeConfig(warmup=False)
            ) as plain:
                baseline = plain.predict(tiny_gun.X_test)
            with PredictionService(
                compiled, config=ServeConfig(warmup=False)
            ) as service:
                service.attach_drift(reference)
                monitored = service.predict(tiny_gun.X_test)
        np.testing.assert_array_equal(baseline, monitored)

    def test_attach_twice_refused_and_detach_reports(
        self, compiled, reference, tiny_gun
    ):
        with scoped_registry():
            with PredictionService(
                compiled, config=ServeConfig(warmup=False)
            ) as service:
                monitor = service.attach_drift(reference)
                with pytest.raises(RuntimeError, match="already"):
                    service.attach_drift(reference)
                service.predict(tiny_gun.X_train[:8])
                _wait_for_rows(monitor, 8)
                payload = service.detach_drift()
                assert payload is not None and "score" in payload
                assert service.describe_drift() is None
                assert service.detach_drift() is None

    def test_config_drift_knobs_reach_the_monitor(self, compiled, reference):
        config = ServeConfig(
            warmup=False, drift=True, drift_window=64, drift_threshold=0.5
        )
        with scoped_registry():
            with PredictionService(compiled, config=config) as service:
                monitor = service.attach_drift(reference)
                assert monitor.window == 64
                assert monitor.threshold == 0.5


class TestShardedIntegration:
    def test_shifted_stream_alerts_across_shards(
        self, compiled, reference, tiny_gun
    ):
        shifted = add_gaussian_noise(tiny_gun.X_train, 2.0, seed=3)
        with scoped_registry():
            with ShardedPredictionService(
                compiled, config=ServeConfig(n_shards=2, warmup=False)
            ) as service:
                monitor = service.attach_drift(reference, threshold=0.25)
                baseline = service.predict(tiny_gun.X_train)
                service.predict(np.vstack([shifted, shifted, shifted]))
                _wait_for_rows(
                    monitor, len(tiny_gun.X_train) + 3 * len(shifted)
                )
                state = monitor.flush()
                assert state["score"] > 0.25 and state["alert"]
                described = service.describe_drift()
                # Both workers contributed shard-tagged sketches.
                assert len(described["shards"]) == 2
                entries = service.flight.records(reason="drift")
                assert entries and entries[0]["shard"] is not None
                payload = service.detach_drift()
                assert payload["alert"]
        np.testing.assert_array_equal(
            baseline, compiled.predict(tiny_gun.X_train)
        )

    def test_sharded_predictions_bitwise_identical_with_monitor(
        self, compiled, reference, tiny_gun
    ):
        with scoped_registry():
            with ShardedPredictionService(
                compiled, config=ServeConfig(n_shards=2, warmup=False)
            ) as service:
                service.attach_drift(reference)
                labels = service.predict(tiny_gun.X_test)
        np.testing.assert_array_equal(
            labels, compiled.predict(tiny_gun.X_test)
        )
