"""Timing-regression smoke test for the cached transform path.

Guards the perf work from silently rotting: the cached kernel path
(one sliding-window precomputation per pattern length, reused across
patterns) must never fall behind the naive path (statistics recomputed
for every pattern) by more than a generous 1.5× margin. Marked
``slow`` — run with ``pytest -m slow`` (the default fast lane skips it).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.transform import pattern_features
from repro.distance.best_match import batch_best_distances
from repro.runtime import WindowStatsCache


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.slow
def test_cached_transform_not_slower_than_naive():
    rng = np.random.default_rng(42)
    X = rng.standard_normal((80, 256))
    # Many patterns, few distinct lengths — the shape of a real RPM
    # transform, and the case the (series, length) cache exists for.
    patterns = [rng.standard_normal(L) for L in (24, 32, 48) for _ in range(8)]

    def naive():
        return np.column_stack([batch_best_distances(p, X) for p in patterns])

    def cached():
        return pattern_features(X, patterns, cache=WindowStatsCache(8))

    # Same numbers first — a fast wrong answer is no optimization.
    assert np.array_equal(naive(), cached())

    naive_time = _best_of(naive)
    cached_time = _best_of(cached)
    assert cached_time <= 1.5 * naive_time, (
        f"cached transform regressed: {cached_time:.4f}s vs naive "
        f"{naive_time:.4f}s ({cached_time / naive_time:.2f}x)"
    )
