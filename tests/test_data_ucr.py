import numpy as np
import pytest

from repro.data.ucr import available_ucr_datasets, load_ucr_dataset, load_ucr_file


def _write_split(path, rows):
    with open(path, "w") as handle:
        for row in rows:
            handle.write(" ".join(str(v) for v in row) + "\n")


class TestLoadUcrFile:
    def test_whitespace_format(self, tmp_path):
        path = tmp_path / "data.txt"
        _write_split(path, [[1, 0.5, 0.6, 0.7], [2, 1.5, 1.6, 1.7]])
        X, y = load_ucr_file(path)
        assert X.shape == (2, 3)
        np.testing.assert_array_equal(y, [1, 2])
        assert y.dtype.kind == "i"

    def test_comma_format(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1,0.1,0.2\n2,0.3,0.4\n")
        X, y = load_ucr_file(path)
        assert X.shape == (2, 2)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 0.1 0.2\n\n2 0.3 0.4\n\n")
        X, _ = load_ucr_file(path)
        assert X.shape == (2, 2)

    def test_float_labels_preserved(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1.5 0.1\n2.5 0.2\n")
        _, y = load_ucr_file(path)
        assert y.dtype.kind == "f"

    def test_rejects_ragged(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 0.1 0.2\n2 0.3\n")
        with pytest.raises(ValueError, match="ragged"):
            load_ucr_file(path)

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 abc\n")
        with pytest.raises(ValueError, match="unparsable"):
            load_ucr_file(path)

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_ucr_file(path)

    def test_rejects_label_only_rows(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1\n2\n")
        with pytest.raises(ValueError, match="label and at least one"):
            load_ucr_file(path)


class TestLoadUcrDataset:
    def _archive(self, tmp_path, name="Toy"):
        _write_split(tmp_path / f"{name}_TRAIN", [[1, 0.1, 0.2], [2, 0.3, 0.4]])
        _write_split(tmp_path / f"{name}_TEST", [[1, 0.5, 0.6]])
        return tmp_path

    def test_flat_layout(self, tmp_path):
        root = self._archive(tmp_path)
        ds = load_ucr_dataset("Toy", root)
        assert ds.n_train == 2 and ds.n_test == 1
        assert ds.name == "Toy"

    def test_directory_layout(self, tmp_path):
        sub = tmp_path / "Toy"
        sub.mkdir()
        self._archive(sub)
        ds = load_ucr_dataset("Toy", tmp_path)
        assert ds.n_train == 2

    def test_missing_dataset(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no TRAIN file"):
            load_ucr_dataset("Nope", tmp_path)

    def test_env_var_fallback(self, tmp_path, monkeypatch):
        self._archive(tmp_path)
        monkeypatch.setenv("RPM_UCR_ROOT", str(tmp_path))
        ds = load_ucr_dataset("Toy")
        assert ds.n_train == 2

    def test_no_root_at_all(self, monkeypatch):
        monkeypatch.delenv("RPM_UCR_ROOT", raising=False)
        with pytest.raises(FileNotFoundError, match="RPM_UCR_ROOT"):
            load_ucr_dataset("Toy")


class TestAvailable:
    def test_lists_complete_datasets_only(self, tmp_path):
        _write_split(tmp_path / "A_TRAIN", [[1, 0.1]])
        _write_split(tmp_path / "A_TEST", [[1, 0.1]])
        _write_split(tmp_path / "B_TRAIN", [[1, 0.1]])  # no TEST
        assert available_ucr_datasets(tmp_path) == ["A"]

    def test_empty_when_unset(self, monkeypatch):
        monkeypatch.delenv("RPM_UCR_ROOT", raising=False)
        assert available_ucr_datasets() == []

    def test_missing_root_dir(self, tmp_path):
        assert available_ucr_datasets(tmp_path / "nothing") == []
