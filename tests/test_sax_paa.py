import numpy as np
import pytest

from repro.sax.paa import paa, paa_rows


class TestPaa:
    def test_divisible_case_is_segment_means(self):
        series = np.array([1.0, 3.0, 2.0, 4.0, 10.0, 12.0])
        np.testing.assert_allclose(paa(series, 3), [2.0, 3.0, 11.0])

    def test_identity_when_segments_equal_length(self):
        series = np.array([1.0, 2.0, 3.0])
        out = paa(series, 3)
        np.testing.assert_array_equal(out, series)
        assert out is not series  # must be a copy

    def test_single_segment_is_global_mean(self):
        series = np.arange(10.0)
        np.testing.assert_allclose(paa(series, 1), [4.5])

    def test_fractional_case_preserves_mean(self):
        # Overlap weighting must conserve total mass: the weighted mean
        # of the PAA equals the series mean.
        series = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        out = paa(series, 3)
        assert abs(out.mean() - series.mean()) < 1e-12

    def test_fractional_known_value(self):
        # n=5, w=2: segment width 2.5; first = (1+2+0.5*3)/2.5
        series = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        out = paa(series, 2)
        np.testing.assert_allclose(out, [(1 + 2 + 1.5) / 2.5, (1.5 + 4 + 5) / 2.5])

    def test_constant_series_stays_constant(self):
        out = paa(np.full(11, 2.5), 4)
        np.testing.assert_allclose(out, np.full(4, 2.5))

    def test_rejects_zero_segments(self):
        with pytest.raises(ValueError, match=">= 1"):
            paa(np.arange(5.0), 0)

    def test_rejects_more_segments_than_points(self):
        with pytest.raises(ValueError, match="may not exceed"):
            paa(np.arange(3.0), 4)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            paa(np.zeros((2, 4)), 2)


class TestPaaRows:
    def test_matches_rowwise_paa(self, rng):
        X = rng.standard_normal((5, 13))
        out = paa_rows(X, 4)
        for i in range(5):
            np.testing.assert_allclose(out[i], paa(X[i], 4), atol=1e-12)

    def test_divisible_rowwise(self, rng):
        X = rng.standard_normal((4, 12))
        out = paa_rows(X, 4)
        np.testing.assert_allclose(out, X.reshape(4, 4, 3).mean(axis=2))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            paa_rows(np.zeros(5), 2)

    def test_rejects_segments_exceeding_width(self):
        with pytest.raises(ValueError, match="may not exceed"):
            paa_rows(np.zeros((2, 3)), 4)
