import numpy as np
import pytest

from repro.data import registry
from repro.data.synthetic import cbf, random_warp, smooth, synthetic_control, two_patterns


class TestHelpers:
    def test_smooth_preserves_constant(self):
        out = smooth(np.full(20, 3.0), 5)
        np.testing.assert_allclose(out, 3.0, atol=1e-9)

    def test_smooth_kernel_one_is_identity(self, rng):
        series = rng.standard_normal(15)
        np.testing.assert_array_equal(smooth(series, 1), series)

    def test_smooth_reduces_variance(self, rng):
        series = rng.standard_normal(200)
        assert smooth(series, 7).std() < series.std()

    def test_random_warp_preserves_length_and_endpoints_roughly(self, rng):
        series = np.sin(np.linspace(0, 6, 100))
        warped = random_warp(series, rng, 0.05)
        assert warped.size == 100
        assert abs(warped[0] - series[0]) < 0.3

    def test_random_warp_small_strength_near_identity(self, rng):
        series = np.sin(np.linspace(0, 6, 100))
        warped = random_warp(series, rng, 1e-6)
        np.testing.assert_allclose(warped, series, atol=1e-3)


class TestCbf:
    def test_shapes(self):
        ds = cbf(n_train_per_class=5, n_test_per_class=7, length=100, seed=0)
        assert ds.X_train.shape == (15, 100)
        assert ds.X_test.shape == (21, 100)
        assert ds.n_classes == 3

    def test_deterministic_given_seed(self):
        a = cbf(seed=5, n_train_per_class=3, n_test_per_class=3)
        b = cbf(seed=5, n_train_per_class=3, n_test_per_class=3)
        np.testing.assert_array_equal(a.X_train, b.X_train)

    def test_different_seeds_differ(self):
        a = cbf(seed=1, n_train_per_class=3, n_test_per_class=3)
        b = cbf(seed=2, n_train_per_class=3, n_test_per_class=3)
        assert not np.array_equal(a.X_train, b.X_train)

    def test_cylinder_has_plateau(self):
        ds = cbf(n_train_per_class=20, n_test_per_class=1, seed=3)
        cylinders = ds.X_train[ds.y_train == 0]
        # Mean cylinder has a flat elevated mid-section.
        mean = cylinders.mean(axis=0)
        assert mean[40:60].mean() > mean[:10].mean() + 2

    def test_bell_rises_funnel_falls(self):
        ds = cbf(n_train_per_class=30, n_test_per_class=1, seed=4)
        bell = ds.X_train[ds.y_train == 1].mean(axis=0)
        funnel = ds.X_train[ds.y_train == 2].mean(axis=0)
        # Bell ramps up towards the end of the event; funnel starts high.
        assert bell[70:90].mean() > bell[20:35].mean()
        assert funnel[20:40].mean() > funnel[90:110].mean()


class TestSyntheticControl:
    def test_six_classes(self):
        ds = synthetic_control(n_train_per_class=3, n_test_per_class=3)
        assert ds.n_classes == 6

    def test_trends_have_slope(self):
        ds = synthetic_control(n_train_per_class=10, n_test_per_class=1, seed=9)
        t = np.arange(ds.series_length)
        inc = ds.X_train[ds.y_train == 2]
        dec = ds.X_train[ds.y_train == 3]
        for row in inc:
            assert np.polyfit(t, row, 1)[0] > 0.05
        for row in dec:
            assert np.polyfit(t, row, 1)[0] < -0.05

    def test_shifts_have_level_change(self):
        ds = synthetic_control(n_train_per_class=10, n_test_per_class=1, seed=9)
        up = ds.X_train[ds.y_train == 4]
        assert (up[:, -10:].mean(axis=1) > up[:, :10].mean(axis=1) + 3).all()


class TestTwoPatterns:
    def test_four_classes(self):
        ds = two_patterns(n_train_per_class=4, n_test_per_class=4)
        assert ds.n_classes == 4

    def test_class_means_differ(self):
        ds = two_patterns(n_train_per_class=20, n_test_per_class=1, seed=11)
        means = [ds.X_train[ds.y_train == k].mean(axis=0) for k in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert np.abs(means[i] - means[j]).max() > 1.0


class TestRegistry:
    def test_every_generator_loads(self):
        for name in registry.GENERATORS:
            ds = registry.load(name)
            assert ds.n_train > 0 and ds.n_test > 0
            assert np.isfinite(ds.X_train).all()
            assert np.isfinite(ds.X_test).all()

    def test_suite_subset_of_generators(self):
        assert set(registry.SUITE) <= set(registry.GENERATORS)
        assert set(registry.ROTATION_SUITE) <= set(registry.GENERATORS)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            registry.load("DoesNotExist")

    def test_load_is_deterministic(self):
        a = registry.load("CBF")
        b = registry.load("CBF")
        np.testing.assert_array_equal(a.X_train, b.X_train)

    def test_load_suite_returns_all(self):
        suite = registry.load_suite(("CBF", "SyntheticControl"))
        assert [d.name for d in suite] == ["CBF", "SyntheticControl"]

    def test_ucr_root_preferred(self, tmp_path, monkeypatch):
        (tmp_path / "CBF_TRAIN").write_text("1 0.0 1.0\n2 1.0 0.0\n")
        (tmp_path / "CBF_TEST").write_text("1 0.5 0.5\n")
        monkeypatch.setenv("RPM_UCR_ROOT", str(tmp_path))
        ds = registry.load("CBF")
        assert ds.series_length == 2  # came from the fake archive
