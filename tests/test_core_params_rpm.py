import numpy as np
import pytest

from repro.core.params import ParamRanges, ParamSelector, default_ranges
from repro.core.rpm import RPMClassifier
from repro.sax.discretize import SaxParams


class TestParamRanges:
    def test_clip(self):
        ranges = ParamRanges(window=(10, 40), paa=(3, 8), alphabet=(3, 9))
        assert ranges.clip(100, 100, 100) == (40, 8, 9)
        assert ranges.clip(1, 1, 1) == (10, 3, 3)

    def test_clip_paa_never_exceeds_window(self):
        ranges = ParamRanges(window=(4, 6), paa=(3, 12), alphabet=(3, 9))
        w, p, a = ranges.clip(5, 12, 4)
        assert p <= w

    def test_grid_axes_within_bounds(self):
        ranges = default_ranges(100)
        axes = ranges.grid_axes()
        assert all(ranges.window[0] <= v <= ranges.window[1] for v in axes[0])
        assert all(ranges.paa[0] <= v <= ranges.paa[1] for v in axes[1])
        assert all(ranges.alphabet[0] <= v <= ranges.alphabet[1] for v in axes[2])

    def test_default_ranges_scale_with_length(self):
        short = default_ranges(30)
        long = default_ranges(300)
        assert long.window[1] > short.window[1]


class TestParamSelector:
    def test_evaluation_cached(self, tiny_gun):
        selector = ParamSelector(
            tiny_gun.X_train, tiny_gun.y_train, n_splits=2, cv_folds=3, seed=0
        )
        first = selector.evaluate(30, 5, 4)
        again = selector.evaluate(30, 5, 4)
        assert first is again
        assert selector.n_evaluations == 1

    def test_clipping_shares_cache_entry(self, tiny_gun):
        selector = ParamSelector(
            tiny_gun.X_train, tiny_gun.y_train, n_splits=2, cv_folds=3, seed=0
        )
        selector.evaluate(10_000, 5, 4)  # clips to the window upper bound
        hi = selector.ranges.window[1]
        selector.evaluate(hi, 5, 4)
        assert selector.n_evaluations == 1

    def test_f1_scores_per_class(self, tiny_gun):
        selector = ParamSelector(
            tiny_gun.X_train, tiny_gun.y_train, n_splits=2, cv_folds=3, seed=0
        )
        evaluation = selector.evaluate(30, 5, 4)
        if not evaluation.pruned:
            assert set(evaluation.f1_by_class) == {0, 1}
            for f1 in evaluation.f1_by_class.values():
                assert 0.0 <= f1 <= 1.0

    def test_select_direct_returns_params_per_class(self, tiny_gun):
        selector = ParamSelector(
            tiny_gun.X_train, tiny_gun.y_train, n_splits=2, cv_folds=3, seed=0
        )
        best = selector.select_direct(max_evaluations=6, max_iterations=3)
        assert set(best) == {0, 1}
        for params in best.values():
            assert isinstance(params, SaxParams)

    def test_select_grid_small_axes(self, tiny_gun):
        selector = ParamSelector(
            tiny_gun.X_train, tiny_gun.y_train, n_splits=2, cv_folds=3, seed=0
        )
        best = selector.select_grid(axes=[[24, 36], [4], [4]])
        assert set(best) == {0, 1}
        assert selector.n_evaluations <= 2


class TestRPMClassifier:
    def test_fixed_params_pipeline(self, tiny_cbf):
        clf = RPMClassifier(sax_params=SaxParams(24, 4, 4), seed=0)
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        preds = clf.predict(tiny_cbf.X_test)
        assert preds.shape == tiny_cbf.y_test.shape
        acc = np.mean(preds == tiny_cbf.y_test)
        assert acc > 0.6

    def test_patterns_exposed(self, tiny_cbf):
        clf = RPMClassifier(sax_params=SaxParams(24, 4, 4), seed=0)
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        assert clf.patterns_
        described = clf.describe_patterns()
        assert "representative patterns" in described
        for pattern in clf.patterns_:
            assert pattern.length >= 2

    def test_transform_shape(self, tiny_cbf):
        clf = RPMClassifier(sax_params=SaxParams(24, 4, 4), seed=0)
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        F = clf.transform(tiny_cbf.X_test)
        assert F.shape == (tiny_cbf.n_test, len(clf.patterns_))

    def test_per_class_params_dict(self, tiny_gun):
        params = {0: SaxParams(24, 4, 4), 1: SaxParams(30, 5, 5)}
        clf = RPMClassifier(sax_params=params, seed=0)
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        assert clf.params_by_class_ == params

    def test_missing_class_params_rejected(self, tiny_gun):
        clf = RPMClassifier(sax_params={0: SaxParams(24, 4, 4)})
        with pytest.raises(ValueError, match="missing classes"):
            clf.fit(tiny_gun.X_train, tiny_gun.y_train)

    def test_direct_search_end_to_end(self, tiny_gun):
        clf = RPMClassifier(direct_budget=6, n_splits=2, cv_folds=3, seed=0)
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        assert clf.n_param_evaluations_ >= 1
        preds = clf.predict(tiny_gun.X_test)
        assert preds.shape == tiny_gun.y_test.shape

    def test_patterns_for_class(self, tiny_cbf):
        clf = RPMClassifier(sax_params=SaxParams(24, 4, 4), seed=0)
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        for label in (0, 1, 2):
            for pattern in clf.patterns_for_class(label):
                assert pattern.label == label

    def test_gamma_fallback_produces_model(self, rng):
        # Pure noise: almost nothing repeats, but fit must still work.
        X = rng.standard_normal((8, 50))
        y = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        clf = RPMClassifier(sax_params=SaxParams(20, 4, 4), gamma=0.99, seed=0)
        clf.fit(X, y)
        assert clf.patterns_
        assert clf.predict(X).shape == (8,)

    def test_rotation_invariant_flag(self, tiny_gun):
        clf = RPMClassifier(
            sax_params=SaxParams(24, 4, 4), rotation_invariant=True, seed=0
        )
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        assert clf.predict(tiny_gun.X_test).shape == tiny_gun.y_test.shape

    def test_medoid_prototype_option(self, tiny_gun):
        clf = RPMClassifier(sax_params=SaxParams(24, 4, 4), prototype="medoid", seed=0)
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        assert clf.patterns_

    def test_rejects_single_class(self, rng):
        X = rng.standard_normal((4, 30))
        with pytest.raises(ValueError, match="two classes"):
            RPMClassifier(sax_params=SaxParams(10, 4, 4)).fit(X, np.zeros(4))

    def test_rejects_bad_param_search(self):
        with pytest.raises(ValueError, match="param_search"):
            RPMClassifier(param_search="random")

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            RPMClassifier().predict(np.zeros((1, 20)))

    def test_custom_classifier_factory(self, tiny_gun):
        from repro.baselines.nn import NearestNeighborED

        clf = RPMClassifier(
            sax_params=SaxParams(24, 4, 4),
            classifier_factory=NearestNeighborED,
            seed=0,
        )
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        assert isinstance(clf.classifier_, NearestNeighborED)
        assert clf.predict(tiny_gun.X_test).shape == tiny_gun.y_test.shape
