import numpy as np
import pytest

from repro.data.ecg import (
    abp_pulse,
    ecg200_sim,
    ecg_five_days_sim,
    heartbeat,
    medical_alarm_abp,
)
from repro.data.rotate import (
    halfway_rotation,
    rotate_rows,
    rotate_series,
    rotate_test_split,
)
from repro.data.spectra import coffee_sim, gaussian_band, olive_oil_sim


class TestHeartbeat:
    def test_r_peak_dominates(self, rng):
        beat = heartbeat(rng, 120, noise=0.0)
        peak = np.argmax(beat)
        assert 0.3 * 120 < peak < 0.45 * 120

    def test_st_elevation_raises_segment(self, rng):
        flat = heartbeat(np.random.default_rng(1), 150, st_elevation=0.0, noise=0.0)
        raised = heartbeat(np.random.default_rng(1), 150, st_elevation=0.5, noise=0.0)
        st = slice(int(0.44 * 150), int(0.56 * 150))
        assert raised[st].mean() > flat[st].mean() + 0.1

    def test_datasets_have_expected_shapes(self):
        ds = ecg_five_days_sim(n_train_per_class=3, n_test_per_class=4)
        assert ds.n_classes == 2 and ds.n_train == 6 and ds.n_test == 8
        ds2 = ecg200_sim(n_train_per_class=3, n_test_per_class=3)
        assert ds2.n_classes == 2


class TestAbp:
    def test_pulse_range(self):
        t = np.linspace(0, 1, 100, endpoint=False)
        pulse = abp_pulse(t, systolic=120, diastolic=80)
        assert pulse.min() >= 75
        assert 100 < pulse.max() <= 125

    def test_binary_alarm_dataset(self):
        ds = medical_alarm_abp(n_train_per_class=4, n_test_per_class=4, length=200)
        assert ds.n_classes == 2
        assert ds.series_length == 200

    def test_multiclass_variant(self):
        ds = medical_alarm_abp(
            n_train_per_class=3, n_test_per_class=3, multiclass=True
        )
        assert ds.n_classes == 4
        assert ds.name == "MedicalAlarmABP4"

    def test_hypotension_runs_lower(self):
        ds = medical_alarm_abp(
            n_train_per_class=10, n_test_per_class=1, multiclass=True, seed=5
        )
        normal = ds.X_train[ds.y_train == 0].mean()
        hypo = ds.X_train[ds.y_train == 1].mean()
        assert hypo < normal - 10


class TestSpectra:
    def test_gaussian_band_peak(self):
        grid = np.linspace(0, 1, 101)
        band = gaussian_band(grid, 0.5, 0.05, 2.0)
        assert abs(band.max() - 2.0) < 1e-9
        assert np.argmax(band) == 50

    def test_coffee_classes_differ_at_caffeine_band(self):
        ds = coffee_sim(n_train_per_class=10, n_test_per_class=1, seed=3)
        grid_idx = int(0.60 * ds.series_length)
        arabica = ds.X_train[ds.y_train == 0][:, grid_idx].mean()
        robusta = ds.X_train[ds.y_train == 1][:, grid_idx].mean()
        assert robusta > arabica + 0.2

    def test_olive_oil_four_classes(self):
        ds = olive_oil_sim(n_train_per_class=2, n_test_per_class=2)
        assert ds.n_classes == 4


class TestRotate:
    def test_rotate_series_swaps_sections(self):
        out = rotate_series(np.array([1.0, 2.0, 3.0, 4.0, 5.0]), 2)
        np.testing.assert_array_equal(out, [3, 4, 5, 1, 2])

    def test_rotation_is_cyclic_modulo_length(self):
        series = np.arange(6.0)
        np.testing.assert_array_equal(rotate_series(series, 6), series)
        np.testing.assert_array_equal(rotate_series(series, 8), rotate_series(series, 2))

    def test_double_halfway_rotation_identity_even_length(self):
        series = np.arange(10.0)
        np.testing.assert_array_equal(halfway_rotation(halfway_rotation(series)), series)

    def test_rotate_preserves_multiset(self, rng):
        series = rng.standard_normal(17)
        out = rotate_series(series, 5)
        np.testing.assert_allclose(np.sort(out), np.sort(series))

    def test_rotate_rows_returns_cuts(self, rng):
        X = rng.standard_normal((4, 12))
        rotated, cuts = rotate_rows(X, rng=0)
        assert rotated.shape == X.shape
        assert cuts.shape == (4,)
        for i, cut in enumerate(cuts):
            np.testing.assert_array_equal(rotated[i], rotate_series(X[i], int(cut)))

    def test_rotate_test_split_leaves_train(self):
        ds = coffee_sim(n_train_per_class=3, n_test_per_class=3)
        rotated = rotate_test_split(ds, seed=1)
        np.testing.assert_array_equal(rotated.X_train, ds.X_train)
        assert not np.array_equal(rotated.X_test, ds.X_test)
        assert rotated.name.endswith("-rotated")

    def test_rejects_2d_series(self):
        with pytest.raises(ValueError, match="1-D"):
            rotate_series(np.zeros((2, 3)), 1)

    def test_rotate_rows_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            rotate_rows(np.zeros(5))
