"""Contract tests for the unified estimator protocol (repro.base).

Every estimator in the package — RPM and all baselines — must satisfy
the same surface: keyword-only construction, ``get_params`` /
``set_params`` round-trips, generic cloning, ``fit`` returning self.
Evaluation and cross-validation rely on these guarantees to
re-instantiate estimators without knowing their concrete types.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BaseEstimator, Estimator, RPMClassifier, SaxParams, clone
from repro.base import keyword_only
from repro.baselines import (
    BagOfPatternsClassifier,
    FastShapeletsClassifier,
    LearningShapeletsClassifier,
    LogicalShapeletsClassifier,
    NearestNeighborDTW,
    NearestNeighborED,
    SaxVsmClassifier,
    ShapeletTransformClassifier,
    TunedLearningShapelets,
)

PARAMS = SaxParams(16, 4, 4)

# One cheaply-constructed instance per estimator class in the package.
ESTIMATORS = [
    RPMClassifier(sax_params=PARAMS, seed=0),
    NearestNeighborED(),
    NearestNeighborDTW(window_fractions=(0.1,)),
    SaxVsmClassifier(params=PARAMS),
    BagOfPatternsClassifier(params=PARAMS),
    FastShapeletsClassifier(top_k=2, n_projections=2, seed=0),
    LearningShapeletsClassifier(n_shapelets=2, epochs=5, seed=0),
    TunedLearningShapelets(grid={"n_shapelets": [2]}, epochs=5),
    LogicalShapeletsClassifier(top_k=2, seed=0),
    ShapeletTransformClassifier(n_shapelets=2, seed=0),
]

ids = [type(est).__name__ for est in ESTIMATORS]

# Cheap to fit on a tiny dataset (the heavier shapelet learners are
# exercised by their own suites).
FITTABLE = [
    est
    for est in ESTIMATORS
    if type(est).__name__
    not in {"TunedLearningShapelets", "ShapeletTransformClassifier"}
]


@pytest.fixture(scope="module")
def tiny(tiny_gun):
    return tiny_gun.X_train[:12], tiny_gun.y_train[:12]


class TestProtocol:
    @pytest.mark.parametrize("est", ESTIMATORS, ids=ids)
    def test_satisfies_protocol(self, est):
        assert isinstance(est, Estimator)
        assert isinstance(est, BaseEstimator)

    @pytest.mark.parametrize("est", ESTIMATORS, ids=ids)
    def test_get_params_round_trips_through_init(self, est):
        params = est.get_params()
        rebuilt = type(est)(**params)
        assert rebuilt.get_params().keys() == params.keys()
        for name, value in params.items():
            assert rebuilt.get_params()[name] is value or rebuilt.get_params()[name] == value

    @pytest.mark.parametrize("est", ESTIMATORS, ids=ids)
    def test_clone_is_fresh_and_equal(self, est):
        twin = clone(est)
        assert twin is not est
        assert type(twin) is type(est)
        assert twin.get_params().keys() == est.get_params().keys()

    @pytest.mark.parametrize("est", ESTIMATORS, ids=ids)
    def test_set_params_returns_self_and_applies(self, est):
        twin = clone(est)
        params = twin.get_params()
        assert twin.set_params(**params) is twin
        for name, value in params.items():
            assert twin.get_params()[name] is value or twin.get_params()[name] == value

    @pytest.mark.parametrize("est", ESTIMATORS, ids=ids)
    def test_set_params_rejects_unknown_name(self, est):
        with pytest.raises(ValueError, match="no_such_param"):
            clone(est).set_params(no_such_param=1)

    @pytest.mark.parametrize("est", FITTABLE, ids=[type(e).__name__ for e in FITTABLE])
    def test_fit_returns_self(self, est, tiny):
        X, y = tiny
        model = clone(est)
        assert model.fit(X, y) is model
        assert model.predict(X[:2]).shape == (2,)

    def test_clone_never_copies_fitted_state(self, tiny):
        X, y = tiny
        model = NearestNeighborED().fit(X, y)
        twin = clone(model)
        assert twin.X_ is None and twin.y_ is None


class TestKeywordOnlyShim:
    def test_rpm_positional_sax_params_warns(self):
        with pytest.warns(DeprecationWarning, match="sax_params"):
            clf = RPMClassifier(PARAMS)
        assert clf.sax_params is PARAMS

    def test_baseline_positional_warns(self):
        with pytest.warns(DeprecationWarning, match="params"):
            model = BagOfPatternsClassifier(PARAMS)
        assert model.params is PARAMS

    def test_keyword_call_is_silent(self, recwarn):
        RPMClassifier(sax_params=PARAMS)
        BagOfPatternsClassifier(params=PARAMS)
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_too_many_positionals_raise(self):
        with pytest.raises(TypeError, match="positional"):
            NearestNeighborDTW((0.1,), None, "extra")

    def test_positional_and_keyword_duplicate_raises(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="params"):
                BagOfPatternsClassifier(PARAMS, params=PARAMS)

    def test_decorator_preserves_signature_for_introspection(self):
        @keyword_only("a", "b")
        def init(self, *, a=1, b=2):
            return a, b

        import inspect

        names = list(inspect.signature(init).parameters)
        assert names == ["self", "a", "b"]


class TestModuleClone:
    def test_clone_accepts_duck_typed_estimator(self):
        class Duck:
            def get_params(self):
                return {}

            def fit(self, X, y):
                return self

            def predict(self, X):
                return np.zeros(len(X))

        assert isinstance(clone(Duck()), Duck)

    def test_clone_rejects_non_estimators(self):
        with pytest.raises(TypeError):
            clone(object())
