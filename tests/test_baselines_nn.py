import numpy as np
import pytest

from repro.baselines.nn import NearestNeighborDTW, NearestNeighborED


class TestNearestNeighborED:
    def test_memorizes_training_set(self, tiny_cbf):
        clf = NearestNeighborED().fit(tiny_cbf.X_train, tiny_cbf.y_train)
        preds = clf.predict(tiny_cbf.X_train)
        assert np.array_equal(preds, tiny_cbf.y_train)

    def test_reasonable_on_cbf(self, tiny_cbf):
        clf = NearestNeighborED().fit(tiny_cbf.X_train, tiny_cbf.y_train)
        acc = np.mean(clf.predict(tiny_cbf.X_test) == tiny_cbf.y_test)
        assert acc > 0.5

    def test_scale_invariant_via_znorm(self, tiny_cbf):
        clf = NearestNeighborED().fit(tiny_cbf.X_train, tiny_cbf.y_train)
        scaled = tiny_cbf.X_test * 100.0 + 7.0
        np.testing.assert_array_equal(
            clf.predict(scaled), clf.predict(tiny_cbf.X_test)
        )

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            NearestNeighborED().predict(np.zeros((1, 4)))

    def test_rejects_mismatched(self, rng):
        with pytest.raises(ValueError):
            NearestNeighborED().fit(rng.standard_normal((3, 5)), np.zeros(4))


class TestNearestNeighborDTW:
    def test_fixed_window_skips_selection(self, tiny_gun):
        clf = NearestNeighborDTW(window_fractions=None, fixed_window=3)
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        assert clf.best_window_ == 3
        assert clf.loocv_accuracy_ == {}

    def test_window_selection_records_accuracies(self, tiny_gun):
        clf = NearestNeighborDTW(window_fractions=(0.0, 0.05))
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        assert set(clf.loocv_accuracy_) == {0, int(round(0.05 * 120))}
        assert clf.best_window_ in clf.loocv_accuracy_

    def test_beats_chance_on_warped_data(self, tiny_cbf):
        clf = NearestNeighborDTW(window_fractions=(0.0, 0.05, 0.1))
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        acc = np.mean(clf.predict(tiny_cbf.X_test) == tiny_cbf.y_test)
        assert acc > 0.6

    def test_window_zero_equals_euclidean_classifier(self, tiny_gun):
        dtw0 = NearestNeighborDTW(window_fractions=None, fixed_window=0)
        dtw0.fit(tiny_gun.X_train, tiny_gun.y_train)
        ed = NearestNeighborED().fit(tiny_gun.X_train, tiny_gun.y_train)
        np.testing.assert_array_equal(
            dtw0.predict(tiny_gun.X_test), ed.predict(tiny_gun.X_test)
        )

    def test_requires_windows_or_fixed(self, tiny_gun):
        clf = NearestNeighborDTW(window_fractions=None, fixed_window=None)
        with pytest.raises(ValueError, match="window"):
            clf.fit(tiny_gun.X_train, tiny_gun.y_train)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            NearestNeighborDTW().predict(np.zeros((1, 4)))
