"""Observability layer: tracer, metrics registry, emitters, equivalence.

Three contracts under test:

1. spans nest correctly (per-thread stacks plus the adopted ambient
   parent for worker threads) and the emitters render them faithfully;
2. the registry is exactly thread-safe — concurrent increments are
   never lost;
3. tracing is an observer only — a traced ``fit``/``transform`` is
   bitwise identical to an untraced one, and the disabled tracer adds
   no measurable work.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro import RPMClassifier, SaxParams
from repro.data import cbf
from repro.obs import (
    NOOP,
    MetricsRegistry,
    NullTracer,
    Tracer,
    format_tree,
    registry,
    resolve_tracer,
    scoped_registry,
    span_records,
    write_jsonl,
)
from repro.runtime import ParallelExecutor

FIXED_PARAMS = SaxParams(window_size=24, paa_size=5, alphabet_size=4)


@pytest.fixture(scope="module")
def dataset():
    return cbf(n_train_per_class=8, n_test_per_class=10, length=96, seed=7)


class TestTracer:
    def test_nesting_same_thread(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert [s.name for s in tracer.roots] == ["outer"]
        assert [s.name for s in outer.children] == ["inner"]
        assert inner.parent is outer
        assert outer.duration >= inner.duration >= 0.0

    def test_counters_and_meta(self):
        tracer = Tracer()
        with tracer.span("stage", label="A") as span:
            span.add("things", 2)
            span.add("things", 3)
            tracer.count("via_tracer")
        assert span.counters == {"things": 5, "via_tracer": 1}
        assert span.meta["label"] == "A"

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]
        assert tracer.total_duration() == pytest.approx(
            sum(s.duration for s in tracer.roots)
        )

    def test_exception_annotates_and_closes(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.roots[0].meta["error"] == "RuntimeError"
        assert tracer.current() is None

    def test_adopt_gives_worker_threads_a_parent(self):
        tracer = Tracer()

        def worker():
            with tracer.span("child"):
                time.sleep(0.001)

        with tracer.span("parent") as parent, tracer.adopt(parent):
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(tracer.roots) == 1
        assert len(parent.children) == 4
        assert all(c.parent is parent for c in parent.children)

    def test_adopt_restores_previous_ambient(self):
        tracer = Tracer()
        with tracer.span("a") as a, tracer.adopt(a):
            with tracer.span("b") as b, tracer.adopt(b):
                pass
            # Ambient must be back to `a`, not leaked as `b`.
            assert tracer._ambient is a
        assert tracer._ambient is None

    def test_resolve_tracer(self):
        assert resolve_tracer(None) is NOOP
        assert resolve_tracer(False) is NOOP
        assert isinstance(resolve_tracer(True), Tracer)
        tracer = Tracer()
        assert resolve_tracer(tracer) is tracer
        with pytest.raises(TypeError):
            resolve_tracer("yes")


class TestNullTracer:
    def test_records_nothing(self):
        with NOOP.span("anything", key="value") as span:
            span.add("counter")
            span.annotate(more="meta")
        assert NOOP.roots == ()
        assert NOOP.current() is None
        assert NOOP.total_duration() == 0.0

    def test_span_returns_shared_handle(self):
        # Zero-cost contract: the disabled path allocates nothing.
        assert NOOP.span("a") is NOOP.span("b")

    def test_picklable(self):
        import pickle

        clone = pickle.loads(pickle.dumps(NOOP))
        assert isinstance(clone, NullTracer)

    def test_noop_overhead_is_negligible(self):
        """100k disabled spans must cost well under a second.

        The bound is intentionally loose (CI machines vary wildly); the
        point is catching an accidental allocation or lock on the
        disabled path, which would push this toward seconds.
        """
        t0 = time.perf_counter()
        for _ in range(100_000):
            with NOOP.span("x"):
                pass
        assert time.perf_counter() - t0 < 1.0


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 4)
        reg.set_gauge("g", 2.5)
        for v in (1.0, 3.0, 2.0):
            reg.observe("h", v)
        assert reg.counter_value("c") == 5
        assert reg.gauge_value("g") == 2.5
        hist = reg.histogram("h")
        assert hist.count == 3
        assert hist.min == 1.0 and hist.max == 3.0
        assert hist.mean == pytest.approx(2.0)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["histograms"]["h"]["count"] == 3

    def test_missing_names_read_as_zero(self):
        reg = MetricsRegistry()
        assert reg.counter_value("nope") == 0
        assert reg.gauge_value("nope") == 0.0
        assert reg.histogram("nope") is None
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.reset()
        assert reg.counter_value("c") == 0

    def test_thread_safety_under_thread_backend(self):
        """Concurrent increments from a thread pool are never lost."""
        reg = MetricsRegistry()
        per_item = 50

        def work(i):
            for _ in range(per_item):
                reg.inc("hits")
                reg.observe("lat", float(i))
            return i

        with ParallelExecutor(4, "thread", chunk_size=1) as executor:
            executor.map(work, range(40))
        assert reg.counter_value("hits") == 40 * per_item
        assert reg.histogram("lat").count == 40 * per_item

    def test_global_registry_is_shared(self):
        assert registry() is registry()

    def test_scoped_registry_keeps_global_state_clean(self):
        """Tests that hit the process-global registry scope it instead
        of mutating shared state other tests might read."""
        outer = registry()
        before = outer.counter_value("obs.test_scoped")
        with scoped_registry():
            registry().inc("obs.test_scoped", 9)
            assert registry().counter_value("obs.test_scoped") == 9
        assert registry() is outer
        assert outer.counter_value("obs.test_scoped") == before


class TestEmitters:
    def _traced(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("fit") as fit:
            fit.add("n", 3)
            for _ in range(3):
                with tracer.span("evaluate") as ev:
                    ev.add("hits", 1)
        return tracer

    def test_format_tree_aggregates_siblings(self):
        text = format_tree(self._traced())
        assert "fit" in text
        # Three same-named children fold into one ×3 line.
        assert "evaluate ×3" in text
        assert "hits=3" in text

    def test_format_tree_empty(self):
        assert format_tree(Tracer()) == "(no spans recorded)"

    def test_span_records_depth_and_parent(self):
        records = list(span_records(self._traced()))
        assert records[0]["name"] == "fit"
        assert records[0]["depth"] == 0 and records[0]["parent"] is None
        assert all(r["depth"] == 1 and r["parent"] == "fit" for r in records[1:])
        assert len(records) == 4

    def test_write_jsonl_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("cache.hits", 7)
        reg.observe("executor.chunk_seconds", 0.25)
        path = write_jsonl(
            tmp_path / "m.jsonl",
            tracer=self._traced(),
            metrics=reg,
            meta={"run": "test"},
        )
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = {line["type"] for line in lines}
        assert kinds == {"meta", "span", "counter", "histogram"}
        counters = {l["name"]: l["value"] for l in lines if l["type"] == "counter"}
        assert counters["cache.hits"] == 7

    def test_write_jsonl_empty_inputs_produce_valid_document(self, tmp_path):
        """No tracer + empty registry still yields a self-describing file."""
        path = write_jsonl(tmp_path / "m.jsonl", tracer=None, metrics=MetricsRegistry())
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records == [{"type": "meta", "spans": 0, "instruments": 0}]

    def test_write_jsonl_header_counts_and_meta(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("c")
        path = write_jsonl(
            tmp_path / "m.jsonl", tracer=self._traced(), metrics=reg, meta={"run": "x"}
        )
        header = json.loads(path.read_text().splitlines()[0])
        assert header["type"] == "meta"
        assert header["spans"] == 4 and header["instruments"] == 1
        assert header["run"] == "x"


class TestPipelineTracing:
    def test_fit_produces_expected_span_tree(self, dataset):
        tracer = Tracer()
        clf = RPMClassifier(sax_params=FIXED_PARAMS, seed=0, trace=tracer)
        clf.fit(dataset.X_train, dataset.y_train)
        clf.transform(dataset.X_test)
        names = {span.name for root in tracer.roots for span, _ in root.walk()}
        for expected in (
            "fit",
            "mine",
            "class",
            "discretize",
            "grammar",
            "refine",
            "bisect",
            "select",
            "tau",
            "dedup",
            "transform",
            "cfs",
            "classifier",
        ):
            assert expected in names, f"missing span {expected!r}"
        # Every span measured something.
        fit_root = tracer.roots[0]
        assert fit_root.name == "fit"
        assert fit_root.duration > 0

    def test_traced_fit_is_bitwise_identical(self, dataset):
        """Tracing must not perturb a single output bit."""

        def run(trace):
            clf = RPMClassifier(
                sax_params=FIXED_PARAMS, seed=0, trace=trace,
            )
            clf.fit(dataset.X_train, dataset.y_train)
            return clf.selection_.train_features, clf.transform(dataset.X_test)

        plain_features, plain_transform = run(None)
        traced_features, traced_transform = run(True)
        assert np.array_equal(plain_features, traced_features)
        assert np.array_equal(plain_transform, traced_transform)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_traced_parallel_matches_untraced_serial(self, dataset, backend):
        """The PR 1 equivalence guarantee holds with tracing enabled."""

        def run(n_jobs, backend, trace):
            clf = RPMClassifier(
                sax_params=FIXED_PARAMS,
                seed=0,
                n_jobs=n_jobs,
                parallel_backend=backend,
                trace=trace,
            )
            clf.fit(dataset.X_train, dataset.y_train)
            return clf.transform(dataset.X_test), clf.predict(dataset.X_test)

        serial_transform, serial_preds = run(1, "serial", None)
        traced_transform, traced_preds = run(3, backend, True)
        assert np.array_equal(serial_transform, traced_transform)
        assert np.array_equal(serial_preds, traced_preds)

    def test_executor_metrics_aggregate_across_backends(self):
        for backend in ("thread", "process"):
            reg = MetricsRegistry()
            with ParallelExecutor(2, backend, metrics=reg) as executor:
                assert executor.map(_double, range(10)) == [2 * i for i in range(10)]
            assert reg.counter_value("executor.items") == 10
            hist = reg.histogram("executor.chunk_seconds")
            assert hist is not None
            assert hist.count == reg.counter_value("executor.chunks") > 0

    def test_executor_without_metrics_records_nothing(self):
        with ParallelExecutor(2, "thread") as executor:
            executor.map(_double, range(10))
        # The shared registry gains nothing from an uninstrumented map.
        assert executor.metrics is None

    def test_cache_counters_reach_registry(self, dataset):
        from repro.runtime.cache import WindowStatsCache

        reg = MetricsRegistry()
        cache = WindowStatsCache(4, metrics=reg)
        X = dataset.X_train
        cache.stats(X, 16)
        cache.stats(X, 16)
        cache.stats(X, 24)
        assert reg.counter_value("cache.hits") == cache.hits == 1
        assert reg.counter_value("cache.misses") == cache.misses == 2


def _double(x):
    return 2 * x
