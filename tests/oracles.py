"""Shared distance oracles and tolerance-aware assert helpers.

The optimized kernels (mat-vec and FFT alike) are pinned against the
one implementation slow enough to be obviously correct: z-normalize
every window explicitly, subtract, square, sum. Every distance-kernel
test in the suite compares against *this* module so the tolerance
model lives in exactly one place:

* mat-vec vs naive — the rolling-statistics identity introduces
  cancellation noise; distances agree to ``~1e-8`` absolute on
  well-conditioned data.
* FFT vs mat-vec — spectral round-trip noise is ``~1e-13`` on the
  squared distance; after the square root it is amplified near zero,
  so the shared tolerance is ``rtol=1e-9`` with an absolute floor of
  ``atol=1e-6`` (see ``docs/runtime.md``).

Argmin positions are compared through the kernels' own tie-break
contract (:func:`repro.runtime.kernel.tie_break_argmin_rows`): every
alignment within tolerance of the row minimum is a tie and the lowest
index wins, so positions are *exactly* equal across backends even when
the distances differ in the last bits.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.kernel import resample_pattern, tie_break_argmin_rows
from repro.sax.znorm import znorm

__all__ = [
    "DISTANCE_RTOL",
    "DISTANCE_ATOL",
    "DISTANCE_NEARZERO_RTOL",
    "naive_distance_profile",
    "naive_profiles",
    "naive_best_distances",
    "assert_profiles_close",
    "assert_argmin_equal",
]

#: Shared tolerance model for cross-backend distance comparisons.
DISTANCE_RTOL = 1e-9
DISTANCE_ATOL = 1e-6
#: Distances below this fraction of the profile's range are
#: "numerically zero": σ-cancellation noise enters d² linearly and the
#: square root amplifies it to ~sqrt(2L·δ) near d == 0, so two
#: near-zero values compare equal (see :func:`assert_profiles_close`).
DISTANCE_NEARZERO_RTOL = 5e-3


def naive_distance_profile(pattern: np.ndarray, series: np.ndarray) -> np.ndarray:
    """O(m·L) reference profile: explicit z-norm per window, no identities.

    Mirrors the public contract of ``distance_profile``: a pattern
    longer than the series is linearly resampled down first (yielding a
    single-alignment profile), and flat windows/patterns z-normalize to
    zeros exactly as :func:`repro.sax.znorm.znorm` defines.
    """
    pattern = np.asarray(pattern, dtype=float)
    series = np.asarray(series, dtype=float)
    if pattern.size > series.size:
        pattern = resample_pattern(pattern, series.size)
    q = znorm(pattern)
    n = pattern.size
    out = np.empty(series.size - n + 1)
    for pos in range(out.size):
        w = znorm(series[pos : pos + n])
        out[pos] = float(np.sqrt(np.sum((w - q) ** 2)))
    return out


def naive_profiles(pattern: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Stacked :func:`naive_distance_profile` over every row of ``X``."""
    X = np.asarray(X, dtype=float)
    return np.stack([naive_distance_profile(pattern, row) for row in X])


def naive_best_distances(
    pattern: np.ndarray, X: np.ndarray, *, rotation_invariant: bool = False
) -> np.ndarray:
    """Closest-match distance of one pattern to every row, the slow way."""
    X = np.asarray(X, dtype=float)
    best = naive_profiles(pattern, X).min(axis=1)
    if rotation_invariant:
        half = X.shape[1] // 2
        X_rot = np.column_stack([X[:, half:], X[:, :half]])
        best = np.minimum(best, naive_profiles(pattern, X_rot).min(axis=1))
    return best


def assert_profiles_close(
    actual: np.ndarray,
    expected: np.ndarray,
    *,
    rtol: float = DISTANCE_RTOL,
    atol: float = DISTANCE_ATOL,
    err_msg: str = "",
) -> None:
    """Distances agree within the shared tolerance model, NaN-free.

    Shapes must match exactly; both sides must be finite and
    non-negative (a distance can never be otherwise — catching a NaN
    here beats catching it three layers up in a classifier).

    The kernels' error model lives on the *squared* distance: the
    rolling-statistics identity derives each window's σ from
    whole-series cumulative sums, so on offset-dominated data its
    relative error δ reaches ``eps · Σx²/var`` (~1e-5 at the
    offset/noise ratios the property suite allows), that δ enters
    ``d²`` linearly, and a true-zero distance surfaces as
    ``sqrt(2L·δ)`` — a few 1e-3 of the profile's range. No fixed
    d-space floor covers that honestly, so the model is two-tier: each
    element agrees in d-space (``rtol`` plus a floor scaled by the
    profile's dynamic range), *or* both sides are numerically zero
    relative to that range (:data:`DISTANCE_NEARZERO_RTOL` — the regime
    where the square root has amplified σ's cancellation noise past any
    meaningful digits). Genuinely wrong distances fail both tiers; the
    exact cross-backend check is :func:`assert_argmin_equal`.
    """
    actual = np.asarray(actual, dtype=float)
    expected = np.asarray(expected, dtype=float)
    assert actual.shape == expected.shape, (
        f"profile shape mismatch: {actual.shape} vs {expected.shape}"
        + (f" ({err_msg})" if err_msg else "")
    )
    assert np.all(np.isfinite(actual)), f"non-finite distances in actual {err_msg}"
    assert np.all(np.isfinite(expected)), f"non-finite distances in expected {err_msg}"
    assert np.all(actual >= 0.0), f"negative distances in actual {err_msg}"
    scale = max(1.0, float(np.max(expected, initial=0.0)))
    diff = np.abs(actual - expected)
    ok_d = diff <= atol * scale + rtol * np.abs(expected)
    ok_nearzero = np.maximum(actual, expected) <= DISTANCE_NEARZERO_RTOL * scale
    ok = ok_d | ok_nearzero
    if not np.all(ok):
        worst = int(np.argmax(np.where(ok, 0.0, diff)))
        raise AssertionError(
            f"distances diverge beyond the tolerance model ({err_msg}): "
            f"{int((~ok).sum())}/{ok.size} elements, worst at flat index "
            f"{worst}: actual={actual.flat[worst]!r} "
            f"expected={expected.flat[worst]!r} (scale={scale:g})"
        )


def assert_argmin_equal(
    actual_profiles: np.ndarray,
    expected_profiles: np.ndarray,
    *,
    err_msg: str = "",
) -> None:
    """Best-match positions agree under the shared tie-break contract.

    Both profile matrices are reduced with
    :func:`~repro.runtime.kernel.tie_break_argmin_rows` — the exact
    reduction every backend and ``distance.best_match`` use — and the
    resulting index vectors must be *identical*. This is the strong
    form of cross-backend agreement: not just close distances, but the
    same chosen alignment.
    """
    a = tie_break_argmin_rows(np.atleast_2d(np.asarray(actual_profiles)))
    b = tie_break_argmin_rows(np.atleast_2d(np.asarray(expected_profiles)))
    np.testing.assert_array_equal(a, b, err_msg=err_msg or "argmin positions diverged")
