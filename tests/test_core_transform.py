import numpy as np
import pytest

from repro.core.transform import pattern_feature_row, pattern_features
from repro.data.rotate import rotate_series
from repro.distance.best_match import best_match


class TestPatternFeatures:
    def test_shape(self, rng):
        X = rng.standard_normal((5, 40))
        patterns = [rng.standard_normal(10), rng.standard_normal(14)]
        F = pattern_features(X, patterns)
        assert F.shape == (5, 2)

    def test_matches_scalar_best_match(self, rng):
        X = rng.standard_normal((4, 30))
        patterns = [rng.standard_normal(8)]
        F = pattern_features(X, patterns)
        for i in range(4):
            assert F[i, 0] == pytest.approx(best_match(patterns[0], X[i]).distance, abs=1e-8)

    def test_row_helper_agrees(self, rng):
        X = rng.standard_normal((3, 25))
        patterns = [rng.standard_normal(7), rng.standard_normal(9)]
        F = pattern_features(X, patterns)
        for i in range(3):
            np.testing.assert_allclose(
                pattern_feature_row(X[i], patterns), F[i], atol=1e-8
            )

    def test_embedded_pattern_gives_near_zero_feature(self, rng):
        pattern = np.hanning(12)
        X = rng.standard_normal((2, 50)) * 0.1
        X[0, 20:32] += pattern * 5
        F = pattern_features(X, [pattern])
        assert F[0, 0] < 0.5
        assert F[1, 0] > F[0, 0]

    def test_accepts_objects_with_values(self, rng):
        class Holder:
            def __init__(self, values):
                self.values = values

        X = rng.standard_normal((2, 20))
        p = rng.standard_normal(6)
        a = pattern_features(X, [p])
        b = pattern_features(X, [Holder(p)])
        np.testing.assert_array_equal(a, b)

    def test_rejects_empty_patterns(self, rng):
        with pytest.raises(ValueError, match="non-empty"):
            pattern_features(rng.standard_normal((2, 20)), [])

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            pattern_features(rng.standard_normal(20), [rng.standard_normal(5)])


class TestRotationInvariantTransform:
    def test_recovers_pattern_broken_by_rotation(self, rng):
        # Embed the pattern, rotate the series so the embedded copy is
        # split across the wrap-around point, and check the invariant
        # transform still sees it.
        pattern = np.hanning(16)
        series = rng.standard_normal(64) * 0.1
        series[24:40] += pattern * 6
        broken = rotate_series(series, 32)  # cuts straight through it
        plain = pattern_features(broken[None, :], [pattern])
        invariant = pattern_features(
            broken[None, :], [pattern], rotation_invariant=True
        )
        assert invariant[0, 0] < 0.6
        assert invariant[0, 0] <= plain[0, 0] + 1e-9

    def test_invariant_never_worse(self, rng):
        X = rng.standard_normal((6, 40))
        patterns = [rng.standard_normal(9)]
        plain = pattern_features(X, patterns)
        invariant = pattern_features(X, patterns, rotation_invariant=True)
        assert (invariant <= plain + 1e-9).all()

    def test_rotation_of_test_data_changes_little(self, rng):
        pattern = np.hanning(12)
        series = rng.standard_normal(48) * 0.1
        series[10:22] += pattern * 5
        base = pattern_features(series[None, :], [pattern], rotation_invariant=True)
        for cut in (5, 17, 29, 41):
            rotated = rotate_series(series, cut)
            feat = pattern_features(
                rotated[None, :], [pattern], rotation_invariant=True
            )
            assert feat[0, 0] < 1.5
        assert base[0, 0] < 0.5
