import numpy as np
import pytest
from scipy.cluster.hierarchy import fcluster, linkage as scipy_linkage
from scipy.spatial.distance import squareform

from repro.cluster.linkage import agglomerate, cut_k
from repro.distance.euclidean import pairwise_euclidean


def _random_distance_matrix(rng, n):
    X = rng.standard_normal((n, 3))
    return pairwise_euclidean(X)


class TestAgglomerate:
    def test_merge_count(self, rng):
        D = _random_distance_matrix(rng, 7)
        link = agglomerate(D)
        assert link.n == 7
        assert len(link.merges) == 6

    def test_heights_monotone(self, rng):
        for method in ("complete", "single", "average"):
            D = _random_distance_matrix(rng, 10)
            heights = agglomerate(D, method).heights()
            assert np.all(np.diff(heights) >= -1e-9)

    def test_matches_scipy_heights(self, rng):
        for method in ("complete", "single", "average"):
            D = _random_distance_matrix(rng, 12)
            ours = agglomerate(D, method).heights()
            theirs = scipy_linkage(squareform(D, checks=False), method=method)[:, 2]
            np.testing.assert_allclose(np.sort(ours), np.sort(theirs), atol=1e-9)

    def test_single_point(self):
        link = agglomerate(np.zeros((1, 1)))
        assert link.merges == []

    def test_two_points(self):
        D = np.array([[0.0, 2.5], [2.5, 0.0]])
        link = agglomerate(D)
        assert len(link.merges) == 1
        assert link.merges[0].height == 2.5
        assert link.merges[0].size == 2

    def test_rejects_asymmetric(self):
        D = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            agglomerate(D)

    def test_rejects_nonzero_diagonal(self):
        D = np.array([[1.0, 2.0], [2.0, 1.0]])
        with pytest.raises(ValueError, match="zero diagonal"):
            agglomerate(D)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            agglomerate(np.zeros((2, 3)))

    def test_rejects_unknown_method(self, rng):
        with pytest.raises(ValueError, match="method"):
            agglomerate(_random_distance_matrix(rng, 3), method="ward")


class TestCutK:
    def test_k_equals_n_gives_singletons(self, rng):
        D = _random_distance_matrix(rng, 6)
        labels = cut_k(agglomerate(D), 6)
        assert np.unique(labels).size == 6

    def test_k_one_gives_single_cluster(self, rng):
        D = _random_distance_matrix(rng, 6)
        labels = cut_k(agglomerate(D), 1)
        assert np.unique(labels).size == 1

    def test_two_well_separated_blobs(self, rng):
        X = np.vstack([rng.normal(0, 0.1, (5, 2)), rng.normal(10, 0.1, (5, 2))])
        D = pairwise_euclidean(X)
        labels = cut_k(agglomerate(D), 2)
        assert np.unique(labels[:5]).size == 1
        assert np.unique(labels[5:]).size == 1
        assert labels[0] != labels[5]

    def test_matches_scipy_partition(self, rng):
        D = _random_distance_matrix(rng, 15)
        for k in (2, 3, 5):
            ours = cut_k(agglomerate(D, "complete"), k)
            Z = scipy_linkage(squareform(D, checks=False), method="complete")
            theirs = fcluster(Z, t=k, criterion="maxclust")
            # Partitions must be identical up to label renaming.
            mapping = {}
            for a, b in zip(ours, theirs):
                mapping.setdefault(a, b)
                assert mapping[a] == b

    def test_rejects_bad_k(self, rng):
        link = agglomerate(_random_distance_matrix(rng, 4))
        with pytest.raises(ValueError, match="k must be"):
            cut_k(link, 0)
        with pytest.raises(ValueError, match="k must be"):
            cut_k(link, 5)
