import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.patterns import PatternCandidate
from repro.core.selection import (
    SelectionResult,
    _cap_candidates,
    compute_tau,
    find_distinct,
    remove_similar,
)
from repro.sax.discretize import SaxParams

PARAMS = SaxParams(8, 4, 4)


def _candidate(values, label=0, frequency=2, within=()):
    return PatternCandidate(
        values=np.asarray(values, dtype=float),
        label=label,
        frequency=frequency,
        support=frequency,
        rule_id=1,
        words=("ab",),
        sax_params=PARAMS,
        within_distances=np.asarray(within, dtype=float),
    )


class TestComputeTau:
    def test_percentile_of_pooled_distances(self):
        candidates = [
            _candidate(np.arange(5.0), within=[1.0, 2.0, 3.0]),
            _candidate(np.arange(5.0), within=[4.0, 5.0]),
        ]
        # pooled = [1,2,3,4,5]; 30th percentile
        assert compute_tau(candidates, 30) == pytest.approx(np.percentile([1, 2, 3, 4, 5], 30))

    def test_no_distances_gives_zero(self):
        assert compute_tau([_candidate(np.arange(4.0))]) == 0.0

    def test_monotone_in_percentile(self):
        candidates = [_candidate(np.arange(5.0), within=np.linspace(0.1, 3, 20))]
        taus = [compute_tau(candidates, p) for p in (10, 30, 50, 70, 90)]
        assert taus == sorted(taus)

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError, match="percentile"):
            compute_tau([], 150)


class TestRemoveSimilar:
    def test_keeps_more_frequent_of_similar_pair(self, rng):
        shape = np.sin(np.linspace(0, 3, 20))
        a = _candidate(shape, frequency=10)
        b = _candidate(shape + rng.standard_normal(20) * 0.01, frequency=3)
        kept = remove_similar([b, a], tau=1.0)
        assert len(kept) == 1
        assert kept[0].frequency == 10

    def test_dissimilar_patterns_both_kept(self):
        a = _candidate(np.sin(np.linspace(0, 3, 20)), frequency=5)
        b = _candidate(np.linspace(-1, 1, 20), frequency=4)
        kept = remove_similar([a, b], tau=0.5)
        assert len(kept) == 2

    def test_zero_tau_keeps_everything(self, rng):
        candidates = [_candidate(rng.standard_normal(15), frequency=i) for i in range(5)]
        assert len(remove_similar(candidates, 0.0)) == 5

    def test_different_length_comparison(self, rng):
        long_shape = np.sin(np.linspace(0, 4, 40))
        short_shape = long_shape[10:28]  # contained in the long one
        a = _candidate(long_shape, frequency=9)
        b = _candidate(short_shape, frequency=2)
        kept = remove_similar([a, b], tau=1.0)
        assert len(kept) == 1 and kept[0].frequency == 9

    def test_empty_input(self):
        assert remove_similar([], 1.0) == []


def _feature_dataset(rng, n_per_class=12, length=60):
    """Two classes with distinct embedded bumps."""
    X, y = [], []
    for label, sign in ((0, 1.0), (1, -1.0)):
        for _ in range(n_per_class):
            series = rng.standard_normal(length) * 0.1
            pos = 15 + int(rng.integers(-3, 4))
            series[pos : pos + 16] += sign * np.hanning(16) * 3
            X.append(series)
            y.append(label)
    return np.array(X), np.array(y)


class TestFindDistinct:
    def _candidates(self, rng):
        up = np.hanning(16) * 3
        down = -np.hanning(16) * 3
        return [
            _candidate(up, label=0, frequency=8, within=[0.3, 0.5, 0.7]),
            _candidate(down, label=1, frequency=8, within=[0.4, 0.6]),
            _candidate(rng.standard_normal(16), label=0, frequency=2, within=[1.0]),
        ]

    def test_returns_selection_result(self, rng):
        X, y = _feature_dataset(rng)
        result = find_distinct(X, y, self._candidates(rng))
        assert isinstance(result, SelectionResult)
        assert result.patterns
        assert result.train_features.shape == (X.shape[0], len(result.patterns))

    def test_discriminative_patterns_survive(self, rng):
        X, y = _feature_dataset(rng)
        result = find_distinct(X, y, self._candidates(rng))
        labels = {p.label for p in result.patterns}
        # At least one of the two class-defining bumps must be kept.
        assert labels & {0, 1}

    def test_feature_indices_sequential(self, rng):
        X, y = _feature_dataset(rng)
        result = find_distinct(X, y, self._candidates(rng))
        assert [p.feature_index for p in result.patterns] == list(
            range(len(result.patterns))
        )

    def test_counts_recorded(self, rng):
        X, y = _feature_dataset(rng)
        result = find_distinct(X, y, self._candidates(rng))
        assert result.n_candidates_in == 3
        assert 1 <= result.n_after_dedup <= 3

    def test_candidate_cap_applies(self, rng):
        X, y = _feature_dataset(rng, n_per_class=6)
        candidates = [
            _candidate(rng.standard_normal(16), label=i % 2, frequency=i)
            for i in range(40)
        ]
        result = find_distinct(X, y, candidates, max_candidates=10)
        assert result.n_after_dedup <= 10

    def test_rejects_empty_candidates(self, rng):
        X, y = _feature_dataset(rng, n_per_class=3)
        with pytest.raises(ValueError, match="no candidates"):
            find_distinct(X, y, [])


_CAP_ORDER_SCRIPT = """\
import numpy as np
from repro.core.patterns import PatternCandidate
from repro.core.selection import _cap_candidates
from repro.sax.discretize import SaxParams

rng = np.random.default_rng(99)
labels = ["gun", "point", "noise", "drift"]
candidates = [
    PatternCandidate(
        values=rng.standard_normal(8),
        label=labels[i % 4],
        frequency=i % 7,
        support=1,
        rule_id=i,
        words=("ab",),
        sax_params=SaxParams(8, 4, 4),
        within_distances=np.empty(0),
    )
    for i in range(40)
]
for c in _cap_candidates(candidates, 12):
    print(c.rule_id, c.label, c.frequency)
"""


class TestCapCandidates:
    def test_first_appearance_label_order(self):
        candidates = [
            _candidate(np.arange(8.0), label=label, frequency=f)
            for label, f in [("b", 5), ("a", 9), ("b", 1), ("a", 2), ("c", 7)]
        ]
        capped = _cap_candidates(candidates, 3)
        assert [c.label for c in capped] == ["b", "a", "c"]
        assert [c.frequency for c in capped] == [5, 9, 7]

    def test_no_cap_below_limit(self):
        candidates = [_candidate(np.arange(8.0), label="x")]
        assert _cap_candidates(candidates, 5) is candidates

    def test_order_independent_of_hash_seed(self):
        # String labels once flowed through a set(), so the capped pool
        # depended on PYTHONHASHSEED. Two interpreters with different
        # seeds must now produce the identical pool.
        src = str(Path(__file__).resolve().parents[1] / "src")
        outputs = []
        for seed in ("0", "424242"):
            env = os.environ.copy()
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-c", _CAP_ORDER_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0].strip()
