import numpy as np
import pytest

from repro.motif import (
    Motif,
    MotifOccurrence,
    find_discord_brute_force,
    find_discords_density,
    find_motifs,
    rule_density,
)
from repro.sax.discretize import SaxParams

PARAMS = SaxParams(24, 4, 4)


def _periodic(rng, n=500, period=40, noise=0.1):
    t = np.arange(n)
    return np.sin(2 * np.pi * t / period) + rng.standard_normal(n) * noise


class TestMotifDataclass:
    def test_frequency_and_mean_length(self):
        motif = Motif(
            rule_id=1,
            words=("ab",),
            occurrences=[MotifOccurrence(0, 10), MotifOccurrence(20, 34)],
        )
        assert motif.frequency == 2
        assert motif.mean_length() == 12.0

    def test_covered_points_merges_overlaps(self):
        motif = Motif(
            rule_id=1,
            words=("ab",),
            occurrences=[MotifOccurrence(0, 10), MotifOccurrence(5, 15)],
        )
        assert motif.covered_points() == 15

    def test_covered_points_disjoint(self):
        motif = Motif(
            rule_id=1,
            words=("ab",),
            occurrences=[MotifOccurrence(0, 5), MotifOccurrence(10, 15)],
        )
        assert motif.covered_points() == 10

    def test_empty(self):
        motif = Motif(rule_id=1, words=("ab",))
        assert motif.covered_points() == 0
        assert motif.mean_length() == 0.0


class TestFindMotifs:
    def test_periodic_series_has_frequent_motifs(self, rng):
        series = _periodic(rng)
        motifs = find_motifs(series, PARAMS)
        assert motifs
        assert motifs[0].frequency >= 4

    def test_occurrences_within_bounds(self, rng):
        series = _periodic(rng)
        for motif in find_motifs(series, PARAMS):
            for occ in motif.occurrences:
                assert 0 <= occ.start < occ.end <= series.size

    def test_min_frequency_respected(self, rng):
        series = _periodic(rng)
        for motif in find_motifs(series, PARAMS, min_frequency=5):
            assert motif.frequency >= 5

    def test_top_k_limits(self, rng):
        series = _periodic(rng)
        assert len(find_motifs(series, PARAMS, top_k=3)) <= 3

    def test_ranking_orders(self, rng):
        series = _periodic(rng)
        by_freq = find_motifs(series, PARAMS, rank_by="frequency")
        freqs = [m.frequency for m in by_freq]
        assert freqs == sorted(freqs, reverse=True)
        by_cov = find_motifs(series, PARAMS, rank_by="coverage")
        covers = [m.covered_points() for m in by_cov]
        assert covers == sorted(covers, reverse=True)

    def test_prototype_is_znormed(self, rng):
        series = _periodic(rng)
        motifs = find_motifs(series, PARAMS, refine=True, top_k=1)
        proto = motifs[0].prototype
        assert proto is not None
        assert abs(proto.mean()) < 1e-6

    def test_no_refine_skips_prototype(self, rng):
        series = _periodic(rng)
        motifs = find_motifs(series, PARAMS, refine=False, top_k=1)
        assert motifs[0].prototype is None

    def test_rejects_bad_ranking(self, rng):
        with pytest.raises(ValueError, match="rank_by"):
            find_motifs(_periodic(rng), PARAMS, rank_by="best")

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            find_motifs(np.zeros((3, 30)), PARAMS)

    def test_random_walk_fewer_motifs_than_periodic(self, rng):
        periodic = _periodic(rng, noise=0.05)
        walk = np.cumsum(rng.standard_normal(500))
        motifs_p = find_motifs(periodic, PARAMS, min_frequency=4)
        motifs_w = find_motifs(walk, PARAMS, min_frequency=4)
        top_p = motifs_p[0].frequency if motifs_p else 0
        top_w = motifs_w[0].frequency if motifs_w else 0
        assert top_p >= top_w


class TestRuleDensity:
    def test_counts_covering_occurrences(self):
        motifs = [
            Motif(rule_id=1, words=("a",), occurrences=[MotifOccurrence(0, 5)]),
            Motif(rule_id=2, words=("b",), occurrences=[MotifOccurrence(3, 8)]),
        ]
        density = rule_density(10, motifs)
        assert density[0] == 1
        assert density[4] == 2
        assert density[9] == 0

    def test_periodic_series_dense_everywhere_in_middle(self, rng):
        series = _periodic(rng, noise=0.05)
        motifs = find_motifs(series, PARAMS, refine=False)
        density = rule_density(series.size, motifs)
        assert density[100:400].min() >= 1


class TestDiscords:
    def _anomalous_series(self, rng, n=600, period=40):
        series = _periodic(rng, n=n, period=period, noise=0.08)
        series[300:330] += np.hanning(30) * 3.0
        return series

    def test_density_discord_near_true_anomaly(self, rng):
        series = self._anomalous_series(rng)
        discord = find_discords_density(series, PARAMS, n_discords=1)[0]
        assert 300 - 40 <= discord.start <= 330

    def test_brute_force_finds_anomaly(self, rng):
        series = self._anomalous_series(rng)
        discord = find_discord_brute_force(series, 30)
        assert 270 <= discord.start <= 330

    def test_multiple_discords_nonoverlapping(self, rng):
        series = self._anomalous_series(rng)
        discords = find_discords_density(series, PARAMS, n_discords=3)
        assert len(discords) <= 3
        for i, a in enumerate(discords):
            for b in discords[i + 1 :]:
                assert abs(a.start - b.start) >= PARAMS.window_size

    def test_scores_sorted_descending(self, rng):
        series = self._anomalous_series(rng)
        discords = find_discords_density(series, PARAMS, n_discords=3)
        scores = [d.score for d in discords]
        assert scores == sorted(scores, reverse=True)

    def test_rejects_window_too_long(self, rng):
        with pytest.raises(ValueError, match="shorter"):
            find_discords_density(np.zeros(30), PARAMS, window=40)
        with pytest.raises(ValueError, match="shorter"):
            find_discord_brute_force(np.zeros(30), 40)
