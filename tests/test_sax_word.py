import numpy as np
import pytest

from repro.sax.sax import mindist, sax_word, sax_words_for_rows
from repro.sax.znorm import znorm, znorm_rows


class TestSaxWord:
    def test_length_equals_paa_size(self):
        word = sax_word(np.sin(np.linspace(0, 6, 64)), 8, 4)
        assert len(word) == 8

    def test_increasing_ramp_spans_alphabet(self):
        word = sax_word(np.linspace(0, 1, 40), 4, 4)
        assert word == "abcd"

    def test_decreasing_ramp_reverses(self):
        word = sax_word(np.linspace(1, 0, 40), 4, 4)
        assert word == "dcba"

    def test_flat_series_maps_to_middle(self):
        # Flat input z-normalizes to zeros; zero lands in the region
        # just above the middle breakpoint.
        word = sax_word(np.full(20, 7.0), 4, 4)
        assert set(word) <= {"b", "c"}
        assert len(set(word)) == 1

    def test_offset_scale_invariance(self):
        series = np.sin(np.linspace(0, 7, 50))
        assert sax_word(series, 6, 5) == sax_word(series * 9 - 3, 6, 5)

    def test_normalize_false_skips_znorm(self):
        series = np.full(16, 10.0)  # large constant, no z-norm
        word = sax_word(series, 4, 4, normalize=False)
        assert word == "dddd"

    def test_letters_within_alphabet(self, rng):
        for _ in range(20):
            word = sax_word(rng.standard_normal(30), 5, 3)
            assert set(word) <= set("abc")


class TestSaxRows:
    def test_matches_scalar_path(self, rng):
        windows = znorm_rows(rng.standard_normal((7, 24)))
        words = sax_words_for_rows(windows, 6, 5)
        for row, word in zip(windows, words):
            assert word == sax_word(row, 6, 5, normalize=False)


class TestMindist:
    def test_identical_words_zero(self):
        assert mindist("abba", "abba", 32, 4) == 0.0

    def test_adjacent_letters_zero(self):
        assert mindist("abab", "baba", 32, 4) == 0.0

    def test_symmetry(self):
        assert mindist("aacd", "dcaa", 40, 4) == mindist("dcaa", "aacd", 40, 4)

    def test_lower_bounds_euclidean(self, rng):
        # The fundamental MINDIST property on z-normalized series.
        n, w, alpha = 32, 8, 4
        for _ in range(30):
            a = znorm(rng.standard_normal(n))
            b = znorm(rng.standard_normal(n))
            lb = mindist(sax_word(a, w, alpha), sax_word(b, w, alpha), n, alpha)
            true = float(np.sqrt(np.sum((a - b) ** 2)))
            assert lb <= true + 1e-9

    def test_rejects_unequal_lengths(self):
        with pytest.raises(ValueError, match="equal-length"):
            mindist("ab", "abc", 16, 4)

    def test_rejects_letters_outside_alphabet(self):
        with pytest.raises(ValueError, match="outside"):
            mindist("az", "ab", 16, 4)
