import numpy as np
import pytest

from repro.baselines.saxvsm import SaxVsmClassifier
from repro.sax.discretize import SaxParams


class TestSaxVsm:
    def test_fixed_params_classifies_cbf(self, tiny_cbf):
        clf = SaxVsmClassifier(params=SaxParams(30, 5, 5))
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        acc = np.mean(clf.predict(tiny_cbf.X_test) == tiny_cbf.y_test)
        assert acc > 0.7

    def test_weight_matrix_shape(self, tiny_cbf):
        clf = SaxVsmClassifier(params=SaxParams(24, 4, 4))
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        assert clf.weights_.shape == (3, len(clf.vocabulary_))

    def test_idf_zeroes_ubiquitous_words(self, tiny_cbf):
        clf = SaxVsmClassifier(params=SaxParams(24, 4, 4))
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        # A word present in every class bag has idf = log(1) = 0.
        present_everywhere = (clf.weights_ != 0).sum(axis=0) == 0
        tf_everywhere = np.array(
            [
                all(
                    clf.weights_[c, j] == 0.0
                    for c in range(clf.weights_.shape[0])
                )
                for j in range(clf.weights_.shape[1])
            ]
        )
        assert np.array_equal(present_everywhere, tf_everywhere)

    def test_parameter_selection_runs(self, tiny_gun):
        clf = SaxVsmClassifier(direct_budget=8, cv_folds=2, seed=0)
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        assert clf.params is not None
        preds = clf.predict(tiny_gun.X_test)
        assert preds.shape == tiny_gun.y_test.shape

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            SaxVsmClassifier(params=SaxParams(8, 4, 4)).predict(np.zeros((1, 20)))

    def test_deterministic(self, tiny_cbf):
        p = SaxParams(30, 5, 5)
        a = SaxVsmClassifier(params=p).fit(tiny_cbf.X_train, tiny_cbf.y_train)
        b = SaxVsmClassifier(params=p).fit(tiny_cbf.X_train, tiny_cbf.y_train)
        np.testing.assert_array_equal(
            a.predict(tiny_cbf.X_test), b.predict(tiny_cbf.X_test)
        )
