"""Exporters, histogram quantiles, snapshot/delta and scoped registry.

Contracts under test:

1. histogram quantiles are accurate within log-bucket resolution and
   exact for degenerate (single-value) histograms;
2. `snapshot()` + `delta()` measure an interval, independent of what
   accumulated before it;
3. the Prometheus exposition is line-format valid, names
   `serve.requests` as `serve_requests_total`, and renders histograms
   as summaries with quantile samples;
4. empty registries still export valid documents;
5. `scoped_registry` isolates process-global metric state;
6. the JSON logging adapter lifts `extra=` fields (request IDs) to
   top-level keys.
"""

from __future__ import annotations

import json
import logging
import re

import numpy as np
import pytest

from repro.obs import (
    JsonLogFormatter,
    MetricsRegistry,
    configure_logging,
    registry,
    scoped_registry,
    snapshot_from_jsonl,
    to_json,
    to_prometheus,
    write_jsonl,
)
from repro.obs.export import _metric_name

# One sample per line: name, optional {labels}, then a number.
PROMETHEUS_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+=\"[^\"]*\"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})?"
    r" [-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[0-9]+)$"
)


class TestHistogramQuantiles:
    def test_single_value_is_exact(self):
        reg = MetricsRegistry()
        for _ in range(10):
            reg.observe("h", 8.0)
        hist = reg.histogram("h")
        for q in (0.5, 0.95, 0.99):
            assert hist.quantile(q) == pytest.approx(8.0)

    def test_quantiles_track_numpy_within_bucket_resolution(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(mean=-3.0, sigma=1.2, size=5000)
        reg = MetricsRegistry()
        for v in values:
            reg.observe("lat", float(v))
        hist = reg.histogram("lat")
        for q in (0.5, 0.95, 0.99):
            exact = float(np.quantile(values, q))
            estimate = hist.quantile(q)
            # Log buckets are 1-2-5 per decade: estimates stay within
            # one bucket (a factor of 2.5) of the exact quantile.
            assert exact / 2.5 <= estimate <= exact * 2.5

    def test_quantiles_are_monotonic_and_clamped(self):
        reg = MetricsRegistry()
        for v in (0.001, 0.01, 0.1, 1.0, 10.0):
            reg.observe("h", v)
        hist = reg.histogram("h")
        p50, p95, p99 = (hist.quantile(q) for q in (0.5, 0.95, 0.99))
        assert 0.001 <= p50 <= p95 <= p99 <= 10.0

    def test_rejects_out_of_range_q(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        with pytest.raises(ValueError, match="quantile"):
            reg.histogram("h").quantile(1.5)

    def test_empty_histogram_record_is_zeroed(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        record = reg.histogram("h").as_record()
        assert {"p50", "p95", "p99"} <= set(record)


class TestSnapshotDelta:
    def test_counters_diff_against_baseline(self):
        reg = MetricsRegistry()
        reg.inc("c", 10)
        baseline = reg.snapshot()
        reg.inc("c", 3)
        reg.inc("new", 2)
        delta = reg.delta(baseline)
        assert delta["counters"] == {"c": 3, "new": 2}

    def test_histogram_delta_measures_the_interval(self):
        reg = MetricsRegistry()
        for _ in range(100):
            reg.observe("lat", 0.001)  # old regime: fast
        baseline = reg.snapshot()
        for _ in range(50):
            reg.observe("lat", 1.0)  # new regime: slow
        delta = reg.delta(baseline)["histograms"]["lat"]
        assert delta["count"] == 50
        assert delta["total"] == pytest.approx(50.0)
        assert delta["mean"] == pytest.approx(1.0)
        # The interval p50 reflects only the slow regime, not the 100
        # fast observations before the baseline.
        assert delta["p50"] == pytest.approx(1.0, rel=0.5)

    def test_gauges_pass_through_as_point_in_time(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 5.0)
        baseline = reg.snapshot()
        reg.set_gauge("depth", 2.0)
        assert reg.delta(baseline)["gauges"]["depth"] == 2.0

    def test_delta_against_empty_baseline_equals_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("c", 4)
        reg.observe("h", 0.5)
        delta = reg.delta({})
        snap = reg.snapshot()
        assert delta["counters"] == snap["counters"]
        assert delta["histograms"]["h"]["count"] == snap["histograms"]["h"]["count"]


class TestPrometheusExport:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.inc("serve.requests", 42)
        reg.set_gauge("serve.queue_depth", 3)
        for v in (0.01, 0.02, 0.05):
            reg.observe("serve.latency_seconds", v)
        return reg

    def test_every_sample_line_is_format_valid(self):
        text = to_prometheus(self._populated())
        lines = [l for l in text.splitlines() if l and not l.startswith("#")]
        assert lines, "no sample lines emitted"
        for line in lines:
            assert PROMETHEUS_SAMPLE.match(line), f"bad exposition line: {line!r}"

    def test_counter_names_gain_total_suffix(self):
        text = to_prometheus(self._populated())
        assert "serve_requests_total 42" in text
        assert "# TYPE serve_requests_total counter" in text

    def test_histograms_render_as_summaries_with_quantiles(self):
        text = to_prometheus(self._populated())
        assert "# TYPE serve_latency_seconds summary" in text
        assert 'serve_latency_seconds{quantile="0.5"}' in text
        assert 'serve_latency_seconds{quantile="0.99"}' in text
        assert "serve_latency_seconds_count 3" in text

    def test_accepts_snapshot_and_delta_dicts(self):
        reg = self._populated()
        baseline = reg.snapshot()
        reg.inc("serve.requests", 8)
        assert "serve_requests_total 50" in to_prometheus(reg.snapshot())
        assert "serve_requests_total 8" in to_prometheus(reg.delta(baseline))

    def test_empty_registry_is_a_valid_document(self):
        text = to_prometheus(MetricsRegistry())
        assert text.endswith("\n")
        assert all(l.startswith("#") for l in text.splitlines() if l)

    def test_rejects_garbage_source(self):
        with pytest.raises(TypeError, match="MetricsRegistry"):
            to_prometheus(["not", "a", "registry"])

    def test_metric_name_sanitization(self):
        assert _metric_name("serve.queue_wait_seconds") == "serve_queue_wait_seconds"
        assert _metric_name("0weird name!") == "_0weird_name_"


class TestJsonExport:
    def test_document_shape_and_quantiles(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.observe("h", 0.25)
        document = json.loads(to_json(reg, meta={"run": "x"}))
        assert document["counters"]["c"] == 2
        assert document["meta"]["run"] == "x"
        hist = document["histograms"]["h"]
        assert hist["count"] == 1 and "p99" in hist
        assert "buckets" not in hist  # diffing detail, not part of the view

    def test_empty_registry_is_valid_json(self):
        document = json.loads(to_json(MetricsRegistry()))
        assert document == {"counters": {}, "gauges": {}, "histograms": {}}


class TestJsonlRoundTrip:
    def test_dump_renders_like_a_live_scrape(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("serve.requests", 7)
        reg.observe("serve.latency_seconds", 0.1)
        path = write_jsonl(tmp_path / "m.jsonl", metrics=reg)
        snap = snapshot_from_jsonl(path)
        text = to_prometheus(snap)
        assert "serve_requests_total 7" in text
        assert 'serve_latency_seconds{quantile="0.5"}' in text

    def test_empty_dump_yields_empty_snapshot(self, tmp_path):
        path = write_jsonl(tmp_path / "m.jsonl")
        assert snapshot_from_jsonl(path) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestScopedRegistry:
    def test_scope_isolates_and_restores(self):
        outer = registry()
        outer_value = outer.counter_value("scoped.test")
        with scoped_registry() as reg:
            assert registry() is reg
            assert registry() is not outer
            registry().inc("scoped.test", 5)
            assert reg.counter_value("scoped.test") == 5
        assert registry() is outer
        assert outer.counter_value("scoped.test") == outer_value

    def test_caller_supplied_registry(self):
        mine = MetricsRegistry()
        with scoped_registry(mine) as reg:
            assert reg is mine
            registry().inc("x")
        assert mine.counter_value("x") == 1

    def test_restores_on_exception(self):
        outer = registry()
        with pytest.raises(RuntimeError):
            with scoped_registry():
                raise RuntimeError("boom")
        assert registry() is outer


class TestJsonLogging:
    def test_extra_fields_become_top_level_keys(self):
        record = logging.LogRecord(
            "repro.serve", logging.WARNING, __file__, 1, "request %s", ("slow",), None
        )
        record.request_id = "req-9"
        record.batch_id = 3
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["message"] == "request slow"
        assert payload["level"] == "warning"
        assert payload["request_id"] == "req-9"
        assert payload["batch_id"] == 3
        assert "ts" in payload

    def test_non_serializable_extras_fall_back_to_repr(self):
        record = logging.LogRecord(
            "repro", logging.INFO, __file__, 1, "m", (), None
        )
        record.payload = object()
        parsed = json.loads(JsonLogFormatter().format(record))
        assert "object object" in parsed["payload"]

    def test_configure_logging_is_idempotent(self):
        logger = configure_logging("json", logger="repro.test_export")
        before = len(logger.handlers)
        configure_logging("text", logger="repro.test_export")
        assert len(logger.handlers) == before
        for handler in list(logger.handlers):
            logger.removeHandler(handler)

    def test_configure_logging_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="log_format"):
            configure_logging("xml")
