"""Row/batch transform parity, and both against the naive oracle.

``pattern_feature_row`` must produce exactly the row the batch
``pattern_features`` transform would — it now delegates structurally,
but these tests pin the contract (an earlier implementation recomputed
the profile through a separate code path, which could drift on flat
windows and resampled patterns). The batch transform itself is pinned
against the explicit z-norm-per-window reference in
:mod:`tests.oracles`, on both kernel backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.transform import pattern_feature_row, pattern_features
from repro.runtime.cache import WindowStatsCache
from repro.sax.znorm import znorm
from tests.oracles import assert_profiles_close, naive_best_distances


@pytest.fixture(scope="module")
def series_matrix(rng):
    return rng.normal(size=(12, 80))


@pytest.fixture(scope="module")
def patterns(rng):
    return [znorm(rng.normal(size=n)) for n in (8, 16, 25, 80)]


def _assert_row_parity(X, patterns, **kwargs):
    batch = pattern_features(X, patterns, **kwargs)
    for i, row in enumerate(X):
        single = pattern_feature_row(row, patterns, **kwargs)
        np.testing.assert_array_equal(single, batch[i], strict=True)


class TestRowBatchParity:
    def test_plain(self, series_matrix, patterns):
        _assert_row_parity(series_matrix, patterns)

    def test_rotation_invariant(self, series_matrix, patterns):
        _assert_row_parity(series_matrix, patterns, rotation_invariant=True)

    def test_shared_cache(self, series_matrix, patterns):
        cache = WindowStatsCache(8)
        _assert_row_parity(series_matrix, patterns, cache=cache)

    def test_flat_pattern(self, series_matrix):
        flat = [np.zeros(10), np.full(10, 3.0)]
        _assert_row_parity(series_matrix, flat)

    def test_flat_series(self, patterns, rng):
        X = np.vstack(
            [
                np.zeros(80),
                np.full(80, -2.5),
                rng.normal(size=80),
            ]
        )
        _assert_row_parity(X, patterns)

    def test_flat_windows_inside_series(self, patterns, rng):
        # A series with long constant stretches exercises the kernel's
        # flat-window mask on some windows but not others.
        row = rng.normal(size=80)
        row[10:40] = 1.0
        X = np.vstack([row, rng.normal(size=80)])
        _assert_row_parity(X, patterns)

    def test_pattern_longer_than_series(self, rng):
        X = rng.normal(size=(5, 30))
        long_patterns = [znorm(rng.normal(size=45)), znorm(rng.normal(size=30))]
        _assert_row_parity(X, long_patterns)
        _assert_row_parity(X, long_patterns, rotation_invariant=True)

    def test_short_series(self, rng):
        X = rng.normal(size=(4, 6))
        short_patterns = [znorm(rng.normal(size=3)), znorm(rng.normal(size=6))]
        _assert_row_parity(X, short_patterns)

    def test_pattern_objects(self, series_matrix, patterns):
        class Holder:
            def __init__(self, values):
                self.values = values

        _assert_row_parity(series_matrix, [Holder(p) for p in patterns])


class TestBatchVsOracle:
    def test_features_match_naive_oracle(self, series_matrix, patterns):
        feats = pattern_features(series_matrix, patterns)
        for j, p in enumerate(patterns):
            assert_profiles_close(
                feats[:, j], naive_best_distances(p, series_matrix), err_msg=f"col {j}"
            )

    def test_rotation_invariant_matches_naive(self, series_matrix, patterns):
        feats = pattern_features(series_matrix, patterns, rotation_invariant=True)
        for j, p in enumerate(patterns):
            assert_profiles_close(
                feats[:, j],
                naive_best_distances(p, series_matrix, rotation_invariant=True),
                err_msg=f"col {j}",
            )

    def test_fft_backend_matches_matvec_and_naive(self, series_matrix, patterns):
        mat = pattern_features(series_matrix, patterns, kernel_backend="matvec")
        fft = pattern_features(series_matrix, patterns, kernel_backend="fft")
        assert_profiles_close(fft, mat)
        for j, p in enumerate(patterns):
            assert_profiles_close(
                fft[:, j], naive_best_distances(p, series_matrix), err_msg=f"col {j}"
            )


class TestRowValidation:
    def test_rejects_matrix_input(self, series_matrix, patterns):
        with pytest.raises(ValueError, match="1-D"):
            pattern_feature_row(series_matrix, patterns)

    def test_empty_patterns_returns_empty(self, series_matrix):
        out = pattern_feature_row(series_matrix[0], [])
        assert out.shape == (0,)
