"""Extra grammar coverage: SAX-integrated behaviour and stress cases."""

import numpy as np
import pytest

from repro.grammar.inference import discretize_class, induce_motifs
from repro.grammar.sequitur import Sequitur, induce_grammar
from repro.sax.discretize import SaxParams, discretize


class TestSequiturStress:
    def test_long_periodic_input_compresses_heavily(self):
        tokens = ["a", "b", "c", "d", "e"] * 400
        g = induce_grammar(tokens)
        assert g.start.expansion() == tokens
        assert g.grammar_size() < 100

    def test_nested_structure(self):
        # (ab)^2 inside larger repeats should build a rule hierarchy.
        tokens = list("ababXababXababX")
        g = induce_grammar(tokens)
        assert g.start.expansion() == tokens
        assert len(g.non_start_rules()) >= 2

    def test_alternating_two_tokens(self):
        tokens = ["x", "y"] * 100
        g = induce_grammar(tokens)
        assert g.start.expansion() == tokens
        for rule in g.non_start_rules():
            assert rule.refcount >= 2

    def test_fibonacci_like_growth(self):
        # Worst-ish case: a Sturmian-style sequence with few exact repeats.
        a, b = ["0"], ["1"]
        for _ in range(8):
            a, b = a + b, a
        g = induce_grammar(a)
        assert g.start.expansion() == a

    def test_tokens_fed_counter(self):
        g = Sequitur()
        g.feed_all(["a"] * 7)
        assert g.tokens_fed == 7


class TestGrammarOverSax:
    PARAMS = SaxParams(10, 4, 4)

    def test_grammar_rules_reflect_series_periodicity(self, rng):
        period = 25
        t = np.arange(300)
        series = np.sin(2 * np.pi * t / period) + rng.standard_normal(300) * 0.02
        record = discretize(series, self.PARAMS)
        g = induce_grammar(record.words)
        # A periodic series must compress well.
        assert g.grammar_size() < len(record.words)

    def test_motifs_scale_with_class_size(self, rng):
        def bumpy():
            s = rng.standard_normal(60) * 0.05
            s[20:38] += np.hanning(18) * 3
            return s

        small_set = [bumpy() for _ in range(3)]
        large_set = [bumpy() for _ in range(9)]
        rec_s, st_s, ln_s = discretize_class(small_set, self.PARAMS)
        rec_l, st_l, ln_l = discretize_class(large_set, self.PARAMS)
        freq_small = max(
            (m.frequency for m in induce_motifs(rec_s, st_s, ln_s)), default=0
        )
        freq_large = max(
            (m.frequency for m in induce_motifs(rec_l, st_l, ln_l)), default=0
        )
        assert freq_large >= freq_small

    def test_word_index_mapping_consistent(self, rng):
        instances = [rng.standard_normal(50) for _ in range(4)]
        record, starts, lengths = discretize_class(instances, self.PARAMS)
        series = np.concatenate(instances)
        # Every recorded word must re-derive from its offset.
        from repro.sax.sax import sax_word

        for word, offset in zip(record.words, record.offsets):
            window = series[offset : offset + self.PARAMS.window_size]
            assert sax_word(window, 4, 4) == word
