import numpy as np
import pytest

from repro.opt.direct import direct_minimize
from repro.opt.grid import (
    PRUNED_VALUE,
    CachedIntegerObjective,
    PrunedEvaluation,
    grid_search,
)


class TestCachedIntegerObjective:
    def test_rounds_to_integers(self):
        seen = []

        def f(key):
            seen.append(key)
            return 0.0

        obj = CachedIntegerObjective(f)
        obj(np.array([1.4, 2.6]))
        assert seen == [(1, 3)]

    def test_caches_repeat_evaluations(self):
        calls = 0

        def f(key):
            nonlocal calls
            calls += 1
            return float(sum(key))

        obj = CachedIntegerObjective(f)
        obj(np.array([1.1, 2.0]))
        obj(np.array([0.9, 2.2]))  # rounds to the same (1, 2)
        assert calls == 1
        assert obj.n_unique == 1
        assert obj.n_calls == 2

    def test_pruned_evaluation_becomes_sentinel(self):
        def f(key):
            raise PrunedEvaluation

        obj = CachedIntegerObjective(f)
        assert obj(np.array([3.0])) == PRUNED_VALUE

    def test_best_returns_minimum(self):
        obj = CachedIntegerObjective(lambda key: float(key[0] ** 2))
        for v in (-2.0, 1.0, 0.0, 3.0):
            obj(np.array([v]))
        key, value = obj.best()
        assert key == (0,)
        assert value == 0.0

    def test_best_before_any_call_raises(self):
        with pytest.raises(RuntimeError, match="never evaluated"):
            CachedIntegerObjective(lambda k: 0.0).best()

    def test_counts_R_under_direct(self):
        # Many continuous DIRECT samples collapse onto few integer
        # combinations — the mechanism behind the paper's small R.
        obj = CachedIntegerObjective(lambda key: float((key[0] - 3) ** 2))
        res = direct_minimize(obj, [(0.0, 10.0)], max_evaluations=60)
        assert obj.n_unique <= 11
        assert obj.n_calls == res.n_evaluations


class TestGridSearch:
    def test_finds_minimum(self):
        res = grid_search(
            lambda key: float((key[0] - 2) ** 2 + (key[1] + 1) ** 2),
            [[0, 1, 2, 3], [-2, -1, 0]],
        )
        assert res.x == (2, -1)
        assert res.fun == 0.0
        assert res.n_evaluations == 12

    def test_pruning_recorded(self):
        def f(key):
            if key[0] == 0:
                raise PrunedEvaluation
            return float(key[0])

        res = grid_search(f, [[0, 1, 2]])
        assert res.n_pruned == 1
        assert res.x == (1,)
        assert res.table[(0,)] == PRUNED_VALUE

    def test_all_pruned_falls_back(self):
        def f(key):
            raise PrunedEvaluation

        res = grid_search(f, [[5, 6]])
        assert res.x == (5,)
        assert res.fun == PRUNED_VALUE

    def test_max_evaluations_cap(self):
        res = grid_search(lambda k: float(k[0]), [list(range(100))], max_evaluations=10)
        assert res.n_evaluations == 10

    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError, match="non-empty"):
            grid_search(lambda k: 0.0, [[]])
