"""Additional Algorithm 2 coverage: τ percentiles, CFS interplay."""

import numpy as np
import pytest

from repro.core.candidates import find_candidates
from repro.core.selection import compute_tau, find_distinct
from repro.sax.discretize import SaxParams

PARAMS = SaxParams(16, 4, 4)


def _two_class_data(rng, n=10, length=80):
    X, y = [], []
    for label, builder in (
        (0, lambda: _with_bump(rng, length, np.hanning(18) * 3)),
        (1, lambda: _with_bump(rng, length, -np.hanning(18) * 3)),
    ):
        for _ in range(n):
            X.append(builder())
            y.append(label)
    return np.array(X), np.array(y)


def _with_bump(rng, length, bump):
    series = rng.standard_normal(length) * 0.08
    pos = 25 + int(rng.integers(-4, 5))
    series[pos : pos + bump.size] += bump
    return series


@pytest.fixture(scope="module")
def mined():
    rng = np.random.default_rng(77)
    X, y = _two_class_data(rng)
    candidates = find_candidates(X, y, {0: PARAMS, 1: PARAMS}, gamma=0.3)
    assert candidates
    return X, y, candidates


class TestTauSweep:
    def test_higher_tau_prunes_at_least_as_much(self, mined):
        X, y, candidates = mined
        sizes = []
        for pct in (10, 30, 50, 70, 90):
            result = find_distinct(X, y, candidates, tau_percentile=pct)
            sizes.append(result.n_after_dedup)
        assert sizes == sorted(sizes, reverse=True)

    def test_tau_zero_percentile_below_ninety(self, mined):
        _, _, candidates = mined
        assert compute_tau(candidates, 10) <= compute_tau(candidates, 90)

    def test_selection_never_empty_across_percentiles(self, mined):
        X, y, candidates = mined
        for pct in (10, 50, 90):
            result = find_distinct(X, y, candidates, tau_percentile=pct)
            assert result.patterns


class TestSelectionSemantics:
    def test_selected_patterns_come_from_dedup_pool(self, mined):
        X, y, candidates = mined
        result = find_distinct(X, y, candidates)
        assert result.n_after_dedup >= len(result.patterns)
        # Every selected pattern's values must be one of the inputs.
        input_values = [c.values for c in candidates]
        for pattern in result.patterns:
            assert any(
                value.shape == pattern.values.shape and np.allclose(value, pattern.values)
                for value in input_values
            )

    def test_train_features_match_selection_count(self, mined):
        X, y, candidates = mined
        result = find_distinct(X, y, candidates)
        assert result.train_features.shape == (X.shape[0], len(result.patterns))

    def test_feature_space_discriminates(self, mined):
        X, y, candidates = mined
        result = find_distinct(X, y, candidates)
        # Some feature must differ meaningfully between the classes.
        F = result.train_features
        gaps = [
            abs(F[y == 0, k].mean() - F[y == 1, k].mean())
            for k in range(F.shape[1])
        ]
        assert max(gaps) > 0.5

    def test_cfs_merit_recorded(self, mined):
        X, y, candidates = mined
        result = find_distinct(X, y, candidates)
        assert result.cfs_merit > 0.0

    def test_rotation_invariant_features_smaller_or_equal(self, mined):
        X, y, candidates = mined
        plain = find_distinct(X, y, candidates)
        invariant = find_distinct(X, y, candidates, rotation_invariant=True)
        # Not directly comparable column-to-column (CFS may pick different
        # patterns), but both must produce working selections.
        assert plain.patterns and invariant.patterns
