"""Model lifecycle: registry round-trips, handle resolution, gating.

Contracts under test:

1. **Registry round-trip** — ``publish`` copies an artifact with full
   lineage metadata (sha256, training-data fingerprint, parent) and
   ``get``/``list_versions``/``verify`` read it back exactly; tampered
   bytes fail the integrity check with a typed error.
2. **One loading entry point** — ``ModelHandle.open`` resolves an
   artifact path, a registry version name, or a prebuilt
   ``CompiledModel`` identically; version-name targets demand a
   registry.
3. **Promotion is auditable and gated** — CURRENT moves only through
   ``promote``/``rollback``, the HISTORY log records every move, and a
   ``PromotionGate`` fed a ``ShadowReport`` refuses candidates whose
   disagreement or latency regression exceeds the thresholds —
   including the float32-quantized bank variant.
4. **ServeConfig is the one validated knob surface** — bad values are
   rejected in ``__post_init__``; the legacy per-knob constructor
   keywords still work behind a DeprecationWarning for one release.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import RPMClassifier, SaxParams
from repro.core.io import ModelFormatError, save_model
from repro.serve import (
    CompiledModel,
    ModelHandle,
    ModelRegistry,
    PredictionService,
    PromotionGate,
    RegistryError,
    RegistryIntegrityError,
    ServeConfig,
    ShadowReport,
    ShadowScorer,
)


@pytest.fixture(scope="module")
def fitted(tiny_gun):
    clf = RPMClassifier(sax_params=SaxParams(24, 4, 4), seed=0)
    clf.fit(tiny_gun.X_train, tiny_gun.y_train)
    return clf


@pytest.fixture(scope="module")
def fitted_b(tiny_gun):
    """A second, distinguishable fitted model (different SAX window)."""
    clf = RPMClassifier(sax_params=SaxParams(32, 4, 4), seed=1)
    clf.fit(tiny_gun.X_train, tiny_gun.y_train)
    return clf


@pytest.fixture(scope="module")
def artifact(fitted, tmp_path_factory):
    path = tmp_path_factory.mktemp("artifacts") / "model_a.npz"
    save_model(fitted, path)
    return path


@pytest.fixture(scope="module")
def artifact_b(fitted_b, tmp_path_factory):
    path = tmp_path_factory.mktemp("artifacts") / "model_b.npz"
    save_model(fitted_b, path)
    return path


@pytest.fixture()
def registry(tmp_path, artifact, artifact_b):
    reg = ModelRegistry(tmp_path / "registry")
    reg.publish(artifact, notes="seed model")
    reg.publish(artifact_b, parent="v1")
    return reg


def _report(**overrides) -> ShadowReport:
    base = dict(
        candidate_version="v2",
        n_scored=100,
        n_disagreements=0,
        disagreement_rate=0.0,
        primary_mean_latency_ms=2.0,
        candidate_mean_latency_ms=2.0,
        latency_regression=0.0,
        n_dropped=0,
    )
    base.update(overrides)
    return ShadowReport(**base)


class TestModelRegistry:
    def test_publish_round_trip(self, registry, artifact):
        mv = registry.get("v1")
        assert mv.version == "v1"
        assert mv.status == "active"
        assert mv.notes == "seed model"
        assert mv.size_bytes == artifact.stat().st_size
        assert len(mv.sha256) == 64 and len(mv.fingerprint) == 64
        assert mv.path.exists() and mv.path != artifact  # copied, not linked
        assert registry.get("v2").parent == "v1"

    def test_fingerprint_is_deterministic_per_artifact(self, registry, artifact):
        # The lineage fingerprint hashes the archived training features
        # + labels: republishing the same artifact reproduces it, while
        # a differently-parameterized model (different transform) gets
        # its own.
        republished = registry.publish(artifact, version="v1-again")
        v1, v2 = registry.get("v1"), registry.get("v2")
        assert republished.fingerprint == v1.fingerprint
        assert republished.sha256 == v1.sha256
        assert v1.fingerprint != v2.fingerprint

    def test_list_versions_oldest_first(self, registry):
        assert [mv.version for mv in registry.list_versions()] == ["v1", "v2"]

    def test_aliases_resolve(self, registry):
        assert registry.get("latest").version == "v2"
        with pytest.raises(RegistryError, match="no promoted version"):
            registry.get("current")
        registry.promote("v1")
        assert registry.get("current").version == "v1"

    def test_unknown_version_and_parent_are_typed_errors(self, registry, artifact):
        with pytest.raises(RegistryError, match="v99"):
            registry.get("v99")
        with pytest.raises(RegistryError, match="v99"):
            registry.publish(artifact, parent="v99")

    def test_reserved_and_malformed_names_are_refused(self, registry, artifact):
        for name in ("current", "latest", "", "has space", "../escape"):
            with pytest.raises(RegistryError):
                registry.publish(artifact, version=name)

    def test_duplicate_version_is_refused(self, registry, artifact):
        with pytest.raises(RegistryError, match="already"):
            registry.publish(artifact, version="v1")

    def test_unreadable_artifact_never_publishes(self, registry, tmp_path):
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"not a model at all")
        with pytest.raises(ModelFormatError):
            registry.publish(junk)
        assert [mv.version for mv in registry.list_versions()] == ["v1", "v2"]

    def test_verify_catches_tampered_bytes(self, registry):
        mv = registry.get("v2")
        registry.verify("v2")  # clean first
        blob = bytearray(mv.path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        mv.path.write_bytes(bytes(blob))
        with pytest.raises(RegistryIntegrityError, match="integrity"):
            registry.verify("v2")

    def test_retire_refused_while_current(self, registry):
        registry.promote("v1")
        with pytest.raises(RegistryError, match="CURRENT"):
            registry.retire("v1")
        assert registry.retire("v2").status == "retired"
        with pytest.raises(RegistryError, match="retired"):
            registry.promote("v2")

    def test_promote_and_rollback_are_logged(self, registry):
        registry.promote("v1")
        registry.promote("v2")
        assert registry.current() == "v2"
        entries = [
            json.loads(line)
            for line in (registry.root / "HISTORY").read_text().splitlines()
        ]
        assert entries[-1]["promoted"] == "v2"
        assert entries[-1]["previous"] == "v1"
        assert registry.rollback().version == "v1"
        assert registry.current() == "v1"

    def test_rollback_without_history_is_typed(self, tmp_path):
        reg = ModelRegistry(tmp_path / "empty")
        with pytest.raises(RegistryError, match="history"):
            reg.rollback()


class TestModelFormatErrorPath:
    def test_error_carries_the_offending_path(self, tmp_path):
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"garbage bytes")
        from repro.core.io import load_model

        with pytest.raises(ModelFormatError) as excinfo:
            load_model(junk)
        assert excinfo.value.path == junk
        assert str(junk) in str(excinfo.value)


class TestModelHandle:
    def test_open_artifact_path(self, artifact, fitted, tiny_gun):
        with ModelHandle.open(artifact) as handle:
            assert handle.version == artifact.stem
            assert handle.generation == 1
            np.testing.assert_array_equal(
                handle.model.predict(tiny_gun.X_test), fitted.predict(tiny_gun.X_test)
            )

    def test_open_registry_version(self, registry, tiny_gun, fitted_b):
        with ModelHandle.open("v2", registry=registry.root) as handle:
            assert handle.version == "v2"
            np.testing.assert_array_equal(
                handle.model.predict(tiny_gun.X_test),
                fitted_b.predict(tiny_gun.X_test),
            )

    def test_open_prebuilt_model_passthrough(self, fitted):
        model = CompiledModel.from_classifier(fitted)
        with ModelHandle.open(model, version="inline") as handle:
            assert handle.model is model
            assert handle.version == "inline"

    def test_version_name_without_registry_is_typed(self):
        with pytest.raises(RegistryError, match="registry"):
            ModelHandle.open("v1")

    def test_swap_bumps_generation_and_retires_old(self, artifact, artifact_b):
        with ModelHandle.open(artifact) as handle:
            old_model = handle.model
            closed = []
            original_close = old_model.close
            old_model.close = lambda: (closed.append(True), original_close())
            installed = handle.swap(artifact_b)
            assert installed == artifact_b.stem
            assert handle.generation == 2
            assert handle.model is not old_model
            # No outstanding lease: retiring the old generation closed
            # its model immediately.
            assert closed

    def test_inflight_lease_keeps_the_old_model_open(
        self, artifact, artifact_b, tiny_gun
    ):
        with ModelHandle.open(artifact) as handle:
            lease = handle.acquire()
            old_model = lease.model
            closed = []
            original_close = old_model.close
            old_model.close = lambda: (closed.append(True), original_close())
            handle.swap(artifact_b)
            # The pointer flipped, but the in-flight lease keeps the old
            # generation fully alive until its batch releases.
            assert not closed
            lease.model.transform(tiny_gun.X_test[:2])
            lease.release()
            assert closed

    def test_registry_swap_by_version_name(self, registry):
        registry.promote("v1")
        with ModelHandle.open("current", registry=registry.root) as handle:
            assert handle.version == "v1"
            handle.swap("v2")
            assert handle.version == "v2"
            with pytest.raises(RegistryError, match="v99"):
                handle.swap("v99")
            assert handle.version == "v2"  # refused swap keeps serving


class TestPromotionGate:
    def test_clean_report_passes(self):
        decision = PromotionGate().evaluate(_report())
        assert decision.allowed and decision.reasons == []

    def test_disagreement_blocks(self):
        gate = PromotionGate(max_disagreement=0.01)
        decision = gate.evaluate(
            _report(n_disagreements=5, disagreement_rate=0.05)
        )
        assert not decision.allowed
        assert "disagreement" in decision.reasons[0]

    def test_latency_regression_blocks(self):
        gate = PromotionGate(max_latency_regression=0.25)
        decision = gate.evaluate(
            _report(candidate_mean_latency_ms=4.0, latency_regression=1.0)
        )
        assert not decision.allowed
        assert "latency regression" in decision.reasons[0]

    def test_thin_report_blocks(self):
        decision = PromotionGate(min_requests=100).evaluate(_report(n_scored=3))
        assert not decision.allowed

    def test_gated_promote_requires_report(self, registry):
        with pytest.raises(RegistryError, match="report"):
            registry.promote("v2", gate=PromotionGate())

    def test_gated_promote_blocks_and_allows(self, registry):
        registry.promote("v1")
        gate = PromotionGate(max_disagreement=0.01)
        bad = _report(n_disagreements=10, disagreement_rate=0.10)
        with pytest.raises(RegistryError, match="blocked by gate"):
            registry.promote("v2", gate=gate, report=bad)
        assert registry.current() == "v1"  # refused promotion changed nothing
        registry.promote("v2", gate=gate, report=_report())
        assert registry.current() == "v2"

    def test_report_record_round_trip(self):
        report = _report(n_disagreements=2, disagreement_rate=0.02)
        assert ShadowReport.from_record(report.as_record()) == report


class TestQuantizedModel:
    def test_float32_bank_loads_and_describes(self, artifact, tiny_gun):
        with CompiledModel.load(artifact, dtype="float32") as model:
            assert model.dtype == "float32"
            assert "float32" in model.describe()
            # Quantized values are exactly float32-representable.
            for values in model._values:
                np.testing.assert_array_equal(
                    values, values.astype(np.float32).astype(np.float64)
                )
            model.predict(tiny_gun.X_test[:4])  # still serves

    def test_unknown_dtype_is_rejected(self, artifact):
        with pytest.raises(ValueError, match="dtype"):
            CompiledModel.load(artifact, dtype="float16")

    def test_quantized_promotion_rides_the_same_gate(self, registry):
        # The MrSQM lesson: a quantized bank must prove fidelity in
        # shadow before promotion — the gate refuses a drifting one.
        registry.promote("v1")
        drifting = _report(n_disagreements=8, disagreement_rate=0.08)
        with pytest.raises(RegistryError, match="blocked by gate"):
            registry.promote("v2", gate=PromotionGate(), report=drifting)


class TestShadowScorer:
    def test_identical_candidate_never_disagrees(self, fitted, tiny_gun):
        primary = CompiledModel.from_classifier(fitted)
        candidate = CompiledModel.from_classifier(fitted)
        try:
            labels = primary.predict(tiny_gun.X_test)
            with ShadowScorer(candidate, version="twin", fraction=1.0) as scorer:
                for i, (row, label) in enumerate(zip(tiny_gun.X_test, labels)):
                    scorer.offer(f"req-{i}", row, label, 1.0)
            report = scorer.report()
            assert report.candidate_version == "twin"
            assert report.n_scored == len(labels)
            assert report.n_disagreements == 0
            assert report.n_dropped == 0
        finally:
            primary.close()
            candidate.close()

    def test_fraction_samples_every_kth(self, fitted, tiny_gun):
        candidate = CompiledModel.from_classifier(fitted)
        try:
            with ShadowScorer(candidate, fraction=0.25) as scorer:
                for i in range(40):
                    scorer.offer(f"req-{i}", tiny_gun.X_test[0], 0, 1.0)
            assert scorer.report().n_scored == 10
        finally:
            candidate.close()

    def test_wrong_labels_count_as_disagreements(self, fitted, tiny_gun):
        candidate = CompiledModel.from_classifier(fitted)
        try:
            real = candidate.predict(tiny_gun.X_test[:4])
            with ShadowScorer(candidate, fraction=1.0) as scorer:
                for i, row in enumerate(tiny_gun.X_test[:4]):
                    # Claim the primary said something the candidate won't.
                    scorer.offer(f"req-{i}", row, f"not-{real[i]}", 1.0)
            report = scorer.report()
            assert report.n_scored == 4
            assert report.n_disagreements == 4
            assert report.disagreement_rate == 1.0
        finally:
            candidate.close()

    def test_bad_fraction_is_rejected(self, fitted):
        candidate = CompiledModel.from_classifier(fitted)
        try:
            for fraction in (0.0, -0.1, 1.5):
                with pytest.raises(ValueError, match="fraction"):
                    ShadowScorer(candidate, fraction=fraction)
        finally:
            candidate.close()


class TestServeConfig:
    def test_defaults_validate(self):
        config = ServeConfig()
        assert config.max_batch == 32 and config.n_shards == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_delay_ms": -1.0},
            {"default_deadline_ms": 0.0},
            {"flight_capacity": -1},
            {"n_shards": -1},
            {"max_queue_per_shard": 0},
            {"admission_budget_ms": 0.0},
            {"shadow_fraction": 0.0},
            {"shadow_fraction": 1.5},
            {"mp_context": "greenlet"},
        ],
    )
    def test_bad_knobs_raise_at_construction(self, kwargs):
        with pytest.raises(ValueError, match=next(iter(kwargs))):
            ServeConfig(**kwargs)

    def test_replace_and_to_dict(self):
        config = ServeConfig().replace(max_batch=64)
        assert config.max_batch == 64
        assert config.to_dict()["max_batch"] == 64

    def test_legacy_keywords_warn_and_still_work(self, fitted):
        model = CompiledModel.from_classifier(fitted)
        try:
            with pytest.warns(DeprecationWarning, match="deprecated"):
                service = PredictionService(model, max_batch=8, warmup=False)
            assert service.config.max_batch == 8
            assert service.config.warmup is False
        finally:
            model.close()

    def test_config_plus_legacy_is_a_type_error(self, fitted):
        model = CompiledModel.from_classifier(fitted)
        try:
            with pytest.raises(TypeError, match="not both"):
                PredictionService(model, config=ServeConfig(), max_batch=8)
        finally:
            model.close()

    def test_unknown_keyword_is_a_type_error(self, fitted):
        model = CompiledModel.from_classifier(fitted)
        try:
            with pytest.raises(TypeError, match="max_betch"):
                PredictionService(model, max_betch=8)
        finally:
            model.close()

    def test_from_args_maps_cli_names(self):
        import argparse

        args = argparse.Namespace(
            max_batch=16,
            max_delay_ms=1.0,
            deadline_ms=50.0,
            no_warmup=True,
            slow_ms=100.0,
            flight_size=32,
            http_port=0,
            shards=3,
            admission_budget_ms=5.0,
            max_queue=64,
            shadow_fraction=0.5,
        )
        config = ServeConfig.from_args(args)
        assert config.max_batch == 16
        assert config.default_deadline_ms == 50.0
        assert config.warmup is False
        assert config.flight_capacity == 32
        assert config.admin_port == 0
        assert config.n_shards == 3
        assert config.max_queue_per_shard == 64
        assert config.shadow_fraction == 0.5
