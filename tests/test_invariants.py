"""Deeper invariant tests spanning the ML and core layers."""

import numpy as np
import pytest

from repro.core.patterns import PatternCandidate
from repro.core.selection import remove_similar
from repro.ml.cfs import cfs_select
from repro.ml.svm import BinarySVM
from repro.opt.direct import direct_minimize
from repro.sax.discretize import SaxParams


class TestSvmKkt:
    """The SMO solution must satisfy the soft-margin KKT conditions."""

    def _fit(self, rng, kernel):
        X = np.vstack([rng.normal(0, 1, (40, 2)), rng.normal(2.5, 1, (40, 2))])
        y = np.array([-1.0] * 40 + [1.0] * 40)
        svm = BinarySVM(kernel=kernel, C=1.0, tol=1e-4, max_iter=50000).fit(X, y)
        return X, y, svm

    @pytest.mark.parametrize("kernel", ["linear", "rbf"])
    def test_kkt_conditions(self, rng, kernel):
        X, y, svm = self._fit(rng, kernel)
        alpha = svm.alpha_
        margins = y * svm.decision_function(X)
        tol = 0.05
        for a, margin in zip(alpha, margins):
            if a < 1e-6:  # non-support vector: margin >= 1
                assert margin >= 1 - tol
            elif a > svm.C - 1e-6:  # bound vector: margin <= 1
                assert margin <= 1 + tol
            else:  # free vector: margin == 1
                assert abs(margin - 1) < tol

    @pytest.mark.parametrize("kernel", ["linear", "rbf"])
    def test_equality_constraint(self, rng, kernel):
        _, y, svm = self._fit(rng, kernel)
        assert abs(float(svm.alpha_ @ y)) < 1e-6

    def test_larger_C_fits_train_harder(self, rng):
        X = np.vstack([rng.normal(0, 1.2, (50, 2)), rng.normal(2, 1.2, (50, 2))])
        y = np.array([-1.0] * 50 + [1.0] * 50)
        soft = BinarySVM(kernel="rbf", C=0.01).fit(X, y)
        hard = BinarySVM(kernel="rbf", C=100.0).fit(X, y)
        err_soft = np.mean(soft.predict(X) != y)
        err_hard = np.mean(hard.predict(X) != y)
        assert err_hard <= err_soft + 1e-9


class TestCfsInvariants:
    def test_merit_nonnegative_and_bounded(self, rng):
        for _ in range(5):
            X = rng.standard_normal((60, 6))
            y = rng.integers(0, 3, 60)
            result = cfs_select(X, y)
            assert 0.0 <= result.merit <= 1.0 + 1e-9

    def test_selection_subset_of_columns(self, rng):
        X = rng.standard_normal((40, 5))
        y = rng.integers(0, 2, 40)
        result = cfs_select(X, y)
        assert set(result.selected) <= set(range(5))

    def test_duplicate_matrix_columns_collapse(self, rng):
        y = rng.integers(0, 2, 80)
        f = y + rng.standard_normal(80) * 0.2
        X = np.column_stack([f, f, f, rng.standard_normal(80)])
        result = cfs_select(X, y)
        informative = [j for j in result.selected if j < 3]
        assert len(informative) == 1


class TestRemoveSimilarInvariants:
    def _candidate(self, values, frequency):
        return PatternCandidate(
            values=np.asarray(values, dtype=float),
            label=0,
            frequency=frequency,
            support=frequency,
            rule_id=0,
            words=("x",),
            sax_params=SaxParams(4, 2, 3),
        )

    def test_result_independent_of_input_order(self, rng):
        shapes = [rng.standard_normal(16) for _ in range(6)]
        candidates = [self._candidate(s, f) for f, s in enumerate(shapes, start=1)]
        tau = 1.0
        forward = remove_similar(list(candidates), tau)
        backward = remove_similar(list(reversed(candidates)), tau)
        fwd = sorted(c.frequency for c in forward)
        bwd = sorted(c.frequency for c in backward)
        assert fwd == bwd

    def test_kept_patterns_mutually_distant(self, rng):
        from repro.distance.best_match import best_match

        shapes = [rng.standard_normal(16) for _ in range(8)]
        candidates = [self._candidate(s, f) for f, s in enumerate(shapes, start=1)]
        tau = 2.0
        kept = remove_similar(candidates, tau)
        for i, a in enumerate(kept):
            for b in kept[i + 1 :]:
                short, long_ = (
                    (a.values, b.values) if a.length <= b.length else (b.values, a.values)
                )
                assert best_match(short, long_).distance >= tau

    def test_monotone_in_tau(self, rng):
        shapes = [rng.standard_normal(16) for _ in range(8)]
        candidates = [self._candidate(s, f) for f, s in enumerate(shapes, start=1)]
        sizes = [len(remove_similar(candidates, tau)) for tau in (0.0, 1.0, 3.0, 8.0)]
        assert sizes == sorted(sizes, reverse=True)


class TestDirectInvariants:
    def test_more_budget_never_worse(self):
        def f(x):
            return float(np.sin(3 * x[0]) * np.cos(2 * x[1]) + 0.1 * np.sum(x**2))

        small = direct_minimize(f, [(-3, 3)] * 2, max_evaluations=50)
        large = direct_minimize(f, [(-3, 3)] * 2, max_evaluations=500)
        assert large.fun <= small.fun + 1e-12

    def test_history_length_matches_iterations(self):
        res = direct_minimize(lambda x: float(x[0] ** 2), [(-1, 1)], max_evaluations=60)
        assert len(res.history) == res.n_iterations + 1
