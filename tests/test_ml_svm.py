import numpy as np
import pytest

from repro.ml.svm import SVC, BinarySVM, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_var(self, rng):
        X = rng.standard_normal((50, 4)) * 7 + 3
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_untouched(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z[:, 0], 0.0, atol=1e-12)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            StandardScaler().fit(np.zeros(4))


def _blobs(rng, n=60, gap=4.0, d=2):
    X = np.vstack([rng.normal(0, 1, (n, d)), rng.normal(gap, 1, (n, d))])
    y = np.array([-1.0] * n + [1.0] * n)
    return X, y


class TestBinarySVM:
    def test_separable_blobs_linear(self, rng):
        X, y = _blobs(rng)
        svm = BinarySVM(kernel="linear", C=1.0).fit(X, y)
        assert np.mean(svm.predict(X) == y) > 0.97

    def test_decision_sign_matches_predict(self, rng):
        X, y = _blobs(rng)
        svm = BinarySVM(kernel="rbf").fit(X, y)
        scores = svm.decision_function(X)
        np.testing.assert_array_equal(np.sign(scores) >= 0, svm.predict(X) > 0)

    def test_margin_support_vectors_subset(self, rng):
        X, y = _blobs(rng, gap=6.0)
        svm = BinarySVM(kernel="linear").fit(X, y)
        # Well-separated blobs need few support vectors.
        assert svm.support_vectors_.shape[0] < X.shape[0] / 2

    def test_dual_feasibility(self, rng):
        X, y = _blobs(rng)
        svm = BinarySVM(kernel="linear", C=2.0).fit(X, y)
        alpha = svm.alpha_
        assert (alpha >= -1e-9).all() and (alpha <= 2.0 + 1e-9).all()
        assert abs(float(alpha @ y)) < 1e-6

    def test_rejects_bad_labels(self, rng):
        X = rng.standard_normal((4, 2))
        with pytest.raises(ValueError, match="-1 or \\+1"):
            BinarySVM().fit(X, np.array([0.0, 1.0, 0.0, 1.0]))

    def test_rejects_single_class(self, rng):
        X = rng.standard_normal((4, 2))
        with pytest.raises(ValueError, match="both classes"):
            BinarySVM().fit(X, np.ones(4))

    def test_rejects_nonpositive_C(self):
        with pytest.raises(ValueError, match="positive"):
            BinarySVM(C=0.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            BinarySVM().decision_function(np.zeros((1, 2)))

    def test_explicit_gamma(self, rng):
        X, y = _blobs(rng)
        svm = BinarySVM(kernel="rbf", gamma=0.5).fit(X, y)
        assert svm.gamma_ == 0.5


class TestSVC:
    def test_three_class_blobs(self, rng):
        X = np.vstack(
            [rng.normal(0, 0.5, (30, 2)), rng.normal(4, 0.5, (30, 2)), rng.normal([0, 5], 0.5, (30, 2))]
        )
        y = np.repeat(["a", "b", "c"], 30)
        clf = SVC().fit(X, y)
        assert np.mean(clf.predict(X) == y) > 0.95

    def test_xor_needs_rbf(self, rng):
        X = rng.standard_normal((300, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        rbf = SVC(kernel="rbf", C=10.0).fit(X, y)
        lin = SVC(kernel="linear", C=10.0).fit(X, y)
        assert np.mean(rbf.predict(X) == y) > 0.9
        assert np.mean(lin.predict(X) == y) < 0.75

    def test_decision_function_shape(self, rng):
        X = np.vstack([rng.normal(0, 1, (20, 3)), rng.normal(5, 1, (20, 3))])
        y = np.array([0] * 20 + [1] * 20)
        clf = SVC().fit(X, y)
        assert clf.decision_function(X).shape == (40, 2)

    def test_preserves_label_dtype(self, rng):
        X = np.vstack([rng.normal(0, 1, (10, 2)), rng.normal(5, 1, (10, 2))])
        y = np.array(["neg"] * 10 + ["pos"] * 10)
        preds = SVC().fit(X, y).predict(X)
        assert set(preds) <= {"neg", "pos"}

    def test_unscaled_option(self, rng):
        X, _ = _blobs(rng)
        y = np.array([0] * 60 + [1] * 60)
        clf = SVC(scale=False).fit(X, y)
        assert clf.scaler_ is None
        assert np.mean(clf.predict(X) == y) > 0.9

    def test_rejects_single_class(self, rng):
        with pytest.raises(ValueError, match="two classes"):
            SVC().fit(rng.standard_normal((5, 2)), np.zeros(5))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            SVC().predict(np.zeros((1, 2)))
