import numpy as np
import pytest

from repro.viz import annotate_interval, ascii_scatter, heading, sparkline


class TestSparkline:
    def test_length_caps_at_width(self, rng):
        assert len(sparkline(rng.standard_normal(500), width=40)) == 40

    def test_short_series_keeps_length(self, rng):
        assert len(sparkline(rng.standard_normal(10), width=40)) == 10

    def test_constant_series_flat(self):
        line = sparkline(np.full(8, 3.0))
        assert line == line[0] * 8

    def test_min_max_blocks(self):
        line = sparkline(np.array([0.0, 1.0]))
        assert line[0] == "▁" and line[1] == "█"

    def test_empty(self):
        assert sparkline(np.array([])) == ""

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            sparkline(np.zeros((2, 3)))


class TestAnnotateInterval:
    def test_marks_correct_columns(self):
        line = annotate_interval(10, 2, 5, width=10)
        assert line == "  ^^^     "

    def test_scales_to_width(self):
        line = annotate_interval(100, 50, 100, width=10)
        assert line[:5].strip() == ""
        assert set(line[5:]) == {"^"}

    def test_zero_length(self):
        assert annotate_interval(0, 0, 0) == ""

    def test_at_least_one_mark(self):
        line = annotate_interval(1000, 3, 4, width=10)
        assert "^" in line


class TestAsciiScatter:
    def test_contains_markers_and_legend(self, rng):
        x = rng.standard_normal(20)
        y = rng.standard_normal(20)
        labels = np.array([0, 1] * 10)
        art = ascii_scatter(x, y, labels)
        assert "o" in art and "x" in art
        assert "class 0" in art and "class 1" in art

    def test_degenerate_single_point(self):
        art = ascii_scatter(np.array([1.0]), np.array([1.0]), np.array([0]))
        assert "o" in art

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="share a shape"):
            ascii_scatter(np.zeros(3), np.zeros(4), np.zeros(3))


class TestHeading:
    def test_boxes_text(self):
        out = heading("Hello")
        lines = out.strip().splitlines()
        assert lines[0] == "=====" and lines[1] == "Hello" and lines[2] == "====="
