import numpy as np
import pytest

from repro.sax.discretize import SaxParams, discretize, sliding_windows
from repro.sax.sax import sax_word


class TestSaxParams:
    def test_valid(self):
        p = SaxParams(30, 5, 4)
        assert p.as_tuple() == (30, 5, 4)

    def test_rejects_small_window(self):
        with pytest.raises(ValueError, match="window_size"):
            SaxParams(1, 1, 4)

    def test_rejects_paa_bigger_than_window(self):
        with pytest.raises(ValueError, match="paa_size"):
            SaxParams(10, 11, 4)

    def test_rejects_bad_alphabet(self):
        with pytest.raises(ValueError, match="alphabet_size"):
            SaxParams(10, 4, 1)

    def test_frozen(self):
        p = SaxParams(10, 4, 4)
        with pytest.raises(AttributeError):
            p.window_size = 5


class TestSlidingWindows:
    def test_shape_and_content(self):
        out = sliding_windows(np.arange(6.0), 3)
        assert out.shape == (4, 3)
        np.testing.assert_array_equal(out[0], [0, 1, 2])
        np.testing.assert_array_equal(out[-1], [3, 4, 5])

    def test_window_equal_length(self):
        out = sliding_windows(np.arange(4.0), 4)
        assert out.shape == (1, 4)

    def test_rejects_window_too_long(self):
        with pytest.raises(ValueError, match="exceeds"):
            sliding_windows(np.arange(3.0), 5)

    def test_returns_readonly_view_by_default(self):
        series = np.arange(6.0)
        out = sliding_windows(series, 3)
        with pytest.raises(ValueError):
            out[0, 0] = 99
        assert np.shares_memory(out, series)

    def test_copy_opt_in_is_writable(self):
        series = np.arange(6.0)
        out = sliding_windows(series, 3, copy=True)
        out[0, 0] = 99
        assert series[0] == 0.0
        assert not np.shares_memory(out, series)


class TestDiscretize:
    PARAMS = SaxParams(8, 4, 4)

    def test_offsets_match_words(self, rng):
        series = rng.standard_normal(50)
        record = discretize(series, self.PARAMS)
        for word, offset in zip(record.words, record.offsets):
            window = series[offset : offset + self.PARAMS.window_size]
            assert sax_word(window, 4, 4) == word

    def test_numerosity_reduction_removes_consecutive_duplicates(self):
        series = np.concatenate([np.linspace(0, 1, 30), np.linspace(1, 0, 30)])
        full = discretize(series, self.PARAMS, numerosity_reduction=False)
        reduced = discretize(series, self.PARAMS)
        assert len(reduced) <= len(full)
        for a, b in zip(reduced.words, reduced.words[1:]):
            assert a != b

    def test_no_reduction_keeps_every_position(self, rng):
        series = rng.standard_normal(40)
        record = discretize(series, self.PARAMS, numerosity_reduction=False)
        assert len(record) == 40 - 8 + 1
        np.testing.assert_array_equal(record.offsets, np.arange(33))

    def test_first_occurrence_kept(self):
        series = np.sin(np.linspace(0, 2 * np.pi, 60))
        record = discretize(series, self.PARAMS)
        assert record.offsets[0] == 0

    def test_valid_start_skips_positions(self, rng):
        series = rng.standard_normal(30)
        mask = np.ones(30 - 8 + 1, dtype=bool)
        mask[5:12] = False
        record = discretize(series, self.PARAMS, valid_start=mask)
        assert not set(range(5, 12)) & set(record.offsets.tolist())
        assert record.dropped == 7

    def test_valid_start_breaks_numerosity_runs(self):
        # A skipped stretch must restart the run: the first valid word
        # after the gap is always emitted even if it equals the last
        # word before the gap.
        series = np.tile(np.linspace(0, 1, 10), 6)
        n_pos = series.size - 8 + 1
        mask = np.ones(n_pos, dtype=bool)
        mask[20:25] = False
        record = discretize(series, SaxParams(8, 4, 4), valid_start=mask)
        after_gap = [o for o in record.offsets if o >= 25]
        assert after_gap and after_gap[0] == 25

    def test_valid_start_wrong_shape_rejected(self, rng):
        with pytest.raises(ValueError, match="valid_start"):
            discretize(rng.standard_normal(30), self.PARAMS, valid_start=np.ones(5, bool))

    def test_as_string_joins_words(self, rng):
        record = discretize(rng.standard_normal(30), self.PARAMS)
        assert record.as_string().split() == record.words

    def test_series_length_recorded(self, rng):
        record = discretize(rng.standard_normal(42), self.PARAMS)
        assert record.series_length == 42


class TestReductionStrategies:
    PARAMS = SaxParams(8, 4, 4)

    def test_bool_aliases(self, rng):
        series = rng.standard_normal(40)
        exact = discretize(series, self.PARAMS, numerosity_reduction="exact")
        as_true = discretize(series, self.PARAMS, numerosity_reduction=True)
        assert exact.words == as_true.words
        none = discretize(series, self.PARAMS, numerosity_reduction="none")
        as_false = discretize(series, self.PARAMS, numerosity_reduction=False)
        assert none.words == as_false.words

    def test_mindist_at_most_exact(self, rng):
        series = np.sin(np.linspace(0, 12, 120)) + rng.standard_normal(120) * 0.05
        exact = discretize(series, self.PARAMS, numerosity_reduction="exact")
        mindist = discretize(series, self.PARAMS, numerosity_reduction="mindist")
        assert len(mindist) <= len(exact)

    def test_mindist_consecutive_words_not_adjacent(self, rng):
        series = np.sin(np.linspace(0, 12, 120)) + rng.standard_normal(120) * 0.05
        record = discretize(series, self.PARAMS, numerosity_reduction="mindist")
        for a, b in zip(record.words, record.words[1:]):
            assert any(abs(ord(x) - ord(y)) > 1 for x, y in zip(a, b))

    def test_rejects_unknown_strategy(self, rng):
        with pytest.raises(ValueError, match="numerosity_reduction"):
            discretize(rng.standard_normal(30), self.PARAMS, numerosity_reduction="fuzzy")
