import numpy as np
import pytest

from repro.baselines.fast_shapelets import (
    FastShapeletsClassifier,
    entropy,
    information_gain,
)
from repro.baselines.learning_shapelets import LearningShapeletsClassifier


class TestInformationGain:
    def test_entropy_pure(self):
        assert entropy(np.zeros(5)) == 0.0

    def test_entropy_balanced_binary(self):
        assert entropy(np.array([0, 0, 1, 1])) == pytest.approx(1.0)

    def test_perfect_split(self):
        labels = np.array([0, 0, 1, 1])
        distances = np.array([0.1, 0.2, 0.8, 0.9])
        assert information_gain(labels, distances, 0.5) == pytest.approx(1.0)

    def test_useless_split(self):
        labels = np.array([0, 1, 0, 1])
        distances = np.array([0.1, 0.2, 0.8, 0.9])
        assert information_gain(labels, distances, 0.5) == 0.0

    def test_degenerate_threshold_zero_gain(self):
        labels = np.array([0, 1])
        distances = np.array([0.5, 0.6])
        assert information_gain(labels, distances, 0.0) == 0.0


class TestFastShapelets:
    def test_learns_gun_point(self, tiny_gun):
        clf = FastShapeletsClassifier(seed=0).fit(tiny_gun.X_train, tiny_gun.y_train)
        acc = np.mean(clf.predict(tiny_gun.X_test) == tiny_gun.y_test)
        assert acc > 0.6

    def test_tree_structure_valid(self, tiny_gun):
        clf = FastShapeletsClassifier(seed=0).fit(tiny_gun.X_train, tiny_gun.y_train)
        assert clf.root_ is not None
        assert clf.depth() <= clf.max_depth

    def test_pure_node_becomes_leaf(self, rng):
        X = rng.standard_normal((6, 30))
        y = np.zeros(6)  # single class: tree must not split
        # FastShapelets needs >= 2 classes to be useful, but a pure
        # input must still produce a working (leaf-only) classifier.
        clf = FastShapeletsClassifier(seed=0).fit(X, y)
        assert clf.root_.is_leaf
        assert np.array_equal(clf.predict(X), y)

    def test_candidates_scored_counter(self, tiny_gun):
        clf = FastShapeletsClassifier(seed=0).fit(tiny_gun.X_train, tiny_gun.y_train)
        assert clf.n_candidates_scored_ > 0

    def test_deterministic_given_seed(self, tiny_gun):
        a = FastShapeletsClassifier(seed=3).fit(tiny_gun.X_train, tiny_gun.y_train)
        b = FastShapeletsClassifier(seed=3).fit(tiny_gun.X_train, tiny_gun.y_train)
        np.testing.assert_array_equal(
            a.predict(tiny_gun.X_test), b.predict(tiny_gun.X_test)
        )

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            FastShapeletsClassifier().predict(np.zeros((1, 20)))


class TestLearningShapelets:
    def test_learns_gun_point(self, tiny_gun):
        clf = LearningShapeletsClassifier(epochs=150, seed=0)
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        acc = np.mean(clf.predict(tiny_gun.X_test) == tiny_gun.y_test)
        assert acc > 0.6

    def test_loss_decreases(self, tiny_gun):
        clf = LearningShapeletsClassifier(epochs=100, seed=0)
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        losses = clf.loss_history_
        assert losses[-1] < losses[0]

    def test_transform_shape(self, tiny_gun):
        clf = LearningShapeletsClassifier(n_shapelets=4, n_scales=2, epochs=30, seed=0)
        clf.fit(tiny_gun.X_train, tiny_gun.y_train)
        M = clf.transform(tiny_gun.X_test)
        expected = sum(s.shape[0] for s in clf.shapelets_)
        assert M.shape == (tiny_gun.n_test, expected)
        assert (M >= 0).all()

    def test_soft_min_close_to_hard_min(self, rng):
        clf = LearningShapeletsClassifier(alpha=-100.0)
        D = rng.random((3, 2, 10)) * 4
        M, P = clf._soft_min(D)
        np.testing.assert_allclose(M, D.min(axis=2), atol=0.05)
        np.testing.assert_allclose(P.sum(axis=2), 1.0, atol=1e-9)

    def test_rejects_positive_alpha(self):
        with pytest.raises(ValueError, match="negative"):
            LearningShapeletsClassifier(alpha=1.0)

    def test_multiclass(self, tiny_cbf):
        clf = LearningShapeletsClassifier(epochs=150, seed=0)
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        acc = np.mean(clf.predict(tiny_cbf.X_test) == tiny_cbf.y_test)
        assert acc > 0.55

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            LearningShapeletsClassifier().transform(np.zeros((1, 20)))
