"""LB_Keogh-pruned 1-NN DTW must agree with brute-force search."""

import numpy as np

from repro.baselines.nn import NearestNeighborDTW
from repro.distance.dtw import dtw_distance
from repro.sax.znorm import znorm_rows


def _brute_force_predict(X_train, y_train, X_test, window):
    X_train = znorm_rows(X_train)
    X_test = znorm_rows(X_test)
    out = []
    for query in X_test:
        distances = [dtw_distance(query, row, window) for row in X_train]
        out.append(y_train[int(np.argmin(distances))])
    return np.asarray(out)


class TestPrunedSearchExactness:
    def test_predictions_match_brute_force(self, rng):
        X_train = rng.standard_normal((12, 30))
        y_train = rng.integers(0, 3, 12)
        X_test = rng.standard_normal((8, 30))
        for window in (0, 2, 5):
            clf = NearestNeighborDTW(window_fractions=None, fixed_window=window)
            clf.fit(X_train, y_train)
            fast = clf.predict(X_test)
            slow = _brute_force_predict(X_train, y_train, X_test, window)
            np.testing.assert_array_equal(fast, slow)

    def test_loocv_accuracy_matches_brute_force(self, rng):
        X = rng.standard_normal((10, 25))
        y = rng.integers(0, 2, 10)
        window = 3
        clf = NearestNeighborDTW(window_fractions=(window / 25,))
        clf.fit(X, y)
        # Brute-force LOOCV.
        Xz = znorm_rows(X)
        correct = 0
        for i in range(10):
            distances = [
                dtw_distance(Xz[i], Xz[j], window) if j != i else np.inf
                for j in range(10)
            ]
            if y[int(np.argmin(distances))] == y[i]:
                correct += 1
        assert clf.loocv_accuracy_[window] == correct / 10
