import numpy as np
import pytest
from scipy.stats import norm

from repro.sax.alphabet import (
    breakpoints,
    indices_to_letters,
    letters_to_indices,
    symbol_distance_table,
    symbols_for,
)


class TestBreakpoints:
    def test_binary_alphabet_cuts_at_zero(self):
        np.testing.assert_allclose(breakpoints(2), [0.0], atol=1e-12)

    def test_known_values_alpha_4(self):
        # Classic SAX table: -0.6745, 0, 0.6745 for alpha=4.
        np.testing.assert_allclose(breakpoints(4), [-0.6745, 0.0, 0.6745], atol=1e-3)

    def test_equiprobable_regions(self):
        cuts = breakpoints(5)
        probs = np.diff(np.concatenate([[0.0], norm.cdf(cuts), [1.0]]))
        np.testing.assert_allclose(probs, np.full(5, 0.2), atol=1e-12)

    def test_sorted_and_symmetric(self):
        cuts = breakpoints(7)
        assert np.all(np.diff(cuts) > 0)
        np.testing.assert_allclose(cuts, -cuts[::-1], atol=1e-12)

    def test_count(self):
        for alpha in range(2, 13):
            assert breakpoints(alpha).size == alpha - 1

    @pytest.mark.parametrize("alpha", [0, 1, 27, -3])
    def test_rejects_bad_sizes(self, alpha):
        with pytest.raises(ValueError):
            breakpoints(alpha)


class TestLetters:
    def test_symbols_for(self):
        assert symbols_for(4) == "abcd"

    def test_roundtrip(self):
        word = "acdba"
        assert indices_to_letters(letters_to_indices(word)) == word

    def test_indices_to_letters(self):
        assert indices_to_letters(np.array([0, 2, 1])) == "acb"


class TestDistanceTable:
    def test_adjacent_letters_are_free(self):
        table = symbol_distance_table(5)
        for i in range(5):
            for j in range(5):
                if abs(i - j) <= 1:
                    assert table[i, j] == 0.0

    def test_symmetric_nonnegative(self):
        table = symbol_distance_table(6)
        np.testing.assert_allclose(table, table.T, atol=1e-12)
        assert (table >= 0).all()

    def test_gap_values(self):
        cuts = breakpoints(4)
        table = symbol_distance_table(4)
        assert abs(table[0, 2] - (cuts[1] - cuts[0])) < 1e-12
        assert abs(table[0, 3] - (cuts[2] - cuts[0])) < 1e-12

    def test_monotone_in_letter_gap(self):
        table = symbol_distance_table(8)
        row = table[0]
        assert np.all(np.diff(row[1:]) >= 0)
