import numpy as np
import pytest

from repro.data.base import Dataset


def _make(n_tr=4, n_te=3, m=10, k=2):
    rng = np.random.default_rng(0)
    return Dataset(
        name="toy",
        X_train=rng.standard_normal((n_tr, m)),
        y_train=np.arange(n_tr) % k,
        X_test=rng.standard_normal((n_te, m)),
        y_test=np.arange(n_te) % k,
    )


class TestDataset:
    def test_properties(self):
        ds = _make()
        assert ds.n_train == 4
        assert ds.n_test == 3
        assert ds.series_length == 10
        assert ds.n_classes == 2

    def test_classes_sorted(self):
        ds = _make(k=3, n_tr=6, n_te=6)
        np.testing.assert_array_equal(ds.classes(), [0, 1, 2])

    def test_class_instances(self):
        ds = _make()
        members = ds.class_instances(0)
        assert members.shape[0] == 2

    def test_summary_row_contains_name(self):
        assert "toy" in _make().summary_row()

    def test_rejects_length_mismatch(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="lengths differ"):
            Dataset(
                name="bad",
                X_train=rng.standard_normal((2, 5)),
                y_train=np.zeros(2),
                X_test=rng.standard_normal((2, 6)),
                y_test=np.zeros(2),
            )

    def test_rejects_label_count_mismatch(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="mismatch"):
            Dataset(
                name="bad",
                X_train=rng.standard_normal((2, 5)),
                y_train=np.zeros(3),
                X_test=rng.standard_normal((2, 5)),
                y_test=np.zeros(2),
            )

    def test_rejects_1d_series(self):
        with pytest.raises(ValueError, match="2-D"):
            Dataset(
                name="bad",
                X_train=np.zeros(5),
                y_train=np.zeros(5),
                X_test=np.zeros((1, 5)),
                y_test=np.zeros(1),
            )
