"""Shared fixtures: tiny deterministic datasets that keep tests fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, cbf, gun_point_sim


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_cbf() -> Dataset:
    """A small CBF split (3 classes) for pipeline-level tests."""
    return cbf(n_train_per_class=8, n_test_per_class=10, length=96, seed=7)


@pytest.fixture(scope="session")
def tiny_gun() -> Dataset:
    """A small 2-class dataset with a localized discriminative pattern."""
    return gun_point_sim(n_train_per_class=10, n_test_per_class=12, length=120, seed=7)


@pytest.fixture(scope="session")
def two_blob_features(rng) -> tuple[np.ndarray, np.ndarray]:
    """Linearly separable 2-class feature data for classifier tests."""
    X = np.vstack(
        [rng.normal(0.0, 0.6, size=(40, 3)), rng.normal(3.0, 0.6, size=(40, 3))]
    )
    y = np.array([0] * 40 + [1] * 40)
    return X, y
