"""Sharded serving tier: equivalence, admission control, worker loss.

Contracts under test:

1. **Bitwise equivalence** — the sharded tier's predictions (and
   feature vectors) equal the single-process ``PredictionService`` and
   the in-process ``RPMClassifier`` bit for bit: shared-memory bank
   export, pickling, routing and process boundaries never change a
   float.
2. **Typed degradation** — invalid rows yield per-row ``INVALID``
   results through ``predict_many``; a burst past the shard queue cap
   yields typed ``OVERLOAD`` results (shed at submit, nothing queued)
   and the service takes traffic again immediately after.
3. **Zero request loss** — killing a worker mid-stream or gracefully
   recycling it never loses an accepted request: every future resolves,
   and resolved labels still match the classifier.
4. **Observability** — per-shard metrics surface under the
   ``name[shard=N]`` convention, export as Prometheus labels, and the
   admin ``/shards`` route reports worker state.

Worker processes start with the ``spawn`` context (~1s each on a small
host), so services are shared per module scope where the test only
reads.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import RPMClassifier, SaxParams
from repro.obs.export import to_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    CompiledModel,
    PredictionService,
    ResultStatus,
    ServeConfig,
    SharedPatternBank,
    ShardedPredictionService,
)


@pytest.fixture(scope="module")
def fitted(tiny_gun):
    clf = RPMClassifier(sax_params=SaxParams(24, 4, 4), seed=0)
    clf.fit(tiny_gun.X_train, tiny_gun.y_train)
    return clf


@pytest.fixture(scope="module")
def compiled(fitted):
    with CompiledModel.from_classifier(fitted) as model:
        yield model


@pytest.fixture(scope="module")
def sharded_metrics():
    return MetricsRegistry()


@pytest.fixture(scope="module")
def sharded(compiled, sharded_metrics):
    """A running two-shard service shared by the read-only tests."""
    with ShardedPredictionService(
        compiled,
        config=ServeConfig(n_shards=2, warmup=False),
        metrics=sharded_metrics,
    ) as service:
        yield service


class TestSharedPatternBank:
    def test_attach_views_are_bitwise_equal_and_readonly(self, compiled):
        bank = SharedPatternBank.build(compiled)
        try:
            attached = SharedPatternBank.attach(bank.spec)
            try:
                assert len(attached.values) == len(compiled._values)
                for view, original in zip(attached.values, compiled._values):
                    np.testing.assert_array_equal(view, original)
                    with pytest.raises(ValueError):
                        view[0] = 0.0
                assert len(attached.native_plan) == len(compiled._native_plan)
                for got, want in zip(attached.native_plan, compiled._native_plan):
                    assert got.length == want.length
                    assert got.cols == want.cols
                    for pre_got, pre_want in zip(got.pres, want.pres):
                        np.testing.assert_array_equal(pre_got.q, pre_want.q)
                        assert pre_got.q_is_flat == pre_want.q_is_flat
                        # Exact equality: qq travels by pickle-able
                        # floats, never through a decimal text format.
                        assert pre_got.qq == pre_want.qq
            finally:
                attached.close()
        finally:
            bank.close()
            bank.unlink()

    def test_shared_bank_model_transforms_bitwise(self, compiled, tiny_gun):
        bank = SharedPatternBank.build(compiled)
        try:
            attached = SharedPatternBank.attach(bank.spec)
            try:
                model = CompiledModel.from_shared_bank(
                    attached.values,
                    attached.native_plan,
                    compiled.classifier,
                    rotation_invariant=compiled.rotation_invariant,
                    classes=compiled.classes,
                    series_length=compiled.series_length,
                )
                np.testing.assert_array_equal(
                    model.transform(tiny_gun.X_test),
                    compiled.transform(tiny_gun.X_test),
                )
            finally:
                attached.close()
        finally:
            bank.close()
            bank.unlink()

    def test_unlink_releases_the_segment(self, compiled):
        bank = SharedPatternBank.build(compiled)
        name = bank.spec["shm_name"]
        bank.close()
        bank.unlink()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestShardedEquivalence:
    def test_sharded_equals_single_process_and_classifier(
        self, sharded, fitted, compiled, tiny_gun
    ):
        expected = fitted.predict(tiny_gun.X_test)
        with PredictionService(compiled, config=ServeConfig(warmup=False)) as single:
            np.testing.assert_array_equal(single.predict(tiny_gun.X_test), expected)
        np.testing.assert_array_equal(sharded.predict(tiny_gun.X_test), expected)

    def test_features_are_bitwise_across_the_process_boundary(
        self, sharded, compiled, tiny_gun
    ):
        results = sharded.predict_many(tiny_gun.X_test)
        features = np.stack([r.features for r in results])
        np.testing.assert_array_equal(features, compiled.transform(tiny_gun.X_test))

    def test_results_carry_their_shard(self, sharded, tiny_gun):
        results = sharded.predict_many(tiny_gun.X_test)
        shards = {r.shard for r in results}
        assert shards <= {0, 1}
        # Round-robin routing touches every shard on a full test set.
        assert len(shards) == 2

    def test_ragged_predict_many_yields_typed_invalid_rows(self, sharded, tiny_gun):
        m = tiny_gun.X_test.shape[1]
        rows = [tiny_gun.X_test[0], np.zeros(m // 2), tiny_gun.X_test[1]]
        results = sharded.predict_many(rows)
        assert results[0].ok and results[2].ok
        assert results[1].status is ResultStatus.INVALID
        assert results[1].error_code == "bad-length"

    def test_submit_requires_running_service(self, compiled, tiny_gun):
        service = ShardedPredictionService(
            compiled,
            config=ServeConfig(n_shards=1, warmup=False),
        )
        with pytest.raises(RuntimeError, match="not running"):
            service.submit(tiny_gun.X_test[0])

    def test_rejects_bad_knobs(self, compiled):
        # Knob validation lives in ServeConfig now; the legacy per-knob
        # keywords route through it and reject identically.
        with pytest.raises(ValueError, match="n_shards"):
            ServeConfig(n_shards=-1)
        with pytest.raises(ValueError, match="max_queue_per_shard"):
            ShardedPredictionService(
                compiled,
                config=ServeConfig(max_queue_per_shard=0),
            )
        with pytest.raises(ValueError, match="admission_budget_ms"):
            ShardedPredictionService(
                compiled,
                config=ServeConfig(admission_budget_ms=0.0),
            )

    def test_n_shards_zero_means_tier_default(self, compiled):
        # In the redesigned API n_shards=0 is "use the tier default"
        # (the single-process service ignores it), not an error.
        service = ShardedPredictionService(compiled, config=ServeConfig())
        assert service.n_shards == 2


class TestAdmissionControl:
    def test_burst_past_queue_cap_sheds_typed_overload(self, compiled, tiny_gun):
        metrics = MetricsRegistry()
        with ShardedPredictionService(
            compiled,
            config=ServeConfig(
                n_shards=1, warmup=False, max_queue_per_shard=1, max_delay_ms=0.0
            ),
            metrics=metrics,
        ) as service:
            futures = [service.submit(row) for row in tiny_gun.X_test]
            results = [f.result(timeout=60.0) for f in futures]
            statuses = {r.status for r in results}
            assert statuses <= {ResultStatus.OK, ResultStatus.OVERLOAD}
            shed = [r for r in results if r.status is ResultStatus.OVERLOAD]
            assert shed, "burst past max_queue_per_shard=1 shed nothing"
            assert any(r.ok for r in results)
            # Shed results are typed and explain themselves.
            assert shed[0].error_code == "over-capacity"
            assert "max_queue_per_shard" in shed[0].error_message
            assert metrics.counter_value("serve.overload") == len(shed)
            # Shedding is not an outage: the next request after the
            # burst drains goes straight through.
            assert service.predict_one(tiny_gun.X_test[0], wait_s=60.0).ok
            assert metrics.gauge_value("serve.queue_depth") == 0

    def test_overload_lands_in_the_flight_recorder(self, compiled, tiny_gun):
        with ShardedPredictionService(
            compiled,
            config=ServeConfig(
                n_shards=1, warmup=False, max_queue_per_shard=1, max_delay_ms=0.0
            ),
            metrics=MetricsRegistry(),
        ) as service:
            futures = [service.submit(row) for row in tiny_gun.X_test[:8]]
            [f.result(timeout=60.0) for f in futures]
            reasons = {entry["reason"] for entry in service.flight.records()}
        assert "overload" in reasons


class TestWorkerLoss:
    def test_killed_worker_loses_no_accepted_requests(
        self, compiled, fitted, tiny_gun
    ):
        metrics = MetricsRegistry()
        expected = fitted.predict(tiny_gun.X_test)
        with ShardedPredictionService(
            compiled,
            config=ServeConfig(n_shards=2, warmup=False, max_delay_ms=20.0),
            metrics=metrics,
        ) as service:
            futures = [service.submit(row) for row in tiny_gun.X_test]
            service._shards[0].process.kill()
            results = [f.result(timeout=60.0) for f in futures]
            assert all(r.ok for r in results), sorted(
                {r.status.value for r in results if not r.ok}
            )
            np.testing.assert_array_equal(
                np.array([r.label for r in results]), expected
            )
            assert metrics.counter_value("serve.worker_deaths") >= 1
            assert metrics.gauge_value("serve.queue_depth") == 0

    def test_graceful_recycle_respawns_and_stays_bitwise(
        self, compiled, fitted, tiny_gun
    ):
        metrics = MetricsRegistry()
        with ShardedPredictionService(
            compiled,
            config=ServeConfig(n_shards=2, warmup=False),
            metrics=metrics,
        ) as service:
            before = [s["generation"] for s in service.shard_states()]
            service.recycle(1)
            after = {s["shard"]: s for s in service.shard_states()}
            assert after[1]["generation"] == before[1] + 1
            assert metrics.counter_value("serve.worker_recycles") == 1
            np.testing.assert_array_equal(
                service.predict(tiny_gun.X_test), fitted.predict(tiny_gun.X_test)
            )


class TestShardObservability:
    def test_per_shard_series_use_the_label_convention(
        self, sharded, sharded_metrics, tiny_gun
    ):
        sharded.predict(tiny_gun.X_test)
        snap = sharded_metrics.snapshot()
        labeled = [k for k in snap["counters"] if k.startswith("serve.requests[")]
        assert "serve.requests[shard=0]" in labeled
        assert "serve.requests[shard=1]" in labeled
        assert snap["gauges"]["serve.queue_depth[shard=0]"] == 0
        assert snap["histograms"]["serve.latency_seconds[shard=0]"]["count"] >= 1

    def test_prometheus_export_renders_shard_labels(self, sharded_metrics):
        text = to_prometheus(sharded_metrics)
        assert 'serve_requests_total{shard="0"}' in text
        assert 'serve_requests_total{shard="1"}' in text
        # One TYPE header per base metric, not one per labeled series.
        assert text.count("# TYPE serve_requests_total counter") == 1
        assert 'serve_latency_seconds{shard="0",quantile="0.5"}' in text

    def test_admin_shards_route(self, compiled, tiny_gun):
        with ShardedPredictionService(
            compiled,
            config=ServeConfig(n_shards=1, warmup=False, admin_port=0),
            metrics=MetricsRegistry(),
        ) as service:
            with urllib.request.urlopen(service.admin.url("/shards")) as response:
                payload = json.load(response)
        assert [s["shard"] for s in payload["shards"]] == [0]
        assert payload["shards"][0]["state"] == "up"

    def test_single_process_service_has_no_shards_route(self, compiled):
        with PredictionService(
            compiled,
            config=ServeConfig(warmup=False, admin_port=0),
            metrics=MetricsRegistry(),
        ) as service:
            url = service.admin.url("/shards")
            try:
                urllib.request.urlopen(url)
            except urllib.error.HTTPError as exc:
                assert exc.code == 404
            else:  # pragma: no cover
                pytest.fail("/shards should 404 on a single-process service")
