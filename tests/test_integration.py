"""Integration tests: the full pipeline and cross-module behaviour."""

import numpy as np
import pytest

from repro import RPMClassifier, SaxParams
from repro.baselines import NearestNeighborED, SaxVsmClassifier
from repro.core.candidates import find_candidates
from repro.core.selection import find_distinct
from repro.core.transform import pattern_features
from repro.data import cbf, load, rotate_test_split
from repro.ml.metrics import error_rate
from repro.ml.svm import SVC


class TestEndToEndPipeline:
    def test_rpm_beats_chance_substantially_on_cbf(self, tiny_cbf):
        clf = RPMClassifier(sax_params=SaxParams(30, 5, 5), seed=0)
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        err = error_rate(tiny_cbf.y_test, clf.predict(tiny_cbf.X_test))
        assert err < 0.25  # chance would be ~0.67

    def test_rpm_patterns_are_class_specific(self, tiny_cbf):
        # The paper's central claim: each class gets its own patterns.
        clf = RPMClassifier(sax_params=SaxParams(30, 5, 5), seed=0)
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        labels = {p.label for p in clf.patterns_}
        assert len(labels) >= 2

    def test_algorithm1_into_algorithm2_manually(self, tiny_gun):
        params = {label: SaxParams(24, 4, 4) for label in (0, 1)}
        candidates = find_candidates(
            tiny_gun.X_train, tiny_gun.y_train, params, gamma=0.2
        )
        assert candidates
        selection = find_distinct(tiny_gun.X_train, tiny_gun.y_train, candidates)
        assert selection.patterns
        assert selection.n_after_dedup <= selection.n_candidates_in
        # Classifier fit on the returned features reproduces the
        # transform computed from scratch.
        F = pattern_features(tiny_gun.X_train, selection.patterns)
        np.testing.assert_allclose(F, selection.train_features, atol=1e-9)

    def test_transformed_space_is_classifier_agnostic(self, tiny_gun):
        # §3.1: "our algorithm can work with any classifier".
        for factory in (SVC, NearestNeighborED):
            clf = RPMClassifier(
                sax_params=SaxParams(24, 4, 4), classifier_factory=factory, seed=0
            )
            clf.fit(tiny_gun.X_train, tiny_gun.y_train)
            err = error_rate(tiny_gun.y_test, clf.predict(tiny_gun.X_test))
            assert err < 0.4

    def test_deterministic_end_to_end(self, tiny_gun):
        def run():
            clf = RPMClassifier(sax_params=SaxParams(24, 4, 4), seed=3)
            clf.fit(tiny_gun.X_train, tiny_gun.y_train)
            return clf.predict(tiny_gun.X_test)

        np.testing.assert_array_equal(run(), run())


class TestRotationCaseStudy:
    def test_rotation_invariant_rpm_degrades_less_than_nn_ed(self):
        ds = load("GunPointSim")
        rotated = rotate_test_split(ds, seed=1)

        rpm = RPMClassifier(
            sax_params=SaxParams(40, 6, 5), rotation_invariant=True, seed=0
        )
        rpm.fit(ds.X_train, ds.y_train)
        rpm_err = error_rate(rotated.y_test, rpm.predict(rotated.X_test))

        nn = NearestNeighborED().fit(ds.X_train, ds.y_train)
        nn_err = error_rate(rotated.y_test, nn.predict(rotated.X_test))

        # Paper Table 4: global ED collapses under rotation, RPM holds.
        assert rpm_err < nn_err

    def test_rpm_rotated_error_stays_moderate(self):
        ds = load("GunPointSim")
        rotated = rotate_test_split(ds, seed=2)
        rpm = RPMClassifier(
            sax_params=SaxParams(40, 6, 5), rotation_invariant=True, seed=0
        )
        rpm.fit(ds.X_train, ds.y_train)
        assert error_rate(rotated.y_test, rpm.predict(rotated.X_test)) < 0.35


class TestAgainstBaselines:
    def test_rpm_competitive_with_saxvsm_on_cbf(self):
        ds = cbf(n_train_per_class=10, n_test_per_class=30, seed=21)
        rpm = RPMClassifier(sax_params=SaxParams(40, 6, 5), seed=0)
        rpm.fit(ds.X_train, ds.y_train)
        rpm_err = error_rate(ds.y_test, rpm.predict(ds.X_test))

        vsm = SaxVsmClassifier(params=SaxParams(40, 6, 5))
        vsm.fit(ds.X_train, ds.y_train)
        vsm_err = error_rate(ds.y_test, vsm.predict(ds.X_test))

        assert rpm_err <= vsm_err + 0.1

    def test_feature_count_is_small(self, tiny_cbf):
        # RPM's pitch: a *small* set of interpretable patterns.
        clf = RPMClassifier(sax_params=SaxParams(30, 5, 5), seed=0)
        clf.fit(tiny_cbf.X_train, tiny_cbf.y_train)
        assert len(clf.patterns_) <= 24


class TestMedicalAlarmCaseStudy:
    def test_normal_vs_alarm_classification(self):
        ds = load("MedicalAlarmABP")
        clf = RPMClassifier(sax_params=SaxParams(50, 6, 5), seed=0)
        clf.fit(ds.X_train, ds.y_train)
        err = error_rate(ds.y_test, clf.predict(ds.X_test))
        assert err < 0.35
