import numpy as np
import pytest

from repro.baselines import NearestNeighborED
from repro.data import cbf
from repro.data.noise import (
    CORRUPTIONS,
    add_baseline_wander,
    add_dropout,
    add_gaussian_noise,
    add_spikes,
    corrupt_test_split,
)
from repro.evaluation import ComparisonTable, compare, evaluate


class _MajorityClassifier:
    """Degenerate but deterministic test double."""

    def fit(self, X, y):
        labels, counts = np.unique(y, return_counts=True)
        self._label = labels[np.argmax(counts)]
        return self

    def predict(self, X):
        return np.full(np.asarray(X).shape[0], self._label)


@pytest.fixture(scope="module")
def small_cbf():
    return cbf(n_train_per_class=6, n_test_per_class=8, length=64, seed=3)


class TestEvaluate:
    def test_returns_result_with_times(self, small_cbf):
        result = evaluate(NearestNeighborED, small_cbf)
        assert result.dataset == "CBF"
        assert 0.0 <= result.error <= 1.0
        assert result.total_time == result.train_time + result.test_time

    def test_custom_name(self, small_cbf):
        result = evaluate(_MajorityClassifier, small_cbf, name="majority")
        assert result.method == "majority"
        # Majority on 3 balanced classes: error 2/3.
        assert result.error == pytest.approx(2 / 3)


class TestCompare:
    def test_table_structure(self, small_cbf):
        table = compare(
            {"1NN": NearestNeighborED, "majority": _MajorityClassifier}, [small_cbf]
        )
        assert table.methods == ["1NN", "majority"]
        assert table.datasets == ["CBF"]
        assert table.errors("1NN")[0] <= table.errors("majority")[0]

    def test_wins_and_render(self, small_cbf):
        table = compare(
            {"1NN": NearestNeighborED, "majority": _MajorityClassifier}, [small_cbf]
        )
        wins = table.wins()
        assert wins["1NN"] == 1
        text = table.render()
        assert "#wins" in text and "CBF" in text

    def test_wilcoxon_identical_methods(self, small_cbf):
        table = compare(
            {"a": NearestNeighborED, "b": NearestNeighborED}, [small_cbf]
        )
        assert table.wilcoxon("a", "b") == 1.0

    def test_rejects_empty(self, small_cbf):
        with pytest.raises(ValueError, match="methods"):
            compare({}, [small_cbf])
        with pytest.raises(ValueError, match="datasets"):
            compare({"a": NearestNeighborED}, [])


class TestNoise:
    def test_gaussian_noise_scales_with_level(self, rng):
        X = np.tile(np.sin(np.linspace(0, 6, 100)), (5, 1))
        small = add_gaussian_noise(X, 0.1, seed=0)
        large = add_gaussian_noise(X, 0.8, seed=0)
        assert np.abs(large - X).mean() > np.abs(small - X).mean()

    def test_spikes_change_exactly_n_points(self, rng):
        X = np.zeros((3, 50)) + np.linspace(0, 1, 50)
        out = add_spikes(X, n_spikes=4, seed=0)
        for i in range(3):
            assert int(np.sum(out[i] != X[i])) == 4

    def test_wander_preserves_mean_shape(self, rng):
        X = rng.standard_normal((4, 80))
        out = add_baseline_wander(X, amplitude=0.5, seed=0)
        # Correlation with the original stays high: wander is additive drift.
        for a, b in zip(X, out):
            assert np.corrcoef(a, b)[0, 1] > 0.6

    def test_dropout_flatlines_segment(self, rng):
        X = rng.standard_normal((2, 60))
        out = add_dropout(X, fraction=0.2, seed=0)
        for row in out:
            diffs = np.diff(row)
            # At least an 11-point run of constancy.
            run = 0
            best = 0
            for d in diffs:
                run = run + 1 if d == 0 else 0
                best = max(best, run)
            assert best >= 11

    def test_dropout_zero_fraction_identity(self, rng):
        X = rng.standard_normal((2, 30))
        np.testing.assert_array_equal(add_dropout(X, 0.0), X)

    def test_dropout_rejects_bad_fraction(self, rng):
        with pytest.raises(ValueError, match="fraction"):
            add_dropout(rng.standard_normal((2, 30)), 1.0)

    def test_corrupt_test_split_leaves_train(self, small_cbf):
        corrupted = corrupt_test_split(small_cbf, "noise-0.5", seed=0)
        np.testing.assert_array_equal(corrupted.X_train, small_cbf.X_train)
        assert not np.array_equal(corrupted.X_test, small_cbf.X_test)
        assert corrupted.name.endswith("+noise-0.5")

    def test_unknown_corruption(self, small_cbf):
        with pytest.raises(KeyError, match="unknown corruption"):
            corrupt_test_split(small_cbf, "meteor")

    def test_all_registered_corruptions_run(self, small_cbf):
        for name in CORRUPTIONS:
            out = corrupt_test_split(small_cbf, name, seed=0)
            assert np.isfinite(out.X_test).all()

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            add_gaussian_noise(np.zeros(10))
