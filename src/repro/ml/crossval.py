"""Cross-validation utilities: stratified folds and splits.

Algorithm 3 repeatedly (i) splits the training data into train and
validation partitions and (ii) runs five-fold cross-validation on the
transformed validation data; both helpers keep class proportions by
stratifying.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = [
    "stratified_kfold",
    "stratified_split",
    "kfold_predictions",
    "cross_val_error",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def stratified_kfold(
    y: np.ndarray,
    n_folds: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` for stratified k-fold CV.

    Every class's instances are shuffled and dealt round-robin over the
    folds, so each fold's class mix matches the whole set as closely as
    integer counts allow. Classes with fewer members than folds simply
    appear in fewer folds (no error), which matters for the paper's
    tiny UCR-style training sets.
    """
    labels = np.asarray(y)
    if labels.ndim != 1:
        raise ValueError("y must be 1-D")
    if n_folds < 2:
        raise ValueError(f"n_folds must be >= 2, got {n_folds}")
    if n_folds > labels.size:
        raise ValueError(f"n_folds ({n_folds}) exceeds number of instances ({labels.size})")
    rng = _rng(seed)
    fold_of = np.empty(labels.size, dtype=int)
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label)
        rng.shuffle(members)
        fold_of[members] = np.arange(members.size) % n_folds
    all_idx = np.arange(labels.size)
    for fold in range(n_folds):
        test = all_idx[fold_of == fold]
        if test.size == 0:
            continue
        train = all_idx[fold_of != fold]
        yield train, test


def stratified_split(
    y: np.ndarray,
    test_fraction: float,
    *,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One stratified shuffle split into ``(train_idx, test_idx)``.

    Each class keeps at least one instance on the training side, and —
    when it has two or more members — at least one on the test side, so
    both partitions always cover every class as far as possible.
    """
    labels = np.asarray(y)
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = _rng(seed)
    train_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label)
        rng.shuffle(members)
        n_test = int(round(members.size * test_fraction))
        if members.size >= 2:
            n_test = min(max(n_test, 1), members.size - 1)
        else:
            n_test = 0
        test_parts.append(members[:n_test])
        train_parts.append(members[n_test:])
    train = np.sort(np.concatenate(train_parts))
    test = np.sort(np.concatenate(test_parts))
    return train, test


def kfold_predictions(
    fit_predict,
    X: np.ndarray,
    y: np.ndarray,
    n_folds: int = 5,
    *,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Out-of-fold predictions for the whole dataset.

    ``fit_predict(X_train, y_train, X_test) -> y_pred`` is called once
    per fold; the returned array aligns with ``y``. Used to compute the
    per-class F-measure that drives parameter selection.
    """
    X = np.asarray(X)
    labels = np.asarray(y)
    predictions = np.empty(labels.size, dtype=labels.dtype)
    seen = np.zeros(labels.size, dtype=bool)
    for train_idx, test_idx in stratified_kfold(labels, n_folds, seed=seed):
        predictions[test_idx] = fit_predict(X[train_idx], labels[train_idx], X[test_idx])
        seen[test_idx] = True
    if not seen.all():  # pragma: no cover - stratified_kfold covers everything
        raise RuntimeError("some instances were never assigned to a test fold")
    return predictions


def cross_val_error(
    estimator,
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_folds: int = 5,
    seed: int | np.random.Generator | None = None,
) -> float:
    """Stratified k-fold misclassification rate of one estimator.

    The estimator is any configured instance following the
    :mod:`repro.base` protocol; it is **cloned per fold** (the passed
    object is never fitted) so repeated calls and hyper-parameter
    sweeps cannot leak state between folds.
    """
    from ..base import clone

    labels = np.asarray(y)

    def fit_predict(X_train, y_train, X_test):
        model = clone(estimator)
        model.fit(X_train, y_train)
        return model.predict(X_test)

    predictions = kfold_predictions(fit_predict, X, labels, n_folds, seed=seed)
    return float(np.mean(predictions != labels))
