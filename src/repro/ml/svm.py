"""Support vector machine trained with SMO (maximal-violating-pair).

The paper classifies the pattern-distance feature vectors with an SVM
(§3.1). No external ML library is available here, so this module
implements a soft-margin kernel SVM from scratch:

* the dual problem is solved by sequential minimal optimization with
  LIBSVM's first-order working-set selection (maximal violating pair);
* linear and RBF kernels;
* multi-class via one-vs-rest on the decision values;
* a :class:`StandardScaler` companion, since pattern distances live on
  very different scales across patterns.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "BinarySVM", "SVC"]


class StandardScaler:
    """Per-feature standardization to zero mean / unit variance."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Fit the model on training series ``X`` with labels ``y``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"expected 2-D data, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale < 1e-12] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler used before fit()")
        return (np.asarray(X, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return the transformed copy."""
        return self.fit(X).transform(X)


def _kernel_matrix(
    A: np.ndarray, B: np.ndarray, kernel: str, gamma: float
) -> np.ndarray:
    if kernel == "linear":
        return A @ B.T
    if kernel == "rbf":
        a2 = np.sum(A * A, axis=1)[:, None]
        b2 = np.sum(B * B, axis=1)[None, :]
        d2 = a2 + b2 - 2.0 * (A @ B.T)
        np.maximum(d2, 0.0, out=d2)
        return np.exp(-gamma * d2)
    raise ValueError(f"unknown kernel {kernel!r}")


class BinarySVM:
    """Soft-margin binary SVM; labels must be -1 / +1.

    Solves ``min 0.5 αᵀQα − eᵀα`` s.t. ``0 ≤ α ≤ C``, ``yᵀα = 0`` with
    ``Q_ij = y_i y_j K(x_i, x_j)`` by SMO. The kernel matrix is
    precomputed — training sets in this problem are small (UCR scale).
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma: float | str = "scale",
        tol: float = 1e-3,
        max_iter: int = 20000,
    ) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        self.C = float(C)
        self.kernel = kernel
        self.gamma = gamma
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        self.alpha_: np.ndarray | None = None
        self.bias_: float = 0.0
        self.support_vectors_: np.ndarray | None = None
        self.support_coef_: np.ndarray | None = None
        self.gamma_: float = 1.0
        self.iterations_: int = 0

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if isinstance(self.gamma, str):
            if self.gamma != "scale":
                raise ValueError(f"unknown gamma spec {self.gamma!r}")
            var = X.var()
            return 1.0 / (X.shape[1] * var) if var > 1e-12 else 1.0
        return float(self.gamma)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BinarySVM":
        """Fit the model on training series ``X`` with labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) and y (n,)")
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValueError("labels must be -1 or +1")
        if np.unique(y).size < 2:
            raise ValueError("both classes must be present")
        n = X.shape[0]
        self.gamma_ = self._resolve_gamma(X)
        K = _kernel_matrix(X, X, self.kernel, self.gamma_)

        alpha = np.zeros(n)
        grad = -np.ones(n)  # G = Qα − e with α = 0
        C = self.C
        it = 0
        for it in range(1, self.max_iter + 1):
            # I_up: α can increase along +y; I_low: can decrease.
            up = ((y > 0) & (alpha < C)) | ((y < 0) & (alpha > 0))
            low = ((y > 0) & (alpha > 0)) | ((y < 0) & (alpha < C))
            if not up.any() or not low.any():
                break
            yg = -y * grad
            i = int(np.flatnonzero(up)[np.argmax(yg[up])])
            j = int(np.flatnonzero(low)[np.argmin(yg[low])])
            if yg[i] - yg[j] < self.tol:
                break
            # Two-variable subproblem along the feasible direction
            # (α_i moves by +y_i·t, α_j by −y_j·t, preserving yᵀα = 0).
            quad = K[i, i] + K[j, j] - 2.0 * K[i, j]
            if quad <= 1e-12:
                quad = 1e-12
            delta = (yg[i] - yg[j]) / quad
            t_max_i = (C - alpha[i]) if y[i] > 0 else alpha[i]
            t_max_j = alpha[j] if y[j] > 0 else (C - alpha[j])
            t = min(delta, t_max_i, t_max_j)
            if t <= 0:
                break
            alpha[i] += y[i] * t
            alpha[j] -= y[j] * t
            # ΔG = Q[:, i]·Δα_i + Q[:, j]·Δα_j = t · y ⊙ (K[:, i] − K[:, j]).
            grad += t * y * (K[:, i] - K[:, j])
        self.iterations_ = it

        # Bias from the KKT conditions: average over free vectors.
        free = (alpha > 1e-8) & (alpha < C - 1e-8)
        decision_wo_bias = (alpha * y) @ K
        if free.any():
            self.bias_ = float(np.mean(y[free] - decision_wo_bias[free]))
        else:
            up = ((y > 0) & (alpha < C)) | ((y < 0) & (alpha > 0))
            low = ((y > 0) & (alpha > 0)) | ((y < 0) & (alpha < C))
            yg = -y * grad
            hi = yg[up].max() if up.any() else 0.0
            lo = yg[low].min() if low.any() else 0.0
            self.bias_ = float((hi + lo) / 2.0)

        support = alpha > 1e-8
        self.alpha_ = alpha
        self.support_vectors_ = X[support]
        self.support_coef_ = (alpha * y)[support]
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw decision value(s) for every row of ``X``."""
        if self.support_vectors_ is None or self.support_coef_ is None:
            raise RuntimeError("BinarySVM used before fit()")
        X = np.asarray(X, dtype=float)
        if self.support_vectors_.shape[0] == 0:
            return np.full(X.shape[0], self.bias_)
        K = _kernel_matrix(X, self.support_vectors_, self.kernel, self.gamma_)
        return K @ self.support_coef_ + self.bias_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a class label for every row of ``X``."""
        return np.where(self.decision_function(X) >= 0.0, 1.0, -1.0)


class SVC:
    """Multi-class SVM via one-vs-rest over :class:`BinarySVM`.

    Input features are standardized internally (``scale=True``), which
    the pattern-distance feature space needs since distances to long
    patterns dominate distances to short ones.
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma: float | str = "scale",
        tol: float = 1e-3,
        max_iter: int = 20000,
        scale: bool = True,
    ) -> None:
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.tol = tol
        self.max_iter = max_iter
        self.scale = scale
        self.classes_: np.ndarray | None = None
        self.machines_: list[BinarySVM] = []
        self.scaler_: StandardScaler | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVC":
        """Fit the model on training series ``X`` with labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on the number of instances")
        if self.scale:
            self.scaler_ = StandardScaler()
            X = self.scaler_.fit_transform(X)
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValueError("need at least two classes")
        self.machines_ = []
        for label in self.classes_:
            target = np.where(y == label, 1.0, -1.0)
            machine = BinarySVM(
                C=self.C,
                kernel=self.kernel,
                gamma=self.gamma,
                tol=self.tol,
                max_iter=self.max_iter,
            )
            machine.fit(X, target)
            self.machines_.append(machine)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw decision value(s) for every row of ``X``."""
        if self.classes_ is None:
            raise RuntimeError("SVC used before fit()")
        X = np.asarray(X, dtype=float)
        if self.scaler_ is not None:
            X = self.scaler_.transform(X)
        return np.column_stack([m.decision_function(X) for m in self.machines_])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a class label for every row of ``X``."""
        scores = self.decision_function(X)
        assert self.classes_ is not None
        return self.classes_[np.argmax(scores, axis=1)]
