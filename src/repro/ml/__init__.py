"""Machine-learning substrate: SVM, CFS, cross-validation, metrics, tests."""

from .cfs import CfsResult, cfs_select, discretize_features, symmetrical_uncertainty
from .crossval import kfold_predictions, stratified_kfold, stratified_split
from .metrics import (
    ClassScores,
    accuracy,
    confusion_matrix,
    error_rate,
    macro_f1,
    precision_recall_f1,
)
from .stats import WilcoxonResult, rankdata_average, wilcoxon_signed_rank
from .svm import SVC, BinarySVM, StandardScaler

__all__ = [
    "BinarySVM",
    "CfsResult",
    "ClassScores",
    "SVC",
    "StandardScaler",
    "WilcoxonResult",
    "accuracy",
    "cfs_select",
    "confusion_matrix",
    "discretize_features",
    "error_rate",
    "kfold_predictions",
    "macro_f1",
    "precision_recall_f1",
    "rankdata_average",
    "stratified_kfold",
    "stratified_split",
    "symmetrical_uncertainty",
    "wilcoxon_signed_rank",
]
