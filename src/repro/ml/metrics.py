"""Classification metrics: accuracy, confusion matrix, per-class F-measure.

Algorithm 3 selects SAX parameters by the per-class F-measure from
five-fold cross-validation, and the evaluation section reports error
rates; both live here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "accuracy",
    "error_rate",
    "confusion_matrix",
    "ClassScores",
    "precision_recall_f1",
    "macro_f1",
]


def _as_labels(y: np.ndarray) -> np.ndarray:
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {arr.shape}")
    return arr


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correctly classified instances."""
    t, p = _as_labels(y_true), _as_labels(y_pred)
    if t.shape != p.shape:
        raise ValueError(f"shape mismatch: {t.shape} vs {p.shape}")
    if t.size == 0:
        raise ValueError("cannot score an empty label set")
    return float(np.mean(t == p))


def error_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """1 - accuracy; the quantity the paper's tables report."""
    return 1.0 - accuracy(y_true, y_pred)


def confusion_matrix(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    labels: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Confusion counts; rows are true labels, columns predictions.

    Returns ``(matrix, labels)`` where *labels* fixes the row/column
    order (defaults to the sorted union of observed labels).
    """
    t, p = _as_labels(y_true), _as_labels(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([t, p]))
    else:
        labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((labels.size, labels.size), dtype=int)
    for yt, yp in zip(t.tolist(), p.tolist()):
        matrix[index[yt], index[yp]] += 1
    return matrix, labels


@dataclass(frozen=True)
class ClassScores:
    """Per-class precision / recall / F1 keyed by label."""

    labels: tuple
    precision: np.ndarray
    recall: np.ndarray
    f1: np.ndarray

    def for_label(self, label) -> tuple[float, float, float]:
        """(precision, recall, F1) of one class."""
        idx = self.labels.index(label)
        return float(self.precision[idx]), float(self.recall[idx]), float(self.f1[idx])


def precision_recall_f1(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    labels: np.ndarray | None = None,
) -> ClassScores:
    """One-vs-rest precision, recall and F1 per class.

    Degenerate classes (no predictions or no true members) score 0 for
    the undefined ratio, the standard convention.
    """
    matrix, lab = confusion_matrix(y_true, y_pred, labels)
    tp = np.diag(matrix).astype(float)
    predicted = matrix.sum(axis=0).astype(float)
    actual = matrix.sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, tp / predicted, 0.0)
        recall = np.where(actual > 0, tp / actual, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return ClassScores(
        labels=tuple(lab.tolist()), precision=precision, recall=recall, f1=f1
    )


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Unweighted mean of per-class F1 scores."""
    return float(precision_recall_f1(y_true, y_pred).f1.mean())
