"""Statistical tests used in the evaluation: Wilcoxon signed-rank.

The paper compares classifiers over the dataset suite with the Wilcoxon
signed-rank test (Table 1 and Figure 7 report p-values for RPM vs. each
rival). Implemented from first principles with the normal
approximation, tie correction and continuity correction — the same
recipe as the standard statistical packages (validated against
``scipy.stats.wilcoxon`` in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

__all__ = ["WilcoxonResult", "wilcoxon_signed_rank", "rankdata_average"]


@dataclass(frozen=True)
class WilcoxonResult:
    """Statistic ``W`` (smaller signed-rank sum), z-score, two-sided p."""

    statistic: float
    z: float
    p_value: float
    n_nonzero: int


def rankdata_average(values: np.ndarray) -> np.ndarray:
    """Ranks with ties sharing the average rank (1-based)."""
    values = np.asarray(values, dtype=float)
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        avg_rank = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = avg_rank
        i = j + 1
    return ranks


def wilcoxon_signed_rank(x: np.ndarray, y: np.ndarray) -> WilcoxonResult:
    """Two-sided Wilcoxon signed-rank test on paired samples.

    Zero differences are discarded (Wilcoxon's original treatment,
    scipy's ``zero_method='wilcox'``). Requires at least one non-zero
    difference. Uses the normal approximation with tie and continuity
    corrections, which is what matters at the paper's suite size
    (~40 datasets).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    diff = x - y
    diff = diff[diff != 0.0]
    n = diff.size
    if n == 0:
        raise ValueError("all paired differences are zero; test undefined")
    ranks = rankdata_average(np.abs(diff))
    w_plus = float(ranks[diff > 0].sum())
    w_minus = float(ranks[diff < 0].sum())
    statistic = min(w_plus, w_minus)

    mean = n * (n + 1) / 4.0
    var = n * (n + 1) * (2 * n + 1) / 24.0
    # Tie correction over groups of equal |diff|.
    _, counts = np.unique(ranks, return_counts=True)
    tie_term = float(np.sum(counts**3 - counts)) / 48.0
    var -= tie_term
    if var <= 0:
        raise ValueError("zero variance (all differences tie); test undefined")
    # Continuity correction toward the mean.
    z = (statistic - mean + 0.5) / np.sqrt(var)
    p = float(min(1.0, 2.0 * norm.cdf(z)))
    return WilcoxonResult(statistic=statistic, z=float(z), p_value=p, n_nonzero=n)
