"""Correlation-based Feature Selection (CFS, Hall 1999).

Algorithm 2 selects the representative patterns by running "the
correlation-based feature selection from [8]" on the pattern-distance
feature space. This module reproduces Weka's ``CfsSubsetEval`` +
best-first search:

* numeric features are discretized (equal-frequency binning) and
  feature-class / feature-feature association is measured by
  **symmetrical uncertainty** ``SU(a, b) = 2·IG(a; b) / (H(a) + H(b))``;
* a subset ``S`` of ``k`` features is scored by Hall's merit

      merit(S) = k·r̄_cf / sqrt(k + k·(k−1)·r̄_ff)

  (high average feature-class correlation, low average redundancy);
* subsets are explored with best-first search and a stale-expansion
  stop (Weka's default of 5).

The number of selected features is *dynamic* — whatever subset
maximizes the merit — which is exactly how RPM ends up with a different
number of representative patterns per dataset.

Two SU implementations share the best-first search. The default
``'blocked'`` path discretizes every column in one vectorized pass and
builds contingency tables for whole blocks of (feature, feature) /
(feature, class) pairs with a single ``np.bincount`` over fused joint
codes, bounded by :data:`SU_SCRATCH_BYTES` of scratch. The ``'scalar'``
path is the pre-vectorization reference — one ``np.unique`` pass per
pair through :class:`_MeritEvaluator` — kept for the parity suite and
the old-vs-new benchmark (:func:`su_implementation` switches). Both
produce bitwise-identical selections: the blocked kernel sums each
contingency row's nonzero cells in the same ascending-code order the
``np.unique`` path does, expression for expression.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..obs.metrics import registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime imports ml)
    from ..runtime.selection_cache import SelectionCache

__all__ = [
    "CfsResult",
    "cfs_select",
    "column_entropies",
    "discretize_features",
    "feature_class_su",
    "feature_feature_su_matrix",
    "su_implementation",
    "symmetrical_uncertainty",
]

DEFAULT_BINS = 10
DEFAULT_MAX_STALE = 5

#: Scratch ceiling (bytes) for the blocked contingency builds: fused
#: joint-code blocks and their bincount tables are chunked so no
#: intermediate exceeds it, independent of how many pairs are scored.
SU_SCRATCH_BYTES = 32 * 2**20


def discretize_features(X: np.ndarray, bins: int = DEFAULT_BINS) -> np.ndarray:
    """Equal-frequency binning of every column into integer codes.

    All columns are processed in one vectorized pass: quantile edges for
    the whole matrix at once, duplicate edges masked to ``+inf`` (the
    per-column ``np.unique`` collapse for near-constant columns), and
    codes recovered as ``count(edges <= x)`` — exactly what the old
    per-column ``np.searchsorted(side="right")`` loop produced.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"expected 2-D features, got shape {X.shape}")
    n, d = X.shape
    quantiles = np.linspace(0, 1, bins + 1)[1:-1]
    codes = np.empty((n, d), dtype=int)
    if quantiles.size == 0:
        codes[:] = 0
        return codes
    qs = np.quantile(X, quantiles, axis=0)  # (bins-1, d)
    # Quantiles are non-decreasing per column; masking duplicates to
    # +inf removes them from the <=-count below, matching np.unique.
    duplicate = np.zeros_like(qs, dtype=bool)
    duplicate[1:] = qs[1:] == qs[:-1]
    edges = np.where(duplicate, np.inf, qs).T  # (d, bins-1)
    # Block columns so the (n, block, bins-1) comparison tensor stays
    # inside the scratch budget.
    block = max(1, SU_SCRATCH_BYTES // max(n * quantiles.size, 1))
    for lo in range(0, d, block):
        hi = min(lo + block, d)
        codes[:, lo:hi] = (X[:, lo:hi, None] >= edges[None, lo:hi, :]).sum(axis=2)
    return codes


def _entropy(codes: np.ndarray) -> float:
    _, counts = np.unique(codes, return_counts=True)
    p = counts / codes.size
    return float(-np.sum(p * np.log2(p)))


def _joint_entropy(a: np.ndarray, b: np.ndarray) -> float:
    # Combine the two code columns into one joint code.
    joint = a.astype(np.int64) * (b.max() + 1) + b
    return _entropy(joint)


def symmetrical_uncertainty(a: np.ndarray, b: np.ndarray) -> float:
    """SU in [0, 1]; 0 for independence, 1 for perfect association.

    Inputs are integer code arrays (already discretized).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("inputs must be 1-D arrays of equal length")
    ha = _entropy(a)
    hb = _entropy(b)
    if ha + hb <= 0:
        return 0.0
    ig = ha + hb - _joint_entropy(a, b)
    return float(max(0.0, min(1.0, 2.0 * ig / (ha + hb))))


# -- blocked SU kernel ---------------------------------------------------------
#
# Contingency tables for whole blocks of pairs at once: each pair's two
# code columns are fused into one joint code (``a * stride + b``), every
# pair in the block is shifted into its own disjoint code range, and a
# single ``np.bincount`` over the raveled block yields all the tables.
# The global stride only widens each pair's code range relative to the
# per-pair ``b.max() + 1`` the scalar path uses — the nonzero cells stay
# in the same (a, b)-lexicographic order, so summing each row's nonzero
# cells reproduces the ``np.unique`` entropies bitwise.


def _entropies_from_counts(counts: np.ndarray, n_rows: int) -> np.ndarray:
    """Row-wise entropies of a ``(P, cap)`` contingency block.

    Each row's nonzero cells are compacted (row-major, so ascending
    joint code within the row) before the ``-Σ p·log2 p`` reduction —
    the same operand order as the scalar ``np.unique`` path, which is
    what keeps the results bitwise identical.
    """
    mask = counts > 0
    p = counts[mask] / n_rows
    terms = p * np.log2(p)
    bounds = np.concatenate(([0], np.cumsum(np.count_nonzero(mask, axis=1))))
    out = np.empty(counts.shape[0])
    for i in range(out.size):
        out[i] = -np.sum(terms[bounds[i] : bounds[i + 1]])
    return out


def _pair_blocks(n_pairs: int, bytes_per_pair: int):
    """Yield ``(lo, hi)`` chunks keeping scratch under the budget."""
    block = max(1, SU_SCRATCH_BYTES // max(bytes_per_pair, 1))
    for lo in range(0, n_pairs, block):
        yield lo, min(lo + block, n_pairs)


def column_entropies(codes: np.ndarray) -> np.ndarray:
    """Per-column entropy of an integer code matrix (blocked bincount)."""
    codes = np.asarray(codes)
    n, d = codes.shape
    cap = int(codes.max()) + 1 if codes.size else 1
    out = np.empty(d)
    for lo, hi in _pair_blocks(d, n * 8 + cap * 8):
        block = codes[:, lo:hi].astype(np.int64)
        block += np.arange(hi - lo, dtype=np.int64) * cap
        counts = np.bincount(block.ravel(), minlength=(hi - lo) * cap)
        out[lo:hi] = _entropies_from_counts(counts.reshape(hi - lo, cap), n)
    return out


def _su_from_entropies(ha, hb, hj) -> np.ndarray:
    """Vectorized ``SU = clamp(2·(H(a)+H(b)−H(a,b)) / (H(a)+H(b)))``."""
    hsum = np.asarray(ha + hb)
    ig = hsum - hj
    with np.errstate(divide="ignore", invalid="ignore"):
        raw = 2.0 * ig / hsum
    su = np.maximum(0.0, np.minimum(1.0, raw))
    return np.where(hsum > 0, su, 0.0)


def feature_class_su(
    codes: np.ndarray,
    y_codes: np.ndarray,
    *,
    entropies: np.ndarray | None = None,
    class_entropy: float | None = None,
) -> np.ndarray:
    """Feature-class SU for every column at once (blocked bincount).

    Bitwise-identical to ``[symmetrical_uncertainty(codes[:, j],
    y_codes) for j in range(d)]``. Precomputed per-column ``entropies``
    and the ``class_entropy`` can be passed to skip those stages (the
    :class:`~repro.runtime.selection_cache.SelectionCache` does).
    """
    codes = np.asarray(codes)
    y_codes = np.asarray(y_codes)
    n, d = codes.shape
    if y_codes.shape != (n,):
        raise ValueError("y_codes must be 1-D with one entry per row")
    h_cols = column_entropies(codes) if entropies is None else np.asarray(entropies)
    h_y = _entropy(y_codes) if class_entropy is None else class_entropy
    # The scalar path fuses with stride ``y_codes.max() + 1`` — the same
    # for every column, so the blocked fuse matches it exactly.
    y_stride = int(y_codes.max()) + 1 if y_codes.size else 1
    cap = (int(codes.max()) + 1 if codes.size else 1) * y_stride
    y64 = y_codes.astype(np.int64)[:, None]
    hj = np.empty(d)
    for lo, hi in _pair_blocks(d, n * 16 + cap * 8):
        block = codes[:, lo:hi].astype(np.int64) * y_stride + y64
        block += np.arange(hi - lo, dtype=np.int64) * cap
        counts = np.bincount(block.ravel(), minlength=(hi - lo) * cap)
        hj[lo:hi] = _entropies_from_counts(counts.reshape(hi - lo, cap), n)
    registry().inc("cfs.su_pairs", d)
    return _su_from_entropies(h_cols, h_y, hj)


def feature_feature_su_matrix(
    codes: np.ndarray,
    indices,
    *,
    entropies: np.ndarray | None = None,
) -> np.ndarray:
    """Symmetric feature-feature SU matrix over ``indices`` columns.

    ``out[p, q]`` is the SU between columns ``indices[p]`` and
    ``indices[q]`` (diagonal left at 0; the search never reads it).
    Every pair is fused in original-index order — ``(min(i, j),
    max(i, j))``, the scalar :class:`_MeritEvaluator` key convention —
    so each cell is bitwise what the per-pair path returns. ``entropies``
    optionally supplies precomputed per-*original-column* entropies for
    the ``indices`` columns (positionally aligned with ``indices``).
    """
    codes = np.asarray(codes)
    n = codes.shape[0]
    idx = np.asarray(list(indices), dtype=np.int64)
    k = idx.size
    out = np.zeros((k, k))
    if k < 2:
        return out
    h_idx = column_entropies(codes[:, idx]) if entropies is None else np.asarray(entropies)
    pa, pb = np.triu_indices(k, 1)
    ia, ib = idx[pa], idx[pb]
    swap = ia > ib
    a_cols = np.where(swap, ib, ia)
    b_cols = np.where(swap, ia, ib)
    stride = int(codes.max()) + 1 if codes.size else 1
    cap = stride * stride
    n_pairs = pa.size
    hj = np.empty(n_pairs)
    for lo, hi in _pair_blocks(n_pairs, n * 24 + cap * 8):
        fused = codes[:, a_cols[lo:hi]].astype(np.int64) * stride
        fused += codes[:, b_cols[lo:hi]]
        fused += np.arange(hi - lo, dtype=np.int64) * cap
        counts = np.bincount(fused.ravel(), minlength=(hi - lo) * cap)
        hj[lo:hi] = _entropies_from_counts(counts.reshape(hi - lo, cap), n)
    registry().inc("cfs.su_pairs", int(n_pairs))
    su = _su_from_entropies(h_idx[pa], h_idx[pb], hj)
    out[pa, pb] = su
    out[pb, pa] = su
    return out


# -- implementation switch -----------------------------------------------------

_IMPLEMENTATION = "blocked"


@contextmanager
def su_implementation(name: str):
    """Temporarily force the ``'blocked'`` or ``'scalar'`` SU path.

    The scalar path is the pre-vectorization reference (one
    ``np.unique`` pass per pair through :class:`_MeritEvaluator`). It
    exists for the parity suite and the old-vs-new benchmark; both
    paths produce bitwise-identical :func:`cfs_select` results.
    """
    global _IMPLEMENTATION
    if name not in ("blocked", "scalar"):
        raise ValueError(f"implementation must be 'blocked' or 'scalar', got {name!r}")
    previous = _IMPLEMENTATION
    _IMPLEMENTATION = name
    try:
        yield
    finally:
        _IMPLEMENTATION = previous


@dataclass
class CfsResult:
    """Outcome of :func:`cfs_select`."""

    selected: list[int]
    merit: float
    feature_class_su: np.ndarray

    def __len__(self) -> int:
        return len(self.selected)


class _MeritEvaluator:
    """Caches SU values and scores subsets by Hall's merit.

    Subsets are scored incrementally: a search node carries the running
    sums ``Σ su_fc`` and ``Σ su_ff`` of its subset, so extending a
    subset by one feature costs ``k`` cached SU lookups instead of
    re-evaluating all ``k²`` pairs.

    This is the scalar reference: :func:`cfs_select` only routes
    through it under ``su_implementation('scalar')``, and the test
    suite uses :meth:`merit` as the oracle for both paths.
    """

    def __init__(self, codes: np.ndarray, y_codes: np.ndarray) -> None:
        self.codes = codes
        self.d = codes.shape[1]
        self.su_fc = np.array(
            [symmetrical_uncertainty(codes[:, j], y_codes) for j in range(self.d)]
        )
        self._su_ff: dict[tuple[int, int], float] = {}

    def su_ff(self, i: int, j: int) -> float:
        """Cached feature-feature symmetrical uncertainty."""
        key = (i, j) if i < j else (j, i)
        value = self._su_ff.get(key)
        if value is None:
            value = symmetrical_uncertainty(self.codes[:, key[0]], self.codes[:, key[1]])
            self._su_ff[key] = value
        return value

    @staticmethod
    def merit_from_sums(k: int, sum_fc: float, sum_ff: float) -> float:
        """Hall merit from running correlation sums."""
        if k == 0:
            return 0.0
        rcf = sum_fc / k
        if k == 1:
            return rcf
        rff = sum_ff / (k * (k - 1) / 2.0)
        denom = np.sqrt(k + k * (k - 1) * rff)
        return float(rcf * k / denom)

    def extend_sums(
        self, subset: frozenset[int], sum_fc: float, sum_ff: float, j: int
    ) -> tuple[float, float]:
        """Running sums after adding feature *j* to *subset*."""
        new_fc = sum_fc + float(self.su_fc[j])
        new_ff = sum_ff + sum(self.su_ff(i, j) for i in subset)
        return new_fc, new_ff

    def merit(self, subset: frozenset[int]) -> float:
        """Direct (non-incremental) merit; used by tests as the oracle."""
        members = sorted(subset)
        sum_fc = float(np.sum(self.su_fc[members])) if members else 0.0
        sum_ff = 0.0
        for a_idx in range(len(members)):
            for b_idx in range(a_idx + 1, len(members)):
                sum_ff += self.su_ff(members[a_idx], members[b_idx])
        return self.merit_from_sums(len(members), sum_fc, sum_ff)


DEFAULT_MAX_FEATURES = 64


def _searchable_indices(su_fc: np.ndarray, max_features: int | None) -> list[int]:
    """The columns entering the best-first search (top-SU cap)."""
    d = su_fc.size
    if max_features is not None and d > max_features:
        return [int(j) for j in np.argsort(su_fc)[::-1][:max_features]]
    return list(range(d))


def _best_first_search(
    su_fc: np.ndarray,
    su_ff: Callable[[int, int], float],
    searchable: list[int],
    max_stale: int,
) -> tuple[frozenset[int], float]:
    """Best-first subset search over precomputed/lazy SU oracles.

    Shared by both implementations: only the ``su_ff`` oracle differs
    (matrix lookup vs lazy scalar), so the traversal — heap order,
    visited set, tie-breaks — is identical and the selected subset
    depends only on the SU values.
    """
    start: frozenset[int] = frozenset()
    best_subset = start
    best_merit = 0.0
    # Max-heap of (-merit, order, subset, sum_fc, sum_ff).
    counter = 0
    open_heap: list[tuple[float, int, frozenset[int], float, float]] = [
        (-0.0, counter, start, 0.0, 0.0)
    ]
    visited: set[frozenset[int]] = {start}
    stale = 0

    while open_heap and stale < max_stale:
        _, _, subset, sum_fc, sum_ff = heapq.heappop(open_heap)
        improved = False
        for j in searchable:
            if j in subset:
                continue
            child = subset | {j}
            if child in visited:
                continue
            visited.add(child)
            child_fc = sum_fc + float(su_fc[j])
            child_ff = sum_ff + sum(su_ff(i, j) for i in subset)
            merit = _MeritEvaluator.merit_from_sums(len(child), child_fc, child_ff)
            counter += 1
            heapq.heappush(open_heap, (-merit, counter, child, child_fc, child_ff))
            if merit > best_merit + 1e-12:
                best_merit = merit
                best_subset = child
                improved = True
        stale = 0 if improved else stale + 1
    return best_subset, best_merit


def cfs_select(
    X: np.ndarray,
    y: np.ndarray,
    *,
    bins: int = DEFAULT_BINS,
    max_stale: int = DEFAULT_MAX_STALE,
    max_features: int = DEFAULT_MAX_FEATURES,
    cache: "SelectionCache | None" = None,
) -> CfsResult:
    """Select a feature subset maximizing Hall's CFS merit.

    Parameters
    ----------
    X:
        (n, d) numeric feature matrix.
    y:
        (n,) class labels (any hashable dtype).
    bins:
        Equal-frequency bins used to discretize numeric features.
    max_stale:
        Best-first search stops after this many consecutive expansions
        that fail to improve the best merit.
    max_features:
        Only the ``max_features`` columns with the highest feature-class
        SU enter the search (an engineering cap for very wide candidate
        pools; CFS would never pick a feature uncorrelated with the
        class anyway). Pass ``None`` to disable.
    cache:
        Optional :class:`~repro.runtime.selection_cache.SelectionCache`
        memoizing per-column codes and SU blocks across calls with
        overlapping feature columns (the DIRECT parameter search).
        Ignored by the scalar reference implementation; never changes
        results.

    Returns
    -------
    CfsResult
        The selected feature indices (sorted; never empty — falls back
        to the single best feature when the search degenerates), the
        merit of that subset, and the per-feature SU with the class.
    """
    X = np.asarray(X, dtype=float)
    labels = np.asarray(y)
    if X.shape[0] != labels.shape[0]:
        raise ValueError("X and y disagree on the number of instances")
    if X.shape[1] == 0:
        raise ValueError("no features to select from")
    _, y_codes = np.unique(labels, return_inverse=True)

    if _IMPLEMENTATION == "scalar":
        codes = discretize_features(X, bins=bins)
        evaluator = _MeritEvaluator(codes, y_codes)
        su_fc = evaluator.su_fc
        searchable = _searchable_indices(su_fc, max_features)
        su_ff: Callable[[int, int], float] = evaluator.su_ff
    elif cache is not None:
        su_fc, searchable, ff_matrix = cache.prepare(
            X, y_codes, bins=bins, max_features=max_features
        )
        su_ff = _matrix_oracle(ff_matrix, searchable)
    else:
        codes = discretize_features(X, bins=bins)
        h_cols = column_entropies(codes)
        su_fc = feature_class_su(codes, y_codes, entropies=h_cols)
        searchable = _searchable_indices(su_fc, max_features)
        ff_matrix = feature_feature_su_matrix(
            codes, searchable, entropies=h_cols[searchable]
        )
        su_ff = _matrix_oracle(ff_matrix, searchable)

    best_subset, best_merit = _best_first_search(su_fc, su_ff, searchable, max_stale)

    if not best_subset:
        best_subset = frozenset({int(np.argmax(su_fc))})
        members = sorted(best_subset)
        best_merit = _MeritEvaluator.merit_from_sums(
            len(members), float(np.sum(su_fc[members])), 0.0
        )
    return CfsResult(
        selected=sorted(best_subset),
        merit=float(best_merit),
        feature_class_su=su_fc,
    )


def _matrix_oracle(
    matrix: np.ndarray, searchable: list[int]
) -> Callable[[int, int], float]:
    """``su_ff(i, j)`` over a precomputed searchable-positional matrix."""
    position = {j: p for p, j in enumerate(searchable)}

    def su_ff(i: int, j: int) -> float:
        return float(matrix[position[i], position[j]])

    return su_ff
