"""Correlation-based Feature Selection (CFS, Hall 1999).

Algorithm 2 selects the representative patterns by running "the
correlation-based feature selection from [8]" on the pattern-distance
feature space. This module reproduces Weka's ``CfsSubsetEval`` +
best-first search:

* numeric features are discretized (equal-frequency binning) and
  feature-class / feature-feature association is measured by
  **symmetrical uncertainty** ``SU(a, b) = 2·IG(a; b) / (H(a) + H(b))``;
* a subset ``S`` of ``k`` features is scored by Hall's merit

      merit(S) = k·r̄_cf / sqrt(k + k·(k−1)·r̄_ff)

  (high average feature-class correlation, low average redundancy);
* subsets are explored with best-first search and a stale-expansion
  stop (Weka's default of 5).

The number of selected features is *dynamic* — whatever subset
maximizes the merit — which is exactly how RPM ends up with a different
number of representative patterns per dataset.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = ["symmetrical_uncertainty", "discretize_features", "CfsResult", "cfs_select"]

DEFAULT_BINS = 10
DEFAULT_MAX_STALE = 5


def discretize_features(X: np.ndarray, bins: int = DEFAULT_BINS) -> np.ndarray:
    """Equal-frequency binning of every column into integer codes."""
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"expected 2-D features, got shape {X.shape}")
    n, d = X.shape
    codes = np.empty((n, d), dtype=int)
    for j in range(d):
        col = X[:, j]
        # Quantile edges; duplicates collapse for near-constant columns.
        qs = np.quantile(col, np.linspace(0, 1, bins + 1)[1:-1])
        edges = np.unique(qs)
        codes[:, j] = np.searchsorted(edges, col, side="right")
    return codes


def _entropy(codes: np.ndarray) -> float:
    _, counts = np.unique(codes, return_counts=True)
    p = counts / codes.size
    return float(-np.sum(p * np.log2(p)))


def _joint_entropy(a: np.ndarray, b: np.ndarray) -> float:
    # Combine the two code columns into one joint code.
    joint = a.astype(np.int64) * (b.max() + 1) + b
    return _entropy(joint)


def symmetrical_uncertainty(a: np.ndarray, b: np.ndarray) -> float:
    """SU in [0, 1]; 0 for independence, 1 for perfect association.

    Inputs are integer code arrays (already discretized).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("inputs must be 1-D arrays of equal length")
    ha = _entropy(a)
    hb = _entropy(b)
    if ha + hb <= 0:
        return 0.0
    ig = ha + hb - _joint_entropy(a, b)
    return float(max(0.0, min(1.0, 2.0 * ig / (ha + hb))))


@dataclass
class CfsResult:
    """Outcome of :func:`cfs_select`."""

    selected: list[int]
    merit: float
    feature_class_su: np.ndarray

    def __len__(self) -> int:
        return len(self.selected)


class _MeritEvaluator:
    """Caches SU values and scores subsets by Hall's merit.

    Subsets are scored incrementally: a search node carries the running
    sums ``Σ su_fc`` and ``Σ su_ff`` of its subset, so extending a
    subset by one feature costs ``k`` cached SU lookups instead of
    re-evaluating all ``k²`` pairs.
    """

    def __init__(self, codes: np.ndarray, y_codes: np.ndarray) -> None:
        self.codes = codes
        self.d = codes.shape[1]
        self.su_fc = np.array(
            [symmetrical_uncertainty(codes[:, j], y_codes) for j in range(self.d)]
        )
        self._su_ff: dict[tuple[int, int], float] = {}

    def su_ff(self, i: int, j: int) -> float:
        """Cached feature-feature symmetrical uncertainty."""
        key = (i, j) if i < j else (j, i)
        value = self._su_ff.get(key)
        if value is None:
            value = symmetrical_uncertainty(self.codes[:, key[0]], self.codes[:, key[1]])
            self._su_ff[key] = value
        return value

    @staticmethod
    def merit_from_sums(k: int, sum_fc: float, sum_ff: float) -> float:
        """Hall merit from running correlation sums."""
        if k == 0:
            return 0.0
        rcf = sum_fc / k
        if k == 1:
            return rcf
        rff = sum_ff / (k * (k - 1) / 2.0)
        denom = np.sqrt(k + k * (k - 1) * rff)
        return float(rcf * k / denom)

    def extend_sums(
        self, subset: frozenset[int], sum_fc: float, sum_ff: float, j: int
    ) -> tuple[float, float]:
        """Running sums after adding feature *j* to *subset*."""
        new_fc = sum_fc + float(self.su_fc[j])
        new_ff = sum_ff + sum(self.su_ff(i, j) for i in subset)
        return new_fc, new_ff

    def merit(self, subset: frozenset[int]) -> float:
        """Direct (non-incremental) merit; used by tests as the oracle."""
        members = sorted(subset)
        sum_fc = float(np.sum(self.su_fc[members])) if members else 0.0
        sum_ff = 0.0
        for a_idx in range(len(members)):
            for b_idx in range(a_idx + 1, len(members)):
                sum_ff += self.su_ff(members[a_idx], members[b_idx])
        return self.merit_from_sums(len(members), sum_fc, sum_ff)


DEFAULT_MAX_FEATURES = 64


def cfs_select(
    X: np.ndarray,
    y: np.ndarray,
    *,
    bins: int = DEFAULT_BINS,
    max_stale: int = DEFAULT_MAX_STALE,
    max_features: int = DEFAULT_MAX_FEATURES,
) -> CfsResult:
    """Select a feature subset maximizing Hall's CFS merit.

    Parameters
    ----------
    X:
        (n, d) numeric feature matrix.
    y:
        (n,) class labels (any hashable dtype).
    bins:
        Equal-frequency bins used to discretize numeric features.
    max_stale:
        Best-first search stops after this many consecutive expansions
        that fail to improve the best merit.
    max_features:
        Only the ``max_features`` columns with the highest feature-class
        SU enter the search (an engineering cap for very wide candidate
        pools; CFS would never pick a feature uncorrelated with the
        class anyway). Pass ``None`` to disable.

    Returns
    -------
    CfsResult
        The selected feature indices (sorted; never empty — falls back
        to the single best feature when the search degenerates), the
        merit of that subset, and the per-feature SU with the class.
    """
    X = np.asarray(X, dtype=float)
    labels = np.asarray(y)
    if X.shape[0] != labels.shape[0]:
        raise ValueError("X and y disagree on the number of instances")
    if X.shape[1] == 0:
        raise ValueError("no features to select from")
    codes = discretize_features(X, bins=bins)
    _, y_codes = np.unique(labels, return_inverse=True)
    evaluator = _MeritEvaluator(codes, y_codes)
    d = X.shape[1]

    if max_features is not None and d > max_features:
        searchable = np.argsort(evaluator.su_fc)[::-1][:max_features]
        searchable = [int(j) for j in searchable]
    else:
        searchable = list(range(d))

    start: frozenset[int] = frozenset()
    best_subset = start
    best_merit = 0.0
    # Max-heap of (-merit, order, subset, sum_fc, sum_ff).
    counter = 0
    open_heap: list[tuple[float, int, frozenset[int], float, float]] = [
        (-0.0, counter, start, 0.0, 0.0)
    ]
    visited: set[frozenset[int]] = {start}
    stale = 0

    while open_heap and stale < max_stale:
        _, _, subset, sum_fc, sum_ff = heapq.heappop(open_heap)
        improved = False
        for j in searchable:
            if j in subset:
                continue
            child = subset | {j}
            if child in visited:
                continue
            visited.add(child)
            child_fc, child_ff = evaluator.extend_sums(subset, sum_fc, sum_ff, j)
            merit = evaluator.merit_from_sums(len(child), child_fc, child_ff)
            counter += 1
            heapq.heappush(open_heap, (-merit, counter, child, child_fc, child_ff))
            if merit > best_merit + 1e-12:
                best_merit = merit
                best_subset = child
                improved = True
        stale = 0 if improved else stale + 1

    if not best_subset:
        best_subset = frozenset({int(np.argmax(evaluator.su_fc))})
        best_merit = evaluator.merit(best_subset)
    return CfsResult(
        selected=sorted(best_subset),
        merit=float(best_merit),
        feature_class_su=evaluator.su_fc,
    )
