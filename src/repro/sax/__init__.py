"""Symbolic Aggregate approXimation (SAX) substrate.

Implements the discretization pipeline RPM builds on: z-normalization,
Piecewise Aggregate Approximation, equiprobable Gaussian breakpoints,
word conversion, the MINDIST lower bound, and sliding-window
discretization with numerosity reduction.
"""

from .alphabet import (
    MAX_ALPHABET,
    MIN_ALPHABET,
    breakpoints,
    indices_to_letters,
    letters_to_indices,
    symbol_distance_table,
    symbols_for,
)
from .discretize import (
    REDUCTIONS,
    SaxParams,
    SaxRecord,
    discretize,
    discretize_implementation,
    sliding_windows,
)
from .paa import paa, paa_rows
from .sax import mindist, sax_word, sax_words_for_rows
from .znorm import NORM_THRESHOLD, znorm, znorm_rows

__all__ = [
    "MAX_ALPHABET",
    "MIN_ALPHABET",
    "NORM_THRESHOLD",
    "REDUCTIONS",
    "SaxParams",
    "SaxRecord",
    "breakpoints",
    "discretize",
    "discretize_implementation",
    "indices_to_letters",
    "letters_to_indices",
    "mindist",
    "paa",
    "paa_rows",
    "sax_word",
    "sax_words_for_rows",
    "sliding_windows",
    "symbol_distance_table",
    "symbols_for",
    "znorm",
    "znorm_rows",
]
