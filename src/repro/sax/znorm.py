"""Z-normalization of time series and subsequences.

SAX (and virtually every subsequence-distance computation in this
library) operates on z-normalized data: each window is rescaled to zero
mean and unit standard deviation before discretization or comparison.
Following the SAX literature (Lin et al. 2007), windows whose standard
deviation falls below a small threshold are treated as flat and mapped
to an all-zero vector instead of being blown up by a near-zero divisor.
"""

from __future__ import annotations

import numpy as np

__all__ = ["znorm", "znorm_rows", "NORM_THRESHOLD"]

#: Standard deviation below which a sequence is considered constant.
#: The value matches the default used by GrammarViz / SAX-VSM (0.01).
NORM_THRESHOLD = 1e-2


def znorm(series: np.ndarray, threshold: float = NORM_THRESHOLD) -> np.ndarray:
    """Z-normalize a 1-D series.

    Parameters
    ----------
    series:
        One-dimensional array of observations.
    threshold:
        If the standard deviation of *series* is below this value the
        series is considered flat and a zero vector of the same length
        is returned (mean is still subtracted, which yields zeros up to
        numerical noise that we clamp explicitly).

    Returns
    -------
    numpy.ndarray
        A new float array with mean 0 and standard deviation 1 (or all
        zeros for flat input).
    """
    values = np.asarray(series, dtype=float)
    if values.ndim != 1:
        raise ValueError(f"znorm expects a 1-D array, got shape {values.shape}")
    if values.size == 0:
        return values.copy()
    sd = values.std()
    if sd < threshold:
        return np.zeros_like(values)
    return (values - values.mean()) / sd


def znorm_rows(matrix: np.ndarray, threshold: float = NORM_THRESHOLD) -> np.ndarray:
    """Z-normalize every row of a 2-D array independently.

    Vectorized companion of :func:`znorm` used on batches of sliding
    windows. Rows with standard deviation below *threshold* become zero
    rows.
    """
    values = np.asarray(matrix, dtype=float)
    if values.ndim != 2:
        raise ValueError(f"znorm_rows expects a 2-D array, got shape {values.shape}")
    if values.size == 0:
        return values.copy()
    means = values.mean(axis=1, keepdims=True)
    sds = values.std(axis=1, keepdims=True)
    flat = (sds < threshold).ravel()
    # Avoid division warnings for flat rows; they are overwritten below.
    sds[flat] = 1.0
    out = (values - means) / sds
    out[flat] = 0.0
    return out
