"""Z-normalization of time series and subsequences.

SAX (and virtually every subsequence-distance computation in this
library) operates on z-normalized data: each window is rescaled to zero
mean and unit standard deviation before discretization or comparison.
Following the SAX literature (Lin et al. 2007), windows whose standard
deviation falls below a small threshold are treated as flat and mapped
to an all-zero vector instead of being blown up by a near-zero divisor.
"""

from __future__ import annotations

import numpy as np

__all__ = ["is_flat", "znorm", "znorm_rows", "NORM_THRESHOLD"]

#: Standard deviation below which a sequence is considered constant.
#: The value matches the default used by GrammarViz / SAX-VSM (0.01).
NORM_THRESHOLD = 1e-2


def is_flat(sd, threshold: float = NORM_THRESHOLD):
    """The flatness predicate: strict ``sd < threshold``.

    One definition shared by :func:`znorm`, :func:`znorm_rows` and the
    sliding-window kernel so the scalar and vectorized paths can never
    disagree on whether a borderline window is flat. A standard
    deviation exactly equal to the threshold is *not* flat. Works
    element-wise on arrays.
    """
    return sd < threshold


def znorm(series: np.ndarray, threshold: float = NORM_THRESHOLD) -> np.ndarray:
    """Z-normalize a 1-D series.

    Parameters
    ----------
    series:
        One-dimensional array of observations.
    threshold:
        If the standard deviation of *series* is strictly below this
        value (see :func:`is_flat`) the series is considered flat and
        an exact zero vector of the same length is returned — the mean
        is *not* subtracted first; the output is ``np.zeros_like``, by
        construction free of numerical noise.

    Returns
    -------
    numpy.ndarray
        A new float array with mean 0 and standard deviation 1 (or
        exact zeros for flat input).
    """
    values = np.asarray(series, dtype=float)
    if values.ndim != 1:
        raise ValueError(f"znorm expects a 1-D array, got shape {values.shape}")
    if values.size == 0:
        return values.copy()
    sd = values.std()
    if is_flat(sd, threshold):
        return np.zeros_like(values)
    return (values - values.mean()) / sd


def znorm_rows(matrix: np.ndarray, threshold: float = NORM_THRESHOLD) -> np.ndarray:
    """Z-normalize every row of a 2-D array independently.

    Vectorized companion of :func:`znorm` used on batches of sliding
    windows. Rows flagged by :func:`is_flat` (the same strict-``<``
    predicate :func:`znorm` uses) become exact zero rows.
    """
    values = np.asarray(matrix, dtype=float)
    if values.ndim != 2:
        raise ValueError(f"znorm_rows expects a 2-D array, got shape {values.shape}")
    if values.size == 0:
        return values.copy()
    means = values.mean(axis=1, keepdims=True)
    sds = values.std(axis=1, keepdims=True)
    flat = is_flat(sds, threshold).ravel()
    # Avoid division warnings for flat rows; they are overwritten below.
    sds[flat] = 1.0
    out = (values - means) / sds
    out[flat] = 0.0
    return out
