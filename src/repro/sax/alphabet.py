"""SAX alphabet: equiprobable breakpoints over the standard normal.

SAX maps each PAA segment mean to a letter by cutting N(0, 1) into
``alphabet_size`` equiprobable regions. Breakpoints are the standard
normal quantiles at ``i / alphabet_size`` for ``i = 1 .. alphabet_size-1``
(Lin et al. 2003). Letters are lowercase ASCII: ``a`` for the lowest
region, ``b`` for the next, and so on; alphabet sizes from 2 to 26 are
supported (the paper uses up to ~12).
"""

from __future__ import annotations

import string

import numpy as np
from scipy.stats import norm

__all__ = [
    "MIN_ALPHABET",
    "MAX_ALPHABET",
    "breakpoints",
    "symbols_for",
    "indices_to_letters",
    "letters_to_indices",
    "symbol_distance_table",
]

MIN_ALPHABET = 2
MAX_ALPHABET = 26

_BREAKPOINT_CACHE: dict[int, np.ndarray] = {}
_DIST_TABLE_CACHE: dict[int, np.ndarray] = {}


def _check_alphabet(alphabet_size: int) -> None:
    if not MIN_ALPHABET <= alphabet_size <= MAX_ALPHABET:
        raise ValueError(
            f"alphabet_size must be in [{MIN_ALPHABET}, {MAX_ALPHABET}], got {alphabet_size}"
        )


def breakpoints(alphabet_size: int) -> np.ndarray:
    """Return the ``alphabet_size - 1`` standard-normal breakpoints.

    The returned array is sorted ascending; region ``i`` is the interval
    ``(breakpoints[i-1], breakpoints[i]]`` with the open ends at ±inf.
    """
    _check_alphabet(alphabet_size)
    cached = _BREAKPOINT_CACHE.get(alphabet_size)
    if cached is None:
        qs = np.arange(1, alphabet_size) / alphabet_size
        cached = norm.ppf(qs)
        _BREAKPOINT_CACHE[alphabet_size] = cached
    return cached


def symbols_for(alphabet_size: int) -> str:
    """The letters of the alphabet, lowest region first (``'abc...'``)."""
    _check_alphabet(alphabet_size)
    return string.ascii_lowercase[:alphabet_size]


def indices_to_letters(indices: np.ndarray) -> str:
    """Convert an array of region indices (0-based) to a SAX word."""
    return "".join(string.ascii_lowercase[i] for i in np.asarray(indices, dtype=int))


def letters_to_indices(word: str) -> np.ndarray:
    """Convert a SAX word back to 0-based region indices."""
    return np.fromiter((ord(ch) - ord("a") for ch in word), dtype=int, count=len(word))


def symbol_distance_table(alphabet_size: int) -> np.ndarray:
    """MINDIST lookup table between letters (Lin et al. 2003).

    ``table[i, j]`` is 0 when ``|i - j| <= 1`` and otherwise the gap
    between the breakpoints bounding the two regions. Used by the
    MINDIST lower bound and by baseline methods (Fast Shapelets' SAX
    collision scoring).
    """
    _check_alphabet(alphabet_size)
    cached = _DIST_TABLE_CACHE.get(alphabet_size)
    if cached is not None:
        return cached
    cuts = breakpoints(alphabet_size)
    table = np.zeros((alphabet_size, alphabet_size))
    for i in range(alphabet_size):
        for j in range(alphabet_size):
            if abs(i - j) > 1:
                table[i, j] = cuts[max(i, j) - 1] - cuts[min(i, j)]
    _DIST_TABLE_CACHE[alphabet_size] = table
    return table
