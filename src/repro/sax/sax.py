"""Core SAX conversion: series -> word, plus the MINDIST lower bound."""

from __future__ import annotations

import numpy as np

from .alphabet import breakpoints, indices_to_letters, letters_to_indices, symbol_distance_table
from .paa import paa, paa_rows
from .znorm import znorm

__all__ = ["sax_word", "sax_words_for_rows", "mindist"]


def sax_word(
    series: np.ndarray,
    paa_size: int,
    alphabet_size: int,
    *,
    normalize: bool = True,
) -> str:
    """Discretize a 1-D series into a SAX word.

    The series is z-normalized (unless ``normalize=False`` — useful when
    the caller already normalized), reduced to ``paa_size`` segment
    means, and each mean is mapped to a letter via the equiprobable
    N(0,1) breakpoints.
    """
    values = np.asarray(series, dtype=float)
    if normalize:
        values = znorm(values)
    segments = paa(values, paa_size)
    cuts = breakpoints(alphabet_size)
    indices = np.searchsorted(cuts, segments, side="left")
    return indices_to_letters(indices)


def sax_words_for_rows(
    windows: np.ndarray,
    paa_size: int,
    alphabet_size: int,
) -> list[str]:
    """Vectorized SAX for a 2-D batch of already z-normalized windows."""
    segments = paa_rows(windows, paa_size)
    cuts = breakpoints(alphabet_size)
    indices = np.searchsorted(cuts, segments, side="left")
    letters = np.array(list("abcdefghijklmnopqrstuvwxyz"[:alphabet_size]))
    return ["".join(row) for row in letters[indices]]


def mindist(word_a: str, word_b: str, original_length: int, alphabet_size: int) -> float:
    """The SAX MINDIST lower bound between two words of equal length.

    ``MINDIST(â, b̂) = sqrt(n / w) * sqrt(sum dist(a_i, b_i)^2)`` where
    ``dist`` is the breakpoint-gap table. It lower-bounds the Euclidean
    distance between the z-normalized originals (Lin et al. 2003).
    """
    if len(word_a) != len(word_b):
        raise ValueError(
            f"mindist requires equal-length words, got {len(word_a)} and {len(word_b)}"
        )
    table = symbol_distance_table(alphabet_size)
    ia = letters_to_indices(word_a)
    ib = letters_to_indices(word_b)
    if ia.size and (ia.max() >= alphabet_size or ib.max() >= alphabet_size):
        raise ValueError("word contains letters outside the alphabet")
    gaps = table[ia, ib]
    w = len(word_a)
    return float(np.sqrt(original_length / w) * np.sqrt(np.sum(gaps * gaps)))
