"""Sliding-window SAX discretization with numerosity reduction.

This is the pre-processing step of RPM (paper §3.2.1): a window of
length ``window_size`` slides over the (possibly concatenated) training
series; each window is z-normalized and converted into a SAX word. The
output keeps, for every word, the offset of the window's leftmost point
so that grammar rules can later be mapped back onto raw subsequences.

Numerosity reduction: consecutive identical words are collapsed into
the first occurrence, which (a) shrinks the grammar-induction input and
(b) is what lets Sequitur rules expand to *variable-length* raw
subsequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .sax import sax_words_for_rows
from .znorm import znorm_rows

__all__ = ["SaxParams", "SaxRecord", "sliding_windows", "discretize"]


@dataclass(frozen=True)
class SaxParams:
    """The three SAX discretization parameters optimized by Algorithm 3."""

    window_size: int
    paa_size: int
    alphabet_size: int

    def __post_init__(self) -> None:
        if self.window_size < 2:
            raise ValueError(f"window_size must be >= 2, got {self.window_size}")
        if not 1 <= self.paa_size <= self.window_size:
            raise ValueError(
                f"paa_size must be in [1, window_size={self.window_size}], got {self.paa_size}"
            )
        if not 2 <= self.alphabet_size <= 26:
            raise ValueError(f"alphabet_size must be in [2, 26], got {self.alphabet_size}")

    def as_tuple(self) -> tuple[int, int, int]:
        """(window, paa, alphabet) as a plain tuple."""
        return (self.window_size, self.paa_size, self.alphabet_size)


@dataclass
class SaxRecord:
    """The discretization result fed into grammar induction.

    Attributes
    ----------
    words:
        SAX words surviving numerosity reduction, in series order.
    offsets:
        ``offsets[i]`` is the starting index in the source series of the
        window that produced ``words[i]``.
    params:
        The :class:`SaxParams` used.
    series_length:
        Length of the source series (needed to convert a word index
        range back to a raw index range).
    """

    words: list[str]
    offsets: np.ndarray
    params: SaxParams
    series_length: int
    dropped: int = field(default=0)

    def __len__(self) -> int:
        return len(self.words)

    def as_string(self) -> str:
        """The token string fed to the grammar inducer."""
        return " ".join(self.words)


def sliding_windows(series: np.ndarray, window_size: int) -> np.ndarray:
    """All contiguous windows of *series* as a (m - n + 1, n) view-copy."""
    values = np.asarray(series, dtype=float)
    if values.ndim != 1:
        raise ValueError(f"sliding_windows expects a 1-D array, got shape {values.shape}")
    if window_size > values.size:
        raise ValueError(
            f"window_size ({window_size}) exceeds series length ({values.size})"
        )
    return np.lib.stride_tricks.sliding_window_view(values, window_size).copy()


#: Numerosity-reduction strategies (GrammarViz's vocabulary): ``exact``
#: collapses runs of identical words, ``mindist`` also collapses a word
#: whose MINDIST to its predecessor is zero (every letter within one
#: breakpoint step), ``none`` keeps every window.
REDUCTIONS = ("exact", "mindist", "none")


def _mindist_zero(word_a: str, word_b: str) -> bool:
    """True when MINDIST(word_a, word_b) == 0 (all letters adjacent)."""
    return len(word_a) == len(word_b) and all(
        abs(ord(a) - ord(b)) <= 1 for a, b in zip(word_a, word_b)
    )


def discretize(
    series: np.ndarray,
    params: SaxParams,
    *,
    numerosity_reduction: bool | str = True,
    valid_start: np.ndarray | None = None,
) -> SaxRecord:
    """Discretize *series* into a numerosity-reduced SAX word sequence.

    Parameters
    ----------
    series:
        The raw (concatenated) series.
    params:
        SAX parameters (window, PAA, alphabet sizes).
    numerosity_reduction:
        Strategy for collapsing consecutive near-duplicate words
        (paper §3.2.1). ``True`` / ``'exact'`` keeps the first of each
        run of identical words; ``'mindist'`` additionally collapses
        words at MINDIST zero from their predecessor (GrammarViz's
        alternative strategy, coarser); ``False`` / ``'none'`` keeps
        every window (ablation).
    valid_start:
        Optional boolean mask of length ``len(series) - window + 1``;
        positions marked ``False`` are skipped entirely. RPM uses this
        to drop windows that span junctions of concatenated training
        instances (paper §3.2.2 / Figure 4). A skipped position also
        breaks a numerosity-reduction run, so patterns cannot silently
        bridge two different training instances.

    Returns
    -------
    SaxRecord
    """
    if isinstance(numerosity_reduction, bool):
        reduction = "exact" if numerosity_reduction else "none"
    else:
        reduction = numerosity_reduction
    if reduction not in REDUCTIONS:
        raise ValueError(
            f"numerosity_reduction must be bool or one of {REDUCTIONS}, "
            f"got {numerosity_reduction!r}"
        )

    values = np.asarray(series, dtype=float)
    windows = sliding_windows(values, params.window_size)
    n_positions = windows.shape[0]
    if valid_start is not None:
        valid_start = np.asarray(valid_start, dtype=bool)
        if valid_start.shape != (n_positions,):
            raise ValueError(
                f"valid_start must have shape ({n_positions},), got {valid_start.shape}"
            )

    normalized = znorm_rows(windows)
    all_words = sax_words_for_rows(normalized, params.paa_size, params.alphabet_size)

    words: list[str] = []
    offsets: list[int] = []
    dropped = 0
    previous: str | None = None
    for position, word in enumerate(all_words):
        if valid_start is not None and not valid_start[position]:
            # A junction breaks the run: the next valid word is always kept.
            previous = None
            dropped += 1
            continue
        if previous is not None:
            if reduction == "exact" and word == previous:
                continue
            if reduction == "mindist" and _mindist_zero(word, previous):
                continue
        words.append(word)
        offsets.append(position)
        previous = word

    return SaxRecord(
        words=words,
        offsets=np.asarray(offsets, dtype=int),
        params=params,
        series_length=values.size,
        dropped=dropped,
    )
