"""Sliding-window SAX discretization with numerosity reduction.

This is the pre-processing step of RPM (paper §3.2.1): a window of
length ``window_size`` slides over the (possibly concatenated) training
series; each window is z-normalized and converted into a SAX word. The
output keeps, for every word, the offset of the window's leftmost point
so that grammar rules can later be mapped back onto raw subsequences.

Numerosity reduction: consecutive identical words are collapsed into
the first occurrence, which (a) shrinks the grammar-induction input and
(b) is what lets Sequitur rules expand to *variable-length* raw
subsequences.

Representation: the hot path never materializes Python strings. Each
window becomes one row of a ``(n_windows, paa_size)`` ``uint8`` *code
matrix* (breakpoint-region indices), numerosity reduction runs as array
operations over that matrix, and the surviving rows travel inside the
:class:`SaxRecord`. Grammar induction consumes compact integer token
ids (:attr:`SaxRecord.token_ids`); the familiar letter strings are
rendered lazily — once per *distinct* word — only when something
actually asks for :attr:`SaxRecord.words`.

The pre-vectorization implementation (one Python string per window, a
Python-loop reduction) is kept as the reference oracle: wrap a call in
:func:`discretize_implementation` ``('legacy')`` to run it. The parity
suite (``tests/test_discretize_parity.py``) pins the two paths
bitwise-identical; ``benchmarks/bench_discretize.py`` measures the gap.
"""

from __future__ import annotations

import string
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from .alphabet import breakpoints
from .paa import paa_rows
from .sax import sax_words_for_rows
from .znorm import znorm_rows

__all__ = [
    "SaxParams",
    "SaxRecord",
    "sliding_windows",
    "discretize",
    "discretize_implementation",
    "REDUCTIONS",
]


@dataclass(frozen=True)
class SaxParams:
    """The three SAX discretization parameters optimized by Algorithm 3."""

    window_size: int
    paa_size: int
    alphabet_size: int

    def __post_init__(self) -> None:
        if self.window_size < 2:
            raise ValueError(f"window_size must be >= 2, got {self.window_size}")
        if not 1 <= self.paa_size <= self.window_size:
            raise ValueError(
                f"paa_size must be in [1, window_size={self.window_size}], got {self.paa_size}"
            )
        if not 2 <= self.alphabet_size <= 26:
            raise ValueError(f"alphabet_size must be in [2, 26], got {self.alphabet_size}")

    def as_tuple(self) -> tuple[int, int, int]:
        """(window, paa, alphabet) as a plain tuple."""
        return (self.window_size, self.paa_size, self.alphabet_size)


class SaxRecord:
    """The discretization result fed into grammar induction.

    Attributes
    ----------
    offsets:
        ``offsets[i]`` is the starting index in the source series of the
        window that produced word ``i``.
    params:
        The :class:`SaxParams` used.
    series_length:
        Length of the source series (needed to convert a word index
        range back to a raw index range).
    dropped:
        Number of window positions excluded by the ``valid_start`` mask.
    codes:
        ``(len(self), paa_size)`` ``uint8`` matrix of breakpoint-region
        indices for the surviving windows, or ``None`` for records built
        directly from strings (the legacy path).

    Derived views — all computed lazily and cached:

    ``words``
        The SAX words as letter strings, in series order (rendered once
        per *distinct* code row, not per window).
    ``token_ids``
        One small non-negative ``int64`` per surviving window; two
        positions share an id iff they share a word. This is what the
        grammar inducer consumes — hashing ints beats hashing strings.
    ``vocabulary``
        Tuple mapping a token id back to its letter string.
    """

    __slots__ = (
        "offsets",
        "params",
        "series_length",
        "dropped",
        "codes",
        "_words",
        "_token_ids",
        "_vocabulary",
    )

    def __init__(
        self,
        words: list[str] | None = None,
        offsets: np.ndarray | None = None,
        params: SaxParams | None = None,
        series_length: int = 0,
        dropped: int = 0,
        *,
        codes: np.ndarray | None = None,
    ) -> None:
        if words is None and codes is None:
            raise ValueError("SaxRecord needs either words or a code matrix")
        self._words = list(words) if words is not None else None
        self.codes = codes
        self.offsets = np.asarray(offsets if offsets is not None else [], dtype=int)
        self.params = params
        self.series_length = int(series_length)
        self.dropped = int(dropped)
        self._token_ids: np.ndarray | None = None
        self._vocabulary: tuple[str, ...] | None = None

    def __len__(self) -> int:
        return int(self.offsets.size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SaxRecord({len(self)} words, params={self.params}, "
            f"series_length={self.series_length}, dropped={self.dropped})"
        )

    # -- lazy token views -----------------------------------------------------

    def _build_tokens(self) -> None:
        if self._token_ids is not None:
            return
        if self.codes is not None and self._words is None:
            if self.codes.shape[0] == 0:
                self._vocabulary = ()
                self._token_ids = np.empty(0, dtype=np.int64)
                return
            uniq, inverse = np.unique(self.codes, axis=0, return_inverse=True)
            letters = np.array(list(string.ascii_lowercase))
            self._vocabulary = tuple("".join(row) for row in letters[uniq])
            self._token_ids = np.asarray(inverse, dtype=np.int64).ravel()
        else:
            mapping: dict[str, int] = {}
            ids = np.empty(len(self._words), dtype=np.int64)
            for i, word in enumerate(self._words):
                ids[i] = mapping.setdefault(word, len(mapping))
            self._vocabulary = tuple(mapping)
            self._token_ids = ids

    @property
    def token_ids(self) -> np.ndarray:
        """Integer token per surviving window (grammar-induction input)."""
        self._build_tokens()
        return self._token_ids

    @property
    def vocabulary(self) -> tuple[str, ...]:
        """Token id → SAX word letter string."""
        self._build_tokens()
        return self._vocabulary

    @property
    def words(self) -> list[str]:
        """SAX words as letter strings (rendered lazily, then cached)."""
        if self._words is None:
            self._build_tokens()
            vocab = self._vocabulary
            self._words = [vocab[i] for i in self._token_ids.tolist()]
        return self._words

    def as_string(self) -> str:
        """The token string fed to the grammar inducer (display form)."""
        return " ".join(self.words)


def sliding_windows(
    series: np.ndarray, window_size: int, *, copy: bool = False
) -> np.ndarray:
    """All contiguous windows of *series* as a ``(m - n + 1, n)`` array.

    By default this is the zero-copy strided **view** — read-only, and
    aliasing *series* — which is all the read-only consumers (z-norm and
    PAA both allocate fresh outputs) need; on long concatenated class
    series the view halves peak memory versus materializing every
    window. Pass ``copy=True`` to get an owned, writable copy instead
    (required before mutating rows in place).
    """
    values = np.asarray(series, dtype=float)
    if values.ndim != 1:
        raise ValueError(f"sliding_windows expects a 1-D array, got shape {values.shape}")
    if window_size > values.size:
        raise ValueError(
            f"window_size ({window_size}) exceeds series length ({values.size})"
        )
    view = np.lib.stride_tricks.sliding_window_view(values, window_size)
    return view.copy() if copy else view


#: Numerosity-reduction strategies (GrammarViz's vocabulary): ``exact``
#: collapses runs of identical words, ``mindist`` also collapses a word
#: whose MINDIST to its predecessor is zero (every letter within one
#: breakpoint step), ``none`` keeps every window.
REDUCTIONS = ("exact", "mindist", "none")


def _mindist_zero(word_a: str, word_b: str) -> bool:
    """True when MINDIST(word_a, word_b) == 0 (all letters adjacent)."""
    return len(word_a) == len(word_b) and all(
        abs(ord(a) - ord(b)) <= 1 for a, b in zip(word_a, word_b)
    )


def _resolve_reduction(numerosity_reduction: bool | str) -> str:
    if isinstance(numerosity_reduction, bool):
        return "exact" if numerosity_reduction else "none"
    if numerosity_reduction not in REDUCTIONS:
        raise ValueError(
            f"numerosity_reduction must be bool or one of {REDUCTIONS}, "
            f"got {numerosity_reduction!r}"
        )
    return numerosity_reduction


def _check_valid_start(
    valid_start: np.ndarray | None, n_positions: int
) -> np.ndarray | None:
    if valid_start is None:
        return None
    valid_start = np.asarray(valid_start, dtype=bool)
    if valid_start.shape != (n_positions,):
        raise ValueError(
            f"valid_start must have shape ({n_positions},), got {valid_start.shape}"
        )
    return valid_start


# -- implementation switch ----------------------------------------------------

_IMPLEMENTATION = "vectorized"


@contextmanager
def discretize_implementation(name: str):
    """Temporarily force the ``'vectorized'`` or ``'legacy'`` discretize path.

    The legacy path is the pre-vectorization reference (per-window
    Python strings, Python-loop numerosity reduction). It exists for the
    parity suite and the old-vs-new benchmark; both paths produce
    bitwise-identical :class:`SaxRecord` contents.
    """
    global _IMPLEMENTATION
    if name not in ("vectorized", "legacy"):
        raise ValueError(f"implementation must be 'vectorized' or 'legacy', got {name!r}")
    previous = _IMPLEMENTATION
    _IMPLEMENTATION = name
    try:
        yield
    finally:
        _IMPLEMENTATION = previous


# -- numerosity reduction over the code matrix --------------------------------


def _kept_positions(
    codes: np.ndarray, valid_start: np.ndarray | None, reduction: str
) -> tuple[np.ndarray, int]:
    """Surviving window positions under *reduction* and the junction mask.

    Semantics match the legacy scan exactly: an invalid position breaks
    the reduction run (the next valid word is always kept), ``exact``
    collapses a word equal to its predecessor, and ``mindist`` collapses
    a word within one breakpoint step of the *last kept* word — the
    chain comparison is against the kept anchor, not the adjacent row,
    so ``mindist`` keeps its small sequential scan (over plain int rows,
    not strings).
    """
    n_positions = codes.shape[0]
    if valid_start is None:
        valid_idx = np.arange(n_positions)
        dropped = 0
    else:
        valid_idx = np.flatnonzero(valid_start)
        dropped = int(n_positions - valid_idx.size)
    if valid_idx.size == 0 or reduction == "none":
        return valid_idx, dropped

    contiguous = np.empty(valid_idx.size, dtype=bool)
    contiguous[0] = False  # the first valid window always starts a run
    np.equal(np.diff(valid_idx), 1, out=contiguous[1:])

    if reduction == "exact":
        # Equality is transitive, so comparing each valid row to the
        # previous valid row is equivalent to comparing to the last
        # *kept* row — the whole mode is two vectorized ops.
        keep = np.ones(valid_idx.size, dtype=bool)
        same = (codes[valid_idx[1:]] == codes[valid_idx[:-1]]).all(axis=1)
        keep[1:] = ~(contiguous[1:] & same)
        return valid_idx[keep], dropped

    # mindist: |code - last_kept_code| <= 1 per letter is NOT transitive,
    # so the anchor must advance only on keeps.
    rows = codes[valid_idx].astype(np.int16).tolist()
    runs = contiguous.tolist()
    kept: list[int] = []
    previous: list[int] | None = None
    for k, row in enumerate(rows):
        if not runs[k]:
            previous = None
        if previous is not None and all(
            abs(a - b) <= 1 for a, b in zip(row, previous)
        ):
            continue
        kept.append(k)
        previous = row
    return valid_idx[np.asarray(kept, dtype=valid_idx.dtype)], dropped


# -- the two implementations --------------------------------------------------


def _discretize_vectorized(
    values: np.ndarray,
    params: SaxParams,
    reduction: str,
    valid_start: np.ndarray | None,
    cache,
) -> SaxRecord:
    if cache is not None:
        entry = cache.windows(values, params.window_size)
        n_positions = entry.normalized.shape[0]
        segments = entry.paa(params.paa_size)
    else:
        normalized = znorm_rows(sliding_windows(values, params.window_size))
        n_positions = normalized.shape[0]
        segments = paa_rows(normalized, params.paa_size)
    valid_start = _check_valid_start(valid_start, n_positions)
    cuts = breakpoints(params.alphabet_size)
    codes = np.searchsorted(cuts, segments, side="left").astype(np.uint8)
    positions, dropped = _kept_positions(codes, valid_start, reduction)
    return SaxRecord(
        offsets=positions,
        params=params,
        series_length=values.size,
        dropped=dropped,
        codes=np.ascontiguousarray(codes[positions]),
    )


def _discretize_legacy(
    values: np.ndarray,
    params: SaxParams,
    reduction: str,
    valid_start: np.ndarray | None,
) -> SaxRecord:
    """The pre-vectorization reference path (strings + Python loop)."""
    windows = sliding_windows(values, params.window_size)
    n_positions = windows.shape[0]
    valid_start = _check_valid_start(valid_start, n_positions)

    normalized = znorm_rows(windows)
    all_words = sax_words_for_rows(normalized, params.paa_size, params.alphabet_size)

    words: list[str] = []
    offsets: list[int] = []
    dropped = 0
    previous: str | None = None
    for position, word in enumerate(all_words):
        if valid_start is not None and not valid_start[position]:
            # A junction breaks the run: the next valid word is always kept.
            previous = None
            dropped += 1
            continue
        if previous is not None:
            if reduction == "exact" and word == previous:
                continue
            if reduction == "mindist" and _mindist_zero(word, previous):
                continue
        words.append(word)
        offsets.append(position)
        previous = word

    return SaxRecord(
        words=words,
        offsets=np.asarray(offsets, dtype=int),
        params=params,
        series_length=values.size,
        dropped=dropped,
    )


def discretize(
    series: np.ndarray,
    params: SaxParams,
    *,
    numerosity_reduction: bool | str = True,
    valid_start: np.ndarray | None = None,
    cache=None,
) -> SaxRecord:
    """Discretize *series* into a numerosity-reduced SAX word sequence.

    Parameters
    ----------
    series:
        The raw (concatenated) series.
    params:
        SAX parameters (window, PAA, alphabet sizes).
    numerosity_reduction:
        Strategy for collapsing consecutive near-duplicate words
        (paper §3.2.1). ``True`` / ``'exact'`` keeps the first of each
        run of identical words; ``'mindist'`` additionally collapses
        words at MINDIST zero from their predecessor (GrammarViz's
        alternative strategy, coarser); ``False`` / ``'none'`` keeps
        every window (ablation).
    valid_start:
        Optional boolean mask of length ``len(series) - window + 1``;
        positions marked ``False`` are skipped entirely. RPM uses this
        to drop windows that span junctions of concatenated training
        instances (paper §3.2.2 / Figure 4). A skipped position also
        breaks a numerosity-reduction run, so patterns cannot silently
        bridge two different training instances.
    cache:
        Optional :class:`~repro.runtime.DiscretizationCache`. When
        given, the z-normalized window matrix and the per-``paa_size``
        PAA reduction are fetched from (or inserted into) the cache —
        repeated calls sharing a window size skip straight to the cheap
        breakpoint lookup. Cached and uncached calls are bitwise
        identical.

    Returns
    -------
    SaxRecord
    """
    reduction = _resolve_reduction(numerosity_reduction)
    values = np.asarray(series, dtype=float)
    if _IMPLEMENTATION == "legacy":
        return _discretize_legacy(values, params, reduction, valid_start)
    return _discretize_vectorized(values, params, reduction, valid_start, cache)
