"""Piecewise Aggregate Approximation (PAA).

PAA (Keogh et al. 2001) reduces an *n*-point series to *w* segment
means. When ``w`` does not divide ``n`` evenly we use the exact
fractional-weighting scheme (every original point contributes weight
proportional to its overlap with each segment), which is the behaviour
of the canonical SAX implementations rather than naive truncation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["paa", "paa_rows"]


def paa(series: np.ndarray, segments: int) -> np.ndarray:
    """Compute the PAA representation of a 1-D series.

    Parameters
    ----------
    series:
        One-dimensional array of length ``n``.
    segments:
        Number of output segments ``w`` with ``1 <= w <= n``.

    Returns
    -------
    numpy.ndarray
        Array of ``w`` segment means. When ``w == n`` the input is
        returned unchanged (as a copy).
    """
    values = np.asarray(series, dtype=float)
    if values.ndim != 1:
        raise ValueError(f"paa expects a 1-D array, got shape {values.shape}")
    n = values.size
    if segments < 1:
        raise ValueError(f"segments must be >= 1, got {segments}")
    if segments > n:
        raise ValueError(f"segments ({segments}) may not exceed series length ({n})")
    if segments == n:
        return values.copy()
    if n % segments == 0:
        return values.reshape(segments, n // segments).mean(axis=1)
    return _fractional_paa(values[np.newaxis, :], segments)[0]


def paa_rows(matrix: np.ndarray, segments: int) -> np.ndarray:
    """Row-wise PAA of a 2-D array of equal-length windows."""
    values = np.asarray(matrix, dtype=float)
    if values.ndim != 2:
        raise ValueError(f"paa_rows expects a 2-D array, got shape {values.shape}")
    rows, n = values.shape
    if segments < 1:
        raise ValueError(f"segments must be >= 1, got {segments}")
    if segments > n:
        raise ValueError(f"segments ({segments}) may not exceed window length ({n})")
    if segments == n:
        return values.copy()
    if n % segments == 0:
        return values.reshape(rows, segments, n // segments).mean(axis=2)
    return _fractional_paa(values, segments)


def _fractional_paa(matrix: np.ndarray, segments: int) -> np.ndarray:
    """Exact PAA for the non-divisible case via an overlap-weight matrix.

    Each of the ``n`` input points is stretched over ``segments`` equal
    bins of width ``n / segments``; a point contributes to a bin in
    proportion to the length of their overlap. The weight matrix is
    cached per ``(n, segments)`` pair.
    """
    rows, n = matrix.shape
    weights = _overlap_weights(n, segments)
    return matrix @ weights


_WEIGHT_CACHE: dict[tuple[int, int], np.ndarray] = {}


def _overlap_weights(n: int, segments: int) -> np.ndarray:
    key = (n, segments)
    cached = _WEIGHT_CACHE.get(key)
    if cached is not None:
        return cached
    width = n / segments
    weights = np.zeros((n, segments))
    for point in range(n):
        lo, hi = float(point), float(point + 1)
        first = int(lo // width)
        last = min(int(np.ceil(hi / width)), segments)
        for seg in range(first, last):
            seg_lo, seg_hi = seg * width, (seg + 1) * width
            overlap = min(hi, seg_hi) - max(lo, seg_lo)
            if overlap > 0:
                weights[point, seg] = overlap / width
    # Keep the cache bounded; PAA is called with few distinct shapes.
    if len(_WEIGHT_CACHE) > 256:
        _WEIGHT_CACHE.clear()
    _WEIGHT_CACHE[key] = weights
    return weights
