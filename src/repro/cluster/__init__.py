"""Hierarchical clustering substrate used to refine grammar-rule motifs."""

from .linkage import Linkage, Merge, agglomerate, cut_k
from .refine import (
    MIN_SPLIT_FRACTION,
    RefinedCluster,
    align_subsequences,
    bisect_refine,
    centroid_of,
    medoid_of,
)

__all__ = [
    "Linkage",
    "MIN_SPLIT_FRACTION",
    "Merge",
    "RefinedCluster",
    "agglomerate",
    "align_subsequences",
    "bisect_refine",
    "centroid_of",
    "cut_k",
    "medoid_of",
]
