"""Iterative bisection refinement of grammar-rule subsequence groups.

Paper §3.2.2: a grammar rule's subsequences may mix more than one shape
(SAX granularity is coarse). RPM therefore clusters them with
complete-linkage, always trying a 2-way split first:

* if one side of the split would hold less than ``min_split_fraction``
  (30 %) of the group, the group is considered homogeneous and kept;
* otherwise both halves are split recursively until no group can be
  split further.

Groups smaller than the support threshold ``γ · |class|`` are discarded
by the caller; surviving groups are summarized by their **centroid**
(the mean of the z-normalized, length-aligned members) or **medoid**
(the member minimizing total distance to the rest) — the paper notes
either works.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..distance.euclidean import pairwise_euclidean
from ..obs.tracer import NOOP
from ..sax.znorm import znorm, znorm_rows
from .linkage import agglomerate, cut_k

__all__ = [
    "RefinedCluster",
    "align_subsequences",
    "bisect_refine",
    "centroid_of",
    "medoid_of",
]

#: Minimum fraction of a group a bisection side must hold for the split
#: to be accepted (paper §3.2.2).
MIN_SPLIT_FRACTION = 0.3

#: A split must also shrink the cluster: it is accepted only when the
#: larger child's diameter (complete-linkage height) is at most this
#: fraction of the parent's. Without this, a *homogeneous* group keeps
#: bisecting into balanced halves forever — the paper's "stops when no
#: group can be further split" implies such a homogeneity check.
MAX_CHILD_DIAMETER_RATIO = 0.8


@dataclass
class RefinedCluster:
    """A homogeneous group of subsequences from one grammar rule.

    ``member_indices`` point back into the motif's occurrence list;
    ``aligned`` holds the z-normalized, length-aligned member matrix the
    prototype is computed from.
    """

    member_indices: list[int]
    aligned: np.ndarray
    pairwise: np.ndarray | None = field(repr=False, default=None)

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.member_indices)

    def within_distances(self) -> np.ndarray:
        """Condensed (upper-triangle) pairwise member distances.

        These feed the τ threshold computation of Algorithm 2.
        """
        if self.size < 2:
            return np.empty(0)
        iu = np.triu_indices(self.size, k=1)
        return self.pairwise[iu]


def align_subsequences(
    subsequences: list[np.ndarray],
    target_length: int | None = None,
) -> np.ndarray:
    """Z-normalize and resample variable-length subsequences to one length.

    The target defaults to the *median* member length, which keeps the
    prototype faithful to the dominant scale of the motif.
    """
    if not subsequences:
        raise ValueError("need at least one subsequence")
    lengths = [np.asarray(s).size for s in subsequences]
    if min(lengths) < 2:
        raise ValueError("subsequences must have at least 2 points")
    if target_length is None:
        target_length = int(np.median(lengths))
    target_length = max(int(target_length), 2)
    grid = np.linspace(0.0, 1.0, num=target_length)
    rows = np.empty((len(subsequences), target_length))
    for i, sub in enumerate(subsequences):
        values = np.asarray(sub, dtype=float)
        if values.size == target_length:
            rows[i] = values
        else:
            rows[i] = np.interp(grid, np.linspace(0.0, 1.0, num=values.size), values)
    return znorm_rows(rows)


def bisect_refine(
    aligned: np.ndarray,
    *,
    min_split_fraction: float = MIN_SPLIT_FRACTION,
    max_child_diameter_ratio: float = MAX_CHILD_DIAMETER_RATIO,
    min_group_size: int = 2,
    pairwise: np.ndarray | None = None,
    tracer=NOOP,
) -> list[RefinedCluster]:
    """Recursively 2-way split an aligned member matrix (paper §3.2.2).

    Parameters
    ----------
    aligned:
        (n, L) matrix of z-normalized, length-aligned subsequences.
    min_split_fraction:
        A split is accepted only when both halves hold at least this
        fraction of the parent group (the paper's 30 % rule).
    max_child_diameter_ratio:
        Homogeneity stop: the split is kept only when the larger child
        diameter is at most this fraction of the parent diameter.
    min_group_size:
        Groups at or below this size are never split.
    pairwise:
        Optional precomputed ``(n, n)`` distance matrix of ``aligned``
        rows. Callers that already paid for it (e.g. repeated
        refinement sweeps over one motif) pass it here; every recursion
        level and every emitted cluster block then reuses slices of the
        single matrix instead of recomputing distances.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; each call records a
        ``bisect`` span with member/cluster/split counters (same-named
        sibling spans are aggregated by the tree emitter, so per-motif
        calls fold into one line).

    Returns
    -------
    list[RefinedCluster]
        Leaves of the bisection tree, each with its member indices into
        the original matrix and its own pairwise distance block.
    """
    aligned = np.asarray(aligned, dtype=float)
    if aligned.ndim != 2:
        raise ValueError(f"aligned must be 2-D, got {aligned.shape}")
    n = aligned.shape[0]
    if pairwise is None:
        full_pairwise = pairwise_euclidean(aligned)
    else:
        full_pairwise = np.asarray(pairwise, dtype=float)
        if full_pairwise.shape != (n, n):
            raise ValueError(
                f"pairwise must be ({n}, {n}) to match aligned, got {full_pairwise.shape}"
            )
    out: list[RefinedCluster] = []
    n_splits = 0

    def emit(indices: np.ndarray, block: np.ndarray) -> None:
        out.append(
            RefinedCluster(
                member_indices=indices.tolist(),
                aligned=aligned[indices],
                pairwise=block,
            )
        )

    def recurse(indices: np.ndarray) -> None:
        nonlocal n_splits
        group_size = indices.size
        block = full_pairwise[np.ix_(indices, indices)]
        if group_size <= min_group_size:
            emit(indices, block)
            return
        labels = cut_k(agglomerate(block, method="complete"), 2)
        left = indices[labels == 0]
        right = indices[labels == 1]
        smaller = min(left.size, right.size)
        if smaller < min_split_fraction * group_size:
            emit(indices, block)
            return
        parent_diameter = block.max()
        child_diameter = max(
            full_pairwise[np.ix_(left, left)].max(),
            full_pairwise[np.ix_(right, right)].max(),
        )
        if parent_diameter <= 0 or child_diameter > max_child_diameter_ratio * parent_diameter:
            emit(indices, block)
            return
        n_splits += 1
        recurse(left)
        recurse(right)

    with tracer.span("bisect") as span:
        recurse(np.arange(n))
        span.add("bisect.members", n)
        span.add("bisect.splits", n_splits)
        span.add("bisect.clusters", len(out))
    return out


def centroid_of(cluster: RefinedCluster) -> np.ndarray:
    """Mean of the aligned members, re-z-normalized (the paper's default)."""
    return znorm(cluster.aligned.mean(axis=0))


def medoid_of(cluster: RefinedCluster) -> np.ndarray:
    """The member minimizing the summed distance to the others."""
    totals = cluster.pairwise.sum(axis=1)
    return cluster.aligned[int(np.argmin(totals))].copy()
