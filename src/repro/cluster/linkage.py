"""Agglomerative hierarchical clustering (complete / single / average linkage).

RPM refines the subsequences behind each grammar rule with
*complete-linkage* hierarchical clustering (paper §3.2.2). We implement
the classic Lance-Williams agglomeration over a precomputed distance
matrix; sizes here are small (a motif rarely has more than a few
hundred occurrences), so the straightforward O(n³) scheme is plenty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Linkage", "Merge", "agglomerate", "cut_k"]

_METHODS = ("complete", "single", "average")


@dataclass(frozen=True)
class Merge:
    """One agglomeration step: clusters *left* and *right* merge at *height*.

    Cluster ids follow the scipy convention: ids ``0..n-1`` are the
    singletons; the merge at step ``t`` creates cluster ``n + t``.
    """

    left: int
    right: int
    height: float
    size: int


@dataclass
class Linkage:
    """The full merge tree produced by :func:`agglomerate`."""

    n: int
    merges: list[Merge]

    def heights(self) -> np.ndarray:
        """Merge heights in agglomeration order."""
        return np.array([m.height for m in self.merges])


def _check_distance_matrix(dist: np.ndarray) -> np.ndarray:
    d = np.asarray(dist, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError(f"distance matrix must be square, got {d.shape}")
    if d.shape[0] == 0:
        raise ValueError("distance matrix must be non-empty")
    if not np.allclose(d, d.T, atol=1e-9):
        raise ValueError("distance matrix must be symmetric")
    if (np.diag(d) > 1e-9).any():
        raise ValueError("distance matrix must have a zero diagonal")
    return d


def agglomerate(dist: np.ndarray, method: str = "complete") -> Linkage:
    """Build the merge tree for a precomputed distance matrix.

    Parameters
    ----------
    dist:
        Symmetric (n, n) matrix of pairwise distances.
    method:
        ``'complete'`` (RPM's choice), ``'single'`` or ``'average'``.

    Returns
    -------
    Linkage
        ``n - 1`` merges ordered by non-decreasing height (heights are
        monotone for these three linkage methods).
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    d = _check_distance_matrix(dist).copy()
    n = d.shape[0]
    if n == 1:
        return Linkage(n=1, merges=[])

    # active[i] maps matrix row i to its current cluster id; sizes track
    # member counts for average linkage.
    active = list(range(n))
    sizes = [1] * n
    np.fill_diagonal(d, np.inf)
    merges: list[Merge] = []
    next_id = n

    for _ in range(n - 1):
        flat = int(np.argmin(d))
        i, j = divmod(flat, d.shape[0])
        if i > j:
            i, j = j, i
        height = float(d[i, j])
        size = sizes[i] + sizes[j]
        merges.append(Merge(left=active[i], right=active[j], height=height, size=size))

        # Lance-Williams update of row i to represent the merged cluster.
        if method == "complete":
            merged_row = np.maximum(d[i], d[j])
        elif method == "single":
            merged_row = np.minimum(d[i], d[j])
        else:  # average
            merged_row = (sizes[i] * d[i] + sizes[j] * d[j]) / size
        d[i, :] = merged_row
        d[:, i] = merged_row
        d[i, i] = np.inf
        active[i] = next_id
        sizes[i] = size
        next_id += 1

        # Drop row/column j.
        keep = np.ones(d.shape[0], dtype=bool)
        keep[j] = False
        d = d[np.ix_(keep, keep)]
        del active[j]
        del sizes[j]

    return Linkage(n=n, merges=merges)


def cut_k(linkage: Linkage, k: int) -> np.ndarray:
    """Cut the merge tree into exactly *k* clusters.

    Returns an array of ``n`` labels in ``0..k-1`` (labelled by order of
    first appearance). ``k`` must satisfy ``1 <= k <= n``.
    """
    n = linkage.n
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    # Apply the first n - k merges with a union-find.
    parent = list(range(n + len(linkage.merges)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for t, merge in enumerate(linkage.merges[: n - k]):
        new_id = n + t
        parent[find(merge.left)] = new_id
        parent[find(merge.right)] = new_id

    labels = np.empty(n, dtype=int)
    mapping: dict[int, int] = {}
    for i in range(n):
        root = find(i)
        if root not in mapping:
            mapping[root] = len(mapping)
        labels[i] = mapping[root]
    return labels
