"""Grammar rules for Sequitur."""

from __future__ import annotations

from typing import Iterator

from .symbols import Guard, NonTerminal, Symbol, Terminal

__all__ = ["Rule"]


class Rule:
    """A context-free rule: ``R<i> -> s1 s2 ... sk``.

    The right-hand side is a circular doubly-linked list anchored at a
    guard sentinel. ``refcount`` counts how many :class:`NonTerminal`
    symbols currently reference the rule; Sequitur's *rule utility*
    constraint inlines any rule whose refcount drops to 1.
    """

    __slots__ = ("rule_id", "guard", "refcount")

    def __init__(self, rule_id: int) -> None:
        self.rule_id = rule_id
        self.refcount = 0
        self.guard = Guard(self)

    # -- structure ------------------------------------------------------------

    @property
    def first(self) -> Symbol:
        """First RHS symbol."""
        assert self.guard.next is not None
        return self.guard.next

    @property
    def last(self) -> Symbol:
        """Last RHS symbol."""
        assert self.guard.prev is not None
        return self.guard.prev

    def is_empty(self) -> bool:
        """True when the RHS holds no symbols."""
        return self.guard.next is self.guard

    def symbols(self) -> Iterator[Symbol]:
        """Iterate the right-hand side symbols (guard excluded)."""
        node = self.guard.next
        while node is not None and node is not self.guard:
            yield node
            node = node.next

    def append(self, symbol: Symbol) -> None:
        """Append a symbol at the end of the RHS."""
        self.guard.prev.insert_after(symbol)

    def __len__(self) -> int:
        return sum(1 for _ in self.symbols())

    # -- expansion ------------------------------------------------------------

    def expansion(self) -> list[str]:
        """The terminal token sequence this rule ultimately derives."""
        out: list[str] = []
        self._expand_into(out)
        return out

    def _expand_into(self, out: list[str]) -> None:
        for symbol in self.symbols():
            if isinstance(symbol, Terminal):
                out.append(symbol.token)
            elif isinstance(symbol, NonTerminal):
                symbol.rule._expand_into(out)

    def rhs_string(self) -> str:
        """Human-readable right-hand side, e.g. ``'aba R2 R2'``."""
        parts: list[str] = []
        for symbol in self.symbols():
            if isinstance(symbol, Terminal):
                # Tokens may be SAX words or integer token ids.
                parts.append(str(symbol.token))
            elif isinstance(symbol, NonTerminal):
                parts.append(f"R{symbol.rule.rule_id}")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Rule(R{self.rule_id} -> {self.rhs_string()})"
