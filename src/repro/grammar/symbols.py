"""Linked-list symbols for the Sequitur grammar inducer.

Sequitur maintains each rule's right-hand side as a doubly-linked list
of symbols so digram substitution is O(1). A symbol is either a
*terminal* (a SAX word token) or a *non-terminal* (a reference to a
:class:`~repro.grammar.rules.Rule`). Every rule owns a *guard* symbol —
a sentinel that closes the circular list and never participates in a
digram.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .rules import Rule

__all__ = ["Symbol", "Terminal", "NonTerminal", "Guard"]


class Symbol:
    """Base node of a rule's right-hand side linked list."""

    __slots__ = ("prev", "next")

    def __init__(self) -> None:
        self.prev: Optional[Symbol] = None
        self.next: Optional[Symbol] = None

    # -- linked-list plumbing -------------------------------------------------

    def insert_after(self, symbol: "Symbol") -> None:
        """Splice *symbol* into the list directly after ``self``."""
        symbol.prev = self
        symbol.next = self.next
        if self.next is not None:
            self.next.prev = symbol
        self.next = symbol

    def unlink(self) -> None:
        """Remove ``self`` from its list (pointers of neighbours fixed up)."""
        if self.prev is not None:
            self.prev.next = self.next
        if self.next is not None:
            self.next.prev = self.prev
        self.prev = None
        self.next = None

    # -- digram identity ------------------------------------------------------

    def key(self):  # noqa: ANN201 - heterogeneous key
        """Hashable identity used in the digram index."""
        raise NotImplementedError

    def is_guard(self) -> bool:
        """True for the guard sentinel."""
        return False

    def is_nonterminal(self) -> bool:
        """True for rule references."""
        return False


class Terminal(Symbol):
    """A terminal token (one SAX word)."""

    __slots__ = ("token",)

    def __init__(self, token: str) -> None:
        super().__init__()
        self.token = token

    def key(self) -> tuple[str, str]:
        """Hashable identity used by the digram index."""
        return ("t", self.token)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Terminal({self.token!r})"


class NonTerminal(Symbol):
    """A reference to a rule; increments the rule's use count while linked."""

    __slots__ = ("rule",)

    def __init__(self, rule: "Rule") -> None:
        super().__init__()
        self.rule = rule
        rule.refcount += 1

    def release(self) -> None:
        """Drop the reference (called when this symbol is removed)."""
        self.rule.refcount -= 1

    def key(self) -> tuple[str, int]:
        """Hashable identity used by the digram index."""
        return ("r", self.rule.rule_id)

    def is_nonterminal(self) -> bool:
        """True for rule references."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NonTerminal(R{self.rule.rule_id})"


class Guard(Symbol):
    """Sentinel owned by each rule; never part of a digram."""

    __slots__ = ("rule",)

    def __init__(self, rule: "Rule") -> None:
        super().__init__()
        self.rule = rule
        self.prev = self
        self.next = self

    def key(self) -> tuple[str, int]:
        """Hashable identity used by the digram index."""
        return ("g", self.rule.rule_id)

    def is_guard(self) -> bool:
        """True for the guard sentinel."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Guard(R{self.rule.rule_id})"
