"""Sequitur: linear-time context-free grammar induction.

A faithful port of Nevill-Manning & Witten's SEQUITUR (1997), the
grammar inducer RPM uses to discover recurrent SAX-word patterns. The
algorithm appends tokens to the start rule one at a time while
maintaining two invariants:

* **digram uniqueness** — no pair of adjacent symbols appears more than
  once in the grammar; a repeated digram is rewritten as a rule;
* **rule utility** — every rule is referenced at least twice; a rule
  whose reference count drops to one is inlined and deleted.

Tokens here are whole SAX *words* (e.g. ``'abc'``), not characters, so
one input position corresponds to one sliding-window subsequence.
"""

from __future__ import annotations

from typing import Iterable

from .rules import Rule
from .symbols import NonTerminal, Symbol, Terminal

__all__ = ["Sequitur", "induce_grammar"]


class Sequitur:
    """Incremental Sequitur grammar builder.

    Usage::

        g = Sequitur()
        for token in tokens:
            g.feed(token)
        rules = g.rules()          # all live rules (incl. the start rule R0)
        g.expansion(rule)          # terminal token sequence of a rule
    """

    def __init__(self) -> None:
        self._digrams: dict[tuple, Symbol] = {}
        self._next_id = 1
        self.start = Rule(0)
        self._rules: dict[int, Rule] = {0: self.start}
        self._tokens_fed = 0

    # -- public API ------------------------------------------------------------

    def feed(self, token: str) -> None:
        """Append one token to the input and restore the invariants."""
        terminal = Terminal(token)
        self.start.append(terminal)
        self._tokens_fed += 1
        prev = terminal.prev
        if prev is not None and not prev.is_guard():
            self._check(prev)

    def feed_all(self, tokens: Iterable[str]) -> "Sequitur":
        """Feed every token of an iterable; returns self."""
        for token in tokens:
            self.feed(token)
        return self

    def rules(self) -> list[Rule]:
        """All live rules, the start rule first, then by creation order."""
        return [self._rules[rid] for rid in sorted(self._rules)]

    def non_start_rules(self) -> list[Rule]:
        """All live rules except the start rule R0."""
        return [rule for rule in self.rules() if rule.rule_id != 0]

    @property
    def tokens_fed(self) -> int:
        """Number of tokens consumed so far."""
        return self._tokens_fed

    def expansion(self, rule: Rule) -> list[str]:
        """Terminal token sequence a rule derives."""
        return rule.expansion()

    def grammar_size(self) -> int:
        """Total number of right-hand-side symbols across live rules."""
        return sum(len(rule) for rule in self.rules())

    def to_string(self) -> str:
        """Printable grammar, GrammarViz style."""
        lines = [f"R{rule.rule_id} -> {rule.rhs_string()}" for rule in self.rules()]
        return "\n".join(lines)

    # -- digram index ------------------------------------------------------------

    @staticmethod
    def _digram_key(symbol: Symbol) -> tuple:
        assert symbol.next is not None
        return (symbol.key(), symbol.next.key())

    def _forget_digram(self, symbol: Symbol) -> None:
        """Remove the digram starting at *symbol* if it is the indexed copy."""
        if symbol.is_guard() or symbol.next is None or symbol.next.is_guard():
            return
        key = self._digram_key(symbol)
        if self._digrams.get(key) is symbol:
            del self._digrams[key]

    # -- core operations ---------------------------------------------------------

    def _check(self, symbol: Symbol) -> bool:
        """Enforce digram uniqueness for the digram starting at *symbol*.

        Returns True when the digram already existed in the index.
        """
        if symbol.is_guard() or symbol.next is None or symbol.next.is_guard():
            return False
        key = self._digram_key(symbol)
        found = self._digrams.get(key)
        if found is None:
            self._digrams[key] = symbol
            return False
        if found.next is not symbol:  # ignore the overlapping occurrence
            self._match(symbol, found)
        return True

    def _remove_symbol(self, symbol: Symbol) -> None:
        """Unlink *symbol*, clearing the digram entries it participated in."""
        prev = symbol.prev
        # Digram (prev, symbol) dies with the unlink.
        if prev is not None and not prev.is_guard() and not symbol.is_guard():
            key = (prev.key(), symbol.key())
            if self._digrams.get(key) is prev:
                del self._digrams[key]
        # Digram (symbol, next) dies too.
        self._forget_digram(symbol)
        symbol.unlink()
        if isinstance(symbol, NonTerminal):
            symbol.release()

    def _substitute(self, symbol: Symbol, rule: Rule) -> None:
        """Replace the digram at *symbol* with a reference to *rule*."""
        prev = symbol.prev
        assert prev is not None and symbol.next is not None
        second = symbol.next
        self._remove_symbol(symbol)
        self._remove_symbol(second)
        reference = NonTerminal(rule)
        prev.insert_after(reference)
        if not self._check(prev):
            self._check(reference)

    @staticmethod
    def _copy(symbol: Symbol) -> Symbol:
        if isinstance(symbol, Terminal):
            return Terminal(symbol.token)
        if isinstance(symbol, NonTerminal):
            return NonTerminal(symbol.rule)
        raise TypeError(f"cannot copy {symbol!r}")

    def _match(self, new: Symbol, existing: Symbol) -> None:
        """A digram occurs twice: rewrite with an existing or new rule."""
        existing_prev = existing.prev
        existing_next = existing.next
        assert existing_prev is not None and existing_next is not None
        if (
            existing_prev.is_guard()
            and existing_next.next is not None
            and existing_next.next.is_guard()
        ):
            # The existing occurrence is the entire RHS of a rule: reuse it.
            rule = existing_prev.rule  # type: ignore[attr-defined]
            self._substitute(new, rule)
        else:
            rule = Rule(self._next_id)
            self._next_id += 1
            self._rules[rule.rule_id] = rule
            rule.append(self._copy(new))
            assert new.next is not None
            rule.append(self._copy(new.next))
            self._substitute(existing, rule)
            self._substitute(new, rule)
            self._digrams[self._digram_key(rule.first)] = rule.first
        # Rule utility: the two symbols just removed matched *rule*'s RHS,
        # so any reference count that dropped to one belongs to a rule
        # referenced from one of *rule*'s endpoints. Inline those.
        first = rule.first
        if isinstance(first, NonTerminal) and first.rule.refcount == 1:
            self._expand(first)
        last = rule.last
        if isinstance(last, NonTerminal) and last.rule.refcount == 1:
            self._expand(last)

    def _expand(self, symbol: NonTerminal) -> None:
        """Inline the single remaining use of ``symbol.rule`` and delete it."""
        rule = symbol.rule
        left = symbol.prev
        right = symbol.next
        assert left is not None and right is not None
        first = rule.first
        last = rule.last
        if rule.is_empty():  # pragma: no cover - cannot happen for 2+-symbol rules
            self._remove_symbol(symbol)
            del self._rules[rule.rule_id]
            return
        # Clear digram entries around the reference being replaced.
        if not left.is_guard():
            key = (left.key(), symbol.key())
            if self._digrams.get(key) is left:
                del self._digrams[key]
        self._forget_digram(symbol)
        symbol.release()
        # Splice the rule body in place of the reference.
        left.next = first
        first.prev = left
        last.next = right
        right.prev = last
        del self._rules[rule.rule_id]
        # Index the freshly created digram at the seam (canonical Sequitur
        # indexes only the right seam; the left seam is re-checked lazily).
        if not last.is_guard() and not right.is_guard():
            self._digrams[(last.key(), right.key())] = last


def induce_grammar(tokens: Iterable[str]) -> Sequitur:
    """Convenience one-shot induction over an iterable of tokens."""
    return Sequitur().feed_all(tokens)
