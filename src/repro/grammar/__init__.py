"""Grammar-induction substrate: Sequitur and junction-aware inference."""

from .inference import (
    Occurrence,
    RuleMotif,
    concatenate_with_junctions,
    discretize_class,
    find_word_occurrences,
    induce_motifs,
)
from .rules import Rule
from .sequitur import Sequitur, induce_grammar
from .symbols import Guard, NonTerminal, Symbol, Terminal

__all__ = [
    "Guard",
    "NonTerminal",
    "Occurrence",
    "Rule",
    "RuleMotif",
    "Sequitur",
    "Symbol",
    "Terminal",
    "concatenate_with_junctions",
    "discretize_class",
    "find_word_occurrences",
    "induce_grammar",
    "induce_motifs",
]
