"""Junction-aware grammar inference over concatenated class series.

This module glues the SAX discretization and Sequitur together the way
RPM's Algorithm 1 needs (paper §3.2.2, Figure 4):

* training instances of a class are concatenated into one long series;
* sliding windows that *span a junction* between two instances are
  excluded from discretization (they would be concatenation artifacts);
* a Sequitur grammar is induced over the surviving SAX words;
* every rule is expanded to its terminal word sequence and **all** its
  occurrences in the word stream are located, then mapped back to raw
  variable-length subsequence spans (numerosity reduction is what makes
  the spans vary in length);
* occurrences that would cross a junction in raw coordinates are
  dropped, and each occurrence is tagged with the training instance it
  lies in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..sax.discretize import SaxParams, SaxRecord, discretize
from .sequitur import Sequitur

__all__ = [
    "Occurrence",
    "RuleMotif",
    "concatenate_with_junctions",
    "find_token_occurrences",
    "find_word_occurrences",
    "induce_motifs",
]


@dataclass(frozen=True)
class Occurrence:
    """One raw-coordinate occurrence of a grammar-rule motif.

    ``start``/``end`` index the concatenated series (end exclusive);
    ``instance`` is the index of the training instance containing it.
    """

    start: int
    end: int
    instance: int

    @property
    def length(self) -> int:
        """Number of points."""
        return self.end - self.start


@dataclass
class RuleMotif:
    """A candidate class motif: one grammar rule and its occurrences."""

    rule_id: int
    words: tuple[str, ...]
    occurrences: list[Occurrence] = field(default_factory=list)

    @property
    def support(self) -> int:
        """Number of *distinct training instances* covering the motif."""
        return len({occ.instance for occ in self.occurrences})

    @property
    def frequency(self) -> int:
        """Total number of occurrences in the concatenated series."""
        return len(self.occurrences)

    def mean_length(self) -> float:
        """Average occurrence length in points."""
        if not self.occurrences:
            return 0.0
        return float(np.mean([occ.length for occ in self.occurrences]))


def concatenate_with_junctions(
    instances: Sequence[np.ndarray],
    window_size: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate class instances and mark junction-spanning windows.

    Returns ``(series, starts, valid_start)`` where ``starts[i]`` is the
    offset of instance ``i`` in the concatenation and ``valid_start`` is
    the boolean mask (one entry per sliding-window position) that is
    False for windows crossing an instance boundary.
    """
    if not instances:
        raise ValueError("need at least one instance to concatenate")
    arrays = [np.asarray(inst, dtype=float).ravel() for inst in instances]
    lengths = np.array([a.size for a in arrays])
    if (lengths < window_size).any():
        raise ValueError(
            f"every instance must be at least window_size={window_size} long; "
            f"shortest is {lengths.min()}"
        )
    series = np.concatenate(arrays)
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1])).astype(int)
    n_positions = series.size - window_size + 1
    valid = np.ones(n_positions, dtype=bool)
    for start, length in zip(starts, lengths):
        # A window starting at p covers [p, p + window). It spans the next
        # junction when p > start + length - window.
        first_bad = start + length - window_size + 1
        last_bad = start + length - 1  # windows starting inside the instance
        if first_bad < n_positions:
            # For the last instance first_bad == n_positions, so nothing
            # is marked: its tail windows span no junction.
            valid[first_bad : min(last_bad + 1, n_positions)] = False
    return series, starts, valid


def find_word_occurrences(words: Sequence[str], needle: Sequence[str]) -> list[int]:
    """All start indices at which the token sequence *needle* occurs in *words*.

    Uses a first-token index to keep the scan near-linear for the short
    needles Sequitur produces. Overlapping occurrences are reported.
    Tokens may be any equality-comparable objects (strings, ints).
    """
    if not needle:
        return []
    first = needle[0]
    k = len(needle)
    n = len(words)
    out: list[int] = []
    for i, word in enumerate(words):
        if word != first or i + k > n:
            continue
        if all(words[i + j] == needle[j] for j in range(1, k)):
            out.append(i)
    return out


def find_token_occurrences(token_ids: np.ndarray, needle: Sequence[int]) -> list[int]:
    """Vectorized :func:`find_word_occurrences` over an integer id array.

    One boolean AND per needle position instead of a Python scan per
    window; overlapping occurrences are reported, matching the scalar
    path exactly.
    """
    token_ids = np.asarray(token_ids)
    k = len(needle)
    n = token_ids.size
    if k == 0 or k > n:
        return []
    hits = token_ids[: n - k + 1] == needle[0]
    for j in range(1, k):
        hits &= token_ids[j : n - k + 1 + j] == needle[j]
    return np.flatnonzero(hits).tolist()


def induce_motifs(
    record: SaxRecord,
    instance_starts: Sequence[int],
    instance_lengths: Sequence[int],
    *,
    min_frequency: int = 2,
    min_word_count: int = 1,
) -> list[RuleMotif]:
    """Run Sequitur over a :class:`SaxRecord` and map rules to raw motifs.

    Parameters
    ----------
    record:
        The discretized (numerosity-reduced, junction-filtered) words.
    instance_starts, instance_lengths:
        Layout of the concatenated series, as returned by
        :func:`concatenate_with_junctions`.
    min_frequency:
        Rules with fewer raw occurrences are dropped (Sequitur
        guarantees >= 2 by construction, so this mostly filters rules
        whose occurrences were removed by the junction check).
    min_word_count:
        Minimum number of SAX words a rule must expand to.

    Returns
    -------
    list[RuleMotif]
        Candidate motifs ordered by rule id (creation order).
    """
    starts = np.asarray(instance_starts, dtype=int)
    lengths = np.asarray(instance_lengths, dtype=int)
    ends = starts + lengths
    window = record.params.window_size

    # Grammar induction consumes compact integer token ids; the letter
    # strings are rendered only for the motifs that survive (display /
    # saved-model metadata). Equal words share an id, so the grammar —
    # and the dedup below — is identical to feeding the strings.
    token_ids = record.token_ids
    vocabulary = record.vocabulary
    grammar = Sequitur().feed_all(token_ids.tolist())
    motifs: list[RuleMotif] = []
    seen_expansions: set[tuple[int, ...]] = set()
    for rule in grammar.non_start_rules():
        expansion = tuple(rule.expansion())
        if len(expansion) < min_word_count:
            continue
        if expansion in seen_expansions:
            continue
        seen_expansions.add(expansion)
        motif = RuleMotif(
            rule_id=rule.rule_id,
            words=tuple(vocabulary[i] for i in expansion),
        )
        for word_index in find_token_occurrences(token_ids, expansion):
            raw_start = int(record.offsets[word_index])
            raw_end = int(record.offsets[word_index + len(expansion) - 1]) + window
            instance = int(np.searchsorted(starts, raw_start, side="right") - 1)
            # Drop occurrences crossing a junction (can happen when
            # numerosity reduction made two sides of a junction adjacent).
            if raw_end > ends[instance]:
                continue
            motif.occurrences.append(
                Occurrence(start=raw_start, end=raw_end, instance=instance)
            )
        if motif.frequency >= min_frequency:
            motifs.append(motif)
    return motifs


def discretize_class(
    instances: Sequence[np.ndarray],
    params: SaxParams,
    *,
    numerosity_reduction: bool = True,
    cache=None,
) -> tuple[SaxRecord, np.ndarray, np.ndarray]:
    """Concatenate, junction-mask and discretize a class's instances.

    Returns ``(record, starts, lengths)`` ready for :func:`induce_motifs`.
    ``cache`` is an optional
    :class:`~repro.runtime.DiscretizationCache`; repeated calls sharing
    this class's concatenated series and window size (the parameter
    search revisits both constantly) then skip the sliding/z-norm/PAA
    stages.
    """
    series, starts, valid = concatenate_with_junctions(instances, params.window_size)
    record = discretize(
        series,
        params,
        numerosity_reduction=numerosity_reduction,
        valid_start=valid,
        cache=cache,
    )
    lengths = np.array([np.asarray(inst).size for inst in instances], dtype=int)
    return record, starts, lengths
