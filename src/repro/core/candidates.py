"""Algorithm 1 — FindCandidates: class-specific motif discovery.

For every class: concatenate its training instances, discretize with
SAX (junction-aware), induce a Sequitur grammar, map every rule back to
its variable-length raw subsequences, refine each rule's subsequence
group with iterative bisecting complete-linkage clustering, drop
clusters below the γ support threshold, and emit each surviving
cluster's centroid (or medoid) as a candidate pattern.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..cluster.refine import (
    RefinedCluster,
    align_subsequences,
    bisect_refine,
    centroid_of,
    medoid_of,
)
from ..grammar.inference import RuleMotif, discretize_class, induce_motifs
from ..obs.metrics import registry
from ..obs.tracer import NOOP
from ..sax.discretize import SaxParams
from .patterns import PatternCandidate

__all__ = ["find_class_candidates", "find_candidates"]

_PROTOTYPES = ("centroid", "medoid")


def _occurrence_subsequences(series: np.ndarray, motif: RuleMotif) -> list[np.ndarray]:
    return [series[occ.start : occ.end] for occ in motif.occurrences]


def find_class_candidates(
    instances: Sequence[np.ndarray],
    label,
    params: SaxParams,
    *,
    gamma: float = 0.2,
    prototype: str = "centroid",
    support_mode: str = "instances",
    numerosity_reduction: bool = True,
    min_split_fraction: float = 0.3,
    tracer=NOOP,
    discretize_cache=None,
) -> list[PatternCandidate]:
    """Candidates for one class (the inner loop of Algorithm 1).

    Parameters
    ----------
    instances:
        The class's training series.
    label:
        Class label attached to the produced candidates.
    params:
        SAX discretization parameters for this class.
    gamma:
        Minimum support as a fraction of the class's training size
        (the paper's γ; its experiments use 20 %).
    prototype:
        ``'centroid'`` (default, paper's choice) or ``'medoid'``.
    support_mode:
        ``'instances'`` counts distinct training instances containing
        the cluster (the definition in §2.1); ``'occurrences'`` counts
        raw occurrences (the literal ``cluster.size > γ·I`` of the
        Algorithm 1 listing). Both are available for the ablation bench.
    numerosity_reduction:
        Disable only for ablation studies.
    min_split_fraction:
        The 30 % rule of the bisection refinement.
    tracer:
        An :class:`~repro.obs.tracer.Tracer` recording the
        ``discretize`` / ``grammar`` / ``refine`` stage spans (the
        shared no-op by default). Candidate counts additionally go to
        the process-wide metrics registry (``candidates.generated``,
        ``candidates.dropped_support``, ``grammar.rules``).
    discretize_cache:
        Optional :class:`~repro.runtime.DiscretizationCache`. The
        parameter search re-mines the same concatenated class series
        under many SAX triples; the cache lets every triple sharing a
        window size reuse the sliding/z-norm/PAA stages.
    """
    if prototype not in _PROTOTYPES:
        raise ValueError(f"prototype must be one of {_PROTOTYPES}, got {prototype!r}")
    if not 0.0 < gamma <= 1.0:
        raise ValueError(f"gamma must be in (0, 1], got {gamma}")
    if support_mode not in ("instances", "occurrences"):
        raise ValueError(f"unknown support_mode {support_mode!r}")

    metrics = registry()
    with tracer.span("class", label=str(label)):
        with tracer.span("discretize"):
            record, starts, lengths = discretize_class(
                instances,
                params,
                numerosity_reduction=numerosity_reduction,
                cache=discretize_cache,
            )
        series = np.concatenate(
            [np.asarray(inst, dtype=float).ravel() for inst in instances]
        )
        with tracer.span("grammar") as grammar_span:
            motifs = induce_motifs(record, starts, lengths)
            grammar_span.add("grammar.rules", len(motifs))
        metrics.inc("grammar.rules", len(motifs))
        n_instances = len(instances)
        min_support = max(2, int(np.ceil(gamma * n_instances)))

        candidates: list[PatternCandidate] = []
        dropped_support = 0
        with tracer.span("refine") as refine_span:
            for motif in motifs:
                subsequences = _occurrence_subsequences(series, motif)
                if len(subsequences) < 2:
                    continue
                aligned = align_subsequences(subsequences)
                clusters = bisect_refine(
                    aligned, min_split_fraction=min_split_fraction, tracer=tracer
                )
                for cluster in clusters:
                    instances_covered = {
                        motif.occurrences[i].instance for i in cluster.member_indices
                    }
                    measure = (
                        len(instances_covered)
                        if support_mode == "instances"
                        else cluster.size
                    )
                    if measure < min_support:
                        dropped_support += 1
                        continue
                    values = (
                        centroid_of(cluster)
                        if prototype == "centroid"
                        else medoid_of(cluster)
                    )
                    candidates.append(
                        PatternCandidate(
                            values=values,
                            label=label,
                            frequency=cluster.size,
                            support=len(instances_covered),
                            rule_id=motif.rule_id,
                            words=motif.words,
                            sax_params=params,
                            within_distances=cluster.within_distances(),
                        )
                    )
            refine_span.add("candidates.generated", len(candidates))
            refine_span.add("candidates.dropped_support", dropped_support)
    metrics.inc("candidates.generated", len(candidates))
    metrics.inc("candidates.dropped_support", dropped_support)
    return candidates


def _class_job(args) -> list[PatternCandidate]:
    """One class's mining run (module-level so process pools can pickle it)."""
    instances, label, params, options = args
    return find_class_candidates(instances, label, params, **options)


def find_candidates(
    X: np.ndarray,
    y: np.ndarray,
    params_by_class: dict,
    *,
    gamma: float = 0.2,
    prototype: str = "centroid",
    support_mode: str = "instances",
    numerosity_reduction: bool = True,
    executor=None,
    tracer=NOOP,
    discretize_cache=None,
) -> list[PatternCandidate]:
    """Algorithm 1 over the full training set.

    ``params_by_class`` maps each class label to its (possibly
    class-specific, see §4.3) :class:`SaxParams`. Classes are mined
    independently, so an ``executor``
    (:class:`~repro.runtime.executor.ParallelExecutor`) fans them out
    across workers; candidates are concatenated in class-label order
    regardless of scheduling, matching the serial loop exactly.

    The whole call is one ``mine`` span; per-class ``discretize`` /
    ``grammar`` / ``refine`` child spans nest under it — including from
    thread-backend workers (the span is *adopted* as their ambient
    parent). Process-backend workers run untraced (a tracer cannot
    cross the process boundary), leaving only the chunk-level executor
    timings.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    # Tracer and cache state (locks, thread-locals) is not picklable:
    # strip it from jobs that will be shipped to other processes.
    in_process = executor is None or executor.backend != "process"
    job_tracer = tracer if in_process else NOOP
    job_cache = discretize_cache if in_process else None
    options = dict(
        gamma=gamma,
        prototype=prototype,
        support_mode=support_mode,
        numerosity_reduction=numerosity_reduction,
        tracer=job_tracer,
        discretize_cache=job_cache,
    )
    jobs = [
        ([row for row in X[y == label]], label, params_by_class[label], options)
        for label in np.unique(y)
    ]
    with tracer.span("mine") as span, tracer.adopt(span):
        span.add("mine.classes", len(jobs))
        if executor is None:
            per_class = [_class_job(job) for job in jobs]
        else:
            per_class = executor.map(_class_job, jobs)
    return [candidate for group in per_class for candidate in group]
