"""RPM core: the paper's primary contribution.

Public entry point: :class:`RPMClassifier`. The building blocks
(Algorithms 1-3 and the feature transform) are exported for
exploratory use and for the benchmark harness.
"""

from .candidates import find_candidates, find_class_candidates
from .explain import (
    PatternCoverage,
    PatternLocation,
    class_profile,
    explain_prediction,
    locate_pattern,
    pattern_coverage,
)
from .io import load_model, save_model
from .params import ParamRanges, ParamSelector, default_ranges
from .patterns import PatternCandidate, RepresentativePattern
from .rpm import RPMClassifier
from .selection import SelectionResult, compute_tau, find_distinct, remove_similar
from .transform import pattern_feature_row, pattern_features

__all__ = [
    "ParamRanges",
    "PatternCoverage",
    "PatternLocation",
    "class_profile",
    "explain_prediction",
    "load_model",
    "locate_pattern",
    "pattern_coverage",
    "save_model",
    "ParamSelector",
    "PatternCandidate",
    "RPMClassifier",
    "RepresentativePattern",
    "SelectionResult",
    "compute_tau",
    "default_ranges",
    "find_candidates",
    "find_class_candidates",
    "find_distinct",
    "pattern_feature_row",
    "pattern_features",
    "remove_similar",
]
