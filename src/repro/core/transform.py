"""The pattern-distance feature transform.

A time series ``T`` becomes the vector of closest-match distances
between ``T`` and each representative pattern (paper §2.1 "Time Series
Transformation" and §3.1). The rotation-invariant variant additionally
matches against the series cut at its midpoint with halves swapped and
keeps the minimum (§6.1), so a pattern broken by a rotation is still
found whole in one of the two copies.

Runtime: each pattern's feature column is one call into the sliding-
window kernel, whose per-(series, length) statistics come from a
:class:`~repro.runtime.cache.WindowStatsCache` — every pattern of a
given length reuses one cumulative-sum precomputation. Columns are
independent, so a :class:`~repro.runtime.executor.ParallelExecutor`
can fan them out across threads or processes; scheduling never changes
the floating-point expressions, keeping results bitwise identical to
the serial loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..obs.tracer import NOOP
from ..runtime.cache import WindowStatsCache, default_cache
from ..runtime.kernel import sliding_best_distances

__all__ = ["pattern_features", "pattern_feature_row", "pattern_values", "rotate_halves"]


def pattern_values(pattern) -> np.ndarray:
    """Raw values of a pattern-like object.

    Accepts raw arrays, :class:`~repro.core.patterns.PatternCandidate`
    and :class:`~repro.core.patterns.RepresentativePattern` — anything
    with a ``values`` attribute or convertible to a float array.
    """
    values = getattr(pattern, "values", pattern)
    return np.asarray(values, dtype=float)


# Backwards-compatible private alias (pre-serve callers).
_pattern_values = pattern_values


def rotate_halves(X: np.ndarray) -> np.ndarray:
    """Each row cut at its midpoint with the halves swapped (§6.1).

    The rotation-invariant transform matches patterns against both the
    original matrix and this copy and keeps the minimum; the serving
    engine shares this exact expression so batched and in-process
    transforms stay bitwise identical.
    """
    return np.column_stack([X[:, X.shape[1] // 2 :], X[:, : X.shape[1] // 2]])


def pattern_feature_row(
    series: np.ndarray,
    patterns: Sequence,
    *,
    rotation_invariant: bool = False,
    cache: WindowStatsCache | None = None,
    kernel_backend: str = "auto",
) -> np.ndarray:
    """Closest-match distances of one series to every pattern.

    Delegates to :func:`pattern_features` on the series viewed as a
    one-row matrix, so the single-series path runs the exact same
    sliding-window kernel as the batch transform — flat-window
    handling, pattern-longer-than-series resampling and the rotation
    copy are bitwise identical between the two (asserted by the parity
    test suite). An earlier implementation recomputed the profile
    through ``distance_profile`` per pattern, leaving the two code
    paths free to drift.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ValueError(f"pattern_feature_row expects a 1-D series, got shape {series.shape}")
    if not len(patterns):
        return np.empty(0)
    return pattern_features(
        series[np.newaxis, :],
        patterns,
        rotation_invariant=rotation_invariant,
        cache=cache,
        kernel_backend=kernel_backend,
    )[0]


def _feature_block(args) -> np.ndarray:
    """Feature columns for one chunk of patterns (picklable worker).

    ``cache=None`` means "build a fresh local cache" — the process
    backend ships this worker to other interpreters where the shared
    cache does not exist.
    """
    values_list, X, X_rot, cache, token, token_rot, backend = args
    if cache is None:
        cache = WindowStatsCache(max(4, 2 * len(values_list)))
        token = token_rot = None
    out = np.empty((X.shape[0], len(values_list)))
    for k, values in enumerate(values_list):
        dist = sliding_best_distances(values, X, cache=cache, token=token, backend=backend)
        if X_rot is not None:
            dist = np.minimum(
                dist,
                sliding_best_distances(
                    values, X_rot, cache=cache, token=token_rot, backend=backend
                ),
            )
        out[:, k] = dist
    return out


def pattern_features(
    X: np.ndarray,
    patterns: Sequence,
    *,
    rotation_invariant: bool = False,
    executor=None,
    cache: WindowStatsCache | None = None,
    tracer=NOOP,
    kernel_backend: str = "auto",
) -> np.ndarray:
    """Transform ``(n, m)`` series into ``(n, K)`` pattern distances.

    Computed one pattern column at a time with the cached sliding-
    window kernel — the dominant cost of both training (Algorithm 2's
    transform) and classification. ``executor`` (a
    :class:`~repro.runtime.executor.ParallelExecutor`) fans the columns
    out across workers; ``cache`` overrides the process-wide default
    statistics cache. ``tracer`` records the whole call as one
    ``transform`` span. ``kernel_backend`` selects the distance-kernel
    cross-correlation implementation (``auto``/``fft``/``matvec`` —
    see :func:`~repro.runtime.kernel.resolve_backend`); ``auto`` keeps
    the exact mat-vec path below the FFT crossover, so output is
    independent of executor and cache choices and, below the crossover,
    of the backend as well.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if not patterns:
        raise ValueError("patterns must be non-empty")
    with tracer.span("transform") as span:
        span.add("transform.series", X.shape[0])
        span.add("transform.patterns", len(patterns))
        X_rot = rotate_halves(X) if rotation_invariant else None

        values_list = [pattern_values(p) for p in patterns]
        serial = executor is None or executor.backend == "serial"
        if serial or executor.backend == "thread":
            shared_cache = cache if cache is not None else default_cache()
            token = shared_cache.token(X)
            token_rot = shared_cache.token(X_rot) if X_rot is not None else None
        else:
            # Process workers rebuild statistics locally; chunking by
            # contiguous blocks keeps each (length, chunk) rebuilt once.
            shared_cache = token = token_rot = None

        if serial:
            return _feature_block(
                (values_list, X, X_rot, shared_cache, token, token_rot, kernel_backend)
            )

        n_chunks = min(len(values_list), executor.n_jobs * 4)
        bounds = np.linspace(0, len(values_list), n_chunks + 1).astype(int)
        jobs = [
            (values_list[lo:hi], X, X_rot, shared_cache, token, token_rot, kernel_backend)
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        blocks = executor.map(_feature_block, jobs)
        return np.concatenate(blocks, axis=1)
