"""The pattern-distance feature transform.

A time series ``T`` becomes the vector of closest-match distances
between ``T`` and each representative pattern (paper §2.1 "Time Series
Transformation" and §3.1). The rotation-invariant variant additionally
matches against the series cut at its midpoint with halves swapped and
keeps the minimum (§6.1), so a pattern broken by a rotation is still
found whole in one of the two copies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.rotate import halfway_rotation
from ..distance.best_match import batch_best_distances, best_match

__all__ = ["pattern_features", "pattern_feature_row"]


def _pattern_values(pattern) -> np.ndarray:
    # Accept raw arrays, PatternCandidate and RepresentativePattern.
    values = getattr(pattern, "values", pattern)
    return np.asarray(values, dtype=float)


def pattern_feature_row(
    series: np.ndarray,
    patterns: Sequence,
    *,
    rotation_invariant: bool = False,
) -> np.ndarray:
    """Closest-match distances of one series to every pattern."""
    series = np.asarray(series, dtype=float)
    rotated = halfway_rotation(series) if rotation_invariant else None
    row = np.empty(len(patterns))
    for k, pattern in enumerate(patterns):
        values = _pattern_values(pattern)
        dist = best_match(values, series).distance
        if rotated is not None:
            dist = min(dist, best_match(values, rotated).distance)
        row[k] = dist
    return row


def pattern_features(
    X: np.ndarray,
    patterns: Sequence,
    *,
    rotation_invariant: bool = False,
) -> np.ndarray:
    """Transform ``(n, m)`` series into ``(n, K)`` pattern distances.

    Computed one pattern at a time with the batched closest-match
    kernel, which is the dominant cost of both training (Algorithm 2's
    transform) and classification.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if not patterns:
        raise ValueError("patterns must be non-empty")
    X_rot = None
    if rotation_invariant:
        X_rot = np.column_stack([X[:, X.shape[1] // 2 :], X[:, : X.shape[1] // 2]])
    out = np.empty((X.shape[0], len(patterns)))
    for k, pattern in enumerate(patterns):
        values = _pattern_values(pattern)
        dist = batch_best_distances(values, X)
        if X_rot is not None:
            dist = np.minimum(dist, batch_best_distances(values, X_rot))
        out[:, k] = dist
    return out
