"""Exploratory utilities around the mined patterns.

The paper emphasizes that RPM's class-specific patterns have value
beyond classification ("excellent exploratory characteristics", §1,
Figure 1): they localize the class-defining structure. This module
turns a fitted :class:`~repro.core.rpm.RPMClassifier` into exactly that
kind of report:

* :func:`locate_pattern` — where a pattern best matches a series;
* :func:`pattern_coverage` — how consistently each pattern appears in
  its own class versus the others (the discrimination margin);
* :func:`explain_prediction` — per-series: which patterns drove the
  distance vector that the classifier saw;
* :func:`class_profile` — a compact, printable per-class summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distance.best_match import batch_best_distances, best_match
from .patterns import RepresentativePattern

__all__ = [
    "PatternLocation",
    "PatternCoverage",
    "locate_pattern",
    "pattern_coverage",
    "explain_prediction",
    "class_profile",
]


@dataclass(frozen=True)
class PatternLocation:
    """Best alignment of one pattern on one series."""

    pattern_index: int
    label: object
    position: int
    length: int
    distance: float


@dataclass(frozen=True)
class PatternCoverage:
    """How a pattern separates its own class from the rest.

    ``own_mean`` / ``other_mean`` are the average closest-match
    distances within / outside the pattern's class; ``margin`` is their
    difference (positive = the pattern sits closer to its own class,
    i.e. it behaves like a class-specific motif).
    """

    pattern_index: int
    label: object
    own_mean: float
    other_mean: float

    @property
    def margin(self) -> float:
        """other_mean - own_mean; positive = discriminative."""
        return self.other_mean - self.own_mean


def locate_pattern(
    pattern: RepresentativePattern | np.ndarray,
    series: np.ndarray,
) -> PatternLocation:
    """Best-match alignment of *pattern* on *series*."""
    values = getattr(pattern, "values", pattern)
    label = getattr(pattern, "label", None)
    index = getattr(pattern, "feature_index", -1)
    match = best_match(np.asarray(values, dtype=float), np.asarray(series, dtype=float))
    return PatternLocation(
        pattern_index=index,
        label=label,
        position=match.position,
        length=match.length,
        distance=match.distance,
    )


def pattern_coverage(
    patterns: list[RepresentativePattern],
    X: np.ndarray,
    y: np.ndarray,
) -> list[PatternCoverage]:
    """Own-class vs other-class mean distances for every pattern."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y disagree on the number of instances")
    out = []
    for k, pattern in enumerate(patterns):
        distances = batch_best_distances(pattern.values, X)
        own = distances[y == pattern.label]
        other = distances[y != pattern.label]
        out.append(
            PatternCoverage(
                pattern_index=k,
                label=pattern.label,
                own_mean=float(own.mean()) if own.size else float("nan"),
                other_mean=float(other.mean()) if other.size else float("nan"),
            )
        )
    return out


def explain_prediction(
    clf,
    series: np.ndarray,
) -> list[PatternLocation]:
    """Alignments of every representative pattern on one series.

    Sorted by distance, so the first entries are the patterns whose
    presence most strongly shaped the classifier's feature vector.
    """
    if not getattr(clf, "patterns_", None):
        raise RuntimeError("classifier has no patterns; call fit() first")
    series = np.asarray(series, dtype=float)
    locations = []
    for k, pattern in enumerate(clf.patterns_):
        match = best_match(pattern.values, series)
        locations.append(
            PatternLocation(
                pattern_index=k,
                label=pattern.label,
                position=match.position,
                length=match.length,
                distance=match.distance,
            )
        )
    return sorted(locations, key=lambda loc: loc.distance)


def class_profile(clf, X: np.ndarray, y: np.ndarray) -> str:
    """Printable per-class pattern summary of a fitted classifier."""
    if not getattr(clf, "patterns_", None):
        raise RuntimeError("classifier has no patterns; call fit() first")
    coverage = pattern_coverage(clf.patterns_, X, y)
    lines = []
    labels = sorted({p.label for p in clf.patterns_}, key=str)
    for label in labels:
        members = [
            (p, c)
            for p, c in zip(clf.patterns_, coverage)
            if p.label == label
        ]
        lines.append(f"class {label!r}: {len(members)} pattern(s)")
        for pattern, cov in members:
            lines.append(
                f"  len={pattern.length:<4d} freq={pattern.candidate.frequency:<3d} "
                f"own-dist={cov.own_mean:.2f} other-dist={cov.other_mean:.2f} "
                f"margin={cov.margin:+.2f}"
            )
    return "\n".join(lines)
