"""RPMClassifier — the paper's end-to-end classification pipeline.

Training (§3.2 + §4.3):

1. select per-class SAX parameters (DIRECT by default, grid optional,
   or fixed parameters supplied by the caller);
2. Algorithm 1: mine class-specific motif candidates per class with
   that class's parameters;
3. Algorithm 2 on the pooled candidates: τ de-duplication + CFS — this
   is also the "apply feature selection again" step of §4.3 that
   reconciles patterns found under different parameter sets;
4. fit a standard classifier (SVM by default) on the pattern-distance
   features.

Classification (§3.1): transform a series into its closest-match
distances to the representative patterns, feed the vector to the
classifier. With ``rotation_invariant=True`` the transform also matches
the halfway-rotated copy (§6.1).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..base import BaseEstimator, keyword_only
from ..ml.svm import SVC
from ..obs import resolve_tracer
from ..obs.metrics import registry
from ..runtime.cache import DEFAULT_CACHE_SIZE, WindowStatsCache
from ..runtime.discretize_cache import (
    DEFAULT_DISCRETIZE_CACHE_SIZE,
    DiscretizationCache,
)
from ..runtime.executor import BACKENDS, ParallelExecutor
from ..runtime.kernel import KERNEL_BACKENDS
from ..runtime.selection_cache import DEFAULT_SELECTION_CACHE_SIZE, SelectionCache
from ..sax.discretize import SaxParams
from ..sax.znorm import znorm
from .candidates import find_candidates
from .params import ParamRanges, ParamSelector, default_ranges
from .patterns import PatternCandidate, RepresentativePattern
from .selection import SelectionResult, find_distinct
from .transform import pattern_features

__all__ = ["RPMClassifier"]


class RPMClassifier(BaseEstimator):
    """Representative Pattern Mining classifier.

    Configuration is keyword-only (legacy positional ``sax_params``
    still works for one release behind a :class:`DeprecationWarning`);
    :class:`~repro.base.BaseEstimator` supplies ``get_params`` /
    ``set_params`` / ``clone``.

    Parameters
    ----------
    sax_params:
        ``None`` (default) — learn per-class parameters with
        ``param_search``; a single :class:`SaxParams` — use it for every
        class; or a ``{label: SaxParams}`` dict.
    param_search:
        ``'direct'`` (paper's choice) or ``'grid'``.
    gamma:
        Minimum motif support as a fraction of the class training size
        (the paper's experiments use 20 %).
    tau_percentile:
        Percentile of within-cluster distances used as the similarity
        threshold τ (paper: 30).
    prototype:
        Cluster prototype, ``'centroid'`` or ``'medoid'``.
    support_mode:
        ``'instances'`` (definition §2.1) or ``'occurrences'``
        (Algorithm 1 listing); see :func:`find_class_candidates`.
    rotation_invariant:
        Enable the two-copy closest-match transform of §6.1.
    classifier_factory:
        Zero-argument callable producing the downstream classifier
        (``fit``/``predict``); defaults to the RBF-kernel SVM.
    direct_budget / n_splits / cv_folds / validation_fraction:
        Algorithm 3 budget knobs (see :class:`ParamSelector`).
    n_jobs:
        Worker count for the parallel runtime: per-class candidate
        mining and the per-pattern transform columns fan out across
        this many workers (``-1`` = all CPUs, ``1`` = serial). Results
        are bitwise identical for every value — see ``docs/runtime.md``.
    parallel_backend:
        ``'thread'`` (default), ``'process'`` or ``'serial'``.
    kernel_backend:
        Distance-kernel cross-correlation implementation:
        ``'auto'`` (default — FFT above the calibrated crossover,
        exact mat-vec below it), ``'fft'``, or ``'matvec'``. See
        :func:`~repro.runtime.kernel.resolve_backend` and
        ``docs/runtime.md``.
    cache_size:
        Entries in the sliding-window statistics LRU cache shared by
        this classifier's transforms (``0`` disables caching).
    discretize_cache_size:
        Entries in the discretization LRU cache shared by the parameter
        search and mining (z-normalized window matrices + PAA
        reductions per ``(series, window_size)``; ``0`` disables).
    selection_cache_size:
        Column entries in the CFS selection LRU cache shared by the
        parameter search and the final fit (per-column discretized
        codes + SU blocks per ``(column, labels, bins)``; ``0``
        disables). Never changes results — see ``docs/runtime.md``.
    numerosity_reduction:
        ``True`` (paper default, collapse exact-duplicate consecutive
        words), ``False`` (keep all), or one of ``'exact'`` /
        ``'mindist'`` / ``'none'``.
    trace:
        Observability knob: ``None``/``False`` (default) runs with the
        zero-cost no-op tracer; ``True`` builds a fresh
        :class:`~repro.obs.tracer.Tracer`; an existing tracer is used
        as-is. The resolved tracer is available as ``self.tracer`` —
        render it with :func:`repro.obs.format_tree` or dump it with
        :func:`repro.obs.write_jsonl`. Tracing never changes results:
        traced runs are bitwise identical to untraced ones.
    """

    @keyword_only("sax_params")
    def __init__(
        self,
        *,
        sax_params: SaxParams | dict | None = None,
        param_search: str = "direct",
        ranges: ParamRanges | None = None,
        gamma: float = 0.2,
        tau_percentile: float = 30.0,
        prototype: str = "centroid",
        support_mode: str = "instances",
        rotation_invariant: bool = False,
        numerosity_reduction: bool = True,
        classifier_factory: Callable | None = None,
        direct_budget: int = 60,
        n_splits: int = 3,
        validation_fraction: float = 0.3,
        cv_folds: int = 5,
        seed: int = 0,
        n_jobs: int = 1,
        parallel_backend: str = "thread",
        kernel_backend: str = "auto",
        cache_size: int = DEFAULT_CACHE_SIZE,
        discretize_cache_size: int = DEFAULT_DISCRETIZE_CACHE_SIZE,
        selection_cache_size: int = DEFAULT_SELECTION_CACHE_SIZE,
        trace=None,
    ) -> None:
        if param_search not in ("direct", "grid"):
            raise ValueError(f"param_search must be 'direct' or 'grid', got {param_search!r}")
        if parallel_backend not in BACKENDS:
            raise ValueError(
                f"parallel_backend must be one of {BACKENDS}, got {parallel_backend!r}"
            )
        if kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}, got {kernel_backend!r}"
            )
        self.sax_params = sax_params
        self.param_search = param_search
        self.ranges = ranges
        self.gamma = gamma
        self.tau_percentile = tau_percentile
        self.prototype = prototype
        self.support_mode = support_mode
        self.rotation_invariant = rotation_invariant
        self.numerosity_reduction = numerosity_reduction
        self.classifier_factory = classifier_factory or (lambda: SVC(kernel="rbf", C=1.0))
        self.direct_budget = direct_budget
        self.n_splits = n_splits
        self.validation_fraction = validation_fraction
        self.cv_folds = cv_folds
        self.seed = seed
        self.n_jobs = n_jobs
        self.parallel_backend = parallel_backend
        self.kernel_backend = kernel_backend
        self.cache_size = cache_size
        self.discretize_cache_size = discretize_cache_size
        self.selection_cache_size = selection_cache_size
        # ``trace`` is kept verbatim for get_params()/clone(); the
        # resolved tracer is what the pipeline actually uses.
        self.trace = trace
        self.tracer = resolve_tracer(trace)
        self._stats_cache = WindowStatsCache(cache_size)
        self._discretize_cache = DiscretizationCache(discretize_cache_size)
        self._selection_cache = SelectionCache(selection_cache_size)

        self.patterns_: list[RepresentativePattern] = []
        self.params_by_class_: dict = {}
        self.selection_: SelectionResult | None = None
        self.classifier_ = None
        self.classes_: np.ndarray | None = None
        self.n_timesteps_: int | None = None
        self.n_param_evaluations_: int = 0
        self._train_labels: np.ndarray | None = None

    # -- runtime ----------------------------------------------------------------

    def _make_executor(self) -> ParallelExecutor:
        """A fresh executor honoring ``n_jobs``/``parallel_backend``.

        Created per fit/transform call and closed afterwards so the
        classifier object itself never holds a pool (and stays
        picklable/serializable). With tracing on, per-chunk timings go
        to the process-wide metrics registry.
        """
        metrics = registry() if self.tracer.enabled else None
        return ParallelExecutor(self.n_jobs, self.parallel_backend, metrics=metrics)

    # -- training ---------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RPMClassifier":
        """Run the full RPM training pipeline (Algorithms 1-3)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, m) with matching y")
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValueError("need at least two classes")
        self.n_timesteps_ = int(X.shape[1])

        tracer = self.tracer
        with tracer.span("fit") as fit_span, tracer.adopt(fit_span):
            fit_span.add("fit.series", X.shape[0])
            with self._make_executor() as executor:
                with tracer.span("params"):
                    self.params_by_class_ = self._resolve_params(X, y, executor)
                candidates = self._mine_with_fallback(X, y, executor)
                self.selection_ = find_distinct(
                    X,
                    y,
                    candidates,
                    tau_percentile=self.tau_percentile,
                    rotation_invariant=self.rotation_invariant,
                    executor=executor,
                    cache=self._stats_cache,
                    selection_cache=self._selection_cache,
                    tracer=tracer,
                    kernel_backend=self.kernel_backend,
                )
            self.patterns_ = self.selection_.patterns
            self._train_labels = y
            self.classifier_ = self.classifier_factory()
            with tracer.span("classifier"):
                self.classifier_.fit(self.selection_.train_features, y)
        return self

    def _resolve_params(
        self, X: np.ndarray, y: np.ndarray, executor: ParallelExecutor | None = None
    ) -> dict:
        if isinstance(self.sax_params, SaxParams):
            return {label: self.sax_params for label in self.classes_}
        if isinstance(self.sax_params, dict):
            missing = [label for label in self.classes_ if label not in self.sax_params]
            if missing:
                raise ValueError(f"sax_params missing classes: {missing}")
            return dict(self.sax_params)
        selector = ParamSelector(
            X,
            y,
            ranges=self.ranges or default_ranges(X.shape[1]),
            gamma=self.gamma,
            tau_percentile=self.tau_percentile,
            prototype=self.prototype,
            support_mode=self.support_mode,
            n_splits=self.n_splits,
            validation_fraction=self.validation_fraction,
            cv_folds=self.cv_folds,
            classifier_factory=self.classifier_factory,
            seed=self.seed,
            executor=executor,
            tracer=self.tracer,
            discretize_cache=self._discretize_cache,
            selection_cache=self._selection_cache,
        )
        if self.param_search == "direct":
            params = selector.select_direct(max_evaluations=self.direct_budget)
        else:
            params = selector.select_grid()
        self.n_param_evaluations_ = selector.n_evaluations
        return params

    def _mine_with_fallback(
        self,
        X: np.ndarray,
        y: np.ndarray,
        executor: ParallelExecutor | None = None,
    ) -> list[PatternCandidate]:
        """Algorithm 1, relaxing γ if nothing survives the threshold."""
        gamma = self.gamma
        for _ in range(3):
            candidates = find_candidates(
                X,
                y,
                self.params_by_class_,
                gamma=gamma,
                prototype=self.prototype,
                support_mode=self.support_mode,
                numerosity_reduction=self.numerosity_reduction,
                executor=executor,
                tracer=self.tracer,
                discretize_cache=self._discretize_cache,
            )
            if candidates:
                return candidates
            gamma /= 2.0
        # Last resort: one pattern per class — the z-normalized class
        # mean — so the pipeline always yields a working classifier.
        fallback: list[PatternCandidate] = []
        for label in self.classes_:
            mean_series = znorm(X[y == label].mean(axis=0))
            fallback.append(
                PatternCandidate(
                    values=mean_series,
                    label=label,
                    frequency=int(np.sum(y == label)),
                    support=int(np.sum(y == label)),
                    rule_id=-1,
                    words=(),
                    sax_params=self.params_by_class_[label],
                )
            )
        return fallback

    # -- inference ----------------------------------------------------------------

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Pattern-distance features of new series (n, K)."""
        if not self.patterns_:
            raise RuntimeError("classifier used before fit()")
        with self._make_executor() as executor:
            return pattern_features(
                X,
                self.patterns_,
                rotation_invariant=self.rotation_invariant,
                executor=executor,
                cache=self._stats_cache,
                tracer=self.tracer,
                kernel_backend=self.kernel_backend,
            )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a class label for every row of ``X``."""
        if self.classifier_ is None:
            raise RuntimeError("classifier used before fit()")
        return self.classifier_.predict(self.transform(X))

    # -- reporting -------------------------------------------------------------------

    def patterns_for_class(self, label) -> list[RepresentativePattern]:
        return [p for p in self.patterns_ if p.label == label]

    def describe_patterns(self) -> str:
        lines = [f"{len(self.patterns_)} representative patterns:"]
        for pattern in self.patterns_:
            lines.append("  " + pattern.describe())
        return "\n".join(lines)
