"""Pattern data types for the RPM pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sax.discretize import SaxParams

__all__ = ["PatternCandidate", "RepresentativePattern"]


@dataclass
class PatternCandidate:
    """A class-specific motif prototype emitted by Algorithm 1.

    One candidate is the centroid (or medoid) of a refined cluster of
    grammar-rule subsequences. ``frequency`` counts the cluster's raw
    occurrences in the class's concatenated training series — it is the
    tie-breaker Algorithm 2 uses when de-duplicating similar
    candidates — while ``support`` counts distinct training instances.
    """

    values: np.ndarray
    label: object
    frequency: int
    support: int
    rule_id: int
    words: tuple[str, ...]
    sax_params: SaxParams
    within_distances: np.ndarray = field(repr=False, default_factory=lambda: np.empty(0))

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.ndim != 1 or self.values.size < 2:
            raise ValueError("pattern values must be a 1-D array of >= 2 points")

    @property
    def length(self) -> int:
        """Number of points."""
        return int(self.values.size)


@dataclass
class RepresentativePattern:
    """A pattern that survived Algorithm 2's discriminative selection.

    The classifier's feature ``feature_index`` is the closest-match
    distance of a series to ``values``. ``label`` records which class's
    mining produced it; the pattern's discriminative power is of course
    global (features are shared by all classes in the SVM).
    """

    values: np.ndarray
    label: object
    feature_index: int
    candidate: PatternCandidate

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)

    @property
    def length(self) -> int:
        """Number of points."""
        return int(self.values.size)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"class={self.label!r} len={self.length} "
            f"freq={self.candidate.frequency} support={self.candidate.support} "
            f"sax={self.candidate.sax_params.as_tuple()}"
        )
