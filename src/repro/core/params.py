"""Algorithm 3 — SAX parameter selection (grid search and DIRECT).

Time series classes differ in character, so RPM learns one SAX
parameter triple (sliding window, PAA size, alphabet size) *per class*
(§4). A candidate triple is scored by:

1. splitting the training data into train/validation partitions
   ``n_splits`` times (the paper uses 5);
2. mining patterns on the train partition (Algorithms 1 + 2);
3. transforming the validation partition and measuring the per-class
   F-measure of a five-fold cross-validated classifier on it.

The expensive part — mining + scoring — depends only on the parameter
triple, not on which class we are optimizing, so a shared evaluator
caches triple → per-class-F1 and both search strategies (brute-force
grid with γ-pruning, and DIRECT with integer rounding) read from it.
The evaluator's unique-evaluation count is the ``R`` of §5.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ml.crossval import kfold_predictions, stratified_split
from ..ml.metrics import precision_recall_f1
from ..ml.svm import SVC
from ..obs.metrics import registry
from ..obs.tracer import NOOP
from ..opt.direct import direct_minimize
from ..opt.grid import PRUNED_VALUE, grid_search
from ..runtime.cache import WindowStatsCache
from ..runtime.discretize_cache import DiscretizationCache
from ..runtime.selection_cache import SelectionCache
from ..sax.discretize import SaxParams
from .candidates import find_candidates
from .selection import find_distinct
from .transform import pattern_features

__all__ = ["ParamRanges", "ParamSelector", "default_ranges"]


@dataclass(frozen=True)
class ParamRanges:
    """Inclusive integer bounds for the three SAX parameters."""

    window: tuple[int, int]
    paa: tuple[int, int]
    alphabet: tuple[int, int]

    def clip(self, window: int, paa: int, alphabet: int) -> tuple[int, int, int]:
        """Clamp a raw integer triple into the legal parameter box."""
        window = int(np.clip(window, *self.window))
        paa = int(np.clip(paa, *self.paa))
        paa = min(paa, window)
        alphabet = int(np.clip(alphabet, *self.alphabet))
        return window, paa, alphabet

    def grid_axes(self, n_window: int = 6, n_paa: int = 4, n_alpha: int = 3) -> list[list[int]]:
        """Evenly spaced integer axes for the brute-force search."""

        def axis(bounds: tuple[int, int], count: int) -> list[int]:
            lo, hi = bounds
            return sorted({int(round(v)) for v in np.linspace(lo, hi, count)})

        return [axis(self.window, n_window), axis(self.paa, n_paa), axis(self.alphabet, n_alpha)]


def default_ranges(series_length: int) -> ParamRanges:
    """Sensible UCR-scale bounds: window 10-60 % of the series, PAA up
    to 12 segments, alphabet 3-9 (granularities past these add little,
    per the SAX literature)."""
    lo_w = max(8, int(round(0.1 * series_length)))
    hi_w = max(lo_w + 2, int(round(0.6 * series_length)))
    return ParamRanges(window=(lo_w, hi_w), paa=(3, 12), alphabet=(3, 9))


@dataclass
class _Evaluation:
    f1_by_class: dict
    pruned: bool = False


class ParamSelector:
    """Shared, cached evaluator + the two search strategies of §4."""

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        ranges: ParamRanges | None = None,
        gamma: float = 0.2,
        tau_percentile: float = 30.0,
        prototype: str = "centroid",
        support_mode: str = "instances",
        n_splits: int = 3,
        validation_fraction: float = 0.3,
        cv_folds: int = 5,
        classifier_factory=None,
        seed: int = 0,
        executor=None,
        tracer=NOOP,
        discretize_cache=None,
        selection_cache=None,
    ) -> None:
        self.X = np.asarray(X, dtype=float)
        self.y = np.asarray(y)
        self.ranges = ranges or default_ranges(self.X.shape[1])
        self.gamma = gamma
        self.tau_percentile = tau_percentile
        self.prototype = prototype
        self.support_mode = support_mode
        self.n_splits = n_splits
        self.validation_fraction = validation_fraction
        self.cv_folds = cv_folds
        self.classifier_factory = classifier_factory or (lambda: SVC(kernel="rbf", C=1.0))
        self.seed = seed
        # Shared parallel runtime: per-class mining and validation
        # transforms inside each evaluation fan out over this executor.
        self.executor = executor
        self.tracer = tracer
        self._stats_cache = WindowStatsCache()
        # Shared discretization pre-work: evaluations revisiting a
        # (class series, window size) pair skip sliding/z-norm/PAA.
        self._discretize_cache = (
            discretize_cache if discretize_cache is not None else DiscretizationCache()
        )
        # Shared CFS pre-work: evaluations whose candidate pools overlap
        # skip re-discretizing and re-scoring the shared feature columns.
        self._selection_cache = (
            selection_cache if selection_cache is not None else SelectionCache()
        )
        self.classes_ = np.unique(self.y)
        self._cache: dict[tuple[int, int, int], _Evaluation] = {}
        # Running best triple per label, updated as evaluations land —
        # replaces a full-cache rescan per class at selection time.
        self._best: dict = {}
        # Fixed splits shared by every evaluation keeps the comparison fair.
        self._splits = [
            stratified_split(self.y, validation_fraction, seed=seed + 1000 * s)
            for s in range(n_splits)
        ]

    # -- the cached objective --------------------------------------------------

    @property
    def n_evaluations(self) -> int:
        """Unique parameter triples evaluated — the paper's R (§5.3)."""
        return len(self._cache)

    def evaluate(self, window: int, paa: int, alphabet: int) -> _Evaluation:
        """Score one integer parameter triple (cached)."""
        key = self.ranges.clip(window, paa, alphabet)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        evaluation = self._evaluate_uncached(SaxParams(*key))
        self._record(key, evaluation)
        return evaluation

    def evaluate_batch(self, points) -> list[_Evaluation]:
        """Score a batch of raw (float) parameter points, in order.

        Points are rounded and clipped to integer triples; distinct
        uncached triples are evaluated — concurrently over the thread
        executor when one is attached — and merged into the cache in
        first-appearance order, exactly where the serial loop would
        have inserted them. The per-label running best therefore sees
        the same insertion sequence as serial evaluation, so tie-breaks
        (strict improvement, earliest triple wins) are identical.
        """
        keys = [self.ranges.clip(*(int(round(v)) for v in point)) for point in points]
        new_keys: list[tuple[int, int, int]] = []
        seen: set[tuple[int, int, int]] = set()
        for key in keys:
            if key in self._cache or key in seen:
                continue
            seen.add(key)
            new_keys.append(key)
        fan_out = (
            self.executor is not None
            and self.executor.backend == "thread"
            and len(new_keys) > 1
        )
        if fan_out:
            registry().inc("direct.parallel_points", len(new_keys))
            evaluations = self.executor.map(self._evaluate_batch_job, new_keys)
        else:
            evaluations = [self._evaluate_uncached(SaxParams(*key)) for key in new_keys]
        for key, evaluation in zip(new_keys, evaluations):
            self._record(key, evaluation)
        return [self._cache[key] for key in keys]

    def _evaluate_batch_job(self, key: tuple[int, int, int]) -> _Evaluation:
        # Worker threads must not re-enter the shared pool (the outer
        # map already owns every slot): inner stages run serially.
        return self._evaluate_uncached(SaxParams(*key), executor=None)

    def _record(self, key: tuple[int, int, int], evaluation: _Evaluation) -> None:
        """Insert an evaluation and maintain the per-label running best."""
        self._cache[key] = evaluation
        if evaluation.pruned:
            return
        for label in self.classes_:
            f1 = float(evaluation.f1_by_class.get(label, 0.0))
            current = self._best.get(label)
            if current is None or f1 > current[0]:
                self._best[label] = (f1, key)

    _UNSET = object()

    def _evaluate_uncached(self, params: SaxParams, *, executor=_UNSET) -> _Evaluation:
        # The R of §5.3: one increment per *unique* triple actually mined.
        registry().inc("direct.evaluations")
        with self.tracer.span("evaluate", params=params.as_tuple()):
            return self._run_evaluation(params, executor=executor)

    def _run_evaluation(self, params: SaxParams, *, executor=_UNSET) -> _Evaluation:
        executor = self.executor if executor is ParamSelector._UNSET else executor
        sums = {label: 0.0 for label in self.classes_}
        useful_splits = 0
        for train_idx, val_idx in self._splits:
            X_tr, y_tr = self.X[train_idx], self.y[train_idx]
            X_val, y_val = self.X[val_idx], self.y[val_idx]
            if params.window_size > self.X.shape[1]:
                continue
            params_by_class = {label: params for label in self.classes_}
            try:
                candidates = find_candidates(
                    X_tr,
                    y_tr,
                    params_by_class,
                    gamma=self.gamma,
                    prototype=self.prototype,
                    support_mode=self.support_mode,
                    executor=executor,
                    tracer=self.tracer,
                    discretize_cache=self._discretize_cache,
                )
            except ValueError:
                continue
            if not candidates:
                # γ-pruning (paper §4.1): nothing frequent enough.
                continue
            selection = find_distinct(
                X_tr,
                y_tr,
                candidates,
                tau_percentile=self.tau_percentile,
                executor=executor,
                cache=self._stats_cache,
                selection_cache=self._selection_cache,
                tracer=self.tracer,
            )
            X_val_t = pattern_features(
                X_val,
                selection.patterns,
                executor=executor,
                cache=self._stats_cache,
                tracer=self.tracer,
            )

            def fit_predict(Xa, ya, Xb):
                if np.unique(ya).size < 2:
                    return np.full(Xb.shape[0], ya[0])
                return self.classifier_factory().fit(Xa, ya).predict(Xb)

            folds = min(self.cv_folds, X_val_t.shape[0])
            if folds < 2:
                continue
            preds = kfold_predictions(
                fit_predict, X_val_t, y_val, n_folds=folds, seed=self.seed
            )
            scores = precision_recall_f1(y_val, preds, labels=self.classes_)
            for label, f1 in zip(scores.labels, scores.f1):
                sums[label] += float(f1)
            useful_splits += 1
        if useful_splits == 0:
            return _Evaluation(f1_by_class={}, pruned=True)
        return _Evaluation(
            f1_by_class={label: sums[label] / useful_splits for label in self.classes_}
        )

    # -- search strategies --------------------------------------------------------

    def select_direct(
        self,
        *,
        max_evaluations: int = 60,
        max_iterations: int = 25,
    ) -> dict:
        """Per-class best SAX parameters via DIRECT (§4.2).

        One DIRECT run per class; the shared cache means a triple
        visited while optimizing class A is free for class B. Each
        DIRECT iteration hands its full batch of candidate points to
        :meth:`evaluate_batch`, which fans distinct uncached triples
        over the attached thread executor — the search trajectory is
        identical to the serial path (see :func:`direct_minimize`).
        """
        bounds = [
            (float(self.ranges.window[0]), float(self.ranges.window[1])),
            (float(self.ranges.paa[0]), float(self.ranges.paa[1])),
            (float(self.ranges.alphabet[0]), float(self.ranges.alphabet[1])),
        ]
        best: dict = {}
        with self.tracer.span("direct") as span, self.tracer.adopt(span):
            for label in self.classes_:

                def objective(x: np.ndarray, _label=label) -> float:
                    w, p, a = (int(round(v)) for v in x)
                    evaluation = self.evaluate(w, p, a)
                    if evaluation.pruned:
                        return PRUNED_VALUE
                    return 1.0 - evaluation.f1_by_class.get(_label, 0.0)

                def batch_objective(points, _label=label) -> list[float]:
                    return [
                        PRUNED_VALUE
                        if evaluation.pruned
                        else 1.0 - evaluation.f1_by_class.get(_label, 0.0)
                        for evaluation in self.evaluate_batch(points)
                    ]

                result = direct_minimize(
                    objective,
                    bounds,
                    max_evaluations=max_evaluations,
                    max_iterations=max_iterations,
                    batch_evaluate=batch_objective,
                )
                key = self.ranges.clip(*(int(round(v)) for v in result.x))
                best[label] = SaxParams(*self._best_key_for(label, fallback=key))
            span.add("direct.evaluations", self.n_evaluations)
        return best

    def select_grid(self, axes: list[list[int]] | None = None) -> dict:
        """Per-class best SAX parameters via exhaustive grid (§4.1)."""
        axes = axes or self.ranges.grid_axes()

        def objective(key: tuple[int, ...]) -> float:
            evaluation = self.evaluate(*key)
            if evaluation.pruned:
                return PRUNED_VALUE
            # Grid minimizes the mean error; per-class readout follows.
            values = list(evaluation.f1_by_class.values())
            return 1.0 - float(np.mean(values))

        with self.tracer.span("grid") as span:
            grid_search(objective, axes)
            span.add("direct.evaluations", self.n_evaluations)
        return {
            label: SaxParams(*self._best_key_for(label, fallback=None))
            for label in self.classes_
        }

    def _best_key_for(self, label, fallback) -> tuple[int, int, int]:
        """The cached triple with the highest F1 for *label*.

        Reads the running best maintained by :meth:`_record` — an O(1)
        lookup with the same semantics as scanning the whole cache in
        insertion order with strict improvement (ties keep the earliest
        triple).
        """
        current = self._best.get(label)
        best_key = current[1] if current is not None else None
        if best_key is None:
            best_key = fallback or self.ranges.clip(
                (self.ranges.window[0] + self.ranges.window[1]) // 2, 6, 5
            )
        return best_key
