"""Save / load fitted RPM models.

A fitted :class:`~repro.core.rpm.RPMClassifier` is persisted as a
single ``.npz`` archive holding the representative patterns, their
metadata, the per-class SAX parameters, and the training feature matrix
plus labels (the downstream classifier is refit on load — SVM training
on the small transformed matrix is milliseconds, and it keeps the
archive format classifier-agnostic and stable).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..sax.discretize import SaxParams
from .patterns import PatternCandidate, RepresentativePattern
from .rpm import RPMClassifier
from .selection import SelectionResult

__all__ = ["save_model", "load_model", "FORMAT_VERSION", "ModelFormatError"]

FORMAT_VERSION = 1


class ModelFormatError(ValueError):
    """A model archive this build cannot read.

    Raised up front by :func:`load_model` — before any reconstruction —
    when the archive is missing its metadata or carries a format
    version other than :data:`FORMAT_VERSION`. ``found`` and
    ``expected`` make the mismatch programmatically inspectable;
    ``path`` names the offending archive (always present in the
    message too, so batch tooling walking a registry can tell *which*
    artifact failed).
    """

    def __init__(
        self, message: str, *, found=None, expected=FORMAT_VERSION, path=None
    ) -> None:
        super().__init__(message)
        self.found = found
        self.expected = expected
        self.path = None if path is None else Path(path)


def save_model(clf: RPMClassifier, path: str | Path) -> Path:
    """Serialize a fitted classifier to ``path`` (``.npz``)."""
    if not clf.patterns_ or clf.selection_ is None:
        raise RuntimeError("cannot save an unfitted RPMClassifier")
    path = Path(path)
    meta = {
        "format_version": FORMAT_VERSION,
        # Training series length: optional serving metadata (strict
        # input validation + warm-up batch shape). Absent from archives
        # written by older builds, so readers must tolerate None.
        "series_length": getattr(clf, "n_timesteps_", None),
        "gamma": clf.gamma,
        "tau_percentile": clf.tau_percentile,
        "prototype": clf.prototype,
        "support_mode": clf.support_mode,
        "rotation_invariant": clf.rotation_invariant,
        "params_by_class": {
            json.dumps(_key(label)): params.as_tuple()
            for label, params in clf.params_by_class_.items()
        },
        "patterns": [
            {
                "label": _key(p.label),
                "feature_index": p.feature_index,
                "frequency": p.candidate.frequency,
                "support": p.candidate.support,
                "rule_id": p.candidate.rule_id,
                "words": list(p.candidate.words),
                "sax_params": p.candidate.sax_params.as_tuple(),
            }
            for p in clf.patterns_
        ],
        "tau": clf.selection_.tau,
    }
    arrays = {
        "meta_json": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        "train_features": clf.selection_.train_features,
        "train_labels": np.asarray(clf._train_labels),
    }
    for i, pattern in enumerate(clf.patterns_):
        arrays[f"pattern_{i}"] = pattern.values
    np.savez_compressed(path, **arrays)
    return path


def load_model(path: str | Path) -> RPMClassifier:
    """Reconstruct a fitted classifier saved by :func:`save_model`."""
    path = Path(path)
    try:
        archive_cm = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except (ValueError, OSError) as exc:
        raise ModelFormatError(
            f"{path} is not an RPM model archive: {exc}", found=None, path=path
        ) from exc
    with archive_cm as archive:
        if "meta_json" not in archive:
            raise ModelFormatError(
                f"{path} is not an RPM model archive (no metadata record)",
                found=None,
                path=path,
            )
        meta = json.loads(bytes(archive["meta_json"]).decode())
        found = meta.get("format_version")
        if found != FORMAT_VERSION:
            raise ModelFormatError(
                f"unsupported model format version {found!r} in {path}; "
                f"this build reads version {FORMAT_VERSION}",
                found=found,
                path=path,
            )
        train_features = archive["train_features"]
        train_labels = archive["train_labels"]
        pattern_values = [
            archive[f"pattern_{i}"] for i in range(len(meta["patterns"]))
        ]

    clf = RPMClassifier(
        gamma=meta["gamma"],
        tau_percentile=meta["tau_percentile"],
        prototype=meta["prototype"],
        support_mode=meta["support_mode"],
        rotation_invariant=meta["rotation_invariant"],
    )
    clf.params_by_class_ = {
        _unkey(json.loads(k)): SaxParams(*v)
        for k, v in meta["params_by_class"].items()
    }
    patterns = []
    for values, info in zip(pattern_values, meta["patterns"]):
        label = _unkey(info["label"])
        candidate = PatternCandidate(
            values=values,
            label=label,
            frequency=info["frequency"],
            support=info["support"],
            rule_id=info["rule_id"],
            words=tuple(info["words"]),
            sax_params=SaxParams(*info["sax_params"]),
        )
        patterns.append(
            RepresentativePattern(
                values=values,
                label=label,
                feature_index=info["feature_index"],
                candidate=candidate,
            )
        )
    clf.patterns_ = patterns
    clf.selection_ = SelectionResult(
        patterns=patterns,
        tau=meta["tau"],
        n_candidates_in=len(patterns),
        n_after_dedup=len(patterns),
        train_features=train_features,
    )
    clf.classes_ = np.unique(train_labels)
    clf._train_labels = train_labels
    length = meta.get("series_length")
    clf.n_timesteps_ = int(length) if length is not None else None
    clf.classifier_ = clf.classifier_factory()
    clf.classifier_.fit(train_features, train_labels)
    return clf


def _key(label):
    """JSON-safe form of a class label."""
    if isinstance(label, (np.integer,)):
        return int(label)
    if isinstance(label, (np.floating,)):
        return float(label)
    return label


def _unkey(value):
    return value
