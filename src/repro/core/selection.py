"""Algorithm 2 — FindDistinct: keep only discriminative patterns.

Three stages, exactly as in the paper:

1. **τ threshold** — the 30th percentile (configurable) of the pairwise
   subsequence distances *within* the refined clusters of Algorithm 1.
2. **Similarity pruning** — scan the candidates; whenever a new
   candidate lies within τ (closest-match distance, so different
   lengths are fine) of an already-kept one, keep the more frequent of
   the two.
3. **Feature selection** — transform the training set into candidate-
   distance features and run CFS; the selected features are the
   representative patterns (their number is decided by CFS).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..distance.best_match import batch_best_distances
from ..ml.cfs import cfs_select
from ..obs.metrics import registry
from ..obs.tracer import NOOP
from ..runtime.kernel import (
    PrenormalizedPattern,
    SlidingWindowStats,
    prenormalize_pattern,
    tie_break_argmin_rows,
)
from .patterns import PatternCandidate, RepresentativePattern
from .transform import pattern_features

__all__ = ["SelectionResult", "compute_tau", "remove_similar", "find_distinct"]

DEFAULT_TAU_PERCENTILE = 30.0


@dataclass
class SelectionResult:
    """Everything Algorithm 2 produced (kept for inspection/benches)."""

    patterns: list[RepresentativePattern]
    tau: float
    n_candidates_in: int
    n_after_dedup: int
    train_features: np.ndarray | None = field(repr=False, default=None)
    cfs_merit: float = 0.0


def compute_tau(
    candidates: list[PatternCandidate],
    percentile: float = DEFAULT_TAU_PERCENTILE,
) -> float:
    """The similarity threshold τ (paper §3.2.3).

    Pools the within-cluster pairwise distances recorded on every
    candidate and takes the requested percentile. Falls back to 0 (no
    pruning) when no cluster had two members.
    """
    if not 0.0 <= percentile <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {percentile}")
    pools = [c.within_distances for c in candidates if c.within_distances.size]
    if not pools:
        return 0.0
    return float(np.percentile(np.concatenate(pools), percentile))


class _DedupBank:
    """One per-length bank of kept candidates for :func:`remove_similar`.

    Kept values live in a capacity-doubling row matrix (amortized O(L)
    appends instead of an O(k·L) ``np.stack`` per probe) alongside their
    :class:`~repro.runtime.kernel.PrenormalizedPattern` forms, so the
    longer-candidate probe is one batched kernel call over patterns
    whose z-normalization was paid once at insert time.
    """

    __slots__ = ("length", "_values", "count", "prenormalized")

    def __init__(self, length: int) -> None:
        self.length = int(length)
        self._values = np.empty((4, self.length))
        self.count = 0
        self.prenormalized: list[PrenormalizedPattern] = []

    def append(self, values: np.ndarray) -> None:
        if self.count == self._values.shape[0]:
            grown = np.empty((2 * self.count, self.length))
            grown[: self.count] = self._values
            self._values = grown
        self._values[self.count] = values
        self.count += 1
        self.prenormalized.append(prenormalize_pattern(values))

    @property
    def values(self) -> np.ndarray:
        """The kept rows — a view, identical to stacking the kept list."""
        return self._values[: self.count]


def remove_similar(
    candidates: list[PatternCandidate],
    tau: float,
) -> list[PatternCandidate]:
    """Greedy de-duplication (Algorithm 2, lines 5-18).

    Candidates are compared by the closest-match distance (the shorter
    pattern slides over the longer); within τ the more frequent
    candidate wins. Scanning in descending frequency makes the result
    order-independent: a kept candidate can never lose to a later one.

    Kept candidates are bucketed by length into incrementally grown
    :class:`_DedupBank` arrays — candidate lengths cluster tightly
    around the SAX window, so there are few buckets. A shorter-or-equal
    candidate probes a bucket with one batched closest-match call over
    the bank's row matrix; a longer candidate slides every prenormalized
    bank pattern over itself through the batched kernel (mat-vec, the
    bitwise-exact backend), with the same low-tie-break distance the
    scalar ``best_match`` loop reported.
    """
    ordered = sorted(candidates, key=lambda c: c.frequency, reverse=True)
    kept: list[PatternCandidate] = []
    banks: dict[int, _DedupBank] = {}

    def is_similar(candidate: PatternCandidate) -> bool:
        for length, bank in banks.items():
            if candidate.length <= length:
                dists = batch_best_distances(candidate.values, bank.values)
                if bool((dists < tau).any()):
                    return True
            else:
                # Bank patterns slide over the (longer) candidate: one
                # SlidingWindowStats build per bucket instead of a full
                # rolling-statistics pass per kept pattern.
                stats = SlidingWindowStats(candidate.values[None, :], length)
                profiles = stats.batch_profiles_prenormalized(
                    bank.prenormalized, backend="matvec"
                )
                positions = tie_break_argmin_rows(profiles)
                dists = np.take_along_axis(
                    profiles, positions[:, :, None], axis=2
                )[:, 0, 0]
                if bool((dists < tau).any()):
                    return True
        return False

    for candidate in ordered:
        if not is_similar(candidate):
            kept.append(candidate)
            banks.setdefault(candidate.length, _DedupBank(candidate.length)).append(
                candidate.values
            )
    return kept


#: Cap on the candidate pool entering the pairwise de-duplication. The
#: paper's pool is O(#motifs) and small; tiny validation splits in the
#: parameter search can lower the γ threshold enough to blow the pool
#: up, so we keep only the most frequent candidates per class beyond
#: this limit (frequency ordering matches Algorithm 2's own tie-break).
DEFAULT_MAX_CANDIDATES = 120


def _cap_candidates(
    candidates: list[PatternCandidate], max_candidates: int
) -> list[PatternCandidate]:
    if len(candidates) <= max_candidates:
        return candidates
    # First-appearance label order: iterating a set here would make the
    # capped pool's class grouping (and every downstream frequency
    # tie-break) depend on the hash seed for string labels.
    labels = list(dict.fromkeys(c.label for c in candidates))
    per_class = max(1, max_candidates // len(labels))
    capped: list[PatternCandidate] = []
    for label in labels:
        members = [c for c in candidates if c.label == label]
        members.sort(key=lambda c: c.frequency, reverse=True)
        capped.extend(members[:per_class])
    return capped


def find_distinct(
    X: np.ndarray,
    y: np.ndarray,
    candidates: list[PatternCandidate],
    *,
    tau_percentile: float = DEFAULT_TAU_PERCENTILE,
    rotation_invariant: bool = False,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    executor=None,
    cache=None,
    selection_cache=None,
    tracer=NOOP,
    kernel_backend: str = "auto",
) -> SelectionResult:
    """Algorithm 2 end to end.

    Returns the representative patterns plus the transformed training
    matrix restricted to the selected features (handy for fitting the
    downstream classifier without recomputing distances).

    ``executor``/``cache`` are forwarded to the training-set feature
    transform (stage 3), the step that dominates Algorithm 2's cost;
    ``selection_cache`` (a
    :class:`~repro.runtime.selection_cache.SelectionCache`) memoizes
    the CFS stage's per-column discretization and SU blocks across
    calls with overlapping candidate pools. ``tracer`` records a
    ``select`` span with ``tau`` / ``dedup`` / ``transform`` / ``cfs``
    children; de-duplication and CFS drop counts go to the metrics
    registry (``candidates.dropped_dedup``, ``patterns.selected``).
    """
    if not candidates:
        raise ValueError("no candidates to select from")
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)

    metrics = registry()
    with tracer.span("select") as span, tracer.adopt(span):
        with tracer.span("tau"):
            tau = compute_tau(candidates, tau_percentile)
        capped = _cap_candidates(candidates, max_candidates)
        with tracer.span("dedup") as dedup_span:
            deduped = remove_similar(capped, tau)
            dedup_span.add("candidates.in", len(capped))
            dedup_span.add("candidates.kept", len(deduped))
        metrics.inc("candidates.dropped_dedup", len(capped) - len(deduped))

        features = pattern_features(
            X,
            deduped,
            rotation_invariant=rotation_invariant,
            executor=executor,
            cache=cache,
            tracer=tracer,
            kernel_backend=kernel_backend,
        )
        with tracer.span("cfs") as cfs_span:
            result = cfs_select(features, y, cache=selection_cache)
            cfs_span.add("patterns.selected", len(result.selected))
        metrics.inc("patterns.selected", len(result.selected))
    patterns = [
        RepresentativePattern(
            values=deduped[idx].values,
            label=deduped[idx].label,
            feature_index=pos,
            candidate=deduped[idx],
        )
        for pos, idx in enumerate(result.selected)
    ]
    return SelectionResult(
        patterns=patterns,
        tau=tau,
        n_candidates_in=len(candidates),
        n_after_dedup=len(deduped),
        train_features=features[:, result.selected],
        cfs_merit=result.merit,
    )
