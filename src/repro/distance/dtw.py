"""Dynamic Time Warping with a Sakoe-Chiba band and the LB_Keogh bound.

Implements the distance behind the paper's strongest global baseline,
1-NN DTW with the *best warping window* (NN-DTWB): constrained DTW plus
the LB_Keogh lower bound that makes the nearest-neighbour search
tractable (Ratanamahatana & Keogh 2004).

The DP is vectorized row-by-row. The awkward in-row dependency
``cur[j] = cost[j] + min(b[j], cur[j-1])`` (with ``b[j] =
min(prev[j], prev[j-1])``) is solved in closed form: writing
``C[j] = Σ_{i≤j} cost[i]`` gives ``cur[j] − C[j] =
min_{k≤j}(b[k] − C[k−1])``, i.e. a running minimum — one
``np.minimum.accumulate`` per row instead of a Python inner loop.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dtw_distance", "dtw_distance_reference", "lb_keogh", "envelope"]


def _check_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("dtw expects 1-D arrays")
    if a.size == 0 or b.size == 0:
        raise ValueError("dtw requires non-empty series")
    return a, b


def _resolve_band(n: int, m: int, window: int | None) -> int:
    if window is None:
        return max(n, m)
    return max(int(window), abs(n - m))


def dtw_distance(
    a: np.ndarray,
    b: np.ndarray,
    window: int | None = None,
    *,
    cutoff: float | None = None,
) -> float:
    """DTW distance between two 1-D series (vectorized DP).

    Parameters
    ----------
    a, b:
        The series; lengths may differ.
    window:
        Sakoe-Chiba band half-width in samples. ``None`` means
        unconstrained; the band is widened to ``|len(a) − len(b)|`` so a
        path always exists.
    cutoff:
        Early-abandon threshold: when every cell of a DP row exceeds
        ``cutoff²`` the function returns ``inf`` immediately.

    Returns
    -------
    float
        ``sqrt`` of the accumulated squared point costs along the
        optimal warping path.
    """
    a, b = _check_pair(a, b)
    n, m = a.size, b.size
    band = _resolve_band(n, m, window)
    limit = cutoff * cutoff if cutoff is not None else None
    inf = np.inf

    prev = np.full(m + 1, inf)
    prev[0] = 0.0
    cur = np.empty(m + 1)
    js = np.arange(1, m + 1)
    for i in range(1, n + 1):
        lo = max(1, i - band)
        hi = min(m, i + band)
        cost = (a[i - 1] - b) ** 2  # cost[j-1] for column j
        # b_best[j] = min(prev[j], prev[j-1]) restricted to the band.
        b_best = np.minimum(prev[1:], prev[:-1])
        in_band = (js >= lo) & (js <= hi)
        b_best = np.where(in_band, b_best, inf)
        csum = np.cumsum(np.where(in_band, cost, 0.0))
        csum_prev = np.concatenate(([0.0], csum[:-1]))
        running = np.minimum.accumulate(b_best - csum_prev)
        cur[1:] = running + csum
        cur[0] = inf
        cur[~np.concatenate(([True], in_band))] = inf
        if limit is not None:
            row_min = cur[lo : hi + 1].min()
            if row_min > limit:
                return float(inf)
        prev, cur = cur, prev
    return float(np.sqrt(prev[m]))


def dtw_distance_reference(
    a: np.ndarray, b: np.ndarray, window: int | None = None
) -> float:
    """Plain-loop DTW used as the test oracle for :func:`dtw_distance`."""
    a, b = _check_pair(a, b)
    n, m = a.size, b.size
    band = _resolve_band(n, m, window)
    inf = float("inf")
    prev = [inf] * (m + 1)
    prev[0] = 0.0
    for i in range(1, n + 1):
        cur = [inf] * (m + 1)
        lo = max(1, i - band)
        hi = min(m, i + band)
        for j in range(lo, hi + 1):
            cost = (a[i - 1] - b[j - 1]) ** 2
            cur[j] = cost + min(prev[j], prev[j - 1], cur[j - 1])
        prev = cur
    return float(np.sqrt(prev[m]))


def envelope(series: np.ndarray, window: int) -> tuple[np.ndarray, np.ndarray]:
    """Upper/lower running-extremum envelope used by LB_Keogh.

    ``upper[i] = max(series[i−w : i+w+1])`` and symmetrically for
    ``lower``.
    """
    values = np.asarray(series, dtype=float)
    n = values.size
    w = int(window)
    if w < 0:
        raise ValueError("window must be >= 0")
    if w == 0:
        return values.copy(), values.copy()
    if w >= n:
        upper = np.full(n, values.max())
        lower = np.full(n, values.min())
        return upper, lower
    # Stack shifted copies; 2w+1 rows is small for realistic windows.
    padded_max = np.pad(values, w, mode="constant", constant_values=-np.inf)
    padded_min = np.pad(values, w, mode="constant", constant_values=np.inf)
    windows_max = np.lib.stride_tricks.sliding_window_view(padded_max, 2 * w + 1)
    windows_min = np.lib.stride_tricks.sliding_window_view(padded_min, 2 * w + 1)
    return windows_max.max(axis=1), windows_min.min(axis=1)


def lb_keogh(
    candidate: np.ndarray,
    upper: np.ndarray,
    lower: np.ndarray,
) -> float:
    """LB_Keogh lower bound of DTW(candidate, query) given the query's envelope.

    Any DTW alignment maps each candidate point inside the query's
    envelope tube; summing squared overshoot lower-bounds the DTW cost.
    Series must share the same length (the UCR setting).
    """
    c = np.asarray(candidate, dtype=float)
    if c.shape != upper.shape or c.shape != lower.shape:
        raise ValueError("candidate and envelope must have identical shapes")
    over = np.where(c > upper, c - upper, 0.0)
    under = np.where(c < lower, lower - c, 0.0)
    return float(np.sqrt(np.sum(over * over + under * under)))
