"""Distance functions: Euclidean family, closest-match search, DTW."""

from .best_match import (
    Match,
    batch_best_distances,
    batch_distance_profiles,
    best_match,
    best_match_scalar,
    distance_profile,
)
from .dtw import dtw_distance, dtw_distance_reference, envelope, lb_keogh
from .euclidean import (
    euclidean,
    euclidean_early_abandon,
    pairwise_euclidean,
    squared_euclidean,
    znormed_euclidean,
)

__all__ = [
    "Match",
    "batch_best_distances",
    "batch_distance_profiles",
    "best_match",
    "best_match_scalar",
    "distance_profile",
    "dtw_distance",
    "dtw_distance_reference",
    "envelope",
    "euclidean",
    "euclidean_early_abandon",
    "lb_keogh",
    "pairwise_euclidean",
    "squared_euclidean",
    "znormed_euclidean",
]
