"""Closest-match subsequence search.

The paper's feature transform maps a series ``T`` to the vector of
*closest match distances* between ``T`` and every representative
pattern: the minimum, over all alignments, of the Euclidean distance
between the z-normalized pattern and the z-normalized window of ``T``.

``distance_profile`` computes all alignment distances at once using the
rolling-statistics identity (the MASS/UCR-suite trick):

    dist²(ẑ(w), q) = 2·n − 2·⟨w, q⟩ / σ_w          with  q = ẑ(pattern),

which follows from ``Σ q = 0``, ``Σ q² = n`` and ``Σ ẑ(w)² = n``. This
makes the transform a dense mat-vec instead of a Python loop; an
explicit early-abandoning scalar implementation is kept for reference
and as a test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..runtime.kernel import SlidingWindowStats, resample_pattern, tie_break_argmin
from ..sax.znorm import NORM_THRESHOLD, is_flat, znorm
from .euclidean import euclidean_early_abandon

__all__ = [
    "Match",
    "batch_best_distances",
    "batch_distance_profiles",
    "best_match",
    "best_match_scalar",
    "distance_profile",
]


@dataclass(frozen=True)
class Match:
    """A closest-match result: where the pattern aligned and how far it was."""

    distance: float
    position: int
    length: int


# Resampling for patterns longer than the series they are matched
# against lives in the runtime kernel; kept under the old private name
# for the in-module callers below.
_resample = resample_pattern


def distance_profile(pattern: np.ndarray, series: np.ndarray) -> np.ndarray:
    """Z-normalized Euclidean distance of *pattern* to every window of *series*.

    Returns an array of length ``len(series) - len(pattern) + 1``. If the
    pattern is longer than the series, the pattern is linearly resampled
    to the series length and a single-element profile is returned.
    """
    pattern = np.asarray(pattern, dtype=float)
    series = np.asarray(series, dtype=float)
    if pattern.ndim != 1 or series.ndim != 1:
        raise ValueError("distance_profile expects 1-D arrays")
    if pattern.size < 2:
        raise ValueError("pattern must have at least 2 points")
    if pattern.size > series.size:
        pattern = _resample(pattern, series.size)

    n = pattern.size
    q = znorm(pattern)
    q_is_flat = not q.any()

    # Centering the series before the cumulative sums avoids the
    # catastrophic cancellation of sum(x²)/n − mean² for series with a
    # large offset; window-level z-normalization is unaffected.
    series = series - series.mean()

    # Rolling mean / std of every window of the series.
    cumsum = np.concatenate(([0.0], np.cumsum(series)))
    cumsum2 = np.concatenate(([0.0], np.cumsum(series * series)))
    window_sum = cumsum[n:] - cumsum[:-n]
    window_sum2 = cumsum2[n:] - cumsum2[:-n]
    mean = window_sum / n
    var = window_sum2 / n - mean * mean
    np.maximum(var, 0.0, out=var)
    sd = np.sqrt(var)
    # Flatness threshold with a magnitude-relative noise floor: the
    # cumulative-sum variance estimate carries cancellation noise
    # proportional to the series' squared magnitude.
    rms = float(np.sqrt(cumsum2[-1] / max(series.size, 1)))
    flat = is_flat(sd, max(NORM_THRESHOLD, 1e-7 * rms))

    # Cross-correlation ⟨w, q⟩ for every alignment.
    windows = np.lib.stride_tricks.sliding_window_view(series, n)
    dot = windows @ q

    d2 = np.empty_like(dot)
    nonflat = ~flat
    # Guard the division; flat windows are overwritten just below.
    safe_sd = np.where(flat, 1.0, sd)
    d2[:] = 2.0 * n - 2.0 * dot / safe_sd
    # Flat window vs pattern: ẑ(w) = 0, so dist² = Σ q².
    d2[flat] = 0.0 if q_is_flat else float(q @ q)
    if q_is_flat:
        # Pattern flat vs non-flat window: dist² = Σ ẑ(w)² = n.
        d2[nonflat] = float(n)
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def batch_distance_profiles(pattern: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Distance profiles of one pattern against every row of ``X``.

    Vectorized across series: one (n, J) result instead of n separate
    :func:`distance_profile` calls. Rows must be at least as long as
    the pattern (the transform resamples otherwise — see
    :func:`batch_best_distances`). Delegates to the runtime kernel
    (:class:`~repro.runtime.kernel.SlidingWindowStats`), which the
    feature transform additionally caches per (series, length).
    """
    pattern = np.asarray(pattern, dtype=float)
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("batch_distance_profiles expects a 2-D series matrix")
    if pattern.size > X.shape[1]:
        pattern = _resample(pattern, X.shape[1])
    return SlidingWindowStats(X, pattern.size).profiles(pattern)


def batch_best_distances(pattern: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Closest-match distance of one pattern to every row of ``X``."""
    return batch_distance_profiles(pattern, X).min(axis=1)


def best_match(pattern: np.ndarray, series: np.ndarray) -> Match:
    """The paper's *closest match*: best alignment of pattern in series.

    Positions tie-break low: every alignment within the shared
    :func:`~repro.runtime.kernel.tie_break_argmin` tolerance of the
    minimum counts as tied and the smallest index wins, so the reported
    position is stable across the mat-vec and FFT kernel backends.
    """
    profile = distance_profile(pattern, series)
    position = tie_break_argmin(profile)
    length = min(np.asarray(pattern).size, np.asarray(series).size)
    return Match(distance=float(profile[position]), position=position, length=length)


def best_match_scalar(pattern: np.ndarray, series: np.ndarray) -> Match:
    """Reference implementation with explicit early abandonment.

    Semantically identical to :func:`best_match`; kept as the oracle for
    property tests and as a faithful rendering of the paper's described
    early-abandoning subsequence matching (§5.3).
    """
    pattern = np.asarray(pattern, dtype=float)
    series = np.asarray(series, dtype=float)
    if pattern.size > series.size:
        pattern = _resample(pattern, series.size)
    q = znorm(pattern)
    n = pattern.size
    best = float("inf")
    best_pos = 0
    for pos in range(series.size - n + 1):
        window = znorm(series[pos : pos + n])
        dist = euclidean_early_abandon(window, q, best)
        if dist < best:
            best = dist
            best_pos = pos
    return Match(distance=best, position=best_pos, length=n)
