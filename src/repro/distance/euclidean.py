"""Euclidean distances between series and subsequences."""

from __future__ import annotations

import numpy as np

from ..sax.znorm import znorm

__all__ = [
    "euclidean",
    "squared_euclidean",
    "znormed_euclidean",
    "euclidean_early_abandon",
    "pairwise_euclidean",
]


def _pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a, b


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Plain Euclidean distance between two equal-length 1-D arrays."""
    a, b = _pair(a, b)
    return float(np.sqrt(np.sum((a - b) ** 2)))


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance (saves the sqrt in comparisons)."""
    a, b = _pair(a, b)
    return float(np.sum((a - b) ** 2))


def znormed_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance after z-normalizing both arguments.

    This is the distance the paper uses between subsequences: shape
    similarity irrespective of offset and scale.
    """
    a, b = _pair(a, b)
    return euclidean(znorm(a), znorm(b))


def euclidean_early_abandon(a: np.ndarray, b: np.ndarray, best_so_far: float) -> float:
    """Euclidean distance with early abandonment.

    Accumulates squared differences and stops as soon as the partial sum
    exceeds ``best_so_far ** 2``; returns ``inf`` in that case. Used by
    the closest-match search (paper §5.3 cites the UCR-suite-style early
    abandoning as the main training-stage speedup).
    """
    a, b = _pair(a, b)
    limit = best_so_far * best_so_far
    total = 0.0
    # Chunked accumulation: vectorized partial sums with frequent checks.
    chunk = 16
    for start in range(0, a.size, chunk):
        diff = a[start : start + chunk] - b[start : start + chunk]
        total += float(diff @ diff)
        if total > limit:
            return float("inf")
    return float(np.sqrt(total))


def pairwise_euclidean(rows: np.ndarray) -> np.ndarray:
    """Dense pairwise Euclidean distance matrix of a 2-D array's rows."""
    values = np.asarray(rows, dtype=float)
    if values.ndim != 2:
        raise ValueError(f"pairwise_euclidean expects a 2-D array, got {values.shape}")
    sq = np.sum(values * values, axis=1)
    gram = values @ values.T
    d2 = sq[:, None] + sq[None, :] - 2.0 * gram
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)  # exact zeros despite floating-point noise
    return np.sqrt(d2)
