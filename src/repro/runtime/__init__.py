"""Parallel/caching runtime for the RPM pipeline.

The pipeline's two dominant costs are embarrassingly parallel — the
per-class candidate mining of Algorithm 1 and the per-pattern
closest-match columns of the feature transform — and both recompute
sliding-window statistics that depend only on the series matrix and a
window length. This package factors that out:

``executor``
    :class:`ParallelExecutor` — one ``map`` abstraction over serial,
    thread and process backends with ordered, chunked work submission.
``kernel``
    :class:`SlidingWindowStats` — per-(series matrix, window length)
    rolling statistics (cumulative sums) that turn each pattern's
    distance profile into a single mat-vec, or — through the batched
    MASS-style FFT backend — one shared series spectrum plus
    O(n log n) per pattern (``resolve_backend`` picks per workload).
``cache``
    :class:`WindowStatsCache` — LRU cache of kernel statistics keyed on
    (series fingerprint, window length), so every pattern of a given
    length reuses one precomputation.
``discretize_cache``
    :class:`DiscretizationCache` — LRU cache of discretization pre-work
    (z-normalized window matrix + per-``paa_size`` PAA reductions)
    keyed on (series fingerprint, window size), so parameter-search
    evaluations sharing a window skip straight to the breakpoint
    lookup.
``selection_cache``
    :class:`SelectionCache` — LRU cache of CFS selection pre-work
    (per-column discretized codes, entropies and feature-class SU, plus
    fully prepared SU blocks per feature-matrix fingerprint), so
    parameter-search evaluations with overlapping candidate pools skip
    re-scoring shared feature columns.

Determinism guarantee: parallelism only changes *scheduling*, never the
floating-point expressions, so results are bitwise identical across
backends and ``n_jobs`` values (see ``docs/runtime.md``).
"""

from .cache import DEFAULT_CACHE_SIZE, WindowStatsCache, default_cache
from .discretize_cache import (
    DEFAULT_DISCRETIZE_CACHE_SIZE,
    DiscretizationCache,
    DiscretizationEntry,
)
from .executor import ParallelExecutor, resolve_n_jobs
from .kernel import (
    KERNEL_BACKENDS,
    PrenormalizedPattern,
    SlidingWindowStats,
    prenormalize_pattern,
    resample_pattern,
    resolve_backend,
    sliding_best_distances,
    tie_break_argmin,
    tie_break_argmin_rows,
)
from .selection_cache import (
    DEFAULT_SELECTION_CACHE_SIZE,
    SelectionCache,
    SelectionColumn,
)

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_DISCRETIZE_CACHE_SIZE",
    "DEFAULT_SELECTION_CACHE_SIZE",
    "DiscretizationCache",
    "DiscretizationEntry",
    "KERNEL_BACKENDS",
    "ParallelExecutor",
    "PrenormalizedPattern",
    "SelectionCache",
    "SelectionColumn",
    "SlidingWindowStats",
    "WindowStatsCache",
    "default_cache",
    "prenormalize_pattern",
    "resample_pattern",
    "resolve_backend",
    "resolve_n_jobs",
    "sliding_best_distances",
    "tie_break_argmin",
    "tie_break_argmin_rows",
]
