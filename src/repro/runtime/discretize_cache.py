"""LRU cache of discretization pre-work for the SAX parameter search.

Algorithm 3 (``ParamSelector``) evaluates hundreds of SAX parameter
triples, and every evaluation used to re-slide, re-z-normalize and
re-reduce the same concatenated class series from scratch. The
expensive stages depend on only a *prefix* of the triple:

* the z-normalized window matrix depends on ``(series, window_size)``;
* the PAA reduction additionally depends on ``paa_size``;
* only the final breakpoint lookup (``np.searchsorted`` into a cached
  breakpoint table) depends on ``alphabet_size`` — and that step is
  nearly free.

DIRECT revisits the same window axis constantly, so caching the first
two stages turns most of an evaluation's preprocessing into a hit.
:class:`DiscretizationCache` holds one entry per ``(series
fingerprint, window_size)`` — the fingerprint is a content hash, so a
mutated or different series can never alias a cached entry — and each
entry lazily accumulates its per-``paa_size`` reductions. Eviction is
least-recently-used at the entry level; evicting an entry drops its
PAA reductions with it.

Thread-safe, mirroring :class:`~repro.runtime.cache.WindowStatsCache`;
with the process backend each worker builds its own local cache
(window matrices are not worth shipping across process boundaries).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from ..obs.metrics import MetricsRegistry, registry
from ..sax.discretize import sliding_windows
from ..sax.paa import paa_rows
from ..sax.znorm import znorm_rows

__all__ = [
    "DEFAULT_DISCRETIZE_CACHE_SIZE",
    "DiscretizationCache",
    "DiscretizationEntry",
]

#: Default maximum number of (series, window_size) entries. A parameter
#: search touches (classes × splits) concatenated series and DIRECT
#: keeps a short working set of window sizes per series, so a few dozen
#: entries covers a full Algorithm 3 run.
DEFAULT_DISCRETIZE_CACHE_SIZE = 32


class DiscretizationEntry:
    """The cached pre-work for one ``(series, window_size)`` pair.

    ``normalized`` is the z-normalized sliding-window matrix — treat it
    as immutable; it is shared by every cache consumer. ``paa(size)``
    returns (building and memoizing on first use) the row-wise PAA
    reduction for one segment count.
    """

    __slots__ = ("normalized", "_paa", "_lock")

    def __init__(self, normalized: np.ndarray) -> None:
        self.normalized = normalized
        self._paa: dict[int, np.ndarray] = {}
        self._lock = threading.Lock()

    def paa(self, paa_size: int) -> np.ndarray:
        """The ``(n_windows, paa_size)`` segment means (memoized)."""
        paa_size = int(paa_size)
        with self._lock:
            cached = self._paa.get(paa_size)
        if cached is not None:
            return cached
        # Build outside the lock: concurrent misses on the same size may
        # duplicate work but the results are bitwise identical.
        reduced = paa_rows(self.normalized, paa_size)
        with self._lock:
            return self._paa.setdefault(paa_size, reduced)

    @property
    def n_paa_sizes(self) -> int:
        """Number of PAA reductions currently memoized."""
        return len(self._paa)


class DiscretizationCache:
    """Thread-safe LRU cache of :class:`DiscretizationEntry` objects.

    Parameters
    ----------
    max_entries:
        Entry cap; the least recently used ``(series, window_size)``
        pair is evicted past it. ``0`` disables caching (every call
        computes fresh matrices) while keeping the interface.

    Counters ``hits`` / ``misses`` / ``evictions`` are kept as instance
    attributes for tests and additionally published to a
    :class:`~repro.obs.metrics.MetricsRegistry`
    (``discretize.cache.hits`` / ``discretize.cache.misses`` /
    ``discretize.cache.evictions``) — the process-wide registry by
    default — so the parameter search's reuse rate shows up in
    ``--metrics-out`` dumps next to the distance-kernel cache.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_DISCRETIZE_CACHE_SIZE,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._metrics = metrics if metrics is not None else registry()
        self._entries: OrderedDict[tuple, DiscretizationEntry] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def token(series: np.ndarray) -> str:
        """Content fingerprint of a 1-D series.

        Hashing runs at memory bandwidth — negligible next to the
        O(n·w) z-normalization it guards — and makes stale hits
        impossible (mutated data hashes to a new key).
        """
        values = np.ascontiguousarray(np.asarray(series, dtype=float))
        digest = hashlib.blake2b(values.tobytes(), digest_size=16)
        digest.update(repr(values.shape).encode())
        return digest.hexdigest()

    @staticmethod
    def _build(series: np.ndarray, window_size: int) -> DiscretizationEntry:
        return DiscretizationEntry(
            znorm_rows(sliding_windows(series, window_size))
        )

    def windows(
        self, series: np.ndarray, window_size: int, *, token: str | None = None
    ) -> DiscretizationEntry:
        """Fetch (or build and insert) the entry for ``(series, window_size)``."""
        if self.max_entries == 0:
            self.misses += 1
            self._metrics.inc("discretize.cache.misses")
            return self._build(series, window_size)
        if token is None:
            token = self.token(series)
        key = (token, int(window_size))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if entry is not None:
            self._metrics.inc("discretize.cache.hits")
            return entry
        self._metrics.inc("discretize.cache.misses")
        # Build outside the lock: concurrent misses on the same key may
        # duplicate work but never corrupt state (last writer wins).
        entry = self._build(series, window_size)
        evicted = 0
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            self._metrics.inc("discretize.cache.evictions", evicted)
        return entry

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
