"""LRU cache of CFS selection pre-work for the parameter search.

Algorithm 3 (``ParamSelector``) calls ``find_distinct`` once per
(parameter triple × validation split), and every call used to
re-discretize its pattern-distance feature matrix and re-score every
feature column from scratch. Neighbouring triples mine heavily
overlapping candidate pools over the same training rows, so their
feature matrices share whole columns — and a column's discretized
codes, entropy and feature-class SU depend only on (column values,
bins) and (column values, labels, bins), never on the rest of the
matrix.

:class:`SelectionCache` therefore memoizes at two granularities:

* **columns** — one entry per ``(column fingerprint, bins)`` holding
  the integer codes and entropy, with the per-label-fingerprint
  feature-class SU accumulating lazily on the entry (mirroring
  :class:`~repro.runtime.discretize_cache.DiscretizationEntry`'s
  per-``paa_size`` memoization);
* **matrices** — one entry per ``(features fingerprint, label
  fingerprint, bins, max_features)`` holding the fully prepared SU
  blocks (feature-class vector, searchable cap, feature-feature
  matrix), so a repeated ``cfs_select`` on an identical pool skips all
  SU work.

The feature-feature SU matrix is deliberately *not* cached per column
pair: the scalar reference orients every pair by original column index,
and caching values across matrices with different column orders would
admit last-ulp orientation differences. Keeping pair SU at matrix
granularity preserves the bitwise-identical-results guarantee; the
blocked kernel makes recomputing it cheap.

Fingerprints are content hashes (the
:class:`~repro.runtime.discretize_cache.DiscretizationCache` token
idiom), so mutated or different data can never alias an entry. Eviction
is least-recently-used per table; counters are published as
``select.cache.hits`` / ``select.cache.misses`` /
``select.cache.evictions``. Thread-safe; computation happens outside
the lock (concurrent misses may duplicate work but results are bitwise
identical).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from ..ml.cfs import (
    _entropy,
    _searchable_indices,
    column_entropies,
    discretize_features,
    feature_class_su,
    feature_feature_su_matrix,
)
from ..obs.metrics import MetricsRegistry, registry

__all__ = [
    "DEFAULT_SELECTION_CACHE_SIZE",
    "SelectionCache",
    "SelectionColumn",
]

#: Default maximum number of (column, bins) entries. A parameter-search
#: evaluation scores ~100 candidate columns and DIRECT keeps a working
#: set of a few overlapping pools per split, so a few hundred columns
#: covers the reuse window without holding stale splits forever.
DEFAULT_SELECTION_CACHE_SIZE = 512


class SelectionColumn:
    """Cached pre-work for one ``(feature column, bins)`` pair.

    ``codes``/``entropy`` are immutable once built; ``su_fc(y_token)``
    lazily accumulates the feature-class SU per label fingerprint
    (computed by the caller — the entry is just the memo).
    """

    __slots__ = ("codes", "entropy", "_su_fc", "_lock")

    def __init__(self, codes: np.ndarray, entropy: float) -> None:
        self.codes = codes
        self.entropy = entropy
        self._su_fc: dict[str, float] = {}
        self._lock = threading.Lock()

    def get_su_fc(self, y_token: str) -> float | None:
        with self._lock:
            return self._su_fc.get(y_token)

    def set_su_fc(self, y_token: str, value: float) -> float:
        with self._lock:
            return self._su_fc.setdefault(y_token, value)

    @property
    def n_labelings(self) -> int:
        """Number of label fingerprints with a memoized SU."""
        return len(self._su_fc)


class SelectionCache:
    """Thread-safe LRU cache of CFS selection pre-work.

    Parameters
    ----------
    max_entries:
        Column-entry cap; the least recently used ``(column, bins)``
        entry is evicted past it. Prepared-matrix entries are capped at
        ``max(1, max_entries // 32)``. ``0`` disables caching (every
        call computes fresh) while keeping the interface.

    Counters ``hits`` / ``misses`` / ``evictions`` are kept as instance
    attributes for tests and additionally published to a
    :class:`~repro.obs.metrics.MetricsRegistry` (``select.cache.hits``
    / ``select.cache.misses`` / ``select.cache.evictions``) — the
    process-wide registry by default. A prepared-matrix probe counts
    one hit or miss; on a matrix miss each column probe counts
    individually (the per-label SU memo rides the column entry
    uncounted, like the discretization cache's PAA memo).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_SELECTION_CACHE_SIZE,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = int(max_entries)
        self.max_matrix_entries = max(1, self.max_entries // 32)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._metrics = metrics if metrics is not None else registry()
        self._columns: OrderedDict[tuple, SelectionColumn] = OrderedDict()
        self._matrices: OrderedDict[tuple, tuple] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._columns)

    @property
    def n_matrices(self) -> int:
        """Number of prepared-matrix entries currently held."""
        return len(self._matrices)

    @staticmethod
    def token(values: np.ndarray) -> str:
        """Content fingerprint of an array (any dtype, any shape).

        Hashing runs at memory bandwidth — negligible next to the
        quantile/contingency work it guards — and makes stale hits
        impossible (mutated data hashes to a new key).
        """
        values = np.ascontiguousarray(np.asarray(values))
        digest = hashlib.blake2b(values.tobytes(), digest_size=16)
        digest.update(repr((values.dtype.str, values.shape)).encode())
        return digest.hexdigest()

    def _count(self, hit: bool, n: int = 1) -> None:
        if hit:
            self.hits += n
            self._metrics.inc("select.cache.hits", n)
        else:
            self.misses += n
            self._metrics.inc("select.cache.misses", n)

    def prepare(
        self,
        X: np.ndarray,
        y_codes: np.ndarray,
        *,
        bins: int,
        max_features: int | None,
    ) -> tuple[np.ndarray, list[int], np.ndarray]:
        """The blocked-SU pre-work for one ``cfs_select`` call.

        Returns ``(su_fc, searchable, ff_matrix)`` — bitwise what the
        uncached blocked path computes; only the amount of recomputation
        changes with the cache state.
        """
        X = np.asarray(X, dtype=float)
        y_codes = np.asarray(y_codes)
        n, d = X.shape
        bins = int(bins)
        col_tokens = [self.token(np.ascontiguousarray(X[:, j])) for j in range(d)]
        y_token = self.token(y_codes)
        matrix_key = (
            hashlib.blake2b("".join(col_tokens).encode(), digest_size=16).hexdigest(),
            y_token,
            bins,
            max_features,
        )

        if self.max_entries == 0:
            self._count(hit=False)
            return self._build(X, y_codes, bins, max_features, None, None)

        with self._lock:
            prepared = self._matrices.get(matrix_key)
            if prepared is not None:
                self._matrices.move_to_end(matrix_key)
        if prepared is not None:
            self._count(hit=True)
            return prepared
        self._count(hit=False)

        # Assemble per-column codes/entropies from the column table.
        columns: list[SelectionColumn | None] = []
        with self._lock:
            for token in col_tokens:
                entry = self._columns.get((token, bins))
                if entry is not None:
                    self._columns.move_to_end((token, bins))
                columns.append(entry)
        n_hits = sum(1 for c in columns if c is not None)
        if n_hits:
            self._count(hit=True, n=n_hits)
        if d - n_hits:
            self._count(hit=False, n=d - n_hits)

        prepared = self._build(X, y_codes, bins, max_features, columns, col_tokens)

        evicted = 0
        with self._lock:
            self._matrices[matrix_key] = prepared
            self._matrices.move_to_end(matrix_key)
            while len(self._matrices) > self.max_matrix_entries:
                self._matrices.popitem(last=False)
                self.evictions += 1
                evicted += 1
            while len(self._columns) > self.max_entries:
                self._columns.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            self._metrics.inc("select.cache.evictions", evicted)
        return prepared

    def _build(
        self,
        X: np.ndarray,
        y_codes: np.ndarray,
        bins: int,
        max_features: int | None,
        columns: list | None,
        col_tokens: list[str] | None,
    ) -> tuple[np.ndarray, list[int], np.ndarray]:
        """Compute (and memoize, when enabled) the SU blocks."""
        n, d = X.shape
        y_token = self.token(y_codes) if col_tokens is not None else ""
        if columns is None:
            columns = [None] * d

        codes = np.empty((n, d), dtype=int)
        h_cols = np.empty(d)
        missing = [j for j, entry in enumerate(columns) if entry is None]
        if missing:
            # One vectorized pass over just the missing columns —
            # discretization and entropy are column-independent, so the
            # subset build is bitwise the full-matrix build restricted.
            fresh_codes = discretize_features(X[:, missing], bins=bins)
            fresh_h = column_entropies(fresh_codes)
            for pos, j in enumerate(missing):
                codes[:, j] = fresh_codes[:, pos]
                h_cols[j] = fresh_h[pos]
        for j, entry in enumerate(columns):
            if entry is not None:
                codes[:, j] = entry.codes
                h_cols[j] = entry.entropy

        if col_tokens is not None:
            # Insert the fresh columns (build-outside-lock; last writer
            # wins on races, results are bitwise identical).
            with self._lock:
                for j in missing:
                    key = (col_tokens[j], bins)
                    entry = self._columns.setdefault(
                        key, SelectionColumn(codes[:, j].copy(), float(h_cols[j]))
                    )
                    self._columns.move_to_end(key)
                    columns[j] = entry

        # Feature-class SU: serve memoized (column, labels) values and
        # run the blocked kernel over the rest only.
        su_fc = np.empty(d)
        need = list(range(d))
        if col_tokens is not None:
            need = []
            for j, entry in enumerate(columns):
                value = entry.get_su_fc(y_token) if entry is not None else None
                if value is None:
                    need.append(j)
                else:
                    su_fc[j] = value
        if need:
            class_entropy = _entropy(y_codes)
            fresh_fc = feature_class_su(
                codes[:, need],
                y_codes,
                entropies=h_cols[need],
                class_entropy=class_entropy,
            )
            su_fc[need] = fresh_fc
            if col_tokens is not None:
                for pos, j in enumerate(need):
                    if columns[j] is not None:
                        columns[j].set_su_fc(y_token, float(fresh_fc[pos]))

        searchable = _searchable_indices(su_fc, max_features)
        ff_matrix = feature_feature_su_matrix(
            codes, searchable, entropies=h_cols[searchable]
        )
        return su_fc, searchable, ff_matrix

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._columns.clear()
            self._matrices.clear()
