"""LRU cache of sliding-window statistics.

Keyed on ``(series fingerprint, window length)``: the fingerprint is a
content hash of the series matrix, so a mutated or different matrix can
never alias a cached entry, while repeated transforms of the same data
(training transform, Algorithm 2 de-duplication, every predict call on
a held-out set) hit the cache for each distinct pattern length.

Entries are whole :class:`~repro.runtime.kernel.SlidingWindowStats`
objects — the O(n·m) precomputation — and eviction is least-recently-
used by (fingerprint, length) pair. The cache is thread-safe; with the
process backend each worker builds its own small local cache instead
(statistics are not worth shipping across process boundaries).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from ..obs.metrics import MetricsRegistry, registry
from .kernel import SlidingWindowStats

__all__ = ["DEFAULT_CACHE_SIZE", "WindowStatsCache", "default_cache"]

#: Default maximum number of (series, length) entries. Pattern lengths
#: cluster around the per-class SAX windows, so a handful of entries
#: covers a full transform.
DEFAULT_CACHE_SIZE = 16


class WindowStatsCache:
    """Thread-safe LRU cache of :class:`SlidingWindowStats`.

    Parameters
    ----------
    max_entries:
        Entry cap; the least recently used (series, length) pair is
        evicted past it. ``0`` disables caching (every call computes
        fresh statistics) while keeping the interface.

    Counters ``hits`` / ``misses`` / ``evictions`` are kept as instance
    attributes for tests and additionally published to a
    :class:`~repro.obs.metrics.MetricsRegistry` (``cache.hits`` /
    ``cache.misses`` / ``cache.evictions``) — the process-wide registry
    by default — so cache behavior shows up in ``--metrics-out`` dumps
    alongside the rest of the pipeline.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_CACHE_SIZE,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._metrics = metrics if metrics is not None else registry()
        self._entries: OrderedDict[tuple, SlidingWindowStats] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def token(X: np.ndarray) -> str:
        """Content fingerprint of a series matrix.

        Hashing the bytes is O(n·m) but runs at memory bandwidth —
        negligible next to the O(n·m·J) transform it guards — and makes
        stale hits impossible (mutated data hashes to a new key).
        """
        X = np.ascontiguousarray(np.asarray(X, dtype=float))
        digest = hashlib.blake2b(X.tobytes(), digest_size=16)
        digest.update(repr(X.shape).encode())
        return digest.hexdigest()

    def stats(
        self, X: np.ndarray, length: int, *, token: str | None = None
    ) -> SlidingWindowStats:
        """Fetch (or build and insert) the statistics for ``(X, length)``."""
        if self.max_entries == 0:
            self.misses += 1
            self._metrics.inc("cache.misses")
            return SlidingWindowStats(X, length)
        if token is None:
            token = self.token(X)
        key = (token, int(length))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if entry is not None:
            self._metrics.inc("cache.hits")
            return entry
        self._metrics.inc("cache.misses")
        # Build outside the lock: concurrent misses on the same key may
        # duplicate work but never corrupt state (last writer wins).
        entry = SlidingWindowStats(X, length)
        evicted = 0
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            self._metrics.inc("cache.evictions", evicted)
        return entry

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()


_default_cache: WindowStatsCache | None = None
_default_lock = threading.Lock()


def default_cache() -> WindowStatsCache:
    """The process-wide shared cache (lazily created)."""
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            _default_cache = WindowStatsCache(DEFAULT_CACHE_SIZE)
        return _default_cache
