"""Vectorized sliding-window distance kernel.

The z-normalized distance profile of a pattern ``q`` against every
window of every series decomposes into two parts:

* statistics that depend only on the *series matrix and window length*
  — rolling window mean/std via cumulative sums, the flat-window mask,
  and the strided window view;
* a per-pattern mat-vec ``windows @ q`` plus O(1) arithmetic.

:class:`SlidingWindowStats` precomputes the first part once so that
every pattern of a given length pays only the mat-vec (the paper's
transform evaluates *all* patterns against *all* series, so the reuse
factor is the number of patterns per length). The arithmetic is
identical, expression for expression, to the reference implementation
in ``repro.distance.best_match`` — results are bitwise equal, which the
parallel-equivalence tests rely on.
"""

from __future__ import annotations

import numpy as np

from ..sax.znorm import NORM_THRESHOLD, is_flat, znorm

__all__ = [
    "PrenormalizedPattern",
    "SlidingWindowStats",
    "prenormalize_pattern",
    "resample_pattern",
    "sliding_best_distances",
]


def resample_pattern(pattern: np.ndarray, length: int) -> np.ndarray:
    """Linear-interpolation resample of a pattern to ``length`` points.

    Used when a pattern is longer than the series it is matched against
    (a motif learned on long concatenated data meeting a short series).
    """
    pattern = np.asarray(pattern, dtype=float)
    old = np.linspace(0.0, 1.0, num=pattern.size)
    new = np.linspace(0.0, 1.0, num=length)
    return np.interp(new, old, pattern)


class PrenormalizedPattern:
    """A pattern with its z-normalization hoisted out of the hot loop.

    :meth:`SlidingWindowStats.profiles` recomputes ``znorm(pattern)``
    and ``q @ q`` on every call; a serving engine matching the same
    pattern bank against every request can pay that once at compile
    time instead (see :class:`repro.serve.CompiledModel`). The stored
    values are exactly what ``profiles`` would compute — same
    expressions, same inputs — so the precompiled path stays bitwise
    identical to the on-the-fly one.
    """

    __slots__ = ("q", "q_is_flat", "qq", "length")

    def __init__(self, q: np.ndarray, q_is_flat: bool, qq: float) -> None:
        self.q = q
        self.q_is_flat = q_is_flat
        self.qq = qq
        self.length = int(q.size)

    def __reduce__(self):
        # Plain-tuple pickling so process-backend workers can carry
        # precompiled banks by value.
        return (PrenormalizedPattern, (self.q, self.q_is_flat, self.qq))


def prenormalize_pattern(pattern: np.ndarray) -> PrenormalizedPattern:
    """Precompute the per-pattern half of the distance profile.

    Returns the z-normalized pattern, its flatness flag and its squared
    norm — everything :meth:`SlidingWindowStats.profiles` derives from
    the raw values before touching the windows.
    """
    pattern = np.asarray(pattern, dtype=float)
    if pattern.ndim != 1:
        raise ValueError(f"pattern must be 1-D, got shape {pattern.shape}")
    q = znorm(pattern)
    q_is_flat = not q.any()
    return PrenormalizedPattern(q, q_is_flat, float(q @ q))


class SlidingWindowStats:
    """Rolling statistics of every length-``L`` window of a series matrix.

    Parameters
    ----------
    X:
        ``(n, m)`` series matrix.
    length:
        Window length ``L`` with ``2 <= L <= m``.

    The constructor performs the O(n·m) cumulative-sum precomputation;
    :meth:`profiles` then costs one ``(n, J, L) @ (L,)`` mat-vec per
    pattern. Instances are immutable after construction and safe to
    share across threads.
    """

    __slots__ = ("length", "n_series", "n_windows", "_windows", "_sd", "_flat", "_safe_sd")

    def __init__(self, X: np.ndarray, length: int) -> None:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"SlidingWindowStats expects a 2-D matrix, got {X.shape}")
        n_rows, m = X.shape
        length = int(length)
        if not 2 <= length <= m:
            raise ValueError(f"window length must be in [2, {m}], got {length}")
        self.length = length
        self.n_series = n_rows
        self.n_windows = m - length + 1

        # Centering the rows before the cumulative sums avoids the
        # catastrophic cancellation of sum(x²)/L − mean² for series
        # with a large offset; window z-normalization is unaffected.
        X = X - X.mean(axis=1, keepdims=True)

        cumsum = np.cumsum(X, axis=1)
        cumsum = np.concatenate([np.zeros((n_rows, 1)), cumsum], axis=1)
        cumsum2 = np.cumsum(X * X, axis=1)
        cumsum2 = np.concatenate([np.zeros((n_rows, 1)), cumsum2], axis=1)
        window_sum = cumsum[:, length:] - cumsum[:, :-length]
        window_sum2 = cumsum2[:, length:] - cumsum2[:, :-length]
        mean = window_sum / length
        var = window_sum2 / length - mean * mean
        np.maximum(var, 0.0, out=var)
        sd = np.sqrt(var)
        # Flatness threshold with a magnitude-relative noise floor: the
        # cumulative-sum variance estimate carries cancellation noise
        # proportional to the series' squared magnitude.
        rms = np.sqrt(cumsum2[:, -1:] / max(m, 1))
        self._flat = is_flat(sd, np.maximum(NORM_THRESHOLD, 1e-7 * rms))
        self._sd = sd
        self._safe_sd = np.where(self._flat, 1.0, sd)
        # Strided view into the centered copy (kept alive by the view).
        self._windows = np.lib.stride_tricks.sliding_window_view(X, length, axis=1)

    def nbytes(self) -> int:
        """Approximate resident size (for cache accounting/debugging)."""
        return int(self._sd.nbytes + self._flat.nbytes + self._safe_sd.nbytes
                   + self._windows.base.nbytes)

    def profiles(self, pattern: np.ndarray) -> np.ndarray:
        """Distance profiles ``(n, J)`` of one pattern against all rows.

        ``pattern`` must already have exactly ``self.length`` points
        (resample longer patterns first — see :func:`resample_pattern`).
        """
        pattern = np.asarray(pattern, dtype=float)
        if pattern.ndim != 1 or pattern.size != self.length:
            raise ValueError(
                f"pattern must be 1-D with {self.length} points, got shape {pattern.shape}"
            )
        return self.profiles_prenormalized(prenormalize_pattern(pattern))

    def profiles_prenormalized(self, pre: PrenormalizedPattern) -> np.ndarray:
        """Distance profiles for an already-normalized pattern.

        The arithmetic is the shared core of :meth:`profiles`; callers
        holding a :class:`PrenormalizedPattern` (serving engines, batch
        transforms over a fixed bank) skip the per-call z-normalization
        without changing a single floating-point expression.
        """
        if pre.length != self.length:
            raise ValueError(
                f"pattern must have {self.length} points, got {pre.length}"
            )
        L = self.length
        dot = self._windows @ pre.q  # (n, J)
        d2 = 2.0 * L - 2.0 * dot / self._safe_sd
        # Flat window vs pattern: ẑ(w) = 0, so dist² = Σ q².
        d2[self._flat] = 0.0 if pre.q_is_flat else pre.qq
        if pre.q_is_flat:
            # Pattern flat vs non-flat window: dist² = Σ ẑ(w)² = L.
            d2[~self._flat] = float(L)
        np.maximum(d2, 0.0, out=d2)
        return np.sqrt(d2)

    def best_distances(self, pattern: np.ndarray) -> np.ndarray:
        """Closest-match distance of one pattern to every row."""
        return self.profiles(pattern).min(axis=1)

    def best_distances_prenormalized(self, pre: PrenormalizedPattern) -> np.ndarray:
        """Closest-match distance of a precompiled pattern to every row."""
        return self.profiles_prenormalized(pre).min(axis=1)


def sliding_best_distances(
    pattern: np.ndarray,
    X: np.ndarray,
    *,
    cache=None,
    token=None,
) -> np.ndarray:
    """Closest-match distances of one pattern to every row of ``X``.

    Functional entry point used by the feature transform: resamples an
    over-long pattern, fetches (or builds) the window statistics —
    through ``cache`` (a :class:`~repro.runtime.cache.WindowStatsCache`)
    when given — and reduces the profiles to their row minima. ``token``
    lets callers amortize the cache's series fingerprint across many
    patterns.
    """
    pattern = np.asarray(pattern, dtype=float)
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("sliding_best_distances expects a 2-D series matrix")
    m = X.shape[1]
    if pattern.size > m:
        pattern = resample_pattern(pattern, m)
    if cache is None:
        stats = SlidingWindowStats(X, pattern.size)
    else:
        stats = cache.stats(X, pattern.size, token=token)
    return stats.best_distances(pattern)
