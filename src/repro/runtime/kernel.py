"""Vectorized sliding-window distance kernel.

The z-normalized distance profile of a pattern ``q`` against every
window of every series decomposes into two parts:

* statistics that depend only on the *series matrix and window length*
  — rolling window mean/std via cumulative sums, the flat-window mask,
  and the strided window view;
* a per-pattern cross-correlation ``⟨w, q⟩`` plus O(1) arithmetic.

:class:`SlidingWindowStats` precomputes the first part once so that
every pattern of a given length pays only the cross-correlation (the
paper's transform evaluates *all* patterns against *all* series, so the
reuse factor is the number of patterns per length).

Two backends compute the cross-correlation:

``matvec``
    One ``(n, J, L) @ (L,)`` mat-vec per pattern. The arithmetic is
    identical, expression for expression, to the reference
    implementation in ``repro.distance.best_match`` — results are
    bitwise equal, which the parallel-equivalence tests rely on.
``fft``
    The MASS trick: ``QT = irfft(rfft(X) · rfft(reverse(q)))`` computes
    every alignment of every pattern in O(n log n) per series instead
    of O(n·L) per pattern. The series spectrum is computed once per
    (matrix, length) and shared by the whole per-length pattern bucket;
    patterns are stacked into one ``(k, L)`` matrix and transformed in
    a single batched FFT. Downstream arithmetic (the ``2L − 2·QT/σ_w``
    distance identity, flat-window/flat-pattern branches) is the exact
    mat-vec expression — only the dot products differ, by FFT rounding
    (relative error ~1e-12), so distances agree to ~1e-9 relative with
    a small absolute floor near zero (see ``docs/runtime.md``).

``resolve_backend`` picks between them: ``auto`` selects FFT only above
a calibrated series-length × pattern-length × bucket-size crossover, so
short series keep the bitwise-exact mat-vec path.
"""

from __future__ import annotations

import math
import threading
from typing import Sequence

import numpy as np

from ..obs.metrics import registry
from ..sax.znorm import NORM_THRESHOLD, is_flat, znorm

__all__ = [
    "KERNEL_BACKENDS",
    "PrenormalizedPattern",
    "SlidingWindowStats",
    "prenormalize_pattern",
    "resample_pattern",
    "resolve_backend",
    "sliding_best_distances",
    "tie_break_argmin",
    "tie_break_argmin_rows",
]

#: Accepted values for every ``backend``/``kernel_backend`` knob.
KERNEL_BACKENDS = ("auto", "fft", "matvec")

#: ``auto`` crossover, calibrated on the batched transform benchmark
#: (``benchmarks/bench_transform.py``): FFT cost per pattern is
#: ~``nfft·log2(nfft)`` independent of the pattern length ``L``, while
#: the mat-vec costs ``J·L``, so FFT wins once ``L`` clears a few
#: multiples of ``log2(m)`` — and never pays off on short series or
#: tiny (bucket × length) workloads where its fixed overhead dominates.
#: Module-level on purpose: tests monkeypatch them to force the
#: crossover on tiny data.
FFT_MIN_SERIES_LENGTH = 128
FFT_MIN_BATCH_WORK = 64  # bucket size k × pattern length L
FFT_LENGTH_CROSSOVER = 6.0  # use FFT when L ≥ crossover · log2(m)

#: Complex scratch budget for one batched-FFT chunk. Patterns are
#: processed in chunks so the ``(chunk, n, nfft/2+1)`` spectrum product
#: never balloons with the bucket size.
_FFT_SCRATCH_BYTES = 32 * 1024 * 1024

#: Tie-breaking tolerance for best-match positions: every alignment
#: whose distance is within ``TIE_ATOL + TIE_RTOL·min`` of the row
#: minimum counts as tied, and the *smallest index* wins. The absolute
#: floor absorbs the sqrt-amplified backend noise near perfect matches
#: (dist² ~1e-13 of FFT rounding becomes ~3e-7 in the distance), so all
#: backends resolve ties identically.
TIE_RTOL = 1e-8
TIE_ATOL = 1e-6


def resolve_backend(
    backend: str,
    *,
    length: int,
    series_length: int,
    batch_size: int = 1,
) -> str:
    """Resolve an ``auto``/``fft``/``matvec`` request to a concrete backend.

    ``auto`` applies the calibrated crossover: FFT only for series of at
    least :data:`FFT_MIN_SERIES_LENGTH` points, buckets with at least
    :data:`FFT_MIN_BATCH_WORK` pattern-points of work, and patterns long
    enough (``length ≥ FFT_LENGTH_CROSSOVER · log2(series_length)``)
    that the O(L)→O(log m) per-window saving beats the FFT's fixed
    overhead. Everything else keeps the exact mat-vec path.
    """
    if backend not in KERNEL_BACKENDS:
        raise ValueError(f"backend must be one of {KERNEL_BACKENDS}, got {backend!r}")
    if backend != "auto":
        return backend
    if series_length < FFT_MIN_SERIES_LENGTH:
        return "matvec"
    if batch_size * length < FFT_MIN_BATCH_WORK:
        return "matvec"
    if length < FFT_LENGTH_CROSSOVER * math.log2(max(series_length, 2)):
        return "matvec"
    return "fft"


def tie_break_argmin(profile: np.ndarray, *, rtol: float = TIE_RTOL, atol: float = TIE_ATOL) -> int:
    """Best-match position of one distance profile, ties broken low.

    Returns the smallest index whose value is within
    ``atol + rtol·min`` of the profile minimum — the shared tie-break
    contract that keeps mat-vec, FFT and the scalar reference agreeing
    on positions even when rounding reorders near-equal distances.
    """
    return int(tie_break_argmin_rows(np.asarray(profile, dtype=float), rtol=rtol, atol=atol))


def tie_break_argmin_rows(
    profiles: np.ndarray, *, rtol: float = TIE_RTOL, atol: float = TIE_ATOL
) -> np.ndarray:
    """Vectorized :func:`tie_break_argmin` over the last axis."""
    p = np.asarray(profiles, dtype=float)
    lo = p.min(axis=-1, keepdims=True)
    # argmax of the boolean mask returns the first True — the smallest
    # tied index.
    return np.argmax(p <= lo + (atol + rtol * np.abs(lo)), axis=-1)


def resample_pattern(pattern: np.ndarray, length: int) -> np.ndarray:
    """Linear-interpolation resample of a pattern to ``length`` points.

    Used when a pattern is longer than the series it is matched against
    (a motif learned on long concatenated data meeting a short series).

    Degenerate inputs are rejected rather than silently flattened: a
    pattern with fewer than 2 points has no shape to interpolate
    (``np.interp`` against a single sample point would produce a
    constant), and a target below 2 points cannot hold one.
    """
    pattern = np.asarray(pattern, dtype=float)
    if pattern.ndim != 1:
        raise ValueError(f"pattern must be 1-D, got shape {pattern.shape}")
    if pattern.size < 2:
        raise ValueError(
            f"cannot resample a pattern with {pattern.size} point(s); "
            "patterns need at least 2 points"
        )
    length = int(length)
    if length < 2:
        raise ValueError(f"resample target length must be >= 2, got {length}")
    old = np.linspace(0.0, 1.0, num=pattern.size)
    new = np.linspace(0.0, 1.0, num=length)
    return np.interp(new, old, pattern)


class PrenormalizedPattern:
    """A pattern with its z-normalization hoisted out of the hot loop.

    :meth:`SlidingWindowStats.profiles` recomputes ``znorm(pattern)``
    and ``q @ q`` on every call; a serving engine matching the same
    pattern bank against every request can pay that once at compile
    time instead (see :class:`repro.serve.CompiledModel`). The stored
    values are exactly what ``profiles`` would compute — same
    expressions, same inputs — so the precompiled path stays bitwise
    identical to the on-the-fly one.
    """

    __slots__ = ("q", "q_is_flat", "qq", "length")

    def __init__(self, q: np.ndarray, q_is_flat: bool, qq: float) -> None:
        self.q = q
        self.q_is_flat = q_is_flat
        self.qq = qq
        self.length = int(q.size)

    def __reduce__(self):
        # Plain-tuple pickling so process-backend workers can carry
        # precompiled banks by value.
        return (PrenormalizedPattern, (self.q, self.q_is_flat, self.qq))


def prenormalize_pattern(pattern: np.ndarray) -> PrenormalizedPattern:
    """Precompute the per-pattern half of the distance profile.

    Returns the z-normalized pattern, its flatness flag and its squared
    norm — everything :meth:`SlidingWindowStats.profiles` derives from
    the raw values before touching the windows.
    """
    pattern = np.asarray(pattern, dtype=float)
    if pattern.ndim != 1:
        raise ValueError(f"pattern must be 1-D, got shape {pattern.shape}")
    q = znorm(pattern)
    q_is_flat = not q.any()
    return PrenormalizedPattern(q, q_is_flat, float(q @ q))


def _next_pow2(n: int) -> int:
    return 1 << max(int(n) - 1, 0).bit_length()


class SlidingWindowStats:
    """Rolling statistics of every length-``L`` window of a series matrix.

    Parameters
    ----------
    X:
        ``(n, m)`` series matrix.
    length:
        Window length ``L`` with ``2 <= L <= m``.

    The constructor performs the O(n·m) cumulative-sum precomputation;
    :meth:`profiles` then costs one ``(n, J, L) @ (L,)`` mat-vec per
    pattern — or, through the batched FFT backend
    (:meth:`batch_profiles_prenormalized`), one shared series spectrum
    plus O(n log n) per pattern. Instances are immutable after
    construction (the lazily-built series spectrum is idempotent and
    lock-guarded) and safe to share across threads.
    """

    __slots__ = (
        "length",
        "series_length",
        "n_series",
        "n_windows",
        "_windows",
        "_centered",
        "_sd",
        "_flat",
        "_safe_sd",
        "_xf",
        "_nfft",
        "_fft_lock",
    )

    def __init__(self, X: np.ndarray, length: int) -> None:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"SlidingWindowStats expects a 2-D matrix, got {X.shape}")
        n_rows, m = X.shape
        length = int(length)
        if not 2 <= length <= m:
            raise ValueError(f"window length must be in [2, {m}], got {length}")
        self.length = length
        self.series_length = m
        self.n_series = n_rows
        self.n_windows = m - length + 1

        # Centering the rows before the cumulative sums avoids the
        # catastrophic cancellation of sum(x²)/L − mean² for series
        # with a large offset; window z-normalization is unaffected.
        # The pattern side is z-normalized (Σq = 0), so the per-row
        # shift also leaves every ⟨w, q⟩ dot product unchanged.
        X = X - X.mean(axis=1, keepdims=True)

        cumsum = np.cumsum(X, axis=1)
        cumsum = np.concatenate([np.zeros((n_rows, 1)), cumsum], axis=1)
        cumsum2 = np.cumsum(X * X, axis=1)
        cumsum2 = np.concatenate([np.zeros((n_rows, 1)), cumsum2], axis=1)
        window_sum = cumsum[:, length:] - cumsum[:, :-length]
        window_sum2 = cumsum2[:, length:] - cumsum2[:, :-length]
        mean = window_sum / length
        var = window_sum2 / length - mean * mean
        np.maximum(var, 0.0, out=var)
        sd = np.sqrt(var)
        # Flatness threshold with a magnitude-relative noise floor: the
        # cumulative-sum variance estimate carries cancellation noise
        # proportional to the series' squared magnitude.
        rms = np.sqrt(cumsum2[:, -1:] / max(m, 1))
        self._flat = is_flat(sd, np.maximum(NORM_THRESHOLD, 1e-7 * rms))
        self._sd = sd
        self._safe_sd = np.where(self._flat, 1.0, sd)
        # The centered copy backs both the strided window view (matvec)
        # and the lazily-computed series spectrum (fft).
        self._centered = X
        self._windows = np.lib.stride_tricks.sliding_window_view(X, length, axis=1)
        self._xf = None
        self._nfft = 0
        self._fft_lock = threading.Lock()

    def nbytes(self) -> int:
        """Approximate resident size (for cache accounting/debugging)."""
        total = int(
            self._sd.nbytes + self._flat.nbytes + self._safe_sd.nbytes
            + self._centered.nbytes
        )
        if self._xf is not None:
            total += int(self._xf.nbytes)
        return total

    # -- FFT backend -----------------------------------------------------------

    def _series_fft(self) -> np.ndarray:
        """The rfft of every (centered) row, built once and shared.

        One spectrum serves every pattern of this length and every
        backend call on this instance — the per-(length, batch) cost
        the MASS trick amortizes. Idempotent under races; the lock just
        keeps concurrent first callers from duplicating the work.
        """
        xf = self._xf
        if xf is None:
            with self._fft_lock:
                xf = self._xf
                if xf is None:
                    # nfft ≥ m keeps the circular convolution free of
                    # wrap-around in the J retained lags; the next power
                    # of two keeps rfft on its fastest path.
                    self._nfft = _next_pow2(self.series_length)
                    xf = np.fft.rfft(self._centered, self._nfft, axis=1)
                    self._xf = xf
                    registry().inc("kernel.fft.series_ffts")
        return xf

    def _fft_profile_chunks(self, pres: Sequence[PrenormalizedPattern]):
        """Yield ``(lo, hi, profiles)`` blocks of the batched FFT path.

        Patterns are stacked into one matrix per chunk so a single
        batched rfft/irfft covers the whole block; chunking bounds the
        ``(chunk, n, nfft)`` scratch at :data:`_FFT_SCRATCH_BYTES`.
        """
        L = self.length
        m = self.series_length
        xf = self._series_fft()
        nfft = self._nfft
        per_pattern = self.n_series * (nfft // 2 + 1) * 16
        chunk = max(1, _FFT_SCRATCH_BYTES // max(per_pattern, 1))
        for lo in range(0, len(pres), chunk):
            block = pres[lo : lo + chunk]
            Q = np.stack([pre.q for pre in block])
            # Correlation as convolution with the reversed pattern:
            # conv[t] = Σ_i x[t−i]·q[L−1−i], so lag t = L−1+j recovers
            # QT[j] = ⟨x[j:j+L], q⟩ for every alignment j at once.
            qf = np.fft.rfft(Q[:, ::-1], nfft, axis=1)
            conv = np.fft.irfft(qf[:, None, :] * xf[None, :, :], nfft, axis=2)
            dot = conv[:, :, L - 1 : m]
            # From here down the arithmetic is the mat-vec path's,
            # expression for expression — only ``dot`` differs, by FFT
            # rounding.
            d2 = 2.0 * L - 2.0 * dot / self._safe_sd
            qq = np.array([0.0 if pre.q_is_flat else pre.qq for pre in block])
            d2[:, self._flat] = qq[:, None]
            for i, pre in enumerate(block):
                if pre.q_is_flat:
                    d2[i][~self._flat] = float(L)
            np.maximum(d2, 0.0, out=d2)
            yield lo, lo + len(block), np.sqrt(d2)

    # -- profiles --------------------------------------------------------------

    def profiles(self, pattern: np.ndarray, backend: str = "matvec") -> np.ndarray:
        """Distance profiles ``(n, J)`` of one pattern against all rows.

        ``pattern`` must already have exactly ``self.length`` points
        (resample longer patterns first — see :func:`resample_pattern`).
        """
        pattern = np.asarray(pattern, dtype=float)
        if pattern.ndim != 1 or pattern.size != self.length:
            raise ValueError(
                f"pattern must be 1-D with {self.length} points, got shape {pattern.shape}"
            )
        return self.profiles_prenormalized(prenormalize_pattern(pattern), backend=backend)

    def profiles_prenormalized(
        self, pre: PrenormalizedPattern, backend: str = "matvec"
    ) -> np.ndarray:
        """Distance profiles for an already-normalized pattern.

        The mat-vec arithmetic is the shared core of :meth:`profiles`;
        callers holding a :class:`PrenormalizedPattern` (serving
        engines, batch transforms over a fixed bank) skip the per-call
        z-normalization without changing a single floating-point
        expression. ``backend`` defaults to the bitwise-exact mat-vec;
        ``"fft"``/``"auto"`` route through the batched FFT path.
        """
        if pre.length != self.length:
            raise ValueError(
                f"pattern must have {self.length} points, got {pre.length}"
            )
        resolved = resolve_backend(
            backend,
            length=self.length,
            series_length=self.series_length,
            batch_size=1,
        )
        registry().inc(f"kernel.backend.{resolved}")
        if resolved == "fft":
            for _lo, _hi, block in self._fft_profile_chunks([pre]):
                return block[0]
        L = self.length
        dot = self._windows @ pre.q  # (n, J)
        d2 = 2.0 * L - 2.0 * dot / self._safe_sd
        # Flat window vs pattern: ẑ(w) = 0, so dist² = Σ q².
        d2[self._flat] = 0.0 if pre.q_is_flat else pre.qq
        if pre.q_is_flat:
            # Pattern flat vs non-flat window: dist² = Σ ẑ(w)² = L.
            d2[~self._flat] = float(L)
        np.maximum(d2, 0.0, out=d2)
        return np.sqrt(d2)

    def batch_profiles_prenormalized(
        self, pres: Sequence[PrenormalizedPattern], backend: str = "auto"
    ) -> np.ndarray:
        """Distance profiles ``(k, n, J)`` of a whole per-length bucket.

        The FFT backend computes the series spectrum once and runs all
        ``k`` patterns through one batched transform; the mat-vec
        backend stacks ``k`` :meth:`profiles_prenormalized` results and
        stays bitwise identical to the per-pattern path.
        """
        pres = list(pres)
        for pre in pres:
            if pre.length != self.length:
                raise ValueError(
                    f"pattern must have {self.length} points, got {pre.length}"
                )
        resolved = resolve_backend(
            backend,
            length=self.length,
            series_length=self.series_length,
            batch_size=len(pres),
        )
        registry().inc(f"kernel.backend.{resolved}")
        out = np.empty((len(pres), self.n_series, self.n_windows))
        if resolved == "fft":
            for lo, hi, block in self._fft_profile_chunks(pres):
                out[lo:hi] = block
        else:
            for i, pre in enumerate(pres):
                out[i] = self._matvec_profiles(pre)
        return out

    def _matvec_profiles(self, pre: PrenormalizedPattern) -> np.ndarray:
        """The mat-vec arithmetic without dispatch or counters."""
        L = self.length
        dot = self._windows @ pre.q  # (n, J)
        d2 = 2.0 * L - 2.0 * dot / self._safe_sd
        d2[self._flat] = 0.0 if pre.q_is_flat else pre.qq
        if pre.q_is_flat:
            d2[~self._flat] = float(L)
        np.maximum(d2, 0.0, out=d2)
        return np.sqrt(d2)

    # -- best-match reductions -------------------------------------------------

    def best_distances(self, pattern: np.ndarray, backend: str = "matvec") -> np.ndarray:
        """Closest-match distance of one pattern to every row."""
        return self.profiles(pattern, backend=backend).min(axis=1)

    def best_distances_prenormalized(
        self, pre: PrenormalizedPattern, backend: str = "matvec"
    ) -> np.ndarray:
        """Closest-match distance of a precompiled pattern to every row."""
        return self.profiles_prenormalized(pre, backend=backend).min(axis=1)

    def batch_best_distances_prenormalized(
        self, pres: Sequence[PrenormalizedPattern], backend: str = "auto"
    ) -> np.ndarray:
        """Closest-match distances ``(k, n)`` of a whole bucket.

        Reduces each FFT chunk as it is produced, so the full
        ``(k, n, J)`` profile tensor never materializes for large
        buckets.
        """
        pres = list(pres)
        for pre in pres:
            if pre.length != self.length:
                raise ValueError(
                    f"pattern must have {self.length} points, got {pre.length}"
                )
        resolved = resolve_backend(
            backend,
            length=self.length,
            series_length=self.series_length,
            batch_size=len(pres),
        )
        registry().inc(f"kernel.backend.{resolved}")
        out = np.empty((len(pres), self.n_series))
        if resolved == "fft":
            for lo, hi, block in self._fft_profile_chunks(pres):
                out[lo:hi] = block.min(axis=2)
        else:
            for i, pre in enumerate(pres):
                out[i] = self._matvec_profiles(pre).min(axis=1)
        return out


def sliding_best_distances(
    pattern: np.ndarray,
    X: np.ndarray,
    *,
    cache=None,
    token=None,
    backend: str = "auto",
) -> np.ndarray:
    """Closest-match distances of one pattern to every row of ``X``.

    Functional entry point used by the feature transform: resamples an
    over-long pattern, fetches (or builds) the window statistics —
    through ``cache`` (a :class:`~repro.runtime.cache.WindowStatsCache`)
    when given — and reduces the profiles to their row minima. ``token``
    lets callers amortize the cache's series fingerprint across many
    patterns. ``backend`` selects the cross-correlation implementation
    (``auto`` keeps the exact mat-vec path below the FFT crossover).
    """
    pattern = np.asarray(pattern, dtype=float)
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("sliding_best_distances expects a 2-D series matrix")
    m = X.shape[1]
    if pattern.size > m:
        pattern = resample_pattern(pattern, m)
    if cache is None:
        stats = SlidingWindowStats(X, pattern.size)
    else:
        stats = cache.stats(X, pattern.size, token=token)
    return stats.best_distances(pattern, backend=backend)
