"""A small, deterministic parallel-map abstraction.

:class:`ParallelExecutor` wraps the three execution strategies the RPM
pipeline uses — a plain loop, a thread pool, and a process pool —
behind one ordered ``map``. Work is submitted in contiguous chunks
(fewer pickles for the process backend, fewer scheduling round-trips
for threads) and results are always returned in input order, so callers
are bitwise-indistinguishable from the serial loop.

Backend choice:

* ``'serial'`` — no pool at all; the reference behavior.
* ``'thread'`` — best default: NumPy's mat-vec/cumsum kernels release
  the GIL, and nothing is pickled.
* ``'process'`` — sidesteps the GIL entirely for Python-heavy stages
  (Sequitur, clustering); work functions and arguments must be
  picklable module-level objects.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from ..obs.metrics import MetricsRegistry

__all__ = ["BACKENDS", "ParallelExecutor", "resolve_n_jobs"]

BACKENDS = ("serial", "thread", "process")


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count.

    ``None``, ``0`` and ``1`` mean serial; ``-1`` means one worker per
    available CPU; any other negative value is rejected.
    """
    if n_jobs is None or n_jobs == 0:
        return 1
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be >= -1, got {n_jobs}")
    return int(n_jobs)


def _apply_chunk(fn, chunk):
    """Module-level chunk runner (must be picklable for processes)."""
    return [fn(item) for item in chunk]


def _timed_apply_chunk(fn, chunk):
    """Chunk runner that also reports its own wall time.

    The elapsed seconds are measured *inside* the worker — thread or
    process — and travel back with the results (a float pickles fine),
    so per-chunk timings aggregate identically across backends.
    """
    t0 = time.perf_counter()
    out = [fn(item) for item in chunk]
    return time.perf_counter() - t0, out


class ParallelExecutor:
    """Ordered, chunked ``map`` over a serial / thread / process backend.

    Parameters
    ----------
    n_jobs:
        Worker count; ``-1`` uses every CPU, ``None``/``0``/``1`` run
        serially (the backend is then forced to ``'serial'``).
    backend:
        One of :data:`BACKENDS`. With the process backend, mapped
        functions and their arguments must be picklable.
    chunk_size:
        Items per submitted chunk. Defaults to spreading the work into
        roughly four chunks per worker, which balances load without
        drowning the pool in tiny tasks.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`. When set,
        every mapped chunk reports its wall time (measured inside the
        worker, any backend) into the ``executor.chunk_seconds``
        histogram — exported with p50/p95/p99 quantiles, so chunk-size
        skew shows up directly in ``rpm metrics`` / Prometheus scrapes
        — plus ``executor.chunks`` / ``executor.items`` counters.
        ``None`` (default) keeps the map path free of any
        instrumentation.

    The pool is created lazily on first use and torn down by
    :meth:`close` (or the context-manager exit). The executor itself is
    intentionally *not* picklable — create one per process.
    """

    def __init__(
        self,
        n_jobs: int | None = 1,
        backend: str = "thread",
        *,
        chunk_size: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.backend = "serial" if self.n_jobs == 1 else backend
        self.chunk_size = chunk_size
        self.metrics = metrics
        self._pool = None

    # -- lifecycle ------------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self.n_jobs)
            elif self.backend == "process":
                self._pool = ProcessPoolExecutor(max_workers=self.n_jobs)
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- mapping --------------------------------------------------------------

    def _chunks(self, items: list) -> list[list]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(items) // (self.n_jobs * 4)))
        return [items[i : i + size] for i in range(0, len(items), size)]

    def map(self, fn, items) -> list:
        """Apply ``fn`` to every item; results in input order.

        Exceptions raised by ``fn`` propagate to the caller on every
        backend, exactly as in the serial loop.

        Single-item fast path: without metrics, a pool backend still
        runs one lone item inline (no scheduling round-trip for work
        that cannot be parallelized anyway). With metrics enabled the
        item goes through the configured pool, so every
        ``executor.chunk_seconds`` observation is measured inside the
        backend that was actually configured — the serial code path
        never records chunks on behalf of a thread/process executor.
        """
        items = list(items)
        if not items:
            return []
        if self.backend == "serial" or (len(items) <= 1 and self.metrics is None):
            if self.metrics is None:
                return [fn(item) for item in items]
            elapsed, out = _timed_apply_chunk(fn, items)
            self._record_chunk(elapsed, len(items))
            return out
        pool = self._ensure_pool()
        if self.metrics is None:
            futures = [
                pool.submit(_apply_chunk, fn, chunk) for chunk in self._chunks(items)
            ]
            out: list = []
            for future in futures:
                out.extend(future.result())
            return out
        chunks = self._chunks(items)
        futures = [pool.submit(_timed_apply_chunk, fn, chunk) for chunk in chunks]
        out = []
        for future, chunk in zip(futures, chunks):
            elapsed, results = future.result()
            self._record_chunk(elapsed, len(chunk))
            out.extend(results)
        return out

    def _record_chunk(self, elapsed: float, n_items: int) -> None:
        self.metrics.observe("executor.chunk_seconds", elapsed)
        self.metrics.inc("executor.chunks")
        self.metrics.inc("executor.items", n_items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(n_jobs={self.n_jobs}, backend={self.backend!r})"
