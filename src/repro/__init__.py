"""repro — full reproduction of *RPM: Representative Pattern Mining for
Efficient Time Series Classification* (Wang et al., EDBT 2016).

Quick start::

    from repro import RPMClassifier
    from repro.data import load

    dataset = load("CBF")
    clf = RPMClassifier(direct_budget=30, seed=0)
    clf.fit(dataset.X_train, dataset.y_train)
    predictions = clf.predict(dataset.X_test)
    print(clf.describe_patterns())

Every estimator — RPM and all baselines — follows the unified
:class:`~repro.base.Estimator` protocol (``fit`` / ``predict`` /
``get_params`` / ``set_params`` / ``clone``), so evaluation and
cross-validation can re-instantiate any of them generically.

Subpackages
-----------
``repro.core``
    The RPM pipeline (Algorithms 1-3, transform, classifier).
``repro.sax`` / ``repro.grammar`` / ``repro.cluster`` /
``repro.distance`` / ``repro.ml`` / ``repro.opt``
    The substrates RPM is built on, all implemented from scratch.
``repro.baselines``
    The paper's rivals: 1NN-ED, 1NN-DTW (best window), SAX-VSM,
    Fast Shapelets, Learning Shapelets.
``repro.data``
    UCR loader, synthetic UCR-like generators, rotation tools.
``repro.serve``
    Batched inference over saved models: ``CompiledModel`` +
    micro-batching ``PredictionService``.
"""

from .base import BaseEstimator, Estimator, clone
from .core.rpm import RPMClassifier
from .sax.discretize import SaxParams

__version__ = "1.0.0"

__all__ = [
    "RPMClassifier",
    "SaxParams",
    "Estimator",
    "BaseEstimator",
    "clone",
    "__version__",
]
