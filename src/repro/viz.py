"""Dependency-free terminal visualization helpers.

The paper's figures are line plots and scatter plots; this module
renders the same information as unicode sparklines and ASCII scatter
plots so that the library's examples, CLI and reports work in any
terminal without a plotting dependency.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sparkline", "ascii_scatter", "annotate_interval", "heading"]

BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(series: np.ndarray, width: int = 72) -> str:
    """Render a series as a one-line unicode sparkline.

    Series longer than *width* are subsampled; a constant series renders
    as a flat line of the lowest block.
    """
    values = np.asarray(series, dtype=float)
    if values.ndim != 1:
        raise ValueError("sparkline expects a 1-D array")
    if values.size == 0:
        return ""
    if values.size > width:
        idx = np.linspace(0, values.size - 1, width).astype(int)
        values = values[idx]
    lo, hi = values.min(), values.max()
    if hi - lo < 1e-12:
        return BLOCKS[0] * values.size
    scaled = (values - lo) / (hi - lo) * (len(BLOCKS) - 1)
    return "".join(BLOCKS[int(round(v))] for v in scaled)


def annotate_interval(length: int, start: int, end: int, width: int = 72, mark: str = "^") -> str:
    """A marker line aligned under a :func:`sparkline` of *length* points.

    Useful to point at a pattern occurrence: the columns corresponding
    to ``[start, end)`` carry *mark*.
    """
    if length <= 0:
        return ""
    cols = min(length, width)
    scale = cols / length
    lo = int(start * scale)
    hi = max(lo + 1, int(end * scale))
    line = [" "] * cols
    for i in range(lo, min(hi, cols)):
        line[i] = mark
    return "".join(line)


def ascii_scatter(
    x: np.ndarray,
    y: np.ndarray,
    labels: np.ndarray,
    *,
    width: int = 60,
    height: int = 18,
    markers: str = "ox+*",
) -> str:
    """Render a labelled 2-D scatter plot as ASCII art with a legend."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    labels = np.asarray(labels)
    if not (x.shape == y.shape == labels.shape):
        raise ValueError("x, y and labels must share a shape")
    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = x.min(), x.max()
    y_lo, y_hi = y.min(), y.max()
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)
    unique = list(dict.fromkeys(labels.tolist()))
    for xi, yi, label in zip(x, y, labels):
        col = int((xi - x_lo) / x_span * (width - 1))
        row = height - 1 - int((yi - y_lo) / y_span * (height - 1))
        grid[row][col] = markers[unique.index(label) % len(markers)]
    lines = ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    legend = "  ".join(
        f"{markers[i % len(markers)]} = class {label!r}" for i, label in enumerate(unique)
    )
    lines.append(legend)
    return "\n".join(lines)


def heading(text: str) -> str:
    """A boxed section heading for terminal reports."""
    bar = "=" * len(text)
    return f"\n{bar}\n{text}\n{bar}"
