"""Named dataset registry used by examples, tests and benchmarks.

``load(name)`` returns the deterministic synthetic stand-in for a UCR
dataset (or, when ``RPM_UCR_ROOT`` points at a real archive copy, the
genuine files — see :mod:`repro.data.ucr`). ``SUITE`` is the default
benchmark suite that stands in for the paper's Table 1/2 dataset list.
"""

from __future__ import annotations

import os
from typing import Callable

from .base import Dataset
from .ecg import ecg200_sim, ecg_five_days_sim, medical_alarm_abp
from .spectra import coffee_sim, olive_oil_sim
from .synthetic_extra import (
    adiac_sim,
    beef_sim,
    chlorine_sim,
    diatom_sim,
    fish_sim,
    haptics_sim,
    mallat_sim,
    sony_robot_sim,
    symbols_sim,
    yoga_sim,
)
from .synthetic import (
    cbf,
    cricket_sim,
    face_four_sim,
    gun_point_sim,
    italy_power_sim,
    lightning_sim,
    mote_strain_sim,
    osu_leaf_sim,
    swedish_leaf_sim,
    synthetic_control,
    trace_sim,
    two_patterns,
    wafer_sim,
)
from .ucr import UCR_ROOT_ENV, load_ucr_dataset

__all__ = ["EXTENDED_SUITE", "GENERATORS", "ROTATION_SUITE", "SUITE", "load", "load_suite"]

#: name -> zero-argument factory producing the deterministic dataset.
GENERATORS: dict[str, Callable[[], Dataset]] = {
    "CBF": cbf,
    "SyntheticControl": synthetic_control,
    "TwoPatterns": two_patterns,
    "GunPointSim": gun_point_sim,
    "CricketSim": cricket_sim,
    "TraceSim": trace_sim,
    "CoffeeSim": coffee_sim,
    "OliveOilSim": olive_oil_sim,
    "ECGFiveDaysSim": ecg_five_days_sim,
    "ECG200Sim": ecg200_sim,
    "FaceFourSim": face_four_sim,
    "SwedishLeafSim": swedish_leaf_sim,
    "OSULeafSim": osu_leaf_sim,
    "LightningSim": lightning_sim,
    "WaferSim": wafer_sim,
    "MoteStrainSim": mote_strain_sim,
    "ItalyPowerSim": italy_power_sim,
    "MedicalAlarmABP": medical_alarm_abp,
    # extended suite (see repro.data.synthetic_extra)
    "AdiacSim": adiac_sim,
    "BeefSim": beef_sim,
    "FishSim": fish_sim,
    "MallatSim": mallat_sim,
    "SymbolsSim": symbols_sim,
    "HapticsSim": haptics_sim,
    "YogaSim": yoga_sim,
    "SonyRobotSim": sony_robot_sim,
    "DiatomSim": diatom_sim,
    "ChlorineSim": chlorine_sim,
}

#: Extra UCR-like datasets beyond the default benchmark suite; together
#: with SUITE they bring the table closer to the paper's 45 datasets.
EXTENDED_SUITE: tuple[str, ...] = (
    "AdiacSim",
    "BeefSim",
    "FishSim",
    "MallatSim",
    "SymbolsSim",
    "HapticsSim",
    "YogaSim",
    "SonyRobotSim",
    "DiatomSim",
    "ChlorineSim",
)

#: The stand-in for the paper's UCR evaluation suite (Tables 1 and 2).
SUITE: tuple[str, ...] = (
    "CBF",
    "SyntheticControl",
    "TwoPatterns",
    "GunPointSim",
    "CricketSim",
    "TraceSim",
    "CoffeeSim",
    "OliveOilSim",
    "ECGFiveDaysSim",
    "ECG200Sim",
    "FaceFourSim",
    "SwedishLeafSim",
    "OSULeafSim",
    "LightningSim",
    "WaferSim",
    "MoteStrainSim",
    "ItalyPowerSim",
)

#: Datasets used for the rotation case study (paper Table 4 uses
#: Coffee, FaceFour, GunPoint, SwedishLeaf and OSULeaf).
ROTATION_SUITE: tuple[str, ...] = (
    "CoffeeSim",
    "FaceFourSim",
    "GunPointSim",
    "SwedishLeafSim",
    "OSULeafSim",
)


def load(name: str) -> Dataset:
    """Load one dataset by name.

    Prefers a real UCR archive copy when ``RPM_UCR_ROOT`` is set and
    the named dataset exists there; otherwise uses the deterministic
    synthetic generator.
    """
    root = os.environ.get(UCR_ROOT_ENV)
    if root:
        try:
            return load_ucr_dataset(name, root)
        except FileNotFoundError:
            pass
    try:
        return GENERATORS[name]()
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(GENERATORS)}"
        ) from None


def load_suite(names: tuple[str, ...] = SUITE) -> list[Dataset]:
    """Load a list of datasets (default: the full benchmark suite)."""
    return [load(name) for name in names]
