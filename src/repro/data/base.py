"""Dataset container shared by loaders, generators and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """A labelled train/test split of equal-length time series.

    Matches the UCR archive convention the paper evaluates on: every
    series in a dataset has the same length, labels are small integers,
    and the train/test split is fixed.
    """

    name: str
    X_train: np.ndarray
    y_train: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray

    def __post_init__(self) -> None:
        self.X_train = np.asarray(self.X_train, dtype=float)
        self.X_test = np.asarray(self.X_test, dtype=float)
        self.y_train = np.asarray(self.y_train)
        self.y_test = np.asarray(self.y_test)
        if self.X_train.ndim != 2 or self.X_test.ndim != 2:
            raise ValueError(f"{self.name}: series matrices must be 2-D")
        if self.X_train.shape[1] != self.X_test.shape[1]:
            raise ValueError(f"{self.name}: train/test series lengths differ")
        if self.X_train.shape[0] != self.y_train.shape[0]:
            raise ValueError(f"{self.name}: X_train/y_train size mismatch")
        if self.X_test.shape[0] != self.y_test.shape[0]:
            raise ValueError(f"{self.name}: X_test/y_test size mismatch")

    @property
    def n_classes(self) -> int:
        """Number of distinct class labels across both splits."""
        return int(np.unique(np.concatenate([self.y_train, self.y_test])).size)

    @property
    def series_length(self) -> int:
        """Length of every series in the dataset."""
        return int(self.X_train.shape[1])

    @property
    def n_train(self) -> int:
        """Number of training instances."""
        return int(self.X_train.shape[0])

    @property
    def n_test(self) -> int:
        """Number of test instances."""
        return int(self.X_test.shape[0])

    def classes(self) -> np.ndarray:
        """Sorted distinct class labels."""
        return np.unique(np.concatenate([self.y_train, self.y_test]))

    def class_instances(self, label) -> np.ndarray:
        """Training instances of one class (used by candidate mining)."""
        return self.X_train[self.y_train == label]

    def summary_row(self) -> str:
        """One-line dataset summary for listings."""
        return (
            f"{self.name:<24s} classes={self.n_classes:<3d} "
            f"train={self.n_train:<4d} test={self.n_test:<4d} "
            f"length={self.series_length}"
        )
