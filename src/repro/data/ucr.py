"""Loader for the UCR time-series archive text format.

The paper evaluates on the UCR repository [4]. The archive ships each
dataset as ``<Name>_TRAIN`` / ``<Name>_TEST`` text files where every
line is ``label, v1, v2, ...`` (comma- or whitespace-separated). This
build has no network access, so the benchmark suite uses the synthetic
UCR-like generators in :mod:`repro.data.synthetic`; this loader exists
so real archive files drop in unchanged if present (point
``RPM_UCR_ROOT`` at the archive directory).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .base import Dataset

__all__ = ["load_ucr_file", "load_ucr_dataset", "available_ucr_datasets", "UCR_ROOT_ENV"]

UCR_ROOT_ENV = "RPM_UCR_ROOT"


def load_ucr_file(path: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Parse one UCR text file into ``(X, y)``.

    Labels may be any numeric values; they are kept as integers when
    integral. Both comma and whitespace delimiters are accepted, as are
    the ``.tsv`` files of the 2018 archive refresh.
    """
    path = Path(path)
    rows: list[list[float]] = []
    with path.open() as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            parts = line.replace(",", " ").split()
            try:
                rows.append([float(p) for p in parts])
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: unparsable value ({exc})") from exc
    if not rows:
        raise ValueError(f"{path}: empty dataset file")
    lengths = {len(r) for r in rows}
    if len(lengths) != 1:
        raise ValueError(f"{path}: ragged rows with lengths {sorted(lengths)}")
    data = np.asarray(rows, dtype=float)
    if data.shape[1] < 2:
        raise ValueError(f"{path}: rows must contain a label and at least one value")
    y = data[:, 0]
    X = data[:, 1:]
    if np.allclose(y, np.round(y)):
        y = y.astype(int)
    return X, y


def _find_split_file(root: Path, name: str, split: str) -> Path:
    candidates = [
        root / name / f"{name}_{split}",
        root / name / f"{name}_{split}.txt",
        root / name / f"{name}_{split}.tsv",
        root / f"{name}_{split}",
        root / f"{name}_{split}.txt",
        root / f"{name}_{split}.tsv",
    ]
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    raise FileNotFoundError(
        f"no {split} file for UCR dataset {name!r} under {root} "
        f"(tried {[str(c) for c in candidates]})"
    )


def load_ucr_dataset(name: str, root: str | Path | None = None) -> Dataset:
    """Load ``<root>/<name>_{TRAIN,TEST}`` into a :class:`Dataset`.

    ``root`` defaults to the ``RPM_UCR_ROOT`` environment variable.
    """
    if root is None:
        root = os.environ.get(UCR_ROOT_ENV)
        if root is None:
            raise FileNotFoundError(
                f"no UCR root given and ${UCR_ROOT_ENV} is unset"
            )
    root = Path(root)
    X_train, y_train = load_ucr_file(_find_split_file(root, name, "TRAIN"))
    X_test, y_test = load_ucr_file(_find_split_file(root, name, "TEST"))
    if X_train.shape[1] != X_test.shape[1]:
        raise ValueError(f"{name}: train/test length mismatch")
    return Dataset(name=name, X_train=X_train, y_train=y_train, X_test=X_test, y_test=y_test)


def available_ucr_datasets(root: str | Path | None = None) -> list[str]:
    """Names of datasets with both TRAIN and TEST files under *root*."""
    if root is None:
        root = os.environ.get(UCR_ROOT_ENV)
        if root is None:
            return []
    root = Path(root)
    if not root.is_dir():
        return []
    names: set[str] = set()
    for entry in root.iterdir():
        stem = entry.name
        for suffix in ("_TRAIN", "_TRAIN.txt", "_TRAIN.tsv"):
            if stem.endswith(suffix):
                names.add(stem[: -len(suffix)])
        if entry.is_dir():
            for split_suffix in ("_TRAIN", "_TRAIN.txt", "_TRAIN.tsv"):
                if (entry / f"{entry.name}{split_suffix}").is_file():
                    names.add(entry.name)
    out = []
    for name in sorted(names):
        try:
            _find_split_file(root, name, "TEST")
        except FileNotFoundError:
            continue
        out.append(name)
    return out
