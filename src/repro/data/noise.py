"""Noise and distortion injection.

The paper claims RPM "will provide high generalization performance
under noise and/or translation/rotation" (§1) and demonstrates it on
noisy ICU data (§6.2). These utilities produce controlled corruption
of a dataset's *test* split — rotation's siblings — so the robustness
claim can be swept quantitatively (``benchmarks/bench_robustness.py``):

* ``add_gaussian_noise`` — sensor noise of growing amplitude;
* ``add_spikes`` — impulsive artifacts (electrode pops, dropouts);
* ``add_baseline_wander`` — slow drift (respiration, temperature);
* ``add_dropout`` — flat-lined segments (transmission loss);
* ``corrupt_test_split`` — apply any of them to a Dataset.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .base import Dataset

__all__ = [
    "add_gaussian_noise",
    "add_spikes",
    "add_baseline_wander",
    "add_dropout",
    "corrupt_test_split",
    "CORRUPTIONS",
]


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _check(X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("corruptions expect a 2-D (n, m) matrix")
    return X


def add_gaussian_noise(X: np.ndarray, level: float = 0.2, seed=0) -> np.ndarray:
    """Additive white noise scaled to *level* × each row's std."""
    X = _check(X)
    rng = _rng(seed)
    scales = X.std(axis=1, keepdims=True)
    scales[scales < 1e-12] = 1.0
    return X + rng.standard_normal(X.shape) * scales * level


def add_spikes(
    X: np.ndarray,
    n_spikes: int = 3,
    magnitude: float = 4.0,
    seed=0,
) -> np.ndarray:
    """Impulsive artifacts: *n_spikes* single-point outliers per row."""
    X = _check(X)
    rng = _rng(seed)
    out = X.copy()
    n, m = X.shape
    scales = X.std(axis=1)
    scales[scales < 1e-12] = 1.0
    for i in range(n):
        positions = rng.choice(m, size=min(n_spikes, m), replace=False)
        signs = rng.choice([-1.0, 1.0], size=positions.size)
        out[i, positions] += signs * magnitude * scales[i]
    return out


def add_baseline_wander(
    X: np.ndarray,
    amplitude: float = 1.0,
    cycles: float = 1.5,
    seed=0,
) -> np.ndarray:
    """Slow sinusoidal drift with a random phase per row."""
    X = _check(X)
    rng = _rng(seed)
    n, m = X.shape
    t = np.linspace(0.0, 2 * np.pi * cycles, m)
    phases = rng.uniform(0.0, 2 * np.pi, size=(n, 1))
    scales = X.std(axis=1, keepdims=True)
    scales[scales < 1e-12] = 1.0
    return X + amplitude * scales * np.sin(t[None, :] + phases)


def add_dropout(
    X: np.ndarray,
    fraction: float = 0.1,
    seed=0,
) -> np.ndarray:
    """Replace one contiguous segment (*fraction* of the length) per row
    with its last valid value (a flat-lined sensor)."""
    X = _check(X)
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    rng = _rng(seed)
    out = X.copy()
    n, m = X.shape
    width = int(round(fraction * m))
    if width == 0:
        return out
    for i in range(n):
        start = int(rng.integers(0, m - width + 1))
        hold = out[i, start - 1] if start > 0 else out[i, start]
        out[i, start : start + width] = hold
    return out


#: Named corruption sweep used by the robustness bench.
CORRUPTIONS: dict[str, Callable[[np.ndarray, int], np.ndarray]] = {
    "noise-0.2": lambda X, seed: add_gaussian_noise(X, 0.2, seed),
    "noise-0.5": lambda X, seed: add_gaussian_noise(X, 0.5, seed),
    "spikes": lambda X, seed: add_spikes(X, 3, 4.0, seed),
    "wander": lambda X, seed: add_baseline_wander(X, 1.0, 1.5, seed),
    "dropout-10%": lambda X, seed: add_dropout(X, 0.10, seed),
}


def corrupt_test_split(dataset: Dataset, corruption: str, seed: int = 0) -> Dataset:
    """A copy of *dataset* with the named corruption on the test split."""
    try:
        fn = CORRUPTIONS[corruption]
    except KeyError:
        raise KeyError(
            f"unknown corruption {corruption!r}; available: {sorted(CORRUPTIONS)}"
        ) from None
    return Dataset(
        name=f"{dataset.name}+{corruption}",
        X_train=dataset.X_train.copy(),
        y_train=dataset.y_train.copy(),
        X_test=fn(dataset.X_test, seed),
        y_test=dataset.y_test.copy(),
    )
