"""Rotation / shift transforms for the §6.1 case study.

The paper evaluates shift-invariance by rotating each *test* series:
pick a random cut point, swap the parts before and after it — the
equivalent of starting a radial shape scan somewhere else on the
outline. Training data stays untouched.
"""

from __future__ import annotations

import numpy as np

from .base import Dataset

__all__ = ["rotate_series", "rotate_rows", "rotate_test_split", "halfway_rotation"]


def rotate_series(series: np.ndarray, cut: int) -> np.ndarray:
    """Swap the sections before and after index *cut* (paper §6.1)."""
    values = np.asarray(series, dtype=float)
    if values.ndim != 1:
        raise ValueError("rotate_series expects a 1-D array")
    cut = int(cut) % values.size
    return np.concatenate([values[cut:], values[:cut]])


def rotate_rows(
    X: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Rotate every row at an independent random cut point.

    Returns ``(rotated, cuts)`` so experiments can reproduce or analyse
    the applied shifts.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("rotate_rows expects a 2-D array")
    cuts = rng.integers(0, X.shape[1], size=X.shape[0])
    rotated = np.empty_like(X)
    for i, cut in enumerate(cuts):
        rotated[i] = rotate_series(X[i], int(cut))
    return rotated, cuts


def rotate_test_split(dataset: Dataset, seed: int | None = 0) -> Dataset:
    """The paper's protocol: train unchanged, test rotated."""
    rotated, _ = rotate_rows(dataset.X_test, seed)
    return Dataset(
        name=f"{dataset.name}-rotated",
        X_train=dataset.X_train.copy(),
        y_train=dataset.y_train.copy(),
        X_test=rotated,
        y_test=dataset.y_test.copy(),
    )


def halfway_rotation(series: np.ndarray) -> np.ndarray:
    """Cut at the midpoint and swap halves.

    This is the auxiliary copy RPM's rotation-invariant transform
    matches against: if a rotation broke the best-matching subsequence,
    one of the original or its halfway rotation contains it whole
    (paper §6.1).
    """
    values = np.asarray(series, dtype=float)
    return rotate_series(values, values.size // 2)
