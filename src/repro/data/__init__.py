"""Datasets: UCR loader, synthetic UCR-like generators, rotation tools."""

from .base import Dataset
from .ecg import abp_pulse, ecg200_sim, ecg_five_days_sim, heartbeat, medical_alarm_abp
from .registry import EXTENDED_SUITE, GENERATORS, ROTATION_SUITE, SUITE, load, load_suite
from .rotate import halfway_rotation, rotate_rows, rotate_series, rotate_test_split
from .spectra import coffee_sim, gaussian_band, olive_oil_sim
from .synthetic import (
    cbf,
    cricket_sim,
    face_four_sim,
    gun_point_sim,
    italy_power_sim,
    lightning_sim,
    make_dataset,
    mote_strain_sim,
    osu_leaf_sim,
    random_warp,
    smooth,
    swedish_leaf_sim,
    synthetic_control,
    trace_sim,
    two_patterns,
    wafer_sim,
)
from .ucr import available_ucr_datasets, load_ucr_dataset, load_ucr_file

__all__ = [
    "Dataset",
    "EXTENDED_SUITE",
    "GENERATORS",
    "ROTATION_SUITE",
    "SUITE",
    "abp_pulse",
    "available_ucr_datasets",
    "cbf",
    "coffee_sim",
    "cricket_sim",
    "ecg200_sim",
    "ecg_five_days_sim",
    "face_four_sim",
    "gaussian_band",
    "gun_point_sim",
    "halfway_rotation",
    "heartbeat",
    "italy_power_sim",
    "lightning_sim",
    "load",
    "load_suite",
    "load_ucr_dataset",
    "load_ucr_file",
    "make_dataset",
    "medical_alarm_abp",
    "mote_strain_sim",
    "osu_leaf_sim",
    "random_warp",
    "rotate_rows",
    "rotate_series",
    "rotate_test_split",
    "smooth",
    "swedish_leaf_sim",
    "synthetic_control",
    "trace_sim",
    "two_patterns",
    "wafer_sim",
]
