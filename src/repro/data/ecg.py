"""Synthetic electrocardiogram and arterial-blood-pressure datasets.

Covers the paper's medical workloads:

* ``ecg_five_days_sim`` / ``ecg200_sim`` — UCR-like single-heartbeat
  datasets (Figure 5/6 use ECGFiveDays);
* ``medical_alarm_abp`` — the §6.2 case study. The paper used arterial
  blood pressure segments from the MIMIC II ICU database (normal vs.
  alarm-triggering); MIMIC requires credentialed access, so we generate
  ABP waveforms from a standard morphological model (systolic upstroke,
  dicrotic notch, diastolic decay) and derive the alarm classes from
  physiologically motivated regimes: hypotension (low mean pressure),
  damped trace (catheter artifact), and pressure spikes. This exercises
  the identical code path — variable-length discriminative pattern
  mining in noisy quasi-periodic physiological data.
"""

from __future__ import annotations

import numpy as np

from .base import Dataset
from .synthetic import make_dataset, smooth

__all__ = ["heartbeat", "abp_pulse", "ecg_five_days_sim", "ecg200_sim", "medical_alarm_abp"]


def heartbeat(
    rng: np.random.Generator,
    length: int,
    *,
    st_elevation: float = 0.0,
    t_amp: float = 0.3,
    r_amp: float = 2.5,
    noise: float = 0.05,
) -> np.ndarray:
    """One PQRST heartbeat on a fixed grid.

    Gaussian bumps model the P wave, QRS complex and T wave; the
    ``st_elevation`` and ``t_amp`` knobs produce the ischemia-style
    morphology differences that distinguish the ECG dataset classes.
    """
    t = np.linspace(0.0, 1.0, length)

    def bump(center, width, amp):
        return amp * np.exp(-((t - center) ** 2) / (2 * width * width))

    beat = (
        bump(0.20, 0.025, 0.25)  # P
        - bump(0.345, 0.010, 0.6)  # Q
        + bump(0.37, 0.012, r_amp)  # R
        - bump(0.40, 0.010, 0.9)  # S
        + bump(0.62, 0.045, t_amp)  # T
    )
    if st_elevation:
        st = (t > 0.42) & (t < 0.58)
        if st.any():
            beat[st] += st_elevation * np.hanning(st.sum() + 2)[1:-1]
    return beat + rng.standard_normal(length) * noise


def ecg_five_days_sim(
    n_train_per_class: int = 12,
    n_test_per_class: int = 60,
    length: int = 136,
    seed: int = 30,
) -> Dataset:
    """ECGFiveDays-like: same subject, two days, subtle T/ST change."""

    def day1(rng):
        return heartbeat(rng, length, st_elevation=0.0, t_amp=0.45, noise=0.04)

    def day2(rng):
        return heartbeat(rng, length, st_elevation=0.25, t_amp=0.2, noise=0.04)

    return make_dataset(
        "ECGFiveDaysSim",
        {0: day1, 1: day2},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )


def ecg200_sim(
    n_train_per_class: int = 20,
    n_test_per_class: int = 50,
    length: int = 96,
    seed: int = 31,
) -> Dataset:
    """ECG200-like: normal beats vs myocardial-ischemia beats."""

    def normal(rng):
        return heartbeat(rng, length, t_amp=0.4, r_amp=2.5, noise=0.06)

    def ischemia(rng):
        return heartbeat(rng, length, st_elevation=-0.3, t_amp=-0.25, r_amp=2.0, noise=0.06)

    return make_dataset(
        "ECG200Sim",
        {0: normal, 1: ischemia},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )


# ---------------------------------------------------------------------------
# §6.2 medical alarm case study (ABP)
# ---------------------------------------------------------------------------


def abp_pulse(
    t: np.ndarray,
    systolic: float,
    diastolic: float,
    notch_depth: float = 0.15,
) -> np.ndarray:
    """One arterial pressure pulse on the phase grid ``t ∈ [0, 1)``.

    Rapid systolic upstroke, exponential decay, and the dicrotic notch
    at aortic-valve closure — the canonical ABP morphology.
    """
    pulse_height = systolic - diastolic
    upstroke = np.clip(t / 0.15, 0.0, 1.0) ** 1.5
    decay = np.exp(-np.clip(t - 0.15, 0.0, None) / 0.45)
    wave = upstroke * decay
    notch = notch_depth * np.exp(-((t - 0.42) ** 2) / (2 * 0.018**2))
    rebound = 0.6 * notch_depth * np.exp(-((t - 0.50) ** 2) / (2 * 0.025**2))
    return diastolic + pulse_height * (wave - notch + rebound)


def _abp_segment(
    rng: np.random.Generator,
    length: int,
    *,
    systolic: float,
    diastolic: float,
    rate_hz: float,
    notch_depth: float,
    noise: float,
    spike_at: float | None = None,
) -> np.ndarray:
    """A multi-beat ABP strip sampled at 12.5 Hz-equivalent spacing."""
    phase = np.cumsum(np.full(length, rate_hz / length * rng.uniform(0.95, 1.05)))
    phase += rng.uniform(0.0, 1.0)
    t = np.mod(phase, 1.0)
    sys_jitter = systolic + rng.normal(0, 2.0)
    dia_jitter = diastolic + rng.normal(0, 1.5)
    out = abp_pulse(t, sys_jitter, dia_jitter, notch_depth)
    # Slow respiratory modulation.
    out += 2.0 * np.sin(np.linspace(0, 2 * np.pi * rng.uniform(1.5, 3.0), length))
    if spike_at is not None:
        pos = int(spike_at * length)
        width = max(3, length // 40)
        end = min(pos + width, length)
        out[pos:end] += rng.uniform(25, 45)
    return smooth(out, 2) + rng.standard_normal(length) * noise


def medical_alarm_abp(
    n_train_per_class: int = 25,
    n_test_per_class: int = 75,
    length: int = 250,
    seed: int = 32,
    *,
    multiclass: bool = False,
) -> Dataset:
    """Normal-vs-alarm ABP strips (paper §6.2).

    ``multiclass=False`` reproduces the paper's binary task (normal /
    alarm, alarms drawn uniformly from the three regimes);
    ``multiclass=True`` labels the regimes separately, a natural
    extension exercise for the per-class pattern mining.
    """

    def normal(rng):
        return _abp_segment(
            rng, length, systolic=120, diastolic=78, rate_hz=5.0, notch_depth=0.18, noise=0.8
        )

    def hypotension(rng):
        return _abp_segment(
            rng, length, systolic=82, diastolic=55, rate_hz=5.8, notch_depth=0.10, noise=0.8
        )

    def damped(rng):
        # Catheter damping: blunted pulse pressure, no dicrotic notch.
        return _abp_segment(
            rng, length, systolic=100, diastolic=85, rate_hz=5.0, notch_depth=0.0, noise=0.5
        )

    def spike(rng):
        return _abp_segment(
            rng,
            length,
            systolic=118,
            diastolic=76,
            rate_hz=5.0,
            notch_depth=0.18,
            noise=0.8,
            spike_at=rng.uniform(0.2, 0.8),
        )

    if multiclass:
        return make_dataset(
            "MedicalAlarmABP4",
            {0: normal, 1: hypotension, 2: damped, 3: spike},
            length,
            n_train_per_class,
            n_test_per_class,
            seed,
        )

    alarms = [hypotension, damped, spike]

    def alarm(rng):
        return alarms[int(rng.integers(len(alarms)))](rng)

    return make_dataset(
        "MedicalAlarmABP",
        {0: normal, 1: alarm},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )
