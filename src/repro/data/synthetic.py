"""Synthetic UCR-like dataset generators.

The paper evaluates on the UCR archive, which is public but not
available in this offline build. Each generator below reproduces the
*generative structure* of a UCR dataset family — localized
class-specific subpatterns, random positions/durations, warping and
noise — so that the relative behaviour of the classifiers (pattern
methods vs. global distances, rotation robustness, runtime scaling)
matches the paper even though absolute error rates differ. CBF,
Synthetic Control and Two Patterns follow their published generative
models exactly; the *-Sim datasets are structural analogues (see
DESIGN.md §4).
"""

from __future__ import annotations

import numpy as np

from .base import Dataset

__all__ = [
    "make_dataset",
    "cbf",
    "synthetic_control",
    "two_patterns",
    "gun_point_sim",
    "cricket_sim",
    "trace_sim",
    "face_four_sim",
    "swedish_leaf_sim",
    "osu_leaf_sim",
    "lightning_sim",
    "wafer_sim",
    "mote_strain_sim",
    "italy_power_sim",
]


# ---------------------------------------------------------------------------
# shared machinery
# ---------------------------------------------------------------------------


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def smooth(series: np.ndarray, kernel: int) -> np.ndarray:
    """Centered moving-average smoothing (edges renormalized)."""
    if kernel <= 1:
        return np.asarray(series, dtype=float)
    window = np.ones(kernel) / kernel
    padded = np.pad(np.asarray(series, dtype=float), kernel, mode="edge")
    return np.convolve(padded, window, mode="same")[kernel:-kernel]


def random_warp(series: np.ndarray, rng: np.random.Generator, strength: float = 0.05) -> np.ndarray:
    """Smooth random monotone time warp (simulates local speed changes)."""
    values = np.asarray(series, dtype=float)
    n = values.size
    knots = 6
    offsets = rng.normal(0.0, strength, size=knots)
    anchor = np.linspace(0.0, 1.0, knots) + offsets
    anchor[0], anchor[-1] = 0.0, 1.0
    anchor = np.maximum.accumulate(anchor)
    if anchor[-1] <= anchor[0]:
        return values.copy()
    anchor = (anchor - anchor[0]) / (anchor[-1] - anchor[0])
    warp = np.interp(np.linspace(0.0, 1.0, n), np.linspace(0.0, 1.0, knots), anchor)
    return np.interp(warp, np.linspace(0.0, 1.0, n), values)


def make_dataset(
    name: str,
    generators: dict,
    length: int,
    n_train_per_class: int,
    n_test_per_class: int,
    seed: int,
) -> Dataset:
    """Assemble a :class:`Dataset` from per-class instance generators.

    ``generators`` maps class label to ``fn(rng) -> 1-D array`` of
    ``length`` points. Train and test use independent streams of the
    same seeded generator, so datasets are reproducible.
    """
    rng = _rng(seed)
    X_train, y_train, X_test, y_test = [], [], [], []
    for label in sorted(generators):
        fn = generators[label]
        for _ in range(n_train_per_class):
            X_train.append(fn(rng))
            y_train.append(label)
        for _ in range(n_test_per_class):
            X_test.append(fn(rng))
            y_test.append(label)
    X_tr = np.asarray(X_train)
    X_te = np.asarray(X_test)
    if X_tr.shape[1] != length:  # pragma: no cover - generator contract
        raise ValueError(f"{name}: generator produced length {X_tr.shape[1]} != {length}")
    return Dataset(
        name=name,
        X_train=X_tr,
        y_train=np.asarray(y_train),
        X_test=X_te,
        y_test=np.asarray(y_test),
    )


# ---------------------------------------------------------------------------
# exact published generative models
# ---------------------------------------------------------------------------


def cbf(
    n_train_per_class: int = 10,
    n_test_per_class: int = 100,
    length: int = 128,
    seed: int = 1,
) -> Dataset:
    """Cylinder-Bell-Funnel (Saito 1994), the paper's Figure 2 dataset.

    ``c(t) = (6+η)·1[a,b](t) + ε(t)``; Bell ramps up inside ``[a, b]``,
    Funnel ramps down. ``a ~ U[16, 32]``, ``b−a ~ U[32, 96]``.
    """

    def base(rng: np.random.Generator) -> tuple[np.ndarray, float, int, int]:
        eta = rng.normal()
        eps = rng.normal(size=length)
        a = int(rng.integers(16, 33))
        b = a + int(rng.integers(32, 97))
        b = min(b, length - 1)
        return eps, 6.0 + eta, a, b

    def cylinder(rng: np.random.Generator) -> np.ndarray:
        eps, amp, a, b = base(rng)
        out = eps.copy()
        out[a:b] += amp
        return out

    def bell(rng: np.random.Generator) -> np.ndarray:
        eps, amp, a, b = base(rng)
        out = eps.copy()
        t = np.arange(a, b)
        out[a:b] += amp * (t - a) / max(b - a, 1)
        return out

    def funnel(rng: np.random.Generator) -> np.ndarray:
        eps, amp, a, b = base(rng)
        out = eps.copy()
        t = np.arange(a, b)
        out[a:b] += amp * (b - t) / max(b - a, 1)
        return out

    return make_dataset(
        "CBF",
        {0: cylinder, 1: bell, 2: funnel},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )


def synthetic_control(
    n_train_per_class: int = 10,
    n_test_per_class: int = 50,
    length: int = 60,
    seed: int = 2,
) -> Dataset:
    """Six-class control-chart data (Alcock & Manolopoulos 1999)."""

    t = np.arange(length, dtype=float)

    def normal(rng):
        return 30 + 2 * rng.standard_normal(length)

    def cyclic(rng):
        amp = rng.uniform(10, 15)
        period = rng.uniform(10, 15)
        return 30 + 2 * rng.standard_normal(length) + amp * np.sin(2 * np.pi * t / period)

    def increasing(rng):
        grad = rng.uniform(0.2, 0.5)
        return 30 + 2 * rng.standard_normal(length) + grad * t

    def decreasing(rng):
        grad = rng.uniform(0.2, 0.5)
        return 30 + 2 * rng.standard_normal(length) - grad * t

    def up_shift(rng):
        pos = rng.integers(length // 3, 2 * length // 3)
        mag = rng.uniform(7.5, 20)
        return 30 + 2 * rng.standard_normal(length) + mag * (t >= pos)

    def down_shift(rng):
        pos = rng.integers(length // 3, 2 * length // 3)
        mag = rng.uniform(7.5, 20)
        return 30 + 2 * rng.standard_normal(length) - mag * (t >= pos)

    return make_dataset(
        "SyntheticControl",
        {0: normal, 1: cyclic, 2: increasing, 3: decreasing, 4: up_shift, 5: down_shift},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )


def two_patterns(
    n_train_per_class: int = 15,
    n_test_per_class: int = 60,
    length: int = 128,
    seed: int = 3,
) -> Dataset:
    """Four classes from ordered pairs of up/down step events."""

    def step(direction: int, rng: np.random.Generator, out: np.ndarray, lo: int, hi: int) -> None:
        start = int(rng.integers(lo, hi))
        width = int(rng.integers(8, 20))
        end = min(start + width, out.size)
        out[start:end] += 4.0 * direction

    def gen(first: int, second: int):
        def instance(rng: np.random.Generator) -> np.ndarray:
            out = rng.standard_normal(length) * 0.3
            step(first, rng, out, 5, length // 2 - 20)
            step(second, rng, out, length // 2 + 5, length - 25)
            return out

        return instance

    return make_dataset(
        "TwoPatterns",
        {0: gen(1, 1), 1: gen(1, -1), 2: gen(-1, 1), 3: gen(-1, -1)},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )


# ---------------------------------------------------------------------------
# structural analogues of UCR datasets (see DESIGN.md §4)
# ---------------------------------------------------------------------------


def gun_point_sim(
    n_train_per_class: int = 25,
    n_test_per_class: int = 75,
    length: int = 150,
    seed: int = 4,
) -> Dataset:
    """Gun vs Point: hand-motion plateau with/without the holster dip.

    The Gun class lifts from and returns to a holster, adding a small
    dip before and after the plateau (the discriminative feature the
    paper's Figure 10 highlights); Point lacks it.
    """

    def motion(rng: np.random.Generator, gun: bool) -> np.ndarray:
        rise = int(rng.integers(int(0.17 * length), int(0.27 * length)))
        fall = int(rng.integers(int(0.65 * length), int(0.78 * length)))
        out = np.zeros(length)
        plateau = rng.uniform(1.6, 2.0)
        ramp = max(4, int(rng.integers(int(0.05 * length), int(0.10 * length))))
        out[rise : rise + ramp] = np.linspace(0, plateau, ramp)
        out[rise + ramp : fall] = plateau
        fall_end = min(fall + ramp, length)
        out[fall:fall_end] = np.linspace(plateau, 0, ramp)[: fall_end - fall]
        if gun:
            dip = rng.uniform(0.25, 0.5)
            width = max(3, int(0.04 * length))
            out[max(0, rise - width) : rise] -= dip
            out[fall_end : min(fall_end + width, length)] -= dip
        out = smooth(out, 5) + rng.standard_normal(length) * 0.03
        return random_warp(out, rng, 0.02)

    return make_dataset(
        "GunPointSim",
        {0: lambda rng: motion(rng, gun=True), 1: lambda rng: motion(rng, gun=False)},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )


def trace_sim(
    n_train_per_class: int = 25,
    n_test_per_class: int = 25,
    length: int = 200,
    seed: int = 5,
) -> Dataset:
    """Trace-like: nuclear-instrument transients, 4 classes."""

    t = np.linspace(0, 1, length)

    def cls(kind: int):
        def instance(rng: np.random.Generator) -> np.ndarray:
            pos = rng.uniform(0.35, 0.65)
            out = np.zeros(length)
            if kind in (0, 1):
                out += (t >= pos) * rng.uniform(1.5, 2.0)  # level step
            if kind in (1, 3):
                mask = (t >= pos - 0.15) & (t < pos)
                out[mask] += np.sin(np.linspace(0, 3 * np.pi, mask.sum())) * 0.8
            if kind == 2:
                out += np.exp(-((t - pos) ** 2) / 0.002) * rng.uniform(1.5, 2.2)
            out = smooth(out, 3) + rng.standard_normal(length) * 0.02
            return random_warp(out, rng, 0.03)

        return instance

    return make_dataset(
        "TraceSim",
        {k: cls(k) for k in range(4)},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )


def _radial_profile(
    rng: np.random.Generator,
    length: int,
    lobes: int,
    sharpness: float,
    lobe_amp: float,
    irregularity: float = 0.05,
) -> np.ndarray:
    """Radial-scan shape profile (leaf/face outline converted to series).

    The generator mimics how UCR's shape datasets are built: the
    distance from the centroid to the outline sampled at uniformly
    spaced angles. Class identity is the lobe structure.
    """
    theta = np.linspace(0.0, 2 * np.pi, length, endpoint=False)
    r = 1.0 + lobe_amp * np.abs(np.sin(lobes * theta / 2.0)) ** sharpness
    # Slowly varying irregularity (individual shape variation).
    harmonics = 3
    for k in range(1, harmonics + 1):
        r += irregularity / k * rng.normal() * np.sin(k * theta + rng.uniform(0, 2 * np.pi))
    r += rng.standard_normal(length) * 0.01
    return r


def face_four_sim(
    n_train_per_class: int = 6,
    n_test_per_class: int = 22,
    length: int = 175,
    seed: int = 6,
) -> Dataset:
    """FaceFour-like: four head-profile outlines as radial scans."""

    specs = {
        0: dict(lobes=3, sharpness=1.0, lobe_amp=0.45),
        1: dict(lobes=4, sharpness=2.0, lobe_amp=0.35),
        2: dict(lobes=5, sharpness=1.5, lobe_amp=0.30),
        3: dict(lobes=2, sharpness=0.8, lobe_amp=0.55),
    }

    def cls(spec):
        return lambda rng: random_warp(_radial_profile(rng, length, **spec), rng, 0.02)

    return make_dataset(
        "FaceFourSim",
        {k: cls(v) for k, v in specs.items()},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )


def swedish_leaf_sim(
    n_train_per_class: int = 15,
    n_test_per_class: int = 25,
    length: int = 128,
    seed: int = 7,
) -> Dataset:
    """SwedishLeaf-like: five leaf outlines (down from 15 species)."""

    specs = {
        0: dict(lobes=2, sharpness=1.2, lobe_amp=0.5),
        1: dict(lobes=3, sharpness=2.5, lobe_amp=0.4),
        2: dict(lobes=5, sharpness=1.0, lobe_amp=0.3),
        3: dict(lobes=7, sharpness=1.8, lobe_amp=0.25),
        4: dict(lobes=4, sharpness=0.7, lobe_amp=0.45),
    }

    def cls(spec):
        return lambda rng: random_warp(_radial_profile(rng, length, **spec), rng, 0.02)

    return make_dataset(
        "SwedishLeafSim",
        {k: cls(v) for k, v in specs.items()},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )


def osu_leaf_sim(
    n_train_per_class: int = 10,
    n_test_per_class: int = 20,
    length: int = 200,
    seed: int = 8,
) -> Dataset:
    """OSULeaf-like: six leaf outlines with stronger irregularity."""

    specs = {
        0: dict(lobes=2, sharpness=1.0, lobe_amp=0.55, irregularity=0.08),
        1: dict(lobes=3, sharpness=1.4, lobe_amp=0.45, irregularity=0.08),
        2: dict(lobes=4, sharpness=2.2, lobe_amp=0.35, irregularity=0.08),
        3: dict(lobes=5, sharpness=0.9, lobe_amp=0.40, irregularity=0.08),
        4: dict(lobes=6, sharpness=1.6, lobe_amp=0.30, irregularity=0.08),
        5: dict(lobes=7, sharpness=1.1, lobe_amp=0.25, irregularity=0.08),
    }

    def cls(spec):
        return lambda rng: random_warp(_radial_profile(rng, length, **spec), rng, 0.03)

    return make_dataset(
        "OSULeafSim",
        {k: cls(v) for k, v in specs.items()},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )


def lightning_sim(
    n_train_per_class: int = 20,
    n_test_per_class: int = 30,
    length: int = 200,
    seed: int = 9,
) -> Dataset:
    """Lightning2-like: two classes of RF transient bursts."""

    def burst(rng: np.random.Generator, double: bool) -> np.ndarray:
        out = rng.standard_normal(length) * 0.1
        pos = int(rng.integers(30, 90))
        width = int(rng.integers(15, 30))
        t = np.arange(width)
        shape = np.exp(-t / (width / 3.0)) * rng.uniform(3, 5)
        out[pos : pos + width] += shape[: max(0, min(width, length - pos))]
        if double:
            pos2 = pos + int(rng.integers(40, 70))
            width2 = int(rng.integers(10, 20))
            t2 = np.arange(width2)
            shape2 = np.exp(-t2 / (width2 / 3.0)) * rng.uniform(2, 4)
            end = min(pos2 + width2, length)
            out[pos2:end] += shape2[: end - pos2]
        return smooth(out, 2)

    return make_dataset(
        "LightningSim",
        {0: lambda rng: burst(rng, False), 1: lambda rng: burst(rng, True)},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )


def wafer_sim(
    n_train_per_class: int = 25,
    n_test_per_class: int = 75,
    length: int = 152,
    seed: int = 10,
) -> Dataset:
    """Wafer-like: semiconductor process traces, normal vs abnormal."""

    t = np.linspace(0, 1, length)

    def process(rng: np.random.Generator, abnormal: bool) -> np.ndarray:
        out = np.where(t < 0.2, 0.0, np.where(t < 0.7, 2.0, 0.5))
        out = smooth(out + rng.standard_normal(length) * 0.05, 7)
        if abnormal:
            pos = int(rng.integers(int(0.25 * length), int(0.6 * length)))
            width = int(rng.integers(8, 18))
            end = min(pos + width, length)
            out[pos:end] -= rng.uniform(0.8, 1.5)
        return random_warp(out, rng, 0.02)

    return make_dataset(
        "WaferSim",
        {0: lambda rng: process(rng, False), 1: lambda rng: process(rng, True)},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )


def mote_strain_sim(
    n_train_per_class: int = 10,
    n_test_per_class: int = 60,
    length: int = 84,
    seed: int = 11,
) -> Dataset:
    """MoteStrain-like: short noisy sensor traces with a class bump."""

    def trace(rng: np.random.Generator, humidity: bool) -> np.ndarray:
        out = rng.standard_normal(length) * 0.4
        pos = int(rng.integers(10, 50))
        width = int(rng.integers(12, 24))
        end = min(pos + width, length)
        if humidity:
            out[pos:end] += np.hanning(end - pos) * rng.uniform(2.5, 3.5)
        else:
            out[pos:end] -= np.hanning(end - pos) * rng.uniform(2.5, 3.5)
        return out

    return make_dataset(
        "MoteStrainSim",
        {0: lambda rng: trace(rng, True), 1: lambda rng: trace(rng, False)},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )


def cricket_sim(
    n_train_per_class: int = 15,
    n_test_per_class: int = 30,
    length: int = 180,
    seed: int = 13,
) -> Dataset:
    """Cricket-like: umpire arm-gesture accelerometer traces (Figure 1).

    The paper's Figure 1 contrasts the patterns different methods find
    on the Cricket data (umpire signals recorded with wrist
    accelerometers). Four gesture classes, each a characteristic
    sequence of arm movements (spike bursts and raised-arm plateaus) at
    a jittered position over baseline hand tremor.
    """

    def spike_burst(out, rng, pos, n_spikes, sign):
        for s in range(n_spikes):
            center = pos + s * 12 + int(rng.integers(-2, 3))
            width = 6
            end = min(center + width, out.size)
            if center < out.size:
                out[center:end] += sign * np.hanning(width)[: end - center] * rng.uniform(2.5, 3.5)

    def plateau(out, rng, pos, width, level):
        end = min(pos + width, out.size)
        out[pos:end] += level

    def gesture(kind: int):
        def instance(rng: np.random.Generator) -> np.ndarray:
            out = rng.standard_normal(length) * 0.15
            pos = int(rng.integers(int(0.15 * length), int(0.35 * length)))
            if kind == 0:  # "out": single raised arm, long plateau
                plateau(out, rng, pos, int(0.3 * length), rng.uniform(2.0, 2.6))
            elif kind == 1:  # "four": sweeping wave, alternating spikes
                spike_burst(out, rng, pos, 4, +1)
                spike_burst(out, rng, pos + 6, 4, -1)
            elif kind == 2:  # "six": both arms up, two plateaus
                plateau(out, rng, pos, int(0.12 * length), rng.uniform(2.0, 2.5))
                plateau(out, rng, pos + int(0.2 * length), int(0.12 * length), rng.uniform(2.0, 2.5))
            else:  # "no-ball": single sharp spike then dip
                spike_burst(out, rng, pos, 1, +1)
                plateau(out, rng, pos + int(0.1 * length), int(0.08 * length), -rng.uniform(1.0, 1.5))
            return random_warp(smooth(out, 3), rng, 0.03)

        return instance

    return make_dataset(
        "CricketSim",
        {k: gesture(k) for k in range(4)},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )


def italy_power_sim(
    n_train_per_class: int = 34,
    n_test_per_class: int = 100,
    length: int = 24,
    seed: int = 12,
) -> Dataset:
    """ItalyPowerDemand-like: daily load curves, winter vs summer."""

    hours = np.arange(length, dtype=float)

    def day(rng: np.random.Generator, winter: bool) -> np.ndarray:
        morning_peak = 8.0 + rng.normal(0, 0.5)
        evening_peak = (19.0 if winter else 21.0) + rng.normal(0, 0.5)
        evening_amp = 1.4 if winter else 0.8
        out = (
            0.6 * np.exp(-((hours - morning_peak) ** 2) / 4.0)
            + evening_amp * np.exp(-((hours - evening_peak) ** 2) / 6.0)
            + 0.3 * np.sin(hours / 24.0 * 2 * np.pi)
        )
        return out + rng.standard_normal(length) * 0.08

    return make_dataset(
        "ItalyPowerSim",
        {0: lambda rng: day(rng, True), 1: lambda rng: day(rng, False)},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )
