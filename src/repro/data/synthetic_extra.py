"""Additional UCR-like dataset generators (extended suite).

The paper's Table 1 spans 45 UCR datasets. The core registry covers the
most structurally distinctive families; this module adds ten more
analogues so the extended benchmark suite gets closer to the paper's
breadth: outline shapes with many subtle classes (Adiac, Fish, Yoga,
DiatomSizeReduction), spectra (Beef), wavelet-like piecewise-smooth
signals (MALLAT), drawn symbols (Symbols), smooth noisy movements
(Haptics), short accelerometer bumps (SonyAIBORobotSurface) and slow
process curves (ChlorineConcentration).
"""

from __future__ import annotations

import numpy as np

from .base import Dataset
from .spectra import _spectrum
from .synthetic import make_dataset, random_warp, smooth, _radial_profile

__all__ = [
    "adiac_sim",
    "beef_sim",
    "fish_sim",
    "mallat_sim",
    "symbols_sim",
    "haptics_sim",
    "yoga_sim",
    "sony_robot_sim",
    "diatom_sim",
    "chlorine_sim",
]


def adiac_sim(
    n_train_per_class: int = 6,
    n_test_per_class: int = 10,
    length: int = 176,
    seed: int = 40,
) -> Dataset:
    """Adiac-like: diatom outlines, six subtly different classes."""
    specs = {
        k: dict(lobes=3 + k, sharpness=1.0 + 0.15 * k, lobe_amp=0.18, irregularity=0.02)
        for k in range(6)
    }

    def cls(spec):
        return lambda rng: random_warp(_radial_profile(rng, length, **spec), rng, 0.01)

    return make_dataset(
        "AdiacSim", {k: cls(v) for k, v in specs.items()},
        length, n_train_per_class, n_test_per_class, seed,
    )


def beef_sim(
    n_train_per_class: int = 6,
    n_test_per_class: int = 6,
    length: int = 235,
    seed: int = 41,
) -> Dataset:
    """Beef-like: five adulteration levels as spectra band shifts."""
    grid = np.linspace(0.0, 1.0, length)
    shared = [(0.12, 0.05, 0.8), (0.45, 0.06, 0.6), (0.88, 0.04, 0.5)]
    specifics = {
        k: [(0.60 + 0.015 * k, 0.02, 0.25 + 0.08 * k), (0.75, 0.02, 0.45 - 0.07 * k)]
        for k in range(5)
    }

    def cls(bands):
        return lambda rng: _spectrum(rng, grid, shared, bands, 0.01)

    return make_dataset(
        "BeefSim", {k: cls(v) for k, v in specifics.items()},
        length, n_train_per_class, n_test_per_class, seed,
    )


def fish_sim(
    n_train_per_class: int = 25,
    n_test_per_class: int = 25,
    length: int = 230,
    seed: int = 42,
) -> Dataset:
    """Fish-like: seven fish-outline classes (radial scans)."""
    specs = {
        0: dict(lobes=2, sharpness=0.8, lobe_amp=0.50),
        1: dict(lobes=2, sharpness=1.6, lobe_amp=0.40),
        2: dict(lobes=3, sharpness=1.0, lobe_amp=0.35),
        3: dict(lobes=3, sharpness=2.0, lobe_amp=0.30),
        4: dict(lobes=4, sharpness=1.2, lobe_amp=0.30),
        5: dict(lobes=4, sharpness=0.7, lobe_amp=0.45),
        6: dict(lobes=5, sharpness=1.4, lobe_amp=0.25),
    }

    def cls(spec):
        return lambda rng: random_warp(_radial_profile(rng, length, **spec), rng, 0.02)

    return make_dataset(
        "FishSim", {k: cls(v) for k, v in specs.items()},
        length, n_train_per_class, n_test_per_class, seed,
    )


def mallat_sim(
    n_train_per_class: int = 7,
    n_test_per_class: int = 30,
    length: int = 256,
    seed: int = 43,
) -> Dataset:
    """MALLAT-like: one piecewise-smooth mother shape, eight scaled and
    perturbed variants (the original is generated from the MALLAT
    wavelet test signal)."""
    t = np.linspace(0, 1, length)
    mother = (
        np.where(t < 0.3, 4 * t, 0.0)
        + np.where((t >= 0.3) & (t < 0.5), 1.2 - 2 * (t - 0.3), 0.0)
        + np.where((t >= 0.5) & (t < 0.7), 0.8 + np.sin(20 * np.pi * (t - 0.5)) * 0.3, 0.0)
        + np.where(t >= 0.7, 0.8 * (1 - t) / 0.3, 0.0)
    )

    def cls(k: int):
        bump_pos = 0.1 + 0.1 * k

        def instance(rng: np.random.Generator) -> np.ndarray:
            out = mother * rng.uniform(0.9, 1.1)
            out += 0.5 * np.exp(-((t - bump_pos) ** 2) / 0.001)
            return out + rng.standard_normal(length) * 0.03

        return instance

    return make_dataset(
        "MallatSim", {k: cls(k) for k in range(8)},
        length, n_train_per_class, n_test_per_class, seed,
    )


def symbols_sim(
    n_train_per_class: int = 5,
    n_test_per_class: int = 30,
    length: int = 200,
    seed: int = 44,
) -> Dataset:
    """Symbols-like: six drawn-symbol pen trajectories."""
    t = np.linspace(0, 1, length)

    def cls(k: int):
        freq = 1 + k // 2
        phase = (k % 2) * np.pi / 2

        def instance(rng: np.random.Generator) -> np.ndarray:
            out = np.sin(2 * np.pi * freq * t + phase + rng.normal(0, 0.1))
            out += 0.4 * np.sin(2 * np.pi * (freq + 2) * t * rng.uniform(0.95, 1.05))
            return random_warp(out, rng, 0.04) + rng.standard_normal(length) * 0.05

        return instance

    return make_dataset(
        "SymbolsSim", {k: cls(k) for k in range(6)},
        length, n_train_per_class, n_test_per_class, seed,
    )


def haptics_sim(
    n_train_per_class: int = 20,
    n_test_per_class: int = 30,
    length: int = 200,
    seed: int = 45,
) -> Dataset:
    """Haptics-like: smooth low-frequency hand movements, five classes,
    deliberately hard (large within-class variation)."""

    def cls(k: int):
        def instance(rng: np.random.Generator) -> np.ndarray:
            t = np.linspace(0, 1, length)
            out = np.zeros(length)
            for h in range(1, 4):
                out += rng.normal(1.0 / h, 0.3) * np.sin(
                    2 * np.pi * h * t + 2 * np.pi * k / 5 + rng.normal(0, 0.3)
                )
            return smooth(out, 5) + rng.standard_normal(length) * 0.2

        return instance

    return make_dataset(
        "HapticsSim", {k: cls(k) for k in range(5)},
        length, n_train_per_class, n_test_per_class, seed,
    )


def yoga_sim(
    n_train_per_class: int = 30,
    n_test_per_class: int = 60,
    length: int = 220,
    seed: int = 46,
) -> Dataset:
    """Yoga-like: two pose outlines that differ in one limb region."""

    def pose(rng: np.random.Generator, variant: bool) -> np.ndarray:
        profile = _radial_profile(rng, length, lobes=4, sharpness=1.2,
                                  lobe_amp=0.35, irregularity=0.05)
        if variant:
            pos = int(0.62 * length)
            width = int(0.1 * length)
            profile[pos : pos + width] += np.hanning(width) * 0.35
        return random_warp(profile, rng, 0.02)

    return make_dataset(
        "YogaSim",
        {0: lambda rng: pose(rng, False), 1: lambda rng: pose(rng, True)},
        length, n_train_per_class, n_test_per_class, seed,
    )


def sony_robot_sim(
    n_train_per_class: int = 10,
    n_test_per_class: int = 60,
    length: int = 70,
    seed: int = 47,
) -> Dataset:
    """SonyAIBORobotSurface-like: short gait accelerometer cycles on two
    surfaces (carpet damps the impact spike, cement does not)."""

    def gait(rng: np.random.Generator, cement: bool) -> np.ndarray:
        t = np.linspace(0, 1, length)
        out = np.sin(2 * np.pi * 2 * t + rng.normal(0, 0.2)) * 0.5
        pos = int(rng.integers(int(0.2 * length), int(0.6 * length)))
        width = max(4, length // 10)
        end = min(pos + width, length)
        amp = rng.uniform(2.0, 2.8) if cement else rng.uniform(0.8, 1.2)
        out[pos:end] += np.hanning(end - pos) * amp
        return out + rng.standard_normal(length) * 0.15

    return make_dataset(
        "SonyRobotSim",
        {0: lambda rng: gait(rng, True), 1: lambda rng: gait(rng, False)},
        length, n_train_per_class, n_test_per_class, seed,
    )


def diatom_sim(
    n_train_per_class: int = 4,
    n_test_per_class: int = 30,
    length: int = 180,
    seed: int = 48,
) -> Dataset:
    """DiatomSizeReduction-like: same outline family at four sizes
    (classes differ mainly in lobe amplitude, the size-reduction axis)."""

    def cls(k: int):
        # Size reduction changes both the valve amplitude and how
        # peaked the lobes are; the sharpness term keeps the classes
        # distinguishable after z-normalization removes pure scale.
        spec = dict(
            lobes=3,
            sharpness=0.7 + 0.5 * k,
            lobe_amp=0.20 + 0.12 * k,
            irregularity=0.02,
        )
        return lambda rng: random_warp(_radial_profile(rng, length, **spec), rng, 0.01)

    return make_dataset(
        "DiatomSim", {k: cls(k) for k in range(4)},
        length, n_train_per_class, n_test_per_class, seed,
    )


def chlorine_sim(
    n_train_per_class: int = 15,
    n_test_per_class: int = 50,
    length: int = 166,
    seed: int = 49,
) -> Dataset:
    """ChlorineConcentration-like: slow dosing/decay curves, 3 regimes."""
    t = np.linspace(0, 1, length)

    def cls(k: int):
        def instance(rng: np.random.Generator) -> np.ndarray:
            rate = (k + 1) * rng.uniform(2.2, 2.8)
            out = np.exp(-rate * t) + 0.3 * np.sin(2 * np.pi * (k + 2) * t)
            return out + rng.standard_normal(length) * 0.05

        return instance

    return make_dataset(
        "ChlorineSim", {k: cls(k) for k in range(3)},
        length, n_train_per_class, n_test_per_class, seed,
    )
