"""Synthetic spectrography datasets (Coffee- and OliveOil-like).

The paper's Figure 3 shows representative patterns on the Coffee
dataset: FTIR spectra of Arabica vs. Robusta beans whose discriminative
regions are the caffeine and chlorogenic-acid bands. We regenerate the
same structure: each spectrum is a mixture of Gaussian absorption bands
over a smooth baseline; shared constituent bands (carbohydrates,
lipids) appear in every class while the class-identifying bands differ
in amplitude/position.
"""

from __future__ import annotations

import numpy as np

from .base import Dataset
from .synthetic import make_dataset

__all__ = ["coffee_sim", "olive_oil_sim", "gaussian_band"]


def gaussian_band(grid: np.ndarray, center: float, width: float, amplitude: float) -> np.ndarray:
    """One absorption band on the normalized wavenumber grid [0, 1]."""
    return amplitude * np.exp(-((grid - center) ** 2) / (2.0 * width * width))


def _spectrum(
    rng: np.random.Generator,
    grid: np.ndarray,
    shared: list[tuple[float, float, float]],
    specific: list[tuple[float, float, float]],
    noise: float,
) -> np.ndarray:
    """Baseline + shared bands + class bands, with per-instance jitter."""
    out = 0.3 + 0.2 * grid + 0.1 * np.sin(3 * np.pi * grid)  # instrument baseline
    for center, width, amplitude in shared + specific:
        jitter_c = center + rng.normal(0, 0.004)
        jitter_a = amplitude * rng.uniform(0.85, 1.15)
        out += gaussian_band(grid, jitter_c, width, jitter_a)
    return out + rng.standard_normal(grid.size) * noise


def coffee_sim(
    n_train_per_class: int = 14,
    n_test_per_class: int = 14,
    length: int = 286,
    seed: int = 20,
) -> Dataset:
    """Coffee-like spectra: Arabica vs Robusta.

    Robusta carries roughly twice the caffeine and more chlorogenic
    acid, so its bands at those positions are stronger — that is the
    class-specific structure RPM should pick up (paper Figure 3).
    """
    grid = np.linspace(0.0, 1.0, length)
    shared = [
        (0.15, 0.03, 0.8),  # carbohydrates
        (0.40, 0.05, 0.6),  # lipids
        (0.85, 0.04, 0.5),  # water/other constituents
    ]
    arabica = [
        (0.60, 0.02, 0.35),  # caffeine (weaker)
        (0.72, 0.025, 0.30),  # chlorogenic acid (weaker)
    ]
    robusta = [
        (0.60, 0.02, 0.75),  # caffeine (stronger)
        (0.72, 0.025, 0.65),  # chlorogenic acid (stronger)
    ]

    return make_dataset(
        "CoffeeSim",
        {
            0: lambda rng: _spectrum(rng, grid, shared, arabica, 0.015),
            1: lambda rng: _spectrum(rng, grid, shared, robusta, 0.015),
        },
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )


def olive_oil_sim(
    n_train_per_class: int = 8,
    n_test_per_class: int = 8,
    length: int = 300,
    seed: int = 21,
) -> Dataset:
    """OliveOil-like spectra: four origins with subtle band shifts."""
    grid = np.linspace(0.0, 1.0, length)
    shared = [
        (0.10, 0.04, 0.9),
        (0.35, 0.06, 0.7),
        (0.90, 0.03, 0.4),
    ]
    specifics = {
        0: [(0.55, 0.02, 0.50), (0.70, 0.02, 0.20)],
        1: [(0.57, 0.02, 0.45), (0.70, 0.02, 0.35)],
        2: [(0.55, 0.02, 0.30), (0.73, 0.02, 0.45)],
        3: [(0.58, 0.02, 0.55), (0.73, 0.02, 0.25)],
    }

    def cls(bands):
        return lambda rng: _spectrum(rng, grid, shared, bands, 0.008)

    return make_dataset(
        "OliveOilSim",
        {k: cls(v) for k, v in specifics.items()},
        length,
        n_train_per_class,
        n_test_per_class,
        seed,
    )
