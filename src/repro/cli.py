"""Command-line interface.

Usage (after ``pip install -e .``; installed as both ``rpm`` and
``repro``)::

    rpm datasets                     # list available datasets
    rpm train CBF -o model.npz       # mine patterns + save model
    rpm evaluate CBF                 # train/test error on a dataset
    rpm evaluate CBF --method NN-ED  # a baseline instead of RPM
    rpm patterns model.npz           # inspect a saved model
    rpm classify model.npz data.txt  # label series via the in-process model
    rpm predict --model model.npz data.txt   # label series via repro.serve
    rpm serve --model model.npz      # micro-batched serving loop on stdin
    rpm serve --model model.npz --http-port 9100 --log-format json
    rpm serve --registry models/ --http-port 9100   # serve the promoted version
    rpm serve --registry models/ --shadow v3 --shadow-report-out shadow.json
    rpm serve --registry models/ --drift --http-port 9100   # + GET /drift
    rpm model publish models/ model.npz      # version an artifact with lineage
    rpm model publish models/ model.npz --reference  # + drift reference
    rpm drift models/ --data new_traffic.txt # offline drift comparison
    rpm model list models/                   # every version + promotion marker
    rpm model promote models/ v2 --shadow-report shadow.json --max-disagreement 0.01
    rpm model rollback models/               # CURRENT back to the previous version
    rpm metrics --url http://127.0.0.1:9100  # scrape a live admin endpoint
    rpm metrics --jsonl metrics.jsonl --format prometheus
    rpm metrics --url http://127.0.0.1:9100 --route drift  # render GET /drift

``train``/``evaluate`` accept either a registry dataset name or (when
``RPM_UCR_ROOT`` is set) a real UCR archive dataset. ``predict`` and
``serve`` run the compiled inference engine (``repro.serve``) — the
production path for persisted artifacts; ``classify`` keeps the simple
in-process path for comparison.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from . import __version__
from .baselines import (
    FastShapeletsClassifier,
    LearningShapeletsClassifier,
    NearestNeighborDTW,
    NearestNeighborED,
    SaxVsmClassifier,
)
from .core.io import load_model, save_model
from .core.rpm import RPMClassifier
from .data import GENERATORS, available_ucr_datasets, load
from .data.ucr import load_ucr_file
from .ml.metrics import error_rate
from .obs import (
    Tracer,
    configure_logging,
    format_tree,
    registry,
    snapshot_from_jsonl,
    to_json,
    to_prometheus,
    write_jsonl,
)
from .runtime.cache import DEFAULT_CACHE_SIZE
from .runtime.kernel import KERNEL_BACKENDS
from .runtime.discretize_cache import DEFAULT_DISCRETIZE_CACHE_SIZE
from .runtime.selection_cache import DEFAULT_SELECTION_CACHE_SIZE
from .sax.discretize import REDUCTIONS, SaxParams
from .serve import (
    CompiledModel,
    ModelHandle,
    ModelRegistry,
    PredictionService,
    PromotionGate,
    ServeConfig,
    ShadowReport,
    ShardedPredictionService,
    build_reference,
    offline_drift_report,
)

BASELINES = {
    "NN-ED": NearestNeighborED,
    "NN-DTWB": NearestNeighborDTW,
    "SAX-VSM": SaxVsmClassifier,
    "FS": FastShapeletsClassifier,
    "LS": LearningShapeletsClassifier,
}


def _positive_int(text: str) -> int:
    """Argparse type for flags that must be strictly positive.

    Rejecting zero and negatives at the parser gives a clear usage
    error instead of a traceback (or a degenerate LRU) deep inside the
    pipeline.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    """Argparse type for float flags that must be strictly positive.

    Mirrors :func:`_positive_int`: a zero or negative threshold
    (``--admission-budget-ms -5``) is a configuration mistake that
    previously slipped through ``type=float`` and shed every request —
    reject it at the parser with a usage error instead.
    """
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not value > 0:
        raise argparse.ArgumentTypeError(f"must be a positive number, got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    """Argparse type for float flags where zero means 'disabled'.

    ``--slow-ms`` documents ``0`` as the explicit disable sentinel
    (``ServeConfig`` and both tiers treat a falsy ``slow_ms`` as "no
    slow capture"), so only negatives are configuration mistakes.
    """
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    """Argparse type for flags where zero means 'disabled'."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _jobs_count(text: str) -> int:
    """Argparse type for ``--jobs``: a positive worker count or -1 (all CPUs)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value == 0 or value < -1:
        raise argparse.ArgumentTypeError(
            f"must be a positive worker count or -1 for all CPUs, got {value}"
        )
    return value


def _tracer_for(args) -> Tracer | None:
    """A live tracer when ``--trace``/``--metrics-out`` ask for one."""
    if getattr(args, "trace", False) or getattr(args, "metrics_out", None):
        return Tracer()
    return None


def _emit_observability(args, tracer: Tracer | None) -> None:
    """Print the span tree and/or write the JSON-lines dump."""
    if tracer is None:
        return
    if args.trace:
        print("\n-- trace --")
        print(format_tree(tracer))
    if args.metrics_out:
        path = write_jsonl(
            args.metrics_out,
            tracer=tracer,
            metrics=registry(),
            meta={"command": args.command, "dataset": getattr(args, "dataset", None)},
        )
        print(f"metrics written to {path}")


def _build_rpm(args, tracer: Tracer | None = None) -> RPMClassifier:
    runtime = dict(
        n_jobs=args.jobs,
        parallel_backend=args.parallel_backend,
        kernel_backend=args.kernel_backend,
        cache_size=args.cache_size,
        discretize_cache_size=args.discretize_cache_size,
        selection_cache_size=args.selection_cache_size,
        numerosity_reduction=args.numerosity,
        trace=tracer,
    )
    if args.window:
        params = SaxParams(args.window, args.paa, args.alphabet)
        return RPMClassifier(sax_params=params, gamma=args.gamma, seed=args.seed, **runtime)
    return RPMClassifier(
        direct_budget=args.budget,
        n_splits=args.splits,
        gamma=args.gamma,
        seed=args.seed,
        **runtime,
    )


def cmd_datasets(_args) -> int:
    """``repro datasets``: list every available dataset."""
    print("synthetic registry datasets:")
    for name in sorted(GENERATORS):
        print(f"  {load(name).summary_row()}")
    ucr = available_ucr_datasets()
    if ucr:
        print("\nUCR archive datasets (RPM_UCR_ROOT):")
        for name in ucr:
            print(f"  {name}")
    return 0


def cmd_train(args) -> int:
    """``repro train``: fit RPM on a dataset, optionally save it."""
    dataset = load(args.dataset)
    tracer = _tracer_for(args)
    clf = _build_rpm(args, tracer)
    start = time.perf_counter()
    clf.fit(dataset.X_train, dataset.y_train)
    elapsed = time.perf_counter() - start
    err = error_rate(dataset.y_test, clf.predict(dataset.X_test))
    print(f"{dataset.name}: trained in {elapsed:.1f}s, "
          f"{len(clf.patterns_)} patterns, test error {err:.3f}")
    if args.output:
        save_model(clf, args.output)
        print(f"model saved to {args.output}")
    _emit_observability(args, tracer)
    return 0


def cmd_evaluate(args) -> int:
    """``repro evaluate``: score one method on one dataset."""
    dataset = load(args.dataset)
    tracer = _tracer_for(args) if args.method == "RPM" else None
    if args.method == "RPM":
        model = _build_rpm(args, tracer)
    else:
        model = BASELINES[args.method]()
    start = time.perf_counter()
    model.fit(dataset.X_train, dataset.y_train)
    train_time = time.perf_counter() - start
    start = time.perf_counter()
    predictions = model.predict(dataset.X_test)
    test_time = time.perf_counter() - start
    err = error_rate(dataset.y_test, predictions)
    print(
        f"{dataset.name} / {args.method}: error {err:.3f} "
        f"(train {train_time:.1f}s, classify {test_time:.1f}s)"
    )
    _emit_observability(args, tracer)
    return 0


def cmd_patterns(args) -> int:
    """``repro patterns``: print a saved model's patterns."""
    clf = load_model(args.model)
    print(clf.describe_patterns())
    return 0


def cmd_classify(args) -> int:
    """``repro classify``: label UCR-format series with a saved model."""
    clf = load_model(args.model)
    X, _ = load_ucr_file(args.data)
    for i, label in enumerate(clf.predict(X)):
        print(f"{i}\t{label}")
    return 0


def _open_handle(args, tracer: Tracer | None = None) -> ModelHandle:
    """The serving :class:`ModelHandle` from the model-source flags.

    ``--model PATH`` opens one artifact directly; ``--registry DIR``
    opens a version (``--model-version``, default the promoted
    ``current``) with integrity checks and enables version-name
    hot-swap via the admin ``POST /swap``.
    """
    shards = getattr(args, "shards", 0)
    runtime = dict(
        n_jobs=1 if shards else args.jobs,
        parallel_backend=args.parallel_backend,
        kernel_backend=args.kernel_backend,
        dtype=getattr(args, "model_dtype", "float64"),
        trace=tracer,
    )
    registry_dir = getattr(args, "registry", None)
    if registry_dir:
        version = getattr(args, "model_version", None) or "current"
        return ModelHandle.open(version, registry=registry_dir, **runtime)
    if not args.model:
        raise ValueError("pass --model PATH or --registry DIR")
    return ModelHandle.open(args.model, **runtime)


def _build_service(args, tracer: Tracer | None = None):
    """Serving tier from the serve flags, all knobs via ServeConfig.

    ``--shards 0`` (default) builds the in-process
    :class:`PredictionService`; ``--shards N`` builds the sharded
    multi-process tier with its shared-memory pattern bank and
    admission control. Both expose the same client API, so callers
    never branch.
    """
    config = ServeConfig.from_args(args)
    handle = _open_handle(args, tracer)
    if config.n_shards:
        return ShardedPredictionService(handle, config=config, trace=tracer)
    return PredictionService(handle, config=config, trace=tracer)


def _result_record(index, result) -> dict:
    """JSON-safe view of one PredictionResult."""
    record = {
        "index": index,
        "request_id": result.request_id,
        "status": result.status.value,
        "label": None if result.label is None else np.asarray(result.label).item(),
        "latency_ms": round(result.latency_ms, 3),
    }
    if result.model_version is not None:
        record["model_version"] = result.model_version
    if result.batch_id is not None:
        record["batch_id"] = result.batch_id
    if result.error_code:
        record["error_code"] = result.error_code
        record["error"] = result.error_message
    if result.deadline_missed:
        record["deadline_missed"] = True
    return record


def cmd_predict(args) -> int:
    """``rpm predict``: label UCR-format series through ``repro.serve``.

    Unlike ``classify`` this exercises the full serving path — compiled
    pattern bank, validation, micro-batching, deadlines — and reports a
    typed per-row status instead of failing on the first bad row.
    """
    tracer = _tracer_for(args)
    X, _ = load_ucr_file(args.data)
    with _build_service(args, tracer) as service:
        results = service.predict_many(X, deadline_ms=args.deadline_ms)
    failed = sum(not r.ok for r in results)
    for i, result in enumerate(results):
        if args.json:
            print(json.dumps(_result_record(i, result)))
        elif result.ok:
            print(f"{i}\t{np.asarray(result.label).item()}")
        else:
            print(f"{i}\t<{result.status.value}:{result.error_code or '-'}>")
    if failed:
        print(f"{failed}/{len(results)} requests failed", file=sys.stderr)
    _emit_observability(args, tracer)
    return 0 if failed == 0 else 3


def cmd_serve(args) -> int:
    """``rpm serve``: micro-batched serving loop over stdin lines.

    Each input line is one series (whitespace- or comma-separated
    values); each output line is one JSON result record. The loop is
    the same engine ``predict`` uses, kept open until EOF — pipe
    requests in, stream typed predictions out.
    """
    configure_logging(args.log_format)
    tracer = _tracer_for(args)
    stream = sys.stdin if args.input == "-" else open(args.input)
    try:
        with _build_service(args, tracer) as service:
            print(service.model.describe(), file=sys.stderr)
            if service.admin is not None:
                print(f"admin endpoint on {service.admin.url()}", file=sys.stderr)
            if args.shadow:
                scorer = service.attach_shadow(
                    args.shadow, fraction=args.shadow_fraction
                )
                print(
                    f"shadow scoring {args.shadow} "
                    f"(fraction {scorer.fraction})",
                    file=sys.stderr,
                )
            if args.drift:
                # Registry serving resolves the stored (or rebuilt)
                # reference for the live version; bare-path serving
                # rebuilds one from the artifact's archived features.
                monitor = service.attach_drift(
                    None if getattr(args, "registry", None) else args.model
                )
                print(
                    f"drift monitoring on (window {monitor.window}, "
                    f"threshold {monitor.threshold})",
                    file=sys.stderr,
                )
            count = 0
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                parts = line.replace(",", " ").split()
                try:
                    series = np.array([float(p) for p in parts])
                except ValueError:
                    series = np.array(parts, dtype=object)
                result = service.predict_one(series, deadline_ms=args.deadline_ms)
                print(json.dumps(_result_record(count, result)), flush=True)
                count += 1
            print(f"served {count} requests", file=sys.stderr)
            report = service.detach_shadow()
            if report is not None:
                print(
                    f"shadow report: {report.n_scored} scored, "
                    f"disagreement {report.disagreement_rate:.4f}",
                    file=sys.stderr,
                )
                if args.shadow_report_out:
                    with open(args.shadow_report_out, "w") as fh:
                        json.dump(report.as_record(), fh, indent=2)
                        fh.write("\n")
                    print(
                        f"shadow report written to {args.shadow_report_out}",
                        file=sys.stderr,
                    )
            drift_state = service.detach_drift()
            if drift_state is not None:
                print(
                    f"drift: score {drift_state['score']:.4f} "
                    f"(threshold {drift_state['threshold']}, "
                    f"alert {drift_state['alert']})",
                    file=sys.stderr,
                )
    finally:
        if stream is not sys.stdin:
            stream.close()
    _emit_observability(args, tracer)
    return 0


def cmd_metrics(args) -> int:
    """``rpm metrics``: snapshot metrics from a live service or a dump.

    ``--url`` scrapes the admin endpoint of a running ``rpm serve
    --http-port`` process (its ``/metrics.json`` view); ``--jsonl``
    rebuilds the snapshot from a ``--metrics-out`` JSON-lines dump.
    Either renders as Prometheus text or a JSON document.
    ``--route drift`` scrapes ``GET /drift`` instead (``--url`` only)
    and renders its gauges through the same exporter machinery.
    """
    if args.url:
        import urllib.error
        import urllib.request

        route = "/drift" if args.route == "drift" else "/metrics.json"
        try:
            with urllib.request.urlopen(
                args.url.rstrip("/") + route, timeout=args.timeout
            ) as response:
                payload = json.load(response)
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.load(exc).get("error", "")
            except Exception:
                pass
            print(
                f"error: {args.url}{route} returned {exc.code}"
                + (f": {detail}" if detail else ""),
                file=sys.stderr,
            )
            return 1
        except urllib.error.URLError as exc:
            print(f"error: cannot scrape {args.url}: {exc}", file=sys.stderr)
            return 1
        if args.route == "drift":
            # The /drift body carries its values as flat gauge names
            # under "gauges" precisely so it can ride the standard
            # snapshot renderers below.
            snapshot = {
                "counters": {},
                "gauges": payload.get("gauges", {}),
                "histograms": {},
            }
            if args.format == "json":
                print(json.dumps(payload, indent=2, sort_keys=True))
                return 0
        else:
            snapshot = payload
    else:
        if args.route == "drift":
            print(
                "error: --route drift scrapes a live endpoint; "
                "it cannot render a --jsonl dump",
                file=sys.stderr,
            )
            return 1
        snapshot = snapshot_from_jsonl(args.jsonl)
    if args.format == "prometheus":
        print(to_prometheus(snapshot), end="")
    else:
        print(to_json(snapshot, indent=2))
    return 0


def cmd_model(args) -> int:
    """``rpm model``: manage a versioned model registry.

    ``publish`` validates + copies one ``save_model`` artifact into the
    registry with lineage metadata; ``list`` shows every version
    (``*`` marks the promoted CURRENT); ``promote`` moves the CURRENT
    pointer, optionally behind a :class:`PromotionGate` fed by a
    ``rpm serve --shadow-report-out`` JSON; ``rollback`` returns to the
    previously promoted version.
    """
    reg = ModelRegistry(args.registry_dir)
    if args.model_command == "publish":
        mv = reg.publish(
            args.artifact,
            version=args.as_version,
            parent=args.parent,
            notes=args.notes,
            reference=args.reference,
        )
        print(f"published {mv.version} (sha256 {mv.sha256[:12]}…, "
              f"{mv.size_bytes} bytes)")
        if mv.reference_sha256:
            print(f"reference distribution stored "
                  f"(sha256 {mv.reference_sha256[:12]}…)")
        return 0
    if args.model_command == "list":
        versions = reg.list_versions()
        if args.json:
            print(json.dumps([mv.as_record() for mv in versions], indent=2))
            return 0
        current = reg.current()
        if not versions:
            print(f"registry {reg.root} is empty")
            return 0
        for mv in versions:
            marker = "*" if mv.version == current else " "
            parent = f" <- {mv.parent}" if mv.parent else ""
            print(f"{marker} {mv.version:12s} {mv.status:8s} "
                  f"sha256 {mv.sha256[:12]}…{parent}")
        return 0
    if args.model_command == "promote":
        gate = report = None
        if args.shadow_report:
            with open(args.shadow_report) as fh:
                report = ShadowReport.from_record(json.load(fh))
            gate = PromotionGate(
                max_disagreement=args.max_disagreement,
                max_latency_regression=args.max_latency_regression,
                min_requests=args.min_requests,
            )
        mv = reg.promote(args.version, gate=gate, report=report)
        print(f"promoted {mv.version} (CURRENT)")
        return 0
    if args.model_command == "rollback":
        mv = reg.rollback()
        print(f"rolled back to {mv.version} (CURRENT)")
        return 0
    raise ValueError(f"unknown model subcommand {args.model_command!r}")


def cmd_drift(args) -> int:
    """``rpm drift``: offline drift comparison against a registry version.

    ``--data`` runs the version's compiled model over a UCR-format file
    and compares the resulting feature distributions against the
    version's training reference (stored by ``rpm model publish
    --reference``, or rebuilt on the spot from the archived train
    features); ``--jsonl`` instead re-judges the ``serve.drift.*``
    gauges a monitored serve run dumped via ``--metrics-out``.
    Exit code 0 = in distribution, 3 = the drift score exceeds the
    threshold.
    """
    reg = ModelRegistry(args.registry_dir)
    if args.jsonl:
        snap = snapshot_from_jsonl(args.jsonl)
        gauges = snap.get("gauges", {})
        if "serve.drift.score" not in gauges:
            print(
                f"error: {args.jsonl} records no serve.drift.* gauges "
                f"(was the serve run monitored with --drift?)",
                file=sys.stderr,
            )
            return 1
        score = float(gauges["serve.drift.score"])
        prefix = "serve.drift.psi[column="
        per_column = {
            int(name[len(prefix):-1]): float(value)
            for name, value in gauges.items()
            if name.startswith(prefix)
        }
        offenders = sorted(per_column.items(), key=lambda kv: -kv[1])[:3]
        report = {
            "score": score,
            "threshold": args.threshold,
            "alert": score > args.threshold,
            "source": args.jsonl,
            "columns": [
                {"column": k, "psi": per_column[k]} for k in sorted(per_column)
            ],
            "top_offenders": [
                {"column": k, "psi": v} for k, v in offenders if v > 0
            ],
            "reference": reg.get(args.version).version,
        }
    else:
        ref = reg.reference(args.version)
        if ref is None:
            mv = reg.get(args.version)
            ref = build_reference(mv.path, source=f"{mv.version}/model.npz")
        X, _ = load_ucr_file(args.data)
        with reg.open(args.version) as model:
            features = model.transform(X)
        report = offline_drift_report(ref, features, X, threshold=args.threshold)
        report["source"] = args.data
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        status = "ALERT" if report["alert"] else "ok"
        print(
            f"drift score {report['score']:.4f} vs threshold "
            f"{report['threshold']} [{status}] "
            f"({report['source']} vs {args.version})"
        )
        for offender in report["top_offenders"]:
            print(f"  column {offender['column']}: psi {offender['psi']:.4f}")
    return 3 if report["alert"] else 0


def cmd_motifs(args) -> int:
    """``repro motifs``: motif/discord discovery on a long series."""
    from .motif import find_discords_density, find_motifs
    from .viz import sparkline

    X, _ = load_ucr_file(args.data)
    series = X.ravel() if X.shape[0] == 1 else np.concatenate(list(X))
    params = SaxParams(args.window, args.paa, args.alphabet)
    motifs = find_motifs(series, params, top_k=args.top, rank_by=args.rank)
    print(f"{len(series)}-point series, SAX {params.as_tuple()}:")
    for motif in motifs:
        print(
            f"R{motif.rule_id}: freq={motif.frequency} "
            f"mean_len={motif.mean_length():.0f} covers={motif.covered_points()}"
        )
        if motif.prototype is not None:
            print("  " + sparkline(motif.prototype, width=48))
    if args.discords:
        for discord in find_discords_density(series, params, n_discords=args.discords):
            print(
                f"discord [{discord.start}, {discord.end}) "
                f"score={discord.score:.2f} density={discord.density:.1f}"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RPM (EDBT 2016) — representative pattern mining for "
        "time series classification",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list available datasets").set_defaults(
        func=cmd_datasets
    )

    def add_rpm_options(p):
        p.add_argument("--gamma", type=float, default=0.2, help="min motif support")
        p.add_argument("--budget", type=int, default=40, help="DIRECT evaluations")
        p.add_argument("--splits", type=int, default=3, help="validation splits")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--window", type=int, default=0,
                       help="fixed SAX window (skips parameter search)")
        p.add_argument("--paa", type=int, default=6, help="fixed PAA size")
        p.add_argument("--alphabet", type=int, default=5, help="fixed alphabet size")
        p.add_argument("--jobs", type=_jobs_count, default=1,
                       help="parallel workers (-1 = all CPUs); results are "
                            "identical to serial")
        p.add_argument("--parallel-backend", choices=["serial", "thread", "process"],
                       default="thread", help="parallel execution backend")
        p.add_argument("--kernel-backend", choices=list(KERNEL_BACKENDS),
                       default="auto",
                       help="distance-kernel implementation: 'matvec' is the "
                            "exact per-pattern path, 'fft' batches patterns "
                            "through one series spectrum, 'auto' picks FFT "
                            "only above the calibrated crossover")
        p.add_argument("--cache-size", type=_positive_int, default=DEFAULT_CACHE_SIZE,
                       help="sliding-window statistics cache entries (must be "
                            "positive; the library-level WindowStatsCache(0) "
                            "remains available for uncached runs)")
        p.add_argument("--discretize-cache-size", type=_positive_int,
                       default=DEFAULT_DISCRETIZE_CACHE_SIZE,
                       help="discretization pre-work cache entries shared by "
                            "the parameter search (must be positive; the "
                            "library-level DiscretizationCache(0) remains "
                            "available for uncached runs)")
        p.add_argument("--selection-cache-size", type=_positive_int,
                       default=DEFAULT_SELECTION_CACHE_SIZE,
                       help="CFS selection pre-work cache entries shared by "
                            "the parameter search (must be positive; the "
                            "library-level SelectionCache(0) remains "
                            "available for uncached runs)")
        p.add_argument("--numerosity", choices=list(REDUCTIONS), default="exact",
                       help="numerosity reduction mode: 'exact' collapses "
                            "runs of identical SAX words (paper default), "
                            "'mindist' also collapses near-identical "
                            "neighbours, 'none' keeps every window")
        p.add_argument("--trace", action="store_true",
                       help="print a per-stage span tree (wall times) after the run")
        p.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write spans + metrics as JSON lines to PATH")

    train = sub.add_parser("train", help="train RPM on a dataset")
    train.add_argument("dataset")
    train.add_argument("-o", "--output", help="save the model (.npz)")
    add_rpm_options(train)
    train.set_defaults(func=cmd_train)

    evaluate = sub.add_parser("evaluate", help="error rate of a method on a dataset")
    evaluate.add_argument("dataset")
    evaluate.add_argument(
        "--method", choices=["RPM", *BASELINES], default="RPM"
    )
    add_rpm_options(evaluate)
    evaluate.set_defaults(func=cmd_evaluate)

    patterns = sub.add_parser("patterns", help="inspect a saved model")
    patterns.add_argument("model")
    patterns.set_defaults(func=cmd_patterns)

    classify = sub.add_parser("classify", help="label UCR-format series")
    classify.add_argument("model")
    classify.add_argument("data", help="UCR-format text file")
    classify.set_defaults(func=cmd_classify)

    def add_serve_options(p):
        p.add_argument("--model", default=None, help="saved model (.npz)")
        p.add_argument("--registry", metavar="DIR", default=None,
                       help="serve out of a model registry instead of a bare "
                            "path; loads the promoted 'current' version "
                            "(override with --model-version) and enables "
                            "version-name hot-swap via POST /swap")
        p.add_argument("--model-version", default=None,
                       help="registry version to serve (default: the "
                            "promoted 'current'; 'latest' = newest publish)")
        p.add_argument("--model-dtype", choices=list(CompiledModel.DTYPES),
                       default="float64",
                       help="pattern-bank value dtype; float32 halves the "
                            "bank at the cost of bitwise equivalence with "
                            "RPMClassifier (gate it through shadow scoring)")
        p.add_argument("--max-batch", type=_positive_int, default=32,
                       help="largest micro-batch coalesced into one model call")
        p.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="longest a batch window stays open (0 disables "
                            "coalescing)")
        p.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request deadline; expired requests get a "
                            "typed timeout result")
        p.add_argument("--no-warmup", action="store_true",
                       help="skip the warm-up batch on startup")
        p.add_argument("--slow-ms", type=_nonnegative_float, default=250.0,
                       help="flight-record OK requests at or above this "
                            "latency in milliseconds (0 disables slow "
                            "capture)")
        p.add_argument("--flight-size", type=_nonnegative_int, default=128,
                       help="flight-recorder ring size — recent slow/error/"
                            "timeout requests kept for /debug/requests "
                            "(0 disables capture)")
        p.add_argument("--jobs", type=_jobs_count, default=1,
                       help="parallel workers for the compiled transform "
                            "(-1 = all CPUs; ignored with --shards)")
        p.add_argument("--shards", type=_nonnegative_int, default=0,
                       help="worker processes for the sharded serving tier "
                            "(0 = single-process service)")
        p.add_argument("--admission-budget-ms", type=_positive_float, default=None,
                       help="shed requests with a typed OVERLOAD result when "
                            "a shard's estimated queue wait exceeds this "
                            "budget (sharded tier only)")
        p.add_argument("--max-queue", type=_positive_int, default=256,
                       help="hard cap on in-flight requests per shard; at "
                            "the cap, submits shed with OVERLOAD "
                            "(sharded tier only)")
        p.add_argument("--parallel-backend", choices=["serial", "thread", "process"],
                       default="thread", help="parallel execution backend")
        p.add_argument("--kernel-backend", choices=list(KERNEL_BACKENDS),
                       default="auto",
                       help="distance-kernel implementation for the compiled "
                            "bucket transform ('auto' = FFT above the "
                            "calibrated crossover, exact mat-vec below)")
        p.add_argument("--trace", action="store_true",
                       help="print a per-stage span tree (wall times) after the run")
        p.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write spans + metrics as JSON lines to PATH")

    predict = sub.add_parser(
        "predict", help="label UCR-format series via the repro.serve engine"
    )
    predict.add_argument("data", help="UCR-format text file")
    predict.add_argument("--json", action="store_true",
                         help="emit one JSON result record per row")
    add_serve_options(predict)
    predict.set_defaults(func=cmd_predict)

    serve = sub.add_parser(
        "serve", help="micro-batched serving loop (one series per input line)"
    )
    serve.add_argument("--input", default="-",
                       help="request source file ('-' = stdin)")
    serve.add_argument("--http-port", type=_nonnegative_int, default=None,
                       help="embedded admin endpoint port (/metrics /healthz "
                            "/readyz /debug/requests; 0 = ephemeral)")
    serve.add_argument("--log-format", choices=["text", "json"], default="text",
                       help="structured log line format on stderr")
    serve.add_argument("--shadow", metavar="TARGET", default=None,
                       help="mirror a fraction of traffic onto a candidate "
                            "model off the latency path (a registry version "
                            "name or an .npz path)")
    serve.add_argument("--shadow-fraction", type=float, default=0.1,
                       help="fraction of OK requests mirrored to the shadow "
                            "candidate (0 < f <= 1)")
    serve.add_argument("--shadow-report-out", metavar="PATH", default=None,
                       help="write the final ShadowReport as JSON to PATH "
                            "on shutdown (feeds 'rpm model promote "
                            "--shadow-report')")
    serve.add_argument("--drift", action="store_true",
                       help="monitor live traffic for distribution drift "
                            "against the served version's training reference "
                            "(publish with --reference, or the reference is "
                            "rebuilt from the artifact's archived features); "
                            "exposes serve.drift.* gauges and GET /drift")
    serve.add_argument("--drift-window", type=_positive_int, default=256,
                       help="recent-window half-life in observations for the "
                            "decayed drift sketches")
    serve.add_argument("--drift-threshold", type=_positive_float, default=0.25,
                       help="aggregate PSI above which the drift alert fires "
                            "(flight-recorded on the rising edge)")
    add_serve_options(serve)
    serve.set_defaults(func=cmd_serve)

    metrics = sub.add_parser(
        "metrics", help="snapshot metrics from a live admin endpoint or a dump"
    )
    source = metrics.add_mutually_exclusive_group(required=True)
    source.add_argument("--url", default=None,
                        help="base URL of a running admin endpoint "
                             "(e.g. http://127.0.0.1:9100)")
    source.add_argument("--jsonl", default=None,
                        help="a --metrics-out JSON-lines dump to render")
    metrics.add_argument("--format", choices=["prometheus", "json"],
                         default="prometheus", help="output format")
    metrics.add_argument("--route", choices=["metrics", "drift"],
                         default="metrics",
                         help="admin route to render: 'metrics' = the full "
                              "snapshot, 'drift' = GET /drift (--url only; "
                              "json format emits the full payload)")
    metrics.add_argument("--timeout", type=float, default=5.0,
                         help="scrape timeout in seconds (--url only)")
    metrics.set_defaults(func=cmd_metrics)

    model = sub.add_parser(
        "model", help="manage a versioned model registry (publish/promote)"
    )
    model_sub = model.add_subparsers(dest="model_command", required=True)

    publish = model_sub.add_parser(
        "publish", help="validate + copy an artifact into the registry"
    )
    publish.add_argument("registry_dir", help="registry root directory")
    publish.add_argument("artifact", help="saved model (.npz) to publish")
    publish.add_argument("--as-version", default=None, metavar="NAME",
                         help="version name (default: v<N+1>)")
    publish.add_argument("--parent", default=None,
                         help="lineage: the already-published parent version")
    publish.add_argument("--notes", default="", help="free-form notes")
    publish.add_argument("--reference", action="store_true",
                         help="also compute + store the version's training "
                              "reference distribution (reference.json, "
                              "integrity-tracked) for drift monitoring "
                              "('rpm serve --drift' / 'rpm drift')")
    publish.set_defaults(func=cmd_model)

    model_list = model_sub.add_parser(
        "list", help="every published version; * marks CURRENT"
    )
    model_list.add_argument("registry_dir", help="registry root directory")
    model_list.add_argument("--json", action="store_true",
                            help="emit the full lineage records as JSON")
    model_list.set_defaults(func=cmd_model)

    promote = model_sub.add_parser(
        "promote", help="point CURRENT at a version (optionally gated)"
    )
    promote.add_argument("registry_dir", help="registry root directory")
    promote.add_argument("version", help="version to promote")
    promote.add_argument("--shadow-report", metavar="PATH", default=None,
                         help="gate the promotion on a 'rpm serve "
                              "--shadow-report-out' JSON report")
    promote.add_argument("--max-disagreement", type=float, default=0.01,
                         help="gate: highest tolerated label disagreement "
                              "rate vs the primary (with --shadow-report)")
    promote.add_argument("--max-latency-regression", type=float, default=0.25,
                         help="gate: highest tolerated relative mean-latency "
                              "regression (with --shadow-report)")
    promote.add_argument("--min-requests", type=_positive_int, default=1,
                         help="gate: fewest shadow-scored requests required "
                              "for the report to count (with --shadow-report)")
    promote.set_defaults(func=cmd_model)

    rollback = model_sub.add_parser(
        "rollback", help="move CURRENT back to the previous promotion"
    )
    rollback.add_argument("registry_dir", help="registry root directory")
    rollback.set_defaults(func=cmd_model)

    drift = sub.add_parser(
        "drift", help="offline drift comparison against a registry version"
    )
    drift.add_argument("registry_dir", help="registry root directory")
    drift.add_argument("--version", default="current",
                       help="registry version whose training reference to "
                            "compare against (default: the promoted "
                            "'current')")
    drift_source = drift.add_mutually_exclusive_group(required=True)
    drift_source.add_argument("--data", default=None,
                              help="UCR-format text file to score and compare")
    drift_source.add_argument("--jsonl", default=None,
                              help="a --metrics-out dump from a monitored "
                                   "serve run; its recorded serve.drift.* "
                                   "gauges are re-judged against --threshold")
    drift.add_argument("--threshold", type=_positive_float, default=0.25,
                       help="aggregate PSI above which the comparison exits "
                            "with code 3")
    drift.add_argument("--json", action="store_true",
                       help="emit the full report as JSON")
    drift.set_defaults(func=cmd_drift)

    motifs = sub.add_parser(
        "motifs", help="discover motifs/discords in a long series"
    )
    motifs.add_argument("data", help="UCR-format text file (rows are concatenated)")
    motifs.add_argument("--window", type=int, default=40)
    motifs.add_argument("--paa", type=int, default=5)
    motifs.add_argument("--alphabet", type=int, default=4)
    motifs.add_argument("--top", type=int, default=5, help="motifs to report")
    motifs.add_argument("--rank", choices=["frequency", "length", "coverage"],
                        default="frequency")
    motifs.add_argument("--discords", type=int, default=0,
                        help="also report this many discords")
    motifs.set_defaults(func=cmd_motifs)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
