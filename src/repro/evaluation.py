"""Library-level evaluation and method comparison.

The benchmark harness under ``benchmarks/`` drives the paper's tables;
this module exposes the same machinery as a reusable API so downstream
users can run their own comparisons (own datasets, own methods)
without the pytest scaffolding::

    from repro.evaluation import compare, evaluate
    from repro.data import load

    result = evaluate(RPMClassifier(seed=0), load("CBF"))
    table = compare(
        {"RPM": RPMClassifier(seed=0), "NN-ED": NearestNeighborED},
        [load("CBF"), load("GunPointSim")],
    )
    print(table.render())

Methods may be given as configured estimator *instances* (cloned per
run through the :mod:`repro.base` protocol), estimator classes, or
zero-argument factories — all three spawn a fresh model per
(method, dataset) pair so state never leaks between runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .base import clone
from .data.base import Dataset
from .ml.metrics import error_rate
from .ml.stats import wilcoxon_signed_rank

__all__ = ["EvalResult", "ComparisonTable", "evaluate", "compare"]


def _instantiate(method):
    """A fresh, unfitted model from an instance, class or factory.

    A configured estimator instance (anything cloneable through the
    :mod:`repro.base` protocol) is cloned so the caller's object is
    never mutated; classes and zero-argument factories are simply
    called.
    """
    if not isinstance(method, type) and hasattr(method, "fit") and (
        hasattr(method, "clone") or hasattr(method, "get_params")
    ):
        return clone(method)
    if callable(method):
        return method()
    raise TypeError(
        f"method must be an estimator instance, class or zero-argument "
        f"factory, got {method!r}"
    )


@dataclass(frozen=True)
class EvalResult:
    """One method on one dataset: error and wall-clock split."""

    method: str
    dataset: str
    error: float
    train_time: float
    test_time: float

    @property
    def total_time(self) -> float:
        """Train plus classify wall-clock seconds."""
        return self.train_time + self.test_time


@dataclass
class ComparisonTable:
    """Errors of several methods across several datasets."""

    methods: list[str]
    datasets: list[str]
    results: dict = field(default_factory=dict)  # (method, dataset) -> EvalResult

    def errors(self, method: str) -> list[float]:
        """Error column of one method across the datasets."""
        return [self.results[(method, ds)].error for ds in self.datasets]

    def wins(self) -> dict[str, int]:
        """Datasets each method wins; ties count for every winner."""
        out = {m: 0 for m in self.methods}
        for ds in self.datasets:
            best = min(self.results[(m, ds)].error for m in self.methods)
            for m in self.methods:
                if self.results[(m, ds)].error <= best + 1e-12:
                    out[m] += 1
        return out

    def wilcoxon(self, method_a: str, method_b: str) -> float:
        """Two-sided signed-rank p-value on the paired error vectors.

        Returns 1.0 when every paired difference is zero (methods
        indistinguishable on this suite).
        """
        a = np.array(self.errors(method_a))
        b = np.array(self.errors(method_b))
        try:
            return wilcoxon_signed_rank(a, b).p_value
        except ValueError:
            return 1.0

    def mean_errors(self) -> dict[str, float]:
        """Mean error per method over the suite."""
        return {m: float(np.mean(self.errors(m))) for m in self.methods}

    def render(self) -> str:
        """Plain-text table in the paper's Table-1 layout."""
        width = max(len(ds) for ds in self.datasets + ["#wins (incl. ties)"])
        header = f"{'dataset':<{width}}  " + "  ".join(f"{m:>8s}" for m in self.methods)
        lines = [header, "-" * len(header)]
        for ds in self.datasets:
            row = f"{ds:<{width}}  " + "  ".join(
                f"{self.results[(m, ds)].error:>8.3f}" for m in self.methods
            )
            lines.append(row)
        wins = self.wins()
        lines.append(
            f"{'#wins (incl. ties)':<{width}}  "
            + "  ".join(f"{wins[m]:>8d}" for m in self.methods)
        )
        return "\n".join(lines)


def evaluate(
    method: Callable | object,
    dataset: Dataset,
    *,
    name: str | None = None,
    n_jobs: int | None = None,
) -> EvalResult:
    """Fit a fresh model on the dataset's train split, score the test split.

    ``method`` is a configured estimator instance (cloned, never
    mutated), an estimator class, or a zero-argument factory.
    ``n_jobs`` overrides the parallel worker count on models that
    support it (anything exposing an ``n_jobs`` attribute, like
    :class:`~repro.core.rpm.RPMClassifier`); other models ignore it.
    Parallelism never changes predictions — only wall-clock.
    """
    model = _instantiate(method)
    if n_jobs is not None and hasattr(model, "n_jobs"):
        model.n_jobs = n_jobs
    label = name or type(model).__name__
    start = time.perf_counter()
    model.fit(dataset.X_train, dataset.y_train)
    train_time = time.perf_counter() - start
    start = time.perf_counter()
    predictions = model.predict(dataset.X_test)
    test_time = time.perf_counter() - start
    return EvalResult(
        method=label,
        dataset=dataset.name,
        error=error_rate(dataset.y_test, predictions),
        train_time=train_time,
        test_time=test_time,
    )


def compare(
    methods: dict[str, Callable | object],
    datasets: Sequence[Dataset],
    *,
    verbose: bool = False,
    n_jobs: int | None = None,
) -> ComparisonTable:
    """Evaluate every method on every dataset.

    ``methods`` maps display name to an estimator instance, class or
    zero-argument factory; a fresh model is spawned per
    (method, dataset) pair so state never leaks between runs.
    ``n_jobs`` is forwarded to every evaluation (see :func:`evaluate`).
    """
    if not methods:
        raise ValueError("methods must be non-empty")
    if not datasets:
        raise ValueError("datasets must be non-empty")
    table = ComparisonTable(
        methods=list(methods), datasets=[ds.name for ds in datasets]
    )
    for dataset in datasets:
        for name, method in methods.items():
            result = evaluate(method, dataset, name=name, n_jobs=n_jobs)
            table.results[(name, dataset.name)] = result
            if verbose:
                print(
                    f"{name} on {dataset.name}: error {result.error:.3f} "
                    f"({result.total_time:.1f}s)"
                )
    return table
