"""Unified estimator protocol and parameter-introspection mixin.

Every classifier in this package — :class:`~repro.core.rpm.RPMClassifier`
and all baselines — follows one contract:

* construction takes configuration as **keyword arguments only** and
  stores each argument verbatim under the same attribute name;
* ``fit(X, y)`` learns state into trailing-underscore attributes and
  returns ``self``;
* ``predict(X)`` labels every row of a 2-D series matrix.

:class:`BaseEstimator` derives ``get_params()`` / ``set_params()`` /
``clone()`` from that contract by introspecting the ``__init__``
signature (the sklearn recipe), which is what lets
:mod:`repro.evaluation` and :mod:`repro.ml.crossval` re-instantiate a
fresh, unfitted copy of any estimator without knowing its class.

:func:`keyword_only` is the one-release migration shim: constructors
used to accept leading positional arguments, and the decorator keeps
those calls working while emitting a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import functools
import inspect
import warnings
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["Estimator", "BaseEstimator", "clone", "keyword_only"]


@runtime_checkable
class Estimator(Protocol):
    """Structural type of every classifier in the package."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Estimator": ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...

    def get_params(self) -> dict: ...

    def set_params(self, **params) -> "Estimator": ...


def keyword_only(*names: str):
    """Route legacy positional constructor arguments through a shim.

    ``names`` is the historical positional order. A call that still
    passes positional arguments gets them mapped onto those names with
    a :class:`DeprecationWarning`; keyword calls pass through untouched.
    ``functools.wraps`` keeps the wrapped signature discoverable, so
    :class:`BaseEstimator` introspection sees the real parameter list.
    """

    def decorate(init):
        @functools.wraps(init)
        def wrapper(self, *args, **kwargs):
            if args:
                if len(args) > len(names):
                    raise TypeError(
                        f"{type(self).__name__}() takes at most {len(names)} "
                        f"legacy positional arguments ({', '.join(names)}), "
                        f"got {len(args)}"
                    )
                warnings.warn(
                    f"passing {type(self).__name__} configuration positionally "
                    f"is deprecated and will be removed; use keyword arguments "
                    f"({', '.join(names[: len(args)])})",
                    DeprecationWarning,
                    stacklevel=2,
                )
                for name, value in zip(names, args):
                    if name in kwargs:
                        raise TypeError(
                            f"{type(self).__name__}() got multiple values for "
                            f"argument {name!r}"
                        )
                    kwargs[name] = value
            return init(self, **kwargs)

        return wrapper

    return decorate


class BaseEstimator:
    """Mixin deriving sklearn-style parameter handling from ``__init__``.

    Subclasses must store every constructor argument verbatim under the
    same attribute name (resolved or derived state goes elsewhere —
    e.g. a ``trace`` argument is kept as ``self.trace`` even though the
    resolved tracer lives on ``self.tracer``).
    """

    @classmethod
    def _param_names(cls) -> tuple[str, ...]:
        """Constructor argument names, in signature order."""
        signature = inspect.signature(cls.__init__)
        return tuple(
            name
            for name, parameter in signature.parameters.items()
            if name != "self"
            and parameter.kind
            in (parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY)
        )

    def get_params(self) -> dict:
        """Constructor arguments as a ``{name: current value}`` dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params) -> "BaseEstimator":
        """Update constructor arguments in place; returns ``self``.

        Unknown names raise immediately — a typo must not silently
        create a dead attribute.
        """
        valid = self._param_names()
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def clone(self) -> "BaseEstimator":
        """A fresh, unfitted estimator with identical configuration."""
        return type(self)(**self.get_params())


def clone(estimator):
    """Fresh, unfitted copy of any estimator following the protocol.

    Works on :class:`BaseEstimator` subclasses and on anything exposing
    a ``clone()`` method or a ``get_params()`` dict.
    """
    method = getattr(estimator, "clone", None)
    if callable(method):
        return method()
    getter = getattr(estimator, "get_params", None)
    if callable(getter):
        return type(estimator)(**getter())
    raise TypeError(
        f"cannot clone {type(estimator).__name__}: it exposes neither "
        f"clone() nor get_params()"
    )
