"""DIRECT (DIviding RECTangles) derivative-free global optimizer.

RPM uses DIRECT (Jones, Perttunen & Stuckman 1993) to choose the SAX
parameters instead of an exhaustive grid (paper §4.2). This is a
self-contained implementation of the classic algorithm:

* the search domain is scaled to the unit hypercube;
* each iteration identifies the *potentially optimal* hyper-rectangles
  (the lower-right convex hull of (size, value) points, subject to the
  ε-improvement condition) and trisects them along their longest sides;
* sampling happens only at rectangle centers, so the method is
  deterministic and derivative-free.

The paper rounds DIRECT's real-valued iterates to integers; the
:class:`repro.opt.grid.CachedIntegerObjective` wrapper provides that
rounding plus caching, so the evaluation count ``R`` reported in §5.3
counts *unique* parameter combinations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DirectResult", "direct_minimize"]


@dataclass
class _Rect:
    center: np.ndarray
    levels: np.ndarray  # side of dim i is 3**(-levels[i])
    value: float

    @property
    def sides(self) -> np.ndarray:
        """Current side lengths per dimension."""
        return 3.0 ** (-self.levels.astype(float))

    @property
    def size(self) -> float:
        """Half-diagonal of the rectangle (Jones' size measure)."""
        s = self.sides
        return float(0.5 * np.sqrt(np.sum(s * s)))


@dataclass
class DirectResult:
    """Outcome of :func:`direct_minimize`."""

    x: np.ndarray
    fun: float
    n_evaluations: int
    n_iterations: int
    history: list[float] = field(default_factory=list)


def _potentially_optimal(rects: list[_Rect], f_min: float, eps: float) -> list[int]:
    """Indices of potentially optimal rectangles (Gablonsky's test)."""
    sizes = np.array([r.size for r in rects])
    values = np.array([r.value for r in rects])
    # Best rectangle per distinct size class.
    best_by_size: dict[float, int] = {}
    for idx, (d, f) in enumerate(zip(sizes, values)):
        key = round(float(d), 12)
        cur = best_by_size.get(key)
        if cur is None or f < values[cur]:
            best_by_size[key] = idx
    candidates = sorted(best_by_size.values(), key=lambda i: sizes[i])

    chosen: list[int] = []
    for pos, j in enumerate(candidates):
        dj, fj = sizes[j], values[j]
        # Largest slope toward any smaller rectangle.
        k1 = -np.inf
        for i in candidates[:pos]:
            k1 = max(k1, (fj - values[i]) / (dj - sizes[i]))
        # Smallest slope toward any larger rectangle.
        k2 = np.inf
        for i in candidates[pos + 1 :]:
            k2 = min(k2, (values[i] - fj) / (sizes[i] - dj))
        if k1 > k2:
            continue
        # ε-condition: the rectangle must be able to beat f_min by a
        # non-trivial margin given the best available slope.
        if np.isfinite(k2):
            bound = fj - k2 * dj
            threshold = f_min - eps * abs(f_min)
            if bound > threshold:
                continue
        chosen.append(j)
    return chosen


def direct_minimize(
    func,
    bounds: list[tuple[float, float]],
    *,
    max_evaluations: int = 200,
    max_iterations: int = 50,
    eps: float = 1e-4,
    batch_evaluate=None,
) -> DirectResult:
    """Globally minimize ``func`` over a box with the DIRECT algorithm.

    Parameters
    ----------
    func:
        Callable taking a 1-D numpy array in the original coordinates.
    bounds:
        ``[(lo, hi), ...]`` per dimension; ``lo < hi`` required.
    max_evaluations / max_iterations:
        Budget limits; whichever is hit first stops the search (the
        paper's time-constrained optimization, §4.2).
    eps:
        The ε of the potentially-optimal condition (Jones suggests 1e-4).
    batch_evaluate:
        Optional callable taking a *list* of points (original
        coordinates) and returning their values in order. When given it
        replaces ``func`` and receives every point of an iteration in
        one call, so a caller can evaluate them concurrently. Which
        points get sampled each iteration is fixed *before* any of them
        is evaluated (the trisection geometry depends only on the
        iteration's potentially-optimal set and the evaluation budget),
        so the search trajectory — and the result — is identical to the
        serial path no matter how the batch is scheduled.

    Returns
    -------
    DirectResult
        Best point (original coordinates), its value, the number of
        function evaluations, iterations run, and the best-so-far trace.
    """
    lo = np.array([b[0] for b in bounds], dtype=float)
    hi = np.array([b[1] for b in bounds], dtype=float)
    if (hi <= lo).any():
        raise ValueError("every bound must satisfy lo < hi")
    dim = lo.size
    span = hi - lo

    evaluations = 0

    def evaluate_points(unit_points: list[np.ndarray]) -> list[float]:
        """Evaluate a planned batch of unit-cube points, in order."""
        nonlocal evaluations
        evaluations += len(unit_points)
        scaled = [lo + span * p for p in unit_points]
        if batch_evaluate is not None:
            values = batch_evaluate(scaled)
            return [float(v) for v in values]
        return [float(func(x)) for x in scaled]

    center = np.full(dim, 0.5)
    rects: list[_Rect] = [
        _Rect(
            center=center,
            levels=np.zeros(dim, dtype=int),
            value=evaluate_points([center])[0],
        )
    ]
    best_rect = rects[0]
    history = [best_rect.value]

    iterations = 0
    while iterations < max_iterations and evaluations < max_evaluations:
        iterations += 1
        chosen = _potentially_optimal(rects, best_rect.value, eps)
        if not chosen:  # pragma: no cover - chosen always contains the largest rect
            break

        # -- plan: the exact evaluation-point sequence of this iteration.
        # Values never feed back into which points are sampled within an
        # iteration (only the budget does), so the serial order can be
        # precomputed and the whole batch evaluated at once.
        plan: list[tuple[int, int, np.ndarray, np.ndarray]] = []
        planned_evals = evaluations
        for idx in chosen:
            rect = rects[idx]
            max_level = rect.levels.min()  # smallest level == longest side
            long_dims = np.flatnonzero(rect.levels == max_level)
            if planned_evals >= max_evaluations:
                break
            delta = 3.0 ** (-(max_level + 1.0))
            # Sample both neighbours along every longest dimension.
            for d_i in long_dims:
                if planned_evals + 2 > max_evaluations:
                    break
                left = rect.center.copy()
                left[d_i] -= delta
                right = rect.center.copy()
                right[d_i] += delta
                plan.append((idx, int(d_i), left, right))
                planned_evals += 2

        # -- evaluate: one flat batch in planned (serial) order.
        points = [p for _, _, left, right in plan for p in (left, right)]
        values = evaluate_points(points) if points else []

        # -- apply: replay the serial bookkeeping with the batch values.
        samples_by_rect: dict[int, list[tuple[float, int, _Rect, _Rect]]] = {}
        for pair_index, (idx, d_i, left, right) in enumerate(plan):
            f_left = values[2 * pair_index]
            f_right = values[2 * pair_index + 1]
            levels = rects[idx].levels
            samples_by_rect.setdefault(idx, []).append(
                (
                    min(f_left, f_right),
                    d_i,
                    _Rect(center=left, levels=levels.copy(), value=f_left),
                    _Rect(center=right, levels=levels.copy(), value=f_right),
                )
            )
        progressed = False
        for idx in chosen:
            samples = samples_by_rect.get(idx)
            if not samples:
                continue
            rect = rects[idx]
            progressed = True
            # Split best dimension first (Jones' ordering rule).
            samples.sort(key=lambda item: item[0])
            split_dims: list[int] = []
            for _, d_i, left_rect, right_rect in samples:
                split_dims.append(d_i)
                # The two sampled rectangles inherit all splits so far.
                for new_rect in (left_rect, right_rect):
                    for earlier in split_dims:
                        new_rect.levels[earlier] += 1
                    rects.append(new_rect)
                    if new_rect.value < best_rect.value:
                        best_rect = new_rect
            for d_i in split_dims:
                rect.levels[d_i] += 1
        history.append(best_rect.value)
        if not progressed:
            break

    return DirectResult(
        x=lo + span * best_rect.center,
        fun=best_rect.value,
        n_evaluations=evaluations,
        n_iterations=iterations,
        history=history,
    )
