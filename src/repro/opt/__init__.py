"""Derivative-free optimization substrate: DIRECT and grid search."""

from .direct import DirectResult, direct_minimize
from .grid import (
    PRUNED_VALUE,
    CachedIntegerObjective,
    GridResult,
    PrunedEvaluation,
    grid_search,
)

__all__ = [
    "CachedIntegerObjective",
    "DirectResult",
    "GridResult",
    "PRUNED_VALUE",
    "PrunedEvaluation",
    "direct_minimize",
    "grid_search",
]
