"""Grid search and the integer-rounding objective wrapper.

Two pieces of Algorithm 3 live here:

* :class:`CachedIntegerObjective` — the paper rounds DIRECT's continuous
  iterates to the nearest integer SAX parameters (§4.2). Rounding makes
  many continuous points collapse onto one integer combination, so the
  wrapper caches results; its ``n_unique`` is exactly the quantity ``R``
  the complexity analysis of §5.3 reports (average < 200 on the UCR
  suite).
* :func:`grid_search` — the brute-force alternative (Algorithm 3 as
  printed), with support for the early-pruning hook: the objective may
  raise :class:`PrunedEvaluation` to abandon a combination cheaply when
  no motif survives the γ-support check.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

__all__ = ["PrunedEvaluation", "CachedIntegerObjective", "GridResult", "grid_search"]


class PrunedEvaluation(Exception):
    """Raised by an objective to abandon a parameter combination early.

    The paper prunes a combination when no repeated pattern reaches the
    minimum support γ (§4.1); the search records the combination as
    worst-possible and moves on.
    """


#: Objective value recorded for pruned combinations (error rates live in
#: [0, 1], so 2.0 can never win).
PRUNED_VALUE = 2.0


class CachedIntegerObjective:
    """Round to integers, cache, and count unique evaluations."""

    def __init__(self, func) -> None:
        self._func = func
        self._cache: dict[tuple[int, ...], float] = {}
        self.n_calls = 0

    @property
    def n_unique(self) -> int:
        """Number of distinct integer combinations actually evaluated (R)."""
        return len(self._cache)

    def __call__(self, x: np.ndarray) -> float:
        self.n_calls += 1
        key = tuple(int(round(v)) for v in np.asarray(x, dtype=float))
        if key in self._cache:
            return self._cache[key]
        try:
            value = float(self._func(key))
        except PrunedEvaluation:
            value = PRUNED_VALUE
        self._cache[key] = value
        return value

    def best(self) -> tuple[tuple[int, ...], float]:
        """Best (key, value) evaluated so far."""
        if not self._cache:
            raise RuntimeError("objective never evaluated")
        key = min(self._cache, key=self._cache.get)
        return key, self._cache[key]


@dataclass
class GridResult:
    """Outcome of :func:`grid_search`."""

    x: tuple[int, ...]
    fun: float
    n_evaluations: int
    n_pruned: int
    table: dict[tuple[int, ...], float] = field(default_factory=dict)


def grid_search(
    func,
    axes: list[list[int]],
    *,
    max_evaluations: int | None = None,
) -> GridResult:
    """Exhaustively minimize ``func`` over the cartesian product of *axes*.

    ``func`` receives a tuple of ints and returns a float, or raises
    :class:`PrunedEvaluation` to skip. Combinations are visited in
    lexicographic order; an optional evaluation cap supports the
    time-constrained setting.
    """
    if not axes or any(len(axis) == 0 for axis in axes):
        raise ValueError("every axis must be non-empty")
    table: dict[tuple[int, ...], float] = {}
    best_x: tuple[int, ...] | None = None
    best_f = np.inf
    pruned = 0
    for combo in itertools.product(*axes):
        if max_evaluations is not None and len(table) >= max_evaluations:
            break
        key = tuple(int(v) for v in combo)
        try:
            value = float(func(key))
        except PrunedEvaluation:
            pruned += 1
            table[key] = PRUNED_VALUE
            continue
        table[key] = value
        if value < best_f:
            best_f = value
            best_x = key
    if best_x is None:
        # Everything was pruned: fall back to the first combination.
        best_x = tuple(int(v) for v in next(itertools.product(*axes)))
        best_f = PRUNED_VALUE
    return GridResult(
        x=best_x,
        fun=best_f,
        n_evaluations=len(table),
        n_pruned=pruned,
        table=table,
    )
