"""Grammar-based motif discovery in a single long time series.

RPM's candidate generation is a classification-driven use of the
authors' earlier GrammarViz system ([7], [31] in the paper): SAX
discretization + Sequitur over *one* long series surfaces recurrent
variable-length patterns (motifs) without any pairwise distance
computation. The paper stresses that this exploratory capability
"extends beyond the classification task" (§1); this module exposes it
directly.

``find_motifs`` returns grammar rules mapped back to raw subsequence
occurrences, ranked by a configurable interestingness criterion, and
optionally refined with the same bisecting clustering RPM uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..cluster.refine import align_subsequences, bisect_refine, centroid_of
from ..grammar.inference import find_token_occurrences
from ..grammar.sequitur import Sequitur
from ..sax.discretize import SaxParams, discretize

__all__ = ["Motif", "MotifOccurrence", "find_motifs", "rule_density"]

RANKINGS = ("frequency", "length", "coverage")


@dataclass(frozen=True)
class MotifOccurrence:
    """One raw occurrence of a motif: ``[start, end)`` in the series."""

    start: int
    end: int

    @property
    def length(self) -> int:
        """Number of points."""
        return self.end - self.start


@dataclass
class Motif:
    """A recurrent variable-length pattern found by grammar induction."""

    rule_id: int
    words: tuple[str, ...]
    occurrences: list[MotifOccurrence] = field(default_factory=list)
    prototype: np.ndarray | None = None

    @property
    def frequency(self) -> int:
        """Total number of occurrences."""
        return len(self.occurrences)

    def mean_length(self) -> float:
        """Average occurrence length in points."""
        if not self.occurrences:
            return 0.0
        return float(np.mean([occ.length for occ in self.occurrences]))

    def covered_points(self) -> int:
        """Number of series points covered by at least one occurrence."""
        if not self.occurrences:
            return 0
        spans = sorted((occ.start, occ.end) for occ in self.occurrences)
        total = 0
        cur_start, cur_end = spans[0]
        for start, end in spans[1:]:
            if start > cur_end:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        total += cur_end - cur_start
        return total

    def subsequences(self, series: np.ndarray) -> list[np.ndarray]:
        """Raw subsequences of every occurrence."""
        series = np.asarray(series, dtype=float)
        return [series[occ.start : occ.end] for occ in self.occurrences]


def find_motifs(
    series: np.ndarray,
    params: SaxParams,
    *,
    min_frequency: int = 2,
    min_words: int = 1,
    rank_by: str = "frequency",
    top_k: int | None = None,
    refine: bool = True,
    numerosity_reduction: bool = True,
) -> list[Motif]:
    """Discover recurrent variable-length motifs in *series*.

    Parameters
    ----------
    series:
        One long time series.
    params:
        SAX discretization parameters.
    min_frequency:
        Minimum number of occurrences a motif must have.
    min_words:
        Minimum rule expansion length in SAX words (longer = more
        specific structure).
    rank_by:
        ``'frequency'`` (most repeated first), ``'length'`` (longest
        mean span first) or ``'coverage'`` (most series points covered).
    top_k:
        Keep only the best *k* motifs after ranking.
    refine:
        Compute a z-normalized centroid prototype per motif from its
        aligned occurrences (RPM's refinement, without the split —
        single-series motifs are usually homogeneous).

    Returns
    -------
    list[Motif]
    """
    if rank_by not in RANKINGS:
        raise ValueError(f"rank_by must be one of {RANKINGS}, got {rank_by!r}")
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ValueError("find_motifs expects a 1-D series")
    record = discretize(series, params, numerosity_reduction=numerosity_reduction)
    # Induce over compact integer token ids; render the letter strings
    # only for the motifs that survive filtering.
    token_ids = record.token_ids
    vocabulary = record.vocabulary
    grammar = Sequitur().feed_all(token_ids.tolist())

    motifs: list[Motif] = []
    seen: set[tuple[int, ...]] = set()
    for rule in grammar.non_start_rules():
        expansion = tuple(rule.expansion())
        if len(expansion) < min_words or expansion in seen:
            continue
        seen.add(expansion)
        occurrences = []
        for word_index in find_token_occurrences(token_ids, expansion):
            start = int(record.offsets[word_index])
            end = int(record.offsets[word_index + len(expansion) - 1]) + params.window_size
            occurrences.append(MotifOccurrence(start=start, end=min(end, series.size)))
        if len(occurrences) < min_frequency:
            continue
        motif = Motif(
            rule_id=rule.rule_id,
            words=tuple(vocabulary[i] for i in expansion),
            occurrences=occurrences,
        )
        if refine:
            subs = motif.subsequences(series)
            if all(s.size >= 2 for s in subs):
                aligned = align_subsequences(subs)
                clusters = bisect_refine(aligned)
                biggest = max(clusters, key=lambda c: c.size)
                motif.prototype = centroid_of(biggest)
        motifs.append(motif)

    key = {
        "frequency": lambda m: (m.frequency, m.mean_length()),
        "length": lambda m: (m.mean_length(), m.frequency),
        "coverage": lambda m: (m.covered_points(), m.frequency),
    }[rank_by]
    motifs.sort(key=key, reverse=True)
    return motifs[:top_k] if top_k is not None else motifs


def rule_density(
    series_length: int,
    motifs: Sequence[Motif],
) -> np.ndarray:
    """Per-point count of covering motif occurrences (GrammarViz's
    rule-density curve). Low-density intervals are candidate discords;
    see :mod:`repro.motif.discord`."""
    density = np.zeros(series_length, dtype=int)
    for motif in motifs:
        for occ in motif.occurrences:
            density[occ.start : min(occ.end, series_length)] += 1
    return density
