"""Grammar-based discord (anomaly) discovery.

The GrammarViz line of work the paper builds on ([7], [31]) observed
that grammar *rule density* is a powerful anomaly detector: intervals
covered by few or no grammar rules are the ones that never repeat —
i.e. time series **discords**. This module implements that
rare-rule-density discord finder plus a brute-force exact discord
search (HOT SAX-style, with early abandoning) used as its oracle in
the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distance.best_match import distance_profile
from ..sax.discretize import SaxParams
from .discovery import find_motifs, rule_density

__all__ = ["Discord", "find_discords_density", "find_discord_brute_force"]


@dataclass(frozen=True)
class Discord:
    """An anomalous interval: ``[start, end)`` and its isolation score.

    ``score`` is the distance to the interval's nearest non-overlapping
    neighbour (higher = more anomalous); ``density`` is the mean grammar
    rule density over the interval (lower = rarer).
    """

    start: int
    end: int
    score: float
    density: float


def _nearest_nonself_distance(series: np.ndarray, start: int, length: int) -> float:
    """Distance from subsequence at *start* to its nearest
    non-overlapping match elsewhere in the series."""
    profile = distance_profile(series[start : start + length], series)
    lo = max(0, start - length + 1)
    hi = min(profile.size, start + length)
    profile = profile.copy()
    profile[lo:hi] = np.inf  # exclude trivial (overlapping) matches
    return float(profile.min()) if np.isfinite(profile).any() else 0.0


def find_discords_density(
    series: np.ndarray,
    params: SaxParams,
    *,
    n_discords: int = 1,
    window: int | None = None,
) -> list[Discord]:
    """Find discords via the grammar rule-density heuristic.

    1. Discover motifs and compute the per-point rule density.
    2. Slide a window (default: the SAX window) and rank positions by
       ascending mean density — the rarest intervals first.
    3. Verify each candidate with the true nearest-neighbour distance
       and report the top *n_discords* non-overlapping intervals.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ValueError("find_discords_density expects a 1-D series")
    length = window or params.window_size
    if length >= series.size:
        raise ValueError("discord window must be shorter than the series")

    motifs = find_motifs(series, params, refine=False)
    density = rule_density(series.size, motifs)
    # Mean density per sliding window via cumulative sums.
    cumsum = np.concatenate(([0], np.cumsum(density)))
    window_density = (cumsum[length:] - cumsum[:-length]) / length

    order = np.argsort(window_density, kind="stable")
    chosen: list[Discord] = []
    # Verify candidates in rarity order; a small multiple of n_discords
    # is enough because density is a good proxy.
    budget = max(10 * n_discords, 20)
    for position in order[:budget]:
        position = int(position)
        if any(abs(position - d.start) < length for d in chosen):
            continue
        score = _nearest_nonself_distance(series, position, length)
        chosen.append(
            Discord(
                start=position,
                end=position + length,
                score=score,
                density=float(window_density[position]),
            )
        )
    chosen.sort(key=lambda d: d.score, reverse=True)
    out: list[Discord] = []
    for discord in chosen:
        if any(abs(discord.start - d.start) < length for d in out):
            continue
        out.append(discord)
        if len(out) == n_discords:
            break
    return out


def find_discord_brute_force(series: np.ndarray, length: int) -> Discord:
    """Exact top-1 discord by exhaustive nearest-neighbour search.

    O(n²) — used as the test oracle for the density-based finder.
    """
    series = np.asarray(series, dtype=float)
    if length >= series.size:
        raise ValueError("discord window must be shorter than the series")
    best = Discord(start=0, end=length, score=-1.0, density=float("nan"))
    for start in range(series.size - length + 1):
        score = _nearest_nonself_distance(series, start, length)
        if score > best.score:
            best = Discord(start=start, end=start + length, score=score, density=float("nan"))
    return best
