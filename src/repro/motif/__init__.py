"""Grammar-based motif and discord discovery (the GrammarViz substrate).

RPM's exploratory side: recurrent variable-length pattern discovery in
a single series (:func:`find_motifs`), rule-density curves, and
rare-rule discord (anomaly) detection (:func:`find_discords_density`).
"""

from .discord import Discord, find_discord_brute_force, find_discords_density
from .discovery import Motif, MotifOccurrence, find_motifs, rule_density

__all__ = [
    "Discord",
    "Motif",
    "MotifOccurrence",
    "find_discord_brute_force",
    "find_discords_density",
    "find_motifs",
    "rule_density",
]
